//! # dag-lp-rta
//!
//! Response-time analysis of sporadic DAG tasks under **global
//! fixed-priority scheduling with limited preemptions** — a full
//! reproduction of Serrano, Melani, Bertogna, Quinones, *DATE 2016*.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`] | `rta-model` | DAGs of non-preemptive regions, tasks, task sets, Algorithm 1 |
//! | [`analysis`] | `rta-analysis` | the paper's RTA: FP-ideal, LP-max, LP-ILP |
//! | [`taskgen`] | `rta-taskgen` | the random workload generator of the evaluation |
//! | [`sim`] | `rta-sim` | discrete-event multicore scheduler simulator |
//! | [`combinatorics`] | `rta-combinatorics` | partitions, assignment, cliques, bitsets |
//! | [`ilp`] | `rta-ilp` | from-scratch 0/1 ILP solver (the CPLEX substitute) |
//!
//! # Quickstart
//!
//! ```
//! use dag_lp_rta::prelude::*;
//!
//! # fn main() -> Result<(), rta_model::ModelError> {
//! // Build a small fork-join task…
//! let mut b = DagBuilder::new();
//! let fork = b.add_node(2);
//! let left = b.add_node(6);
//! let right = b.add_node(4);
//! let join = b.add_node(1);
//! b.add_edge(fork, left)?;
//! b.add_edge(fork, right)?;
//! b.add_edge(left, join)?;
//! b.add_edge(right, join)?;
//! let video = DagTask::new(b.build()?, 40, 40)?.named("video");
//!
//! // …a lower-priority sequential task…
//! let mut b = DagBuilder::new();
//! let chain = b.add_nodes([5, 9, 3]);
//! b.add_chain(&chain)?;
//! let logger = DagTask::new(b.build()?, 100, 100)?.named("logger");
//!
//! // …and check schedulability on 2 cores with the LP-ILP analysis.
//! let task_set = TaskSet::new(vec![video, logger]);
//! let report = analyze(&task_set, &AnalysisConfig::new(2, Method::LpIlp));
//! assert!(report.schedulable);
//! // The video task can be blocked once by the logger's largest NPR (9).
//! assert_eq!(report.tasks[0].blocking.unwrap().delta_m, 9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use rta_analysis as analysis;
pub use rta_combinatorics as combinatorics;
pub use rta_ilp as ilp;
pub use rta_model as model;
pub use rta_sim as sim;
pub use rta_taskgen as taskgen;

/// The most common imports in one place.
pub mod prelude {
    pub use rta_analysis::{
        analyze, AnalysisConfig, AnalysisReport, Method, MuSolver, ResponseBound, RhoSolver,
        ScenarioSpace, TaskReport,
    };
    pub use rta_model::{Dag, DagBuilder, DagTask, ModelError, NodeId, TaskId, TaskSet, Time};
    pub use rta_sim::{PreemptionPolicy, Release, SimOutcome, SimRequest, SimResult};
    // The deprecated pre-request entry points, re-exported for source
    // compatibility; importing them still warns at the use site.
    #[allow(deprecated)]
    pub use rta_sim::{simulate, SimConfig};
    pub use rta_taskgen::{generate_task_set, group1, group2, TaskSetConfig};
}
