//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Something usable as a collection size: a fixed `usize`, `a..b`, or
/// `a..=b` (mirrors upstream's `Into<SizeRange>` argument).
pub trait SizeRange {
    /// Samples a concrete length.
    fn sample_len(&self, rng: &mut SmallRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut SmallRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut SmallRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut SmallRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and a size range.
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

/// Produces vectors whose length is drawn from `len` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>`.
pub struct BTreeSetStrategy<S, L> {
    element: S,
    len: L,
}

/// Produces sets with up to the sampled number of elements (duplicates drawn
/// from `element` collapse, exactly as in upstream proptest).
pub fn btree_set<S, L>(element: S, len: L) -> BTreeSetStrategy<S, L>
where
    S: Strategy,
    S::Value: Ord,
    L: SizeRange,
{
    BTreeSetStrategy { element, len }
}

impl<S, L> Strategy for BTreeSetStrategy<S, L>
where
    S: Strategy,
    S::Value: Ord,
    L: SizeRange,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
