//! Strategies: how test-case values are produced.

use rand::rngs::SmallRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case values, sampled once per case.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply produces a value from the case RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategies {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Produces any value of `T` (implemented for the primitive types the
/// workspace tests use).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut SmallRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_any_uint {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )+};
}

impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy that always produces a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies, backing [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds the union; panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one strategy");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        let arm = rng.gen_range(0..self.arms.len());
        self.arms[arm].sample(rng)
    }
}
