//! The minimal test runner: per-case RNG derivation and configuration.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Why one sampled case did not complete normally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the test fails with this message.
    Fail(String),
    /// A `prop_assume!` precondition did not hold; the case is skipped.
    Reject,
}

/// Runner configuration, mirroring the single upstream knob the workspace
/// uses: the number of cases per property.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 128 keeps the heavier cross-validation
        // suites fast while retaining useful coverage.
        Self { cases: 128 }
    }
}

/// How many times a case rejected by `prop_assume!` is resampled (with
/// fresh inputs) before the case is abandoned as skipped. Upstream
/// proptest resamples too (up to its rejection limits); never retrying
/// would silently shrink the effective case count of heavily-filtered
/// properties.
pub const MAX_REJECTS_PER_CASE: u32 = 64;

/// Derives the deterministic RNG for one case of one property.
///
/// Seeding depends only on the test name, case index and resample attempt,
/// so failures replay identically on every run and machine.
pub fn case_rng(test_name: &str, case: u32) -> SmallRng {
    case_rng_attempt(test_name, case, 0)
}

/// [`case_rng`] for the `attempt`-th resample after `prop_assume!`
/// rejections.
pub fn case_rng_attempt(test_name: &str, case: u32, attempt: u32) -> SmallRng {
    // FNV-1a over the name, mixed with the case and attempt indices.
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01B3);
    }
    hash ^= u64::from(case) << 32 | u64::from(case);
    hash ^= u64::from(attempt).wrapping_mul(0xA24B_AED4_963E_E407);
    SmallRng::seed_from_u64(hash)
}
