//! Offline stand-in for the parts of [`proptest` 1.x](https://docs.rs/proptest)
//! this workspace's property tests use.
//!
//! The workspace builds with no access to crates.io, so the subset below is
//! vendored under the upstream paths:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`);
//! * [`prelude`] with [`Strategy`](strategy::Strategy),
//!   [`any`](strategy::any), [`Just`](strategy::Just), [`prop_oneof!`],
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`], and [`ProptestConfig`](test_runner::ProptestConfig);
//! * [`collection::vec`] and [`collection::btree_set`] with `usize`,
//!   `Range<usize>` or `RangeInclusive<usize>` sizes;
//! * strategies for integer/float ranges and tuples of strategies.
//!
//! Semantics differ from upstream in one deliberate way: **no shrinking**.
//! On failure the offending inputs are printed verbatim (cases are
//! deterministic per test name, so failures replay exactly under
//! `cargo test`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a regular `#[test]` that samples the strategies for a
/// configurable number of deterministic cases and runs the body.
///
/// The `#[test]` attribute (and any doc comments) are matched as ordinary
/// attributes and re-emitted on the generated zero-argument function.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)+
    ) => {
        $crate::proptest!(@with_config ($config) $($rest)+);
    };
    (
        $(#[$first_attr:meta])*
        fn $($rest:tt)+
    ) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default())
            $(#[$first_attr])*
            fn $($rest)+
        );
    };
    (
        @with_config ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config = $config;
                for case in 0..config.cases {
                    // Resample `prop_assume!`-rejected inputs (like
                    // upstream) so filtered properties keep their
                    // effective case count; give up on pathological
                    // filters rather than looping forever.
                    for attempt in 0..=$crate::test_runner::MAX_REJECTS_PER_CASE {
                        let mut rng = $crate::test_runner::case_rng_attempt(
                            stringify!($name),
                            case,
                            attempt,
                        );
                        $(
                            let $arg =
                                $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                        )+
                        let inputs = format!(
                            concat!($(stringify!($arg), " = {:?}\n"),+),
                            $(&$arg),+
                        );
                        let outcome: ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > = (move || {
                            $body
                            Ok(())
                        })();
                        match outcome {
                            Ok(()) => break,
                            Err($crate::test_runner::TestCaseError::Reject) => {}
                            Err($crate::test_runner::TestCaseError::Fail(message)) => panic!(
                                "proptest case {case} of {} failed: {message}\ninputs:\n{inputs}",
                                stringify!($name),
                            ),
                        }
                    }
                }
            }
        )+
    };
}

/// Fails the current test case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Skips the current case (without failing) unless `cond` holds, mirroring
/// `proptest::prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), left, right
        );
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}\n  both: {:?}",
            format!($($fmt)+), left
        );
    }};
}

/// Picks uniformly among several strategies producing the same value type,
/// mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strategy:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( ::std::boxed::Box::new($strategy)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>> ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_collections(
            n in 1usize..10,
            flag in any::<bool>(),
            xs in crate::collection::vec(-5i32..5, 0..8),
            set in crate::collection::btree_set(0usize..20, 1..6),
        ) {
            prop_assert!((1..10).contains(&n));
            let negated = !flag;
            prop_assert_ne!(flag, negated);
            prop_assert!(xs.len() < 8);
            prop_assert!(xs.iter().all(|x| (-5..5).contains(x)));
            prop_assert!(!set.is_empty() && set.len() < 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_is_honored(seed in any::<u64>()) {
            // Reaching here at all proves the macro accepted the config;
            // the case count is checked below by a plain unit test.
            prop_assert_eq!(seed, seed);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn assume_resamples_instead_of_skipping(n in 0usize..100) {
            // A filter that rejects ~90% of draws: with resampling every
            // one of the 40 cases still reaches the assertion (tracked
            // via the counter below).
            prop_assume!(n < 10);
            ASSUME_HITS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            prop_assert!(n < 10);
        }
    }

    static ASSUME_HITS: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

    #[test]
    fn assume_resampling_keeps_effective_case_count() {
        assume_resamples_instead_of_skipping();
        // 40 configured cases; with rejection-resampling the number of
        // bodies that got past the filter must be (at least) 40. Without
        // it, the expected count would be ~4.
        assert!(
            ASSUME_HITS.load(std::sync::atomic::Ordering::Relaxed) >= 40,
            "got {}",
            ASSUME_HITS.load(std::sync::atomic::Ordering::Relaxed)
        );
    }

    #[test]
    fn oneof_and_just_cover_all_arms() {
        let strategy = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::test_runner::case_rng("oneof", 0);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(crate::strategy::Strategy::sample(&strategy, &mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1u8, 2, 3]);
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let a: Vec<u64> = (0..5)
            .map(|c| {
                let mut rng = crate::test_runner::case_rng("x", c);
                crate::strategy::Strategy::sample(&(0u64..1000), &mut rng)
            })
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| {
                let mut rng = crate::test_runner::case_rng("x", c);
                crate::strategy::Strategy::sample(&(0u64..1000), &mut rng)
            })
            .collect();
        assert_eq!(a, b);
    }
}
