//! Offline stand-in for the parts of [`criterion` 0.5](https://docs.rs/criterion)
//! this workspace's benches use.
//!
//! The workspace builds with no access to crates.io, so the bench targets
//! are written against this vendored subset: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — per benchmark: one warm-up
//! invocation, then `sample_size` timed samples, each a batch of iterations
//! calibrated to take at least [`MIN_SAMPLE_NANOS`]. The harness reports
//! the minimum, mean and maximum per-iteration time. There is no outlier
//! analysis, no plotting and no baseline storage; for CI the benches are
//! only compiled (`cargo bench --no-run`) or used as smoke tests.
//!
//! Filters passed by `cargo bench <filter>` (and the `--bench` flag noise
//! cargo forwards) are honored by substring match on the benchmark id.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// A batch of timed iterations shorter than this is grown before being
/// trusted as a sample.
pub const MIN_SAMPLE_NANOS: u64 = 5_000_000;

/// The identifier of one benchmark: a function name plus an optional
/// parameter rendering, displayed as `name/parameter`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a parameter component, mirroring upstream
    /// `BenchmarkId::new`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        Self { id }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its output alive until after the clock
    /// stops so that result construction is included in the measurement.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Runs one benchmark to completion and returns per-iteration nanoseconds
/// for each sample.
fn measure<F: FnMut(&mut Bencher)>(sample_size: usize, mut routine: F) -> Vec<f64> {
    // Warm-up and calibration: grow the batch until it runs long enough.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        if b.elapsed.as_nanos() as u64 >= MIN_SAMPLE_NANOS || iters > (1 << 20) {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            b.elapsed.as_secs_f64() * 1e9 / iters as f64
        })
        .collect()
}

fn report(id: &str, samples: &[f64]) {
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let scale = |ns: f64| -> String {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        }
    };
    println!(
        "{id:<50} time: [{} {} {}]",
        scale(min),
        scale(mean),
        scale(max)
    );
}

/// The benchmark manager: constructed by [`criterion_main!`], handed to
/// every group function.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards extra CLI words; anything that is not a flag
        // is treated as a substring filter, as upstream does.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Self {
            filter,
            sample_size: 10,
        }
    }
}

impl Criterion {
    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if self.matches(&id.id) {
            let samples = measure(self.sample_size, routine);
            report(&id.id, &samples);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, routine: F) {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.matches(&full) {
            let samples = measure(
                self.sample_size.unwrap_or(self.criterion.sample_size),
                routine,
            );
            report(&full, &samples);
        }
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), routine);
        self
    }

    /// Benchmarks a function over one input within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), |b| routine(b, input));
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring upstream
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $( $function(criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups, mirroring upstream
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_requested_samples() {
        let samples = measure(4, |b| b.iter(|| std::hint::black_box(3u64).pow(7)));
        assert_eq!(samples.len(), 4);
        assert!(samples.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn benchmark_id_renders_parameter() {
        assert_eq!(BenchmarkId::new("solver", 16).id, "solver/16");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut criterion = Criterion {
            filter: Some("nothing-matches-this".into()),
            sample_size: 2,
        };
        let mut group = criterion.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("f", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("g", 1), &1, |b, &x| b.iter(|| x + 1));
        group.finish();
    }
}
