//! Offline stand-in for the parts of [`rand` 0.8](https://docs.rs/rand/0.8)
//! this workspace uses.
//!
//! The workspace builds in environments with no access to crates.io, so the
//! small API surface the code depends on is vendored here under the same
//! paths (`rand::Rng`, `rand::SeedableRng`, `rand::rngs::SmallRng`):
//!
//! * [`rngs::SmallRng`] — a small, fast, non-cryptographic PRNG
//!   (xoshiro256++, seeded via SplitMix64, as in upstream `rand` on 64-bit
//!   targets);
//! * [`SeedableRng::seed_from_u64`] — deterministic seeding;
//! * [`Rng::gen_range`] over half-open and inclusive integer and float
//!   ranges, and [`Rng::gen_bool`].
//!
//! Determinism is the only contract callers rely on: a given seed produces
//! the same stream on every platform and in every build. The streams do
//! **not** match upstream `rand` bit-for-bit (upstream does not guarantee
//! value stability across versions either).
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = SmallRng::seed_from_u64(7);
//! let mut b = SmallRng::seed_from_u64(7);
//! let xs: Vec<u64> = (0..4).map(|_| a.gen_range(0..100u64)).collect();
//! let ys: Vec<u64> = (0..4).map(|_| b.gen_range(0..100u64)).collect();
//! assert_eq!(xs, ys);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of randomness: the raw word generator under [`Rng`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A PRNG that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to the full
    /// internal state deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open `a..b` or
    /// inclusive `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a float uniform in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 significant bits, the float's full precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range-sampling support for [`Rng::gen_range`].
pub mod distributions {
    use super::RngCore;
    use core::ops::{Range, RangeInclusive};

    /// A range that can produce a uniformly distributed `T`.
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),+) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )+};
    }

    impl_int_ranges!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_ranges {
        ($($t:ty as $u:ty),+) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )+};
    }

    impl_signed_ranges!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "gen_range: empty range");
            // `start + (end-start)*u` can round up to `end` even though
            // u < 1; resample so the upper bound stays excluded (the
            // retry probability is ~2^-53 per draw).
            loop {
                let v = self.start + (self.end - self.start) * super::unit_f64(rng.next_u64());
                if v < self.end {
                    return v;
                }
            }
        }
    }

    impl SampleRange<f64> for RangeInclusive<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "gen_range: empty range");
            lo + (hi - lo) * super::unit_f64(rng.next_u64())
        }
    }

    impl SampleRange<f32> for Range<f32> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "gen_range: empty range");
            // The f64→f32 narrowing of the unit sample rounds to 1.0
            // with probability ~2^-25; resample as in the f64 impl.
            loop {
                let v =
                    self.start + (self.end - self.start) * super::unit_f64(rng.next_u64()) as f32;
                if v < self.end {
                    return v;
                }
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG: xoshiro256++.
    ///
    /// Mirrors the role of `rand::rngs::SmallRng` on 64-bit targets. Not
    /// cryptographically secure; statistical quality is ample for the
    /// workload generation and simulation jitter it backs.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as recommended by the xoshiro
            // authors (and used by upstream rand for seed_from_u64).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let a_run: Vec<u64> = (0..10).map(|_| a.gen_range(0..u64::MAX)).collect();
        let c_run: Vec<u64> = (0..10).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(a_run, c_run);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&v));
            let v = rng.gen_range(-4i32..5);
            assert!((-4..5).contains(&v));
            let f = rng.gen_range(0.25..=4.0f64);
            assert!((0.25..=4.0).contains(&f));
        }
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(rng.gen_range(7..=7u64), 7);
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }
}
