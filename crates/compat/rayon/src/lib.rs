//! Offline stand-in for the parts of [`rayon` 1.x](https://docs.rs/rayon)
//! this workspace uses.
//!
//! The workspace builds with no access to crates.io, so the experiment
//! layer's data parallelism is written against this vendored subset:
//!
//! * [`prelude`] with `slice.par_iter().map(f).collect::<Vec<_>>()`;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] to bound the worker
//!   count for a scoped region (the `--jobs` knob of the `repro` CLI);
//! * [`current_num_threads`].
//!
//! Instead of upstream's work-stealing deques, workers share one atomic
//! index into the item list — dynamic load balancing with the same
//! determinism property callers rely on: `collect` returns results in
//! **input order** regardless of which worker computed what. Tasks here are
//! coarse (one full schedulability analysis each), so per-item queue
//! overhead is irrelevant.
//!
//! ```
//! use rayon::prelude::*;
//!
//! let squares: Vec<u64> = [1u64, 2, 3, 4].par_iter().map(|&x| x * x).collect();
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The common imports, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`] for the
    /// duration of a closure; 0 means "use all available cores".
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The number of worker threads a parallel operation started here would
/// use: the installed pool's size, or all available cores.
pub fn current_num_threads() -> usize {
    let configured = POOL_THREADS.with(Cell::get);
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Builds [`ThreadPool`]s, mirroring upstream's `ThreadPoolBuilder`.
#[derive(Clone, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// The error type of [`ThreadPoolBuilder::build`] (infallible here; kept
/// for upstream signature parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with default settings (as many workers as cores).
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of worker threads; 0 restores the default.
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped worker-count configuration. Unlike upstream there are no
/// persistent worker threads: [`install`](ThreadPool::install) bounds how
/// many scoped threads parallel operations inside the closure spawn.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count in effect. The previous
    /// count is restored even if `op` unwinds.
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|cell| cell.set(self.0));
            }
        }
        let _restore = Restore(POOL_THREADS.with(|cell| cell.replace(self.num_threads)));
        op()
    }

    /// This pool's worker count (0 = all cores).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// An indexed parallel computation: `len` items, any of which can be
/// produced independently on any thread.
pub trait ParallelIterator: Sync + Sized {
    /// The element type.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// Whether there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces the item at `index` (called from worker threads).
    fn item_at(&self, index: usize) -> Self::Item;

    /// Maps each item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Executes the computation and collects the results in input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Conversion of a borrowed collection into a parallel iterator, mirroring
/// upstream's trait of the same name.
pub trait IntoParallelRefIterator<'data> {
    /// The element type (a reference).
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Borrows the collection as a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = SliceIter<'data, T>;

    fn par_iter(&'data self) -> SliceIter<'data, T> {
        SliceIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = SliceIter<'data, T>;

    fn par_iter(&'data self) -> SliceIter<'data, T> {
        SliceIter { slice: self }
    }
}

/// Parallel iterator over `&[T]`.
#[derive(Clone, Copy, Debug)]
pub struct SliceIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for SliceIter<'data, T> {
    type Item = &'data T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn item_at(&self, index: usize) -> &'data T {
        &self.slice[index]
    }
}

/// A mapped parallel iterator (see [`ParallelIterator::map`]).
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn item_at(&self, index: usize) -> R {
        (self.f)(self.base.item_at(index))
    }
}

/// Collection types constructible from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Runs `iter` to completion and gathers the results.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let len = iter.len();
        let workers = current_num_threads().min(len);
        if workers <= 1 {
            return (0..len).map(|i| iter.item_at(i)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots = Mutex::new(Vec::with_capacity(len));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= len {
                        break;
                    }
                    let value = iter.item_at(index);
                    slots
                        .lock()
                        .expect("rayon shim worker poisoned")
                        .push((index, value));
                });
            }
        });
        let mut slots = slots.into_inner().expect("rayon shim result poisoned");
        debug_assert_eq!(slots.len(), len);
        slots.sort_unstable_by_key(|&(index, _)| index);
        slots.into_iter().map(|(_, value)| value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn collect_preserves_input_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_bounds_and_restores_worker_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn single_thread_pool_matches_parallel_result() {
        let input: Vec<u64> = (0..257).collect();
        let serial_pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let a: Vec<u64> = serial_pool.install(|| input.par_iter().map(|&x| x * x).collect());
        let b: Vec<u64> = input.par_iter().map(|&x| x * x).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn install_restores_worker_count_across_unwind() {
        let outside = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let caught =
            std::panic::catch_unwind(|| pool.install(|| -> () { panic!("worker code unwound") }));
        assert!(caught.is_err());
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn empty_input_collects_empty() {
        let empty: Vec<u64> = Vec::new();
        let out: Vec<u64> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
