//! Random sporadic DAG task-set generation for schedulability experiments.
//!
//! Re-implements the simulation environment the paper borrows from Melani
//! et al. (paper Section VI-A) from its published parameters:
//!
//! * DAGs grow by recursive fork-join expansion: a block either terminates
//!   in a single NPR (probability `p_term = 0.4`) or forks into up to
//!   `n_par = 6` parallel sub-blocks (probability `p_par = 0.6`) between a
//!   fork node and a join node — see [`DagGenConfig`] and [`generate_dag`];
//! * the longest path is at most 7 nodes, a DAG has at most 30 nodes, and
//!   node WCETs are uniform in `[1, 100]`;
//! * periods give every task real slack: `T_i = vol_i · s_i` with
//!   log-uniform slack factors, anchored by the paper's `β = 0.5` (see
//!   [`PeriodModel::SlackFactor`] and DESIGN.md §5.3 for the calibration),
//!   with implicit deadlines `D = T`;
//! * task sets are rescaled onto the target utilization by a common
//!   correction of the slack factors ([`generate_task_set`]);
//! * priorities are deadline monotonic.
//!
//! Two presets mirror the paper's two evaluation groups: [`group1`] mixes
//! highly-parallel (data-flow) tasks with sequential (control-flow) chains;
//! [`group2`] generates only highly-parallel tasks of similar shape.
//!
//! All generation is deterministic given a seed.
//!
//! # Example
//!
//! ```
//! use rta_taskgen::{group1, generate_task_set};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let ts = generate_task_set(&mut rng, &group1(1.0));
//! assert!((ts.total_utilization() - 1.0).abs() < 0.06);
//! assert!(ts.tasks().iter().all(|t| t.dag().node_count() <= 30));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag_gen;
pub mod set_gen;

pub use dag_gen::{
    generate_dag, generate_dag_with, generate_sequential_dag, generate_sequential_dag_with,
    DagGenConfig,
};
pub use set_gen::{
    chain_mix, generate_task, generate_task_set, generate_task_set_with_count, group1, group2,
    DagShape, PeriodModel, TaskKind, TaskSetConfig, TaskSetGenerator,
};
