//! Task and task-set assembly: periods, deadlines, utilization targeting.
//!
//! Two entry styles produce **bit-identical** task sets for equal seeds:
//! the original free functions ([`generate_task_set`] and friends), which
//! allocate their working memory per call, and the scratch-reusing
//! [`TaskSetGenerator`], which keeps the DAG builder and the per-set
//! assembly buffers alive across sets — the hot path of a streaming sweep
//! campaign, where one generator per worker thread serves thousands of
//! coordinates without re-allocating. The equivalence is pinned by
//! proptests in `tests/properties.rs`.

use crate::dag_gen::{generate_dag_with, generate_sequential_dag_with, DagGenConfig};
use rand::Rng;
use rta_model::{Dag, DagBuilder, DagTask, TaskSet, Time};

/// The topology family of one generated DAG.
#[derive(Clone, Debug, PartialEq)]
pub enum DagShape {
    /// Recursive fork-join expansion ([`crate::generate_dag`]). The
    /// `max_branches` knob controls how parallel the family is: 6 for the
    /// paper's data-flow tasks, 2 for control-flow tasks with "very-limited
    /// parallelism".
    ForkJoin(DagGenConfig),
    /// A pure sequential chain ([`crate::generate_sequential_dag`]) — the
    /// paper's "or even sequential" tasks.
    Chain(DagGenConfig),
}

/// A weighted mixture of DAG shapes; each generated task draws its shape
/// proportionally to the weights.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskKind {
    entries: Vec<(f64, DagShape)>,
}

impl TaskKind {
    /// Builds a mixture from `(weight, shape)` entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or any weight is non-positive.
    pub fn mixture(entries: Vec<(f64, DagShape)>) -> Self {
        assert!(!entries.is_empty(), "mixture needs at least one shape");
        assert!(
            entries.iter().all(|(w, _)| *w > 0.0),
            "mixture weights must be positive"
        );
        Self { entries }
    }

    /// Every task from a single fork-join family.
    pub fn uniform(config: DagGenConfig) -> Self {
        Self::mixture(vec![(1.0, DagShape::ForkJoin(config))])
    }

    /// The mixture entries.
    pub fn entries(&self) -> &[(f64, DagShape)] {
        &self.entries
    }
}

/// How task periods are derived from the generated DAGs.
#[derive(Clone, Debug, PartialEq)]
pub enum PeriodModel {
    /// `T_i = vol_i · s_i` with a log-uniform per-task slack factor
    /// `s_i ∈ [min_slack, max_slack]`, then one common multiplicative
    /// correction on the slack factors (clamped at `min_slack`) so the set
    /// lands on the utilization target. `T_i ~ U[L_i, vol_i/β]` in the
    /// paper's wording corresponds to slack factors in `[L/vol, 1/β]`; the
    /// log-uniform draw plus the floor `min_slack > 1` keeps every task a
    /// real amount of slack, which the paper's near-100% low-utilization
    /// plateau implies (see DESIGN.md §5.3).
    ///
    /// This yields heterogeneous periods (small tasks get small periods and
    /// proportionally small utilizations), which is essential for
    /// reproducing the paper's curves: with near-equal periods, the
    /// carry-in term of the interfering-workload bound alone consumes a
    /// `U/m` share of every deadline and all three analyses collapse at
    /// `U ≈ m/2`.
    SlackFactor {
        /// Minimum slack factor (`> 1`; a task's utilization never exceeds
        /// `1/min_slack`).
        min_slack: f64,
        /// Maximum slack factor before correction (the paper's `1/β = 2`
        /// anchors the heaviest tasks; larger values admit lighter tasks).
        max_slack: f64,
        /// Number of tasks per unit of target utilization (the set size is
        /// `max(2, round(tasks_per_utilization · U))`).
        tasks_per_utilization: f64,
    },
    /// All periods share a common scale `[C, spread·C]` with `C` the
    /// largest volume in the set, rescaled onto the target. Kept for
    /// ablation: demonstrates the carry-in collapse described above.
    CommonScale {
        /// Ratio between the largest and smallest period before rescaling.
        spread: f64,
    },
    /// Independent per-task utilizations: `u ~ U[β, max]`, `T = max(L,
    /// ⌈vol/u⌉)`; the set grows until the target is reached.
    PerTaskUtilization {
        /// Upper bound of the utilization draw.
        max: f64,
    },
}

/// Configuration for [`generate_task_set`].
#[derive(Clone, Debug, PartialEq)]
pub struct TaskSetConfig {
    /// Target total utilization of the set.
    pub target_utilization: f64,
    /// The paper's `β = 0.5`: anchors per-task utilization (see
    /// [`PeriodModel`]).
    pub beta: f64,
    /// Period derivation model.
    pub period_model: PeriodModel,
    /// Kind mix of the generated tasks.
    pub kind: TaskKind,
    /// Relative deadline as a fraction of the period: `D_i =
    /// clamp(round(f · T_i), L_i, T_i)` with `f ∈ (0, 1]`. The paper's
    /// evaluation uses implicit deadlines (`f = 1`, the presets' default);
    /// the constrained-deadline campaign panel sweeps `f` below 1. The
    /// clamp at `L_i` keeps every task individually feasible, so the panel
    /// measures the analyses' deadline sensitivity rather than counting
    /// trivially-impossible tasks.
    pub deadline_factor: f64,
}

impl TaskSetConfig {
    /// Sets the deadline factor `f` of `D_i = f · T_i` (see
    /// [`deadline_factor`](Self::deadline_factor)).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor ≤ 1`.
    #[must_use]
    pub fn with_deadline_factor(mut self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "deadline factor must be in (0, 1]"
        );
        self.deadline_factor = factor;
        self
    }
}

/// The paper's first evaluation group: DAGs with different levels of
/// parallelism — half highly parallel, half sequential (embedded systems
/// mixing data-flow and control-flow tasks).
pub fn group1(target_utilization: f64) -> TaskSetConfig {
    TaskSetConfig {
        target_utilization,
        beta: 0.5,
        period_model: PeriodModel::SlackFactor {
            min_slack: 2.0,
            max_slack: 10.0,
            tasks_per_utilization: 1.5,
        },
        kind: TaskKind::mixture(vec![
            (0.5, DagShape::ForkJoin(DagGenConfig::highly_parallel())),
            (0.3, DagShape::ForkJoin(DagGenConfig::low_parallel())),
            (0.2, DagShape::Chain(DagGenConfig::low_parallel())),
        ]),
        deadline_factor: 1.0,
    }
}

/// The paper's second evaluation group: uniformly highly parallel DAGs
/// (high-performance systems with only data-flow tasks). The DAGs nest
/// their forks with an unbounded width budget, so "the number of parallel
/// NPRs spawned is similar among tasks" and a single task can span even a
/// wide machine — which is what makes LP-max ≈ LP-ILP for this group (the
/// paper's Section VI-B observation).
pub fn group2(target_utilization: f64) -> TaskSetConfig {
    TaskSetConfig {
        target_utilization,
        beta: 0.5,
        period_model: PeriodModel::SlackFactor {
            min_slack: 2.0,
            max_slack: 10.0,
            tasks_per_utilization: 1.5,
        },
        kind: TaskKind::uniform(DagGenConfig {
            nested_forks: true,
            max_width: usize::MAX,
            ..DagGenConfig::default()
        }),
        deadline_factor: 1.0,
    }
}

/// A control-flow-heavy variant of [`group1`]: `chain_share` of the
/// mixture weight goes to pure sequential chains, the rest split 60/40
/// between the highly- and low-parallel fork-join families. The campaign
/// engine sweeps `chain_share` to chart how the three analyses degrade as
/// NPR counts grow while parallelism disappears — the regime where LP-max
/// over-counts hardest.
///
/// # Panics
///
/// Panics unless `0 ≤ chain_share ≤ 1`.
pub fn chain_mix(target_utilization: f64, chain_share: f64) -> TaskSetConfig {
    assert!(
        (0.0..=1.0).contains(&chain_share),
        "chain share must be in [0, 1]"
    );
    let mut entries = Vec::new();
    if chain_share < 1.0 {
        let parallel = 1.0 - chain_share;
        entries.push((
            0.6 * parallel,
            DagShape::ForkJoin(DagGenConfig::highly_parallel()),
        ));
        entries.push((
            0.4 * parallel,
            DagShape::ForkJoin(DagGenConfig::low_parallel()),
        ));
    }
    if chain_share > 0.0 {
        entries.push((chain_share, DagShape::Chain(DagGenConfig::low_parallel())));
    }
    TaskSetConfig {
        kind: TaskKind::mixture(entries),
        ..group1(target_utilization)
    }
}

/// Validates the configuration's deadline factor. The field is public, so
/// generation entry points re-check what
/// [`with_deadline_factor`](TaskSetConfig::with_deadline_factor) enforced —
/// an out-of-range factor must panic in release builds too, not silently
/// clamp.
fn validate_deadline_factor(config: &TaskSetConfig) {
    assert!(
        config.deadline_factor > 0.0 && config.deadline_factor <= 1.0,
        "deadline factor must be in (0, 1]"
    );
}

/// Builds the task from a finished DAG and period, deriving the deadline
/// from the configuration's [`deadline_factor`](TaskSetConfig::deadline_factor).
fn finish_task(dag: Dag, period: Time, config: &TaskSetConfig) -> DagTask {
    debug_assert!(
        config.deadline_factor > 0.0 && config.deadline_factor <= 1.0,
        "deadline factor must be in (0, 1]"
    );
    if config.deadline_factor >= 1.0 {
        return DagTask::with_implicit_deadline(dag, period).expect("period ≥ L ≥ 1");
    }
    let deadline = ((period as f64 * config.deadline_factor).round() as Time)
        .max(dag.longest_path())
        .min(period);
    DagTask::new(dag, period, deadline).expect("L ≤ D ≤ T by construction")
}

fn generate_kind_with<R: Rng>(rng: &mut R, kind: &TaskKind, builder: &mut DagBuilder) -> Dag {
    let total: f64 = kind.entries().iter().map(|(w, _)| w).sum();
    let mut draw = rng.gen_range(0.0..total);
    for (weight, shape) in kind.entries() {
        if draw < *weight {
            return match shape {
                DagShape::ForkJoin(config) => generate_dag_with(rng, config, builder),
                DagShape::Chain(config) => generate_sequential_dag_with(rng, config, builder),
            };
        }
        draw -= weight;
    }
    // Floating-point edge: fall back to the last entry.
    match &kind.entries().last().expect("non-empty mixture").1 {
        DagShape::ForkJoin(config) => generate_dag_with(rng, config, builder),
        DagShape::Chain(config) => generate_sequential_dag_with(rng, config, builder),
    }
}

/// Generates one task with a per-task utilization draw: `u ~ U[β, max]`
/// (using `max = 1` under [`PeriodModel::CommonScale`], whose set-level
/// scaling is applied by [`generate_task_set`], not here), period
/// `T = max(L, ⌈vol/u⌉)` and a deadline from the configured factor.
///
/// # Panics
///
/// Panics if `beta` is not a positive probability-like bound consistent
/// with the period model.
pub fn generate_task<R: Rng>(rng: &mut R, config: &TaskSetConfig) -> DagTask {
    generate_task_with(rng, config, &mut DagBuilder::new())
}

fn generate_task_with<R: Rng>(
    rng: &mut R,
    config: &TaskSetConfig,
    builder: &mut DagBuilder,
) -> DagTask {
    let max = match config.period_model {
        PeriodModel::PerTaskUtilization { max } => max,
        PeriodModel::CommonScale { .. } | PeriodModel::SlackFactor { .. } => 1.0,
    };
    assert!(
        config.beta > 0.0 && config.beta <= max,
        "beta must be in (0, max utilization]"
    );
    validate_deadline_factor(config);
    let dag = generate_kind_with(rng, &config.kind, builder);
    let utilization = rng.gen_range(config.beta..=max);
    let period = ((dag.volume() as f64 / utilization).ceil() as Time).max(dag.longest_path());
    finish_task(dag, period, config)
}

/// The reusable working memory of task-set generation: the DAG builder's
/// node/edge buffers plus the per-set assembly vectors. One instance per
/// worker thread serves an entire streaming campaign; every `generate*`
/// call produces **exactly** the bytes the corresponding free function
/// would (the scratch never influences a random draw), which
/// `tests/properties.rs` pins over random seeds.
#[derive(Debug, Default)]
pub struct TaskSetGenerator {
    builder: DagBuilder,
    dags: Vec<Dag>,
    slack: Vec<f64>,
    periods: Vec<f64>,
}

impl TaskSetGenerator {
    /// Creates a generator with empty buffers; they grow on first use and
    /// are retained across calls.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch-reusing equivalent of [`generate_task_set`].
    ///
    /// # Panics
    ///
    /// As [`generate_task_set`].
    pub fn generate<R: Rng>(&mut self, rng: &mut R, config: &TaskSetConfig) -> TaskSet {
        assert!(
            config.target_utilization > 0.0,
            "target utilization must be positive"
        );
        validate_deadline_factor(config);
        match config.period_model {
            PeriodModel::CommonScale { spread } => {
                let n = ((config.target_utilization / config.beta).round() as usize).max(2);
                self.assemble_common_scale(rng, config, n, spread)
            }
            PeriodModel::SlackFactor {
                min_slack,
                max_slack,
                tasks_per_utilization,
            } => {
                let n =
                    ((config.target_utilization * tasks_per_utilization).round() as usize).max(2);
                self.assemble_slack_factor(rng, config, n, min_slack, max_slack)
            }
            PeriodModel::PerTaskUtilization { .. } => self.assemble_per_task(rng, config),
        }
    }

    /// Scratch-reusing equivalent of [`generate_task_set_with_count`].
    ///
    /// # Panics
    ///
    /// As [`generate_task_set_with_count`].
    pub fn generate_with_count<R: Rng>(
        &mut self,
        rng: &mut R,
        config: &TaskSetConfig,
        count: usize,
    ) -> TaskSet {
        assert!(count >= 1, "at least one task required");
        assert!(
            config.target_utilization > 0.0,
            "target utilization must be positive"
        );
        validate_deadline_factor(config);
        match config.period_model {
            PeriodModel::SlackFactor {
                min_slack,
                max_slack,
                ..
            } => self.assemble_slack_factor(rng, config, count, min_slack, max_slack),
            PeriodModel::CommonScale { spread } => {
                self.assemble_common_scale(rng, config, count, spread)
            }
            PeriodModel::PerTaskUtilization { .. } => {
                self.assemble_common_scale(rng, config, count, 2.0)
            }
        }
    }

    /// Generates `n` DAGs into the reused buffer with periods `T_i = vol_i ·
    /// s_i`, `s_i` log-uniform in `[min_slack, max_slack]`, then applies a
    /// common multiplicative correction to the slack factors (clamped below
    /// at `min_slack`) so the set's utilization lands on the target —
    /// rejection-free: no draw is ever discarded, the correction is a
    /// deterministic post-pass.
    fn assemble_slack_factor<R: Rng>(
        &mut self,
        rng: &mut R,
        config: &TaskSetConfig,
        n: usize,
        min_slack: f64,
        max_slack: f64,
    ) -> TaskSet {
        assert!(min_slack > 1.0, "min_slack must exceed 1");
        assert!(max_slack > min_slack, "max_slack must exceed min_slack");
        self.dags.clear();
        for _ in 0..n {
            let dag = generate_kind_with(rng, &config.kind, &mut self.builder);
            self.dags.push(dag);
        }
        let dags = &self.dags;

        // Absolute slack floor: every task must at least be able to absorb
        // the release blocking of one maximal lower-priority NPR, or it is
        // dead on arrival under any limited-preemptive analysis. Start at
        // 2.5× the largest node WCET in the set; halve it while it would
        // make the utilization target unreachable.
        let max_wcet = dags.iter().map(rta_model::Dag::max_wcet).max().unwrap_or(0);
        let mut floor = (max_wcet * 5 / 2) as f64;
        let min_slack_of = |vol: f64, floor: f64| -> f64 { min_slack.max((vol + floor) / vol) };
        loop {
            let reachable: f64 = dags
                .iter()
                .map(|d| 1.0 / min_slack_of(d.volume() as f64, floor))
                .sum();
            if reachable >= 1.05 * config.target_utilization || floor < 1.0 {
                break;
            }
            floor /= 2.0;
        }

        self.slack.clear();
        for d in dags {
            let draw = rng.gen_range(min_slack.ln()..=max_slack.ln()).exp();
            self.slack
                .push(draw.max(min_slack_of(d.volume() as f64, floor)));
        }
        let slack = &mut self.slack;
        // Common correction on the slack factors to land on the target,
        // iterated because the per-task clamps redistribute utilization to
        // the unclamped tasks. If every factor is pinned the target is
        // unreachable for this draw and the set undershoots (making the
        // corresponding sweep point easier, never harder, to schedule).
        for _pass in 0..32 {
            let current: f64 = slack.iter().map(|s| 1.0 / s).sum();
            if (current - config.target_utilization).abs() < 0.005 * config.target_utilization {
                break;
            }
            let factor = current / config.target_utilization;
            let mut moved = false;
            for (d, s) in dags.iter().zip(slack.iter_mut()) {
                let next = (*s * factor).max(min_slack_of(d.volume() as f64, floor));
                if (next - *s).abs() > f64::EPSILON {
                    moved = true;
                }
                *s = next;
            }
            if !moved {
                break;
            }
        }
        let tasks: Vec<DagTask> = self
            .dags
            .drain(..)
            .zip(self.slack.iter().copied())
            .map(|(d, s)| {
                let period = ((d.volume() as f64 * s).round() as Time)
                    .max(d.longest_path())
                    .max(1);
                finish_task(d, period, config)
            })
            .collect();
        TaskSet::new(tasks).sorted_deadline_monotonic()
    }

    /// Generates `n` DAGs, draws periods uniformly from `[C, spread·C]`
    /// with `C` the largest volume, and rescales every period by a common
    /// factor so the set's utilization lands on the target (with one
    /// correction pass for integer-rounding and `T ≥ L` clamping).
    fn assemble_common_scale<R: Rng>(
        &mut self,
        rng: &mut R,
        config: &TaskSetConfig,
        n: usize,
        spread: f64,
    ) -> TaskSet {
        assert!(spread >= 1.0, "spread must be at least 1");
        self.dags.clear();
        for _ in 0..n {
            let dag = generate_kind_with(rng, &config.kind, &mut self.builder);
            self.dags.push(dag);
        }
        let dags = &self.dags;
        let scale = dags
            .iter()
            .map(rta_model::Dag::volume)
            .max()
            .expect("n ≥ 1") as f64;
        self.periods.clear();
        for _ in 0..n {
            self.periods
                .push(rng.gen_range(scale..=(spread * scale).max(scale + 1.0)));
        }
        let periods = &mut self.periods;
        // Two passes: rescale onto the target, clamp at L, correct once
        // more.
        for _pass in 0..2 {
            let current: f64 = dags
                .iter()
                .zip(periods.iter())
                .map(|(d, t)| d.volume() as f64 / t)
                .sum();
            let factor = current / config.target_utilization;
            for (d, t) in dags.iter().zip(periods.iter_mut()) {
                *t = (*t * factor).max(d.longest_path() as f64).max(1.0);
            }
        }
        let tasks: Vec<DagTask> = self
            .dags
            .drain(..)
            .zip(self.periods.iter().copied())
            .map(|(d, t)| {
                let period = (t.round() as Time).max(d.longest_path()).max(1);
                finish_task(d, period, config)
            })
            .collect();
        TaskSet::new(tasks).sorted_deadline_monotonic()
    }

    /// The [`PeriodModel::PerTaskUtilization`] assembly: tasks are appended
    /// until the accumulated utilization reaches the target; the closing
    /// task is **rescaled, not redrawn** — its period is recomputed
    /// analytically so the set lands on the target, with further candidate
    /// draws only while the landing error exceeds the tolerance (bounded).
    fn assemble_per_task<R: Rng>(&mut self, rng: &mut R, config: &TaskSetConfig) -> TaskSet {
        const LANDING_TOLERANCE: f64 = 0.02;
        const MAX_CLOSING_ATTEMPTS: usize = 64;

        let mut tasks: Vec<DagTask> = Vec::new();
        let mut acc = 0.0f64;
        let mut best_closing: Option<(f64, DagTask)> = None;
        let mut attempts = 0usize;
        loop {
            let task = generate_task_with(rng, config, &mut self.builder);
            let u = task.utilization();
            if acc + u < config.target_utilization {
                acc += u;
                tasks.push(task);
                continue;
            }
            // Candidate closing task: re-scale its period so the set lands
            // on the target, trying both integer roundings.
            let missing = config.target_utilization - acc;
            debug_assert!(missing > 0.0);
            let volume = task.dag().volume() as f64;
            let min_period = task.dag().longest_path().max(1);
            let ideal = volume / missing;
            let candidates = [
                (ideal.floor() as Time).max(min_period),
                (ideal.ceil() as Time).max(min_period),
            ];
            for period in candidates {
                let err = (volume / period as f64 - missing).abs();
                if best_closing.as_ref().is_none_or(|(e, _)| err < *e) {
                    let rescaled = finish_task(task.dag().clone(), period, config);
                    best_closing = Some((err, rescaled));
                }
            }
            attempts += 1;
            let (err, _) = best_closing.as_ref().expect("candidate recorded");
            if *err <= LANDING_TOLERANCE || attempts >= MAX_CLOSING_ATTEMPTS {
                let (_, closing) = best_closing.expect("candidate recorded");
                tasks.push(closing);
                break;
            }
        }
        TaskSet::new(tasks).sorted_deadline_monotonic()
    }
}

/// Generates a task set with total utilization ≈ `target_utilization`.
///
/// Under [`PeriodModel::CommonScale`] (the default presets), `n ≈ U/β`
/// DAGs are generated, periods are drawn on a common scale and the whole
/// set is rescaled onto the target. Under
/// [`PeriodModel::PerTaskUtilization`], tasks are appended until the
/// accumulated utilization reaches the target and the closing task is
/// rescaled to absorb the residual (bounded candidate draws).
/// Priorities are deadline monotonic in both cases.
///
/// Allocating convenience wrapper around [`TaskSetGenerator::generate`].
///
/// # Panics
///
/// Panics if `target_utilization ≤ 0`.
pub fn generate_task_set<R: Rng>(rng: &mut R, config: &TaskSetConfig) -> TaskSet {
    TaskSetGenerator::new().generate(rng, config)
}

/// Generates a task set with exactly `count` tasks and total utilization ≈
/// `target_utilization`.
///
/// Used by the task-count sweep variant of the paper's Figure 2(c) (see
/// DESIGN.md §5.4). Allocating convenience wrapper around
/// [`TaskSetGenerator::generate_with_count`].
///
/// # Panics
///
/// Panics if `count == 0` or `target_utilization ≤ 0`.
pub fn generate_task_set_with_count<R: Rng>(
    rng: &mut R,
    config: &TaskSetConfig,
    count: usize,
) -> TaskSet {
    TaskSetGenerator::new().generate_with_count(rng, config, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_count_sets_have_exact_count() {
        // Per-task utilization target must stay below the parallelism bound
        // vol/L (≥ 1), else the T ≥ L clamp distorts the total; use 0.25/task.
        for n in [1usize, 2, 8, 16] {
            let target = 0.25 * n as f64;
            let mut rng = SmallRng::seed_from_u64(n as u64);
            let ts = generate_task_set_with_count(&mut rng, &group1(target), n);
            assert_eq!(ts.len(), n);
            assert!(
                (ts.total_utilization() - target).abs() < 0.1 * target.max(1.0),
                "n = {n}: {} vs {}",
                ts.total_utilization(),
                target
            );
        }
    }

    #[test]
    fn task_utilization_at_least_beta() {
        let config = group2(4.0);
        for seed in 0..100u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let t = generate_task(&mut rng, &config);
            // u = vol/T with T ≤ ceil(vol/β) → u ≥ β·(1 − rounding slack).
            assert!(t.utilization() >= config.beta * 0.95, "seed {seed}");
            assert!(!t.is_trivially_infeasible(), "seed {seed}");
            assert_eq!(t.deadline(), t.period(), "implicit deadlines");
        }
    }

    #[test]
    fn set_hits_target_or_documented_saturation() {
        // With the group-1 preset (min_slack = 2, 1.5 tasks per utilization
        // unit), per-task utilization is capped at 1/min_slack, so sets
        // saturate at tasks/min_slack ≈ 0.75·target for high targets; the
        // sweep harness reports the achieved utilization alongside the
        // nominal target (EXPERIMENTS.md). Low targets must land exactly.
        for target in [1.0f64, 2.5, 6.0, 12.0] {
            let config = group1(target);
            for seed in 0..20u64 {
                let mut rng = SmallRng::seed_from_u64(seed);
                let ts = generate_task_set(&mut rng, &config);
                let u = ts.total_utilization();
                let saturation = ts.len() as f64 / 2.0; // n · (1/min_slack)
                let expected = target.min(saturation);
                assert!(
                    (u - expected).abs() < 0.05 * expected + 0.05,
                    "target {target}, saturation {saturation}, got {u} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn sets_are_deadline_monotonic() {
        let mut rng = SmallRng::seed_from_u64(11);
        let ts = generate_task_set(&mut rng, &group1(4.0));
        let deadlines: Vec<Time> = ts.tasks().iter().map(|t| t.deadline()).collect();
        let mut sorted = deadlines.clone();
        sorted.sort_unstable();
        assert_eq!(deadlines, sorted);
    }

    #[test]
    fn deterministic_generation() {
        let a = generate_task_set(&mut SmallRng::seed_from_u64(3), &group1(3.0));
        let b = generate_task_set(&mut SmallRng::seed_from_u64(3), &group1(3.0));
        assert_eq!(a, b);
    }

    #[test]
    fn reused_generator_matches_fresh_generation() {
        // One generator across many sets must replay the free functions
        // exactly: the scratch never leaks into a random draw.
        let mut generator = TaskSetGenerator::new();
        for seed in 0..40u64 {
            let config = group1(1.0 + (seed % 7) as f64 * 0.5);
            let reused = generator.generate(&mut SmallRng::seed_from_u64(seed), &config);
            let fresh = generate_task_set(&mut SmallRng::seed_from_u64(seed), &config);
            assert_eq!(reused, fresh, "seed {seed}");
        }
        for seed in 0..20u64 {
            let config = group1(2.0);
            let n = 2 + (seed % 6) as usize;
            let reused =
                generator.generate_with_count(&mut SmallRng::seed_from_u64(seed), &config, n);
            let fresh =
                generate_task_set_with_count(&mut SmallRng::seed_from_u64(seed), &config, n);
            assert_eq!(reused, fresh, "seed {seed}, n {n}");
        }
    }

    #[test]
    fn constrained_deadlines_follow_the_factor() {
        let config = group1(3.0).with_deadline_factor(0.7);
        for seed in 0..20u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let ts = generate_task_set(&mut rng, &config);
            for t in ts.tasks() {
                let expected = ((t.period() as f64 * 0.7).round() as Time)
                    .max(t.dag().longest_path())
                    .min(t.period());
                assert_eq!(t.deadline(), expected, "seed {seed}");
                assert!(t.deadline() <= t.period());
                assert!(t.deadline() >= t.dag().longest_path());
            }
        }
    }

    #[test]
    fn deadline_factor_only_changes_deadlines() {
        // The factor is applied after all random draws: the DAGs and
        // periods of the constrained set equal the implicit-deadline set's.
        let implicit = generate_task_set(&mut SmallRng::seed_from_u64(9), &group1(3.0));
        let constrained = generate_task_set(
            &mut SmallRng::seed_from_u64(9),
            &group1(3.0).with_deadline_factor(0.8),
        );
        assert_eq!(implicit.len(), constrained.len());
        // Compare as multisets of (dag, period): deadline-monotonic order
        // may differ once deadlines shrink.
        let mut a: Vec<(Time, Time)> = implicit
            .tasks()
            .iter()
            .map(|t| (t.dag().volume(), t.period()))
            .collect();
        let mut b: Vec<(Time, Time)> = constrained
            .tasks()
            .iter()
            .map(|t| (t.dag().volume(), t.period()))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "deadline factor must be in (0, 1]")]
    fn zero_deadline_factor_panics() {
        let _ = group1(1.0).with_deadline_factor(0.0);
    }

    #[test]
    #[should_panic(expected = "deadline factor must be in (0, 1]")]
    fn out_of_range_factor_set_directly_panics_at_generation() {
        // The field is public; bypassing the builder must still panic at
        // the generation entry point, in release builds too.
        let mut config = group1(1.0);
        config.deadline_factor = 1.3;
        let _ = generate_task_set(&mut SmallRng::seed_from_u64(0), &config);
    }

    #[test]
    fn chain_mix_extremes_and_interior() {
        let mut rng = SmallRng::seed_from_u64(13);
        // Pure chains: every task is sequential.
        let all_chains = generate_task_set(&mut rng, &chain_mix(6.0, 1.0));
        assert!(all_chains
            .tasks()
            .iter()
            .all(|t| t.dag().max_parallelism() == 1));
        // No chains: the preset equals a two-family fork-join mixture; over
        // many tasks a majority must be parallel (forced root forks).
        let no_chains = generate_task_set(&mut rng, &chain_mix(20.0, 0.0));
        let parallel = no_chains
            .tasks()
            .iter()
            .filter(|t| t.dag().max_parallelism() > 1)
            .count();
        assert!(parallel * 2 > no_chains.len());
        // Interior share: both kinds appear in a large set.
        let mixed = generate_task_set(&mut rng, &chain_mix(60.0, 0.5));
        let chains = mixed
            .tasks()
            .iter()
            .filter(|t| t.dag().max_parallelism() == 1)
            .count();
        assert!(chains > 0 && chains < mixed.len());
    }

    #[test]
    fn group1_mixes_sequential_and_parallel() {
        let mut sequential = 0usize;
        let mut parallel = 0usize;
        let config = group1(100.0); // big target → many tasks
        let mut rng = SmallRng::seed_from_u64(5);
        let ts = generate_task_set(&mut rng, &config);
        for t in ts.tasks() {
            if t.dag().max_parallelism() == 1 {
                sequential += 1;
            } else {
                parallel += 1;
            }
        }
        assert!(sequential >= 10, "got {sequential} sequential tasks");
        assert!(parallel >= 10, "got {parallel} parallel tasks");
    }

    #[test]
    fn group2_is_uniformly_parallel_config() {
        // All tasks come from the fork-join generator (some may still end up
        // sequential by chance when p_term terminates the root, but the
        // majority must be parallel).
        let mut rng = SmallRng::seed_from_u64(5);
        let ts = generate_task_set(&mut rng, &group2(20.0));
        let parallel = ts
            .tasks()
            .iter()
            .filter(|t| t.dag().max_parallelism() > 1)
            .count();
        assert!(parallel * 2 > ts.len(), "{parallel}/{}", ts.len());
    }

    #[test]
    fn no_task_trivially_infeasible() {
        for seed in 0..30u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let ts = generate_task_set(&mut rng, &group1(8.0));
            for t in ts.tasks() {
                assert!(t.period() >= t.dag().longest_path());
            }
        }
    }

    #[test]
    #[should_panic(expected = "target utilization must be positive")]
    fn zero_target_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = generate_task_set(&mut rng, &group1(0.0));
    }

    #[test]
    #[should_panic(expected = "beta must be in (0, max utilization]")]
    fn invalid_beta_panics() {
        let mut config = group1(1.0);
        config.beta = 0.0;
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = generate_task(&mut rng, &config);
    }
}
