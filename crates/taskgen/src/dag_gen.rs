//! Recursive fork-join DAG generation (the expansion of Melani et al.).

use rand::Rng;
use rta_model::{Dag, DagBuilder, NodeId, Time};

/// Parameters of the fork-join expansion, defaulting to the paper's values
/// (Section VI-A).
#[derive(Clone, Debug, PartialEq)]
pub struct DagGenConfig {
    /// Probability of terminating a block in a single NPR (`p_term`).
    /// The complement (`p_par`) keeps expanding the graph.
    pub p_term: f64,
    /// Maximum number of parallel sub-blocks a fork spawns (`n_par`).
    pub max_branches: usize,
    /// Maximum number of nodes on any path (the paper bounds the longest
    /// path at 7).
    pub max_path_nodes: usize,
    /// Maximum total node count per DAG (30 in the paper).
    pub max_nodes: usize,
    /// Inclusive node WCET range (`[1, 100]` in the paper).
    pub wcet_range: (Time, Time),
    /// Force the root block to fork (no single-node "DAGs"): `p_term`
    /// applies from the second expansion level on. The paper's generator
    /// reference produces *parallel* DAG tasks, so this defaults to `true`;
    /// set to `false` for the raw recursive process.
    pub force_root_fork: bool,
    /// Minimum length (in nodes) of sequential chains produced by
    /// [`generate_sequential_dag`].
    pub min_chain_nodes: usize,
    /// Upper bound on the DAG's total parallelism (its widest antichain):
    /// nested forks split this budget among their branches. The paper's
    /// example DAGs are at most 4 NPRs wide and its `n_par = 6` caps fork
    /// fan-out; bounding the global width at `n_par` keeps generated tasks
    /// in that family (set to `usize::MAX` for unbounded nesting).
    pub max_width: usize,
    /// When `false` (default), forks do not nest: each branch of a fork is
    /// a sequential chain sized by the remaining path budget — the
    /// single-level fork-join family of the paper's own Figure 1 examples
    /// (OpenMP parallel regions). When `true`, branches expand recursively
    /// with probability `1 − p_term`.
    pub nested_forks: bool,
}

impl Default for DagGenConfig {
    fn default() -> Self {
        Self {
            p_term: 0.4,
            max_branches: 6,
            max_path_nodes: 7,
            max_nodes: 30,
            wcet_range: (1, 100),
            force_root_fork: true,
            min_chain_nodes: 4,
            max_width: 6,
            nested_forks: false,
        }
    }
}

impl DagGenConfig {
    /// The paper's configuration for highly parallel (data-flow) DAGs.
    pub fn highly_parallel() -> Self {
        Self::default()
    }

    /// Control-flow tasks with "very-limited parallelism": same size and
    /// path limits, but forks spawn at most two branches. Their DAGs have
    /// volumes comparable to the data-flow tasks while exposing only small
    /// antichains — exactly the tasks whose NPRs LP-max over-counts.
    pub fn low_parallel() -> Self {
        Self {
            max_branches: 2,
            max_width: 2,
            ..Self::default()
        }
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range probabilities or empty ranges; generation
    /// would silently misbehave otherwise.
    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.p_term),
            "p_term must be a probability"
        );
        assert!(self.max_branches >= 2, "a fork needs at least two branches");
        assert!(self.max_path_nodes >= 1);
        assert!(self.max_nodes >= 1);
        assert!(self.wcet_range.0 >= 1 && self.wcet_range.0 <= self.wcet_range.1);
        assert!(
            self.min_chain_nodes >= 1 && self.min_chain_nodes <= self.max_path_nodes,
            "min_chain_nodes must be within [1, max_path_nodes]"
        );
        assert!(self.max_width >= 2, "max_width below 2 forbids any fork");
        if self.force_root_fork {
            assert!(
                self.max_path_nodes >= 3 && self.max_nodes >= 4,
                "forcing a root fork needs room for fork + branches + join"
            );
        }
    }
}

/// Generates a nested fork-join DAG (single source, single sink).
///
/// A *block* is a sub-graph with one entry and one exit node. With
/// probability `p_term` — or when the path/node budgets do not allow a fork
/// — the block is a single NPR; otherwise it is a fork node, 2 to
/// `max_branches` recursively generated parallel blocks, and a join node.
///
/// The generated DAG always satisfies the configured invariants:
/// `node_count() ≤ max_nodes`, `longest_path_node_count() ≤ max_path_nodes`,
/// every WCET within `wcet_range`, exactly one source and one sink.
pub fn generate_dag<R: Rng>(rng: &mut R, config: &DagGenConfig) -> Dag {
    generate_dag_with(rng, config, &mut DagBuilder::new())
}

/// As [`generate_dag`], assembling the DAG in a caller-owned (empty)
/// builder whose buffers are reused across calls — the scratch-reusing
/// entry point of sweep campaigns, drawing **exactly** the same random
/// sequence as [`generate_dag`].
///
/// # Panics
///
/// Panics if `builder` is not empty.
pub fn generate_dag_with<R: Rng>(
    rng: &mut R,
    config: &DagGenConfig,
    builder: &mut DagBuilder,
) -> Dag {
    config.validate();
    assert_eq!(builder.node_count(), 0, "builder must start empty");
    let mut budget = config.max_nodes;
    let (entry, _exit) = block(
        rng,
        config,
        builder,
        &mut budget,
        config.max_path_nodes,
        config.max_width,
        config.force_root_fork,
    );
    let _ = entry;
    builder
        .build_reset()
        .expect("generated graph is a valid DAG")
}

/// Generates a sequential chain of 1 to `max_len` NPRs — the paper's
/// "control-flow" tasks with very limited (here: no) parallelism.
pub fn generate_sequential_dag<R: Rng>(rng: &mut R, config: &DagGenConfig) -> Dag {
    generate_sequential_dag_with(rng, config, &mut DagBuilder::new())
}

/// As [`generate_sequential_dag`], reusing a caller-owned (empty) builder;
/// same random sequence as the allocating variant.
///
/// # Panics
///
/// Panics if `builder` is not empty.
pub fn generate_sequential_dag_with<R: Rng>(
    rng: &mut R,
    config: &DagGenConfig,
    builder: &mut DagBuilder,
) -> Dag {
    config.validate();
    assert_eq!(builder.node_count(), 0, "builder must start empty");
    let hi = config.max_path_nodes.min(config.max_nodes);
    let len = rng.gen_range(config.min_chain_nodes.min(hi)..=hi);
    let mut previous: Option<NodeId> = None;
    for _ in 0..len {
        let node = builder.add_node(wcet(rng, config));
        if let Some(prev) = previous {
            builder.add_edge(prev, node).expect("chain edges are valid");
        }
        previous = Some(node);
    }
    builder.build_reset().expect("chain is a valid DAG")
}

fn wcet<R: Rng>(rng: &mut R, config: &DagGenConfig) -> Time {
    rng.gen_range(config.wcet_range.0..=config.wcet_range.1)
}

/// Emits one block; returns `(entry, exit)` node ids. Decrements `budget`
/// for every node created. `path_budget` is the number of nodes a path
/// through this block may still use.
fn block<R: Rng>(
    rng: &mut R,
    config: &DagGenConfig,
    builder: &mut DagBuilder,
    budget: &mut usize,
    path_budget: usize,
    width_budget: usize,
    must_fork: bool,
) -> (NodeId, NodeId) {
    debug_assert!(*budget >= 1, "caller must reserve at least one node");
    debug_assert!(path_budget >= 1);
    // A fork needs: fork + join (2 nodes, 2 path units), at least 2
    // branches of at least 1 node each, and width for 2 parallel branches.
    let can_fork = path_budget >= 3 && *budget >= 4 && width_budget >= 2;
    let terminate = !can_fork || (!must_fork && rng.gen_bool(config.p_term));
    if terminate {
        *budget -= 1;
        let node = builder.add_node(wcet(rng, config));
        return (node, node);
    }

    let fork = builder.add_node(wcet(rng, config));
    *budget -= 1;
    // Reserve the join node now so branches cannot eat its budget.
    let join = builder.add_node(wcet(rng, config));
    *budget -= 1;

    let max_branches = config.max_branches.min(width_budget).min(*budget);
    let branches = rng.gen_range(2..=max_branches.max(2)).min(*budget).max(1);
    // Split the width budget across the branches (first branches take the
    // remainder), so the DAG's widest antichain never exceeds the budget.
    let base_width = width_budget / branches;
    let mut extra = width_budget % branches;
    for _ in 0..branches {
        if *budget == 0 {
            break;
        }
        let child_width = base_width + if extra > 0 { 1 } else { 0 };
        extra = extra.saturating_sub(1);
        let (entry, exit) = if config.nested_forks {
            block(
                rng,
                config,
                builder,
                budget,
                path_budget - 2,
                child_width.max(1),
                false,
            )
        } else {
            branch_chain(rng, config, builder, budget, path_budget - 2)
        };
        builder.add_edge(fork, entry).expect("edge endpoints exist");
        builder.add_edge(exit, join).expect("edge endpoints exist");
    }
    (fork, join)
}

/// A branch of a non-nested fork: a chain of 1 to `path_budget` nodes
/// (bounded by the node budget), geometrically sized by `p_term`.
fn branch_chain<R: Rng>(
    rng: &mut R,
    config: &DagGenConfig,
    builder: &mut DagBuilder,
    budget: &mut usize,
    path_budget: usize,
) -> (NodeId, NodeId) {
    debug_assert!(*budget >= 1);
    let entry = builder.add_node(wcet(rng, config));
    *budget -= 1;
    let mut tail = entry;
    let mut remaining_path = path_budget.saturating_sub(1);
    while remaining_path > 0 && *budget > 0 && !rng.gen_bool(config.p_term) {
        let next = builder.add_node(wcet(rng, config));
        *budget -= 1;
        builder.add_edge(tail, next).expect("edge endpoints exist");
        tail = next;
        remaining_path -= 1;
    }
    (entry, tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn invariants_hold_over_many_seeds() {
        let config = DagGenConfig::default();
        for seed in 0..300u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let dag = generate_dag(&mut rng, &config);
            assert!(dag.node_count() <= config.max_nodes, "seed {seed}");
            assert!(
                dag.longest_path_node_count() <= config.max_path_nodes,
                "seed {seed}: path {} nodes",
                dag.longest_path_node_count()
            );
            assert!(dag
                .wcets()
                .iter()
                .all(|&w| (config.wcet_range.0..=config.wcet_range.1).contains(&w)));
            assert_eq!(dag.sources().len(), 1, "seed {seed}: single source");
            assert_eq!(dag.sinks().len(), 1, "seed {seed}: single sink");
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let config = DagGenConfig::default();
        let a = generate_dag(&mut SmallRng::seed_from_u64(7), &config);
        let b = generate_dag(&mut SmallRng::seed_from_u64(7), &config);
        assert_eq!(a, b);
        let c = generate_dag(&mut SmallRng::seed_from_u64(8), &config);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn produces_parallelism() {
        // Across many seeds, forks must actually happen.
        let config = DagGenConfig::default();
        let mut saw_parallel = 0;
        for seed in 0..100u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            if generate_dag(&mut rng, &config).max_parallelism() > 1 {
                saw_parallel += 1;
            }
        }
        assert!(saw_parallel > 30, "only {saw_parallel}/100 parallel DAGs");
    }

    #[test]
    fn sequential_dags_are_chains() {
        let config = DagGenConfig::default();
        for seed in 0..50u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let dag = generate_sequential_dag(&mut rng, &config);
            assert_eq!(dag.max_parallelism(), 1);
            assert!(dag.node_count() <= config.max_path_nodes);
            assert_eq!(dag.longest_path_node_count(), dag.node_count());
        }
    }

    #[test]
    fn p_term_one_yields_single_node_without_forced_fork() {
        let config = DagGenConfig {
            p_term: 1.0,
            force_root_fork: false,
            ..DagGenConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let dag = generate_dag(&mut rng, &config);
        assert_eq!(dag.node_count(), 1);
    }

    #[test]
    fn forced_root_fork_prevents_trivial_dags() {
        let config = DagGenConfig::default();
        for seed in 0..100u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let dag = generate_dag(&mut rng, &config);
            assert!(dag.node_count() >= 4, "seed {seed}");
            assert!(dag.max_parallelism() >= 2, "seed {seed}");
        }
    }

    #[test]
    fn p_term_zero_always_forks() {
        let config = DagGenConfig {
            p_term: 0.0,
            ..DagGenConfig::default()
        };
        for seed in 0..20u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let dag = generate_dag(&mut rng, &config);
            assert!(dag.max_parallelism() > 1, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "p_term must be a probability")]
    fn invalid_probability_panics() {
        let config = DagGenConfig {
            p_term: 1.5,
            ..DagGenConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = generate_dag(&mut rng, &config);
    }

    #[test]
    fn tight_node_budget_respected() {
        let config = DagGenConfig {
            max_nodes: 5,
            p_term: 0.0,
            ..DagGenConfig::default()
        };
        for seed in 0..50u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let dag = generate_dag(&mut rng, &config);
            assert!(dag.node_count() <= 5, "seed {seed}: {}", dag.node_count());
        }
    }
}
