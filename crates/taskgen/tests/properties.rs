//! Property tests over generated workloads, including the Algorithm 1
//! cross-validation promised in DESIGN.md (A2) and the generator-invariant
//! pins of the streaming campaign engine: configured structural limits
//! (`max_width`, `max_path_nodes`, `max_nodes`, WCET range), period-model
//! utilization tolerance, and bit-identity of scratch-reusing streaming
//! generation with the original allocate-per-call path.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rta_model::{parallel_sets_algorithm1, parallel_sets_exact};
use rta_taskgen::{
    chain_mix, generate_dag, generate_sequential_dag, generate_task_set,
    generate_task_set_with_count, group1, group2, DagGenConfig, PeriodModel, TaskSetGenerator,
};

proptest! {
    /// On the nested fork-join class the paper's Algorithm 1 must agree
    /// exactly with the reachability-based definition of parallel NPRs.
    #[test]
    fn algorithm1_equals_exact_on_fork_join_dags(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let dag = generate_dag(&mut rng, &DagGenConfig::default());
        prop_assert_eq!(parallel_sets_algorithm1(&dag), parallel_sets_exact(&dag));
    }

    #[test]
    fn algorithm1_equals_exact_on_chains(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let dag = generate_sequential_dag(&mut rng, &DagGenConfig::default());
        prop_assert_eq!(parallel_sets_algorithm1(&dag), parallel_sets_exact(&dag));
    }

    /// Structural invariants of generated DAGs (the paper's generator
    /// parameters).
    #[test]
    fn generated_dags_respect_paper_limits(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let config = DagGenConfig::default();
        let dag = generate_dag(&mut rng, &config);
        prop_assert!(dag.node_count() <= 30);
        prop_assert!(dag.longest_path_node_count() <= 7);
        prop_assert!(dag.wcets().iter().all(|&w| (1..=100).contains(&w)));
        prop_assert!(dag.volume() >= dag.longest_path());
        prop_assert!(dag.longest_path() >= dag.max_wcet());
    }

    /// Task sets land on their utilization target — or on the documented
    /// per-task-cap saturation value `n/min_slack` — and are well-formed.
    #[test]
    fn task_sets_hit_target(seed in any::<u64>(), target_times_4 in 2u32..40) {
        let target = f64::from(target_times_4) / 4.0;
        let mut rng = SmallRng::seed_from_u64(seed);
        for config in [group1(target), group2(target)] {
            let ts = generate_task_set(&mut rng, &config);
            let u = ts.total_utilization();
            let saturation = ts.len() as f64 / 2.0; // n · (1/min_slack), min_slack = 2
            let expected = target.min(saturation);
            prop_assert!(
                (u - expected).abs() < 0.05 * expected + 0.05,
                "target {} (expected {}) got {}", target, expected, u
            );
            for t in ts.tasks() {
                prop_assert!(t.deadline() == t.period());
                prop_assert!(t.period() >= t.dag().longest_path());
            }
        }
    }

    /// Every configured structural limit holds on arbitrary (valid)
    /// generator knobs, not just the paper presets: node budget, per-path
    /// node budget, WCET range, and — the one the fork-width splitter must
    /// actively enforce — the global antichain width `max_width`.
    #[test]
    fn configured_limits_hold_on_arbitrary_knobs(
        seed in any::<u64>(),
        max_branches in 2usize..=6,
        max_width in 2usize..=6,
        max_path_nodes in 3usize..=9,
        max_nodes in 4usize..=40,
        wcet_lo in 1u64..=40,
        wcet_span in 0u64..=80,
        p_term_percent in 0u32..=100,
        nested in any::<bool>(),
    ) {
        let config = DagGenConfig {
            p_term: f64::from(p_term_percent) / 100.0,
            max_branches,
            max_path_nodes,
            max_nodes,
            wcet_range: (wcet_lo, wcet_lo + wcet_span),
            force_root_fork: false,
            min_chain_nodes: 1,
            max_width,
            nested_forks: nested,
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let dag = generate_dag(&mut rng, &config);
        prop_assert!(dag.node_count() <= max_nodes, "nodes {}", dag.node_count());
        prop_assert!(
            dag.longest_path_node_count() <= max_path_nodes,
            "path {}", dag.longest_path_node_count()
        );
        prop_assert!(dag
            .wcets()
            .iter()
            .all(|&w| (wcet_lo..=wcet_lo + wcet_span).contains(&w)));
        prop_assert!(
            dag.max_parallelism() <= max_width,
            "width {} > {}", dag.max_parallelism(), max_width
        );
    }

    /// The [`PeriodModel`] implementations land within their documented
    /// utilization tolerance for low (unsaturated) targets.
    #[test]
    fn period_models_land_within_tolerance(
        seed in any::<u64>(),
        target_times_4 in 4u32..=12,
        model_choice in 0usize..3,
    ) {
        let target = f64::from(target_times_4) / 4.0;
        let mut config = group1(target);
        config.period_model = match model_choice {
            0 => PeriodModel::SlackFactor {
                min_slack: 2.0,
                max_slack: 10.0,
                tasks_per_utilization: 1.5,
            },
            1 => PeriodModel::CommonScale { spread: 2.0 },
            _ => PeriodModel::PerTaskUtilization { max: 1.0 },
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let ts = generate_task_set(&mut rng, &config);
        let u = ts.total_utilization();
        // Integer-rounded periods of small DAGs cost at most a few percent;
        // the saturation bound n/min_slack applies to the slack model only.
        let expected = if model_choice == 0 {
            target.min(ts.len() as f64 / 2.0)
        } else {
            target
        };
        prop_assert!(
            (u - expected).abs() < 0.08 * expected + 0.08,
            "model {} target {} got {}", model_choice, target, u
        );
    }

    /// Streaming generation — one scratch-reusing [`TaskSetGenerator`] fed
    /// many coordinates — is bit-identical to the original two-phase path
    /// that allocates a fresh generator per set, for every preset the
    /// campaign engine uses.
    #[test]
    fn streaming_generation_is_bit_identical_to_two_phase(
        base_seed in any::<u64>(),
        target_times_4 in 2u32..=20,
    ) {
        let target = f64::from(target_times_4) / 4.0;
        let mut generator = TaskSetGenerator::new();
        let configs = [
            group1(target),
            group2(target),
            chain_mix(target, 0.5),
            group1(target).with_deadline_factor(0.75),
        ];
        // Interleave presets through ONE generator, as a worker thread of a
        // multi-panel campaign would, and replay each against the free
        // functions.
        for (i, config) in configs.iter().enumerate() {
            let seed = base_seed.wrapping_add(i as u64);
            let streamed = generator.generate(&mut SmallRng::seed_from_u64(seed), config);
            let two_phase = generate_task_set(&mut SmallRng::seed_from_u64(seed), config);
            prop_assert_eq!(streamed, two_phase, "preset {}", i);
            let n = 2 + (i % 3);
            let streamed_n =
                generator.generate_with_count(&mut SmallRng::seed_from_u64(seed), config, n);
            let two_phase_n =
                generate_task_set_with_count(&mut SmallRng::seed_from_u64(seed), config, n);
            prop_assert_eq!(streamed_n, two_phase_n, "preset {} n {}", i, n);
        }
    }
}
