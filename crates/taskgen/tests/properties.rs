//! Property tests over generated workloads, including the Algorithm 1
//! cross-validation promised in DESIGN.md (A2).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rta_model::{parallel_sets_algorithm1, parallel_sets_exact};
use rta_taskgen::{
    generate_dag, generate_sequential_dag, generate_task_set, group1, group2, DagGenConfig,
};

proptest! {
    /// On the nested fork-join class the paper's Algorithm 1 must agree
    /// exactly with the reachability-based definition of parallel NPRs.
    #[test]
    fn algorithm1_equals_exact_on_fork_join_dags(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let dag = generate_dag(&mut rng, &DagGenConfig::default());
        prop_assert_eq!(parallel_sets_algorithm1(&dag), parallel_sets_exact(&dag));
    }

    #[test]
    fn algorithm1_equals_exact_on_chains(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let dag = generate_sequential_dag(&mut rng, &DagGenConfig::default());
        prop_assert_eq!(parallel_sets_algorithm1(&dag), parallel_sets_exact(&dag));
    }

    /// Structural invariants of generated DAGs (the paper's generator
    /// parameters).
    #[test]
    fn generated_dags_respect_paper_limits(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let config = DagGenConfig::default();
        let dag = generate_dag(&mut rng, &config);
        prop_assert!(dag.node_count() <= 30);
        prop_assert!(dag.longest_path_node_count() <= 7);
        prop_assert!(dag.wcets().iter().all(|&w| (1..=100).contains(&w)));
        prop_assert!(dag.volume() >= dag.longest_path());
        prop_assert!(dag.longest_path() >= dag.max_wcet());
    }

    /// Task sets land on their utilization target — or on the documented
    /// per-task-cap saturation value `n/min_slack` — and are well-formed.
    #[test]
    fn task_sets_hit_target(seed in any::<u64>(), target_times_4 in 2u32..40) {
        let target = f64::from(target_times_4) / 4.0;
        let mut rng = SmallRng::seed_from_u64(seed);
        for config in [group1(target), group2(target)] {
            let ts = generate_task_set(&mut rng, &config);
            let u = ts.total_utilization();
            let saturation = ts.len() as f64 / 2.0; // n · (1/min_slack), min_slack = 2
            let expected = target.min(saturation);
            prop_assert!(
                (u - expected).abs() < 0.05 * expected + 0.05,
                "target {} (expected {}) got {}", target, expected, u
            );
            for t in ts.tasks() {
                prop_assert!(t.deadline() == t.period());
                prop_assert!(t.period() >= t.dag().longest_path());
            }
        }
    }
}
