//! Edge cases of the analysis: degenerate platforms, extreme parameters,
//! and overflow resistance.

use rta_analysis::{analyze, AnalysisConfig, Method, ScenarioSpace};
use rta_model::{DagBuilder, DagTask, NodeId, TaskSet};

fn single(wcet: u64, period: u64) -> DagTask {
    let mut b = DagBuilder::new();
    b.add_node(wcet);
    DagTask::with_implicit_deadline(b.build().unwrap(), period).unwrap()
}

#[test]
fn empty_task_set_is_schedulable() {
    let ts = TaskSet::default();
    for method in Method::ALL {
        let report = analyze(&ts, &AnalysisConfig::new(4, method));
        assert!(report.schedulable);
        assert!(report.tasks.is_empty());
    }
}

#[test]
fn single_core_single_task() {
    let ts = TaskSet::new(vec![single(10, 10)]);
    for method in Method::ALL {
        let report = analyze(&ts, &AnalysisConfig::new(1, method));
        assert!(report.schedulable, "{method}");
        assert_eq!(report.tasks[0].response_bound.ceil(), 10);
    }
}

#[test]
fn more_cores_than_total_parallelism() {
    // A single sequential task on 64 cores: R = vol exactly.
    let mut b = DagBuilder::new();
    let v = b.add_nodes([3, 4, 5]);
    b.add_chain(&v).unwrap();
    let ts = TaskSet::new(vec![DagTask::with_implicit_deadline(
        b.build().unwrap(),
        100,
    )
    .unwrap()]);
    let report = analyze(&ts, &AnalysisConfig::new(64, Method::LpIlp));
    assert!(report.schedulable);
    assert_eq!(report.tasks[0].response_bound.ceil(), 12);
}

#[test]
fn huge_time_values_do_not_overflow() {
    // Periods near u64::MAX/4: internal scaled arithmetic must hold up.
    let big = u64::MAX / 8;
    let ts = TaskSet::new(vec![single(big / 1000, big), single(big / 1000, big)]);
    for method in Method::ALL {
        let report = analyze(&ts, &AnalysisConfig::new(4, method));
        assert!(report.schedulable, "{method}");
    }
}

#[test]
fn wide_platform_with_many_tasks() {
    // 32 cores, 20 small tasks: exercises partitions(32) (8349 scenarios)
    // through the extended space without blowing up.
    let tasks: Vec<DagTask> = (0..20).map(|i| single(5 + i % 7, 1_000)).collect();
    let ts = TaskSet::new(tasks);
    let report = analyze(
        &ts,
        &AnalysisConfig::new(32, Method::LpIlp).with_scenario_space(ScenarioSpace::Extended),
    );
    assert!(report.schedulable);
    assert_eq!(report.tasks.len(), 20);
}

#[test]
fn zero_wcet_nodes_are_tolerated() {
    // Structural zero-cost nodes (pure fork/join markers).
    let mut b = DagBuilder::new();
    let fork = b.add_node(0);
    let a = b.add_node(5);
    let c = b.add_node(7);
    let join = b.add_node(0);
    b.add_edge(fork, a).unwrap();
    b.add_edge(fork, c).unwrap();
    b.add_edge(a, join).unwrap();
    b.add_edge(c, join).unwrap();
    let ts = TaskSet::new(vec![DagTask::with_implicit_deadline(
        b.build().unwrap(),
        50,
    )
    .unwrap()]);
    for method in Method::ALL {
        let report = analyze(&ts, &AnalysisConfig::new(2, method));
        assert!(report.schedulable, "{method}");
        // L = 7, vol = 12 → R = 7 + (12−7)/2 = 9.5.
        assert_eq!(report.tasks[0].response_bound.ceil(), 10);
    }
}

#[test]
fn blocking_saturates_with_many_identical_lp_tasks() {
    // 50 identical lower-priority tasks: Δ^m must stay the m largest NPRs,
    // not keep growing with the task count.
    let mut tasks = vec![single(1, 10)];
    for _ in 0..50 {
        tasks.push(single(9, 100_000));
    }
    let ts = TaskSet::new(tasks);
    let report = analyze(&ts, &AnalysisConfig::new(4, Method::LpMax));
    let b = report.tasks[0].blocking.unwrap();
    assert_eq!(b.delta_m, 4 * 9);
    assert_eq!(b.delta_m_minus_one, 3 * 9);
}

#[test]
fn analysis_stops_at_first_unschedulable_task() {
    let ts = TaskSet::new(vec![
        single(5, 100),
        single(90, 91), // will fail (blocked + interfered)
        single(1, 1_000),
    ]);
    let report = analyze(&ts, &AnalysisConfig::new(1, Method::LpMax));
    assert!(!report.schedulable);
    assert!(report.tasks.len() <= 2, "analysis continues past a failure");
    assert!(report.tasks.last().is_some_and(|t| !t.schedulable));
}

#[test]
fn wide_dag_beats_its_volume_on_enough_cores() {
    // 8 parallel nodes of 10 under one source: on 8 cores R ≈ L + vol/8-ish,
    // far below vol.
    let mut b = DagBuilder::new();
    let src = b.add_node(1);
    let leaves: Vec<NodeId> = (0..8).map(|_| b.add_node(10)).collect();
    for &leaf in &leaves {
        b.add_edge(src, leaf).unwrap();
    }
    let ts = TaskSet::new(vec![DagTask::with_implicit_deadline(
        b.build().unwrap(),
        30,
    )
    .unwrap()]);
    let report = analyze(&ts, &AnalysisConfig::new(8, Method::FpIdeal));
    assert!(report.schedulable);
    // L = 11, vol = 81 → R = 11 + ⌊70/8⌋ = 11 + 8.75 → ceil ≤ 20 < 81.
    assert!(report.tasks[0].response_bound.ceil() <= 20);
}

#[test]
fn constrained_deadlines_are_honored() {
    // Same task, two deadlines: passes with D = 12, fails with D = 9.
    let mk = |d: u64| {
        let mut b = DagBuilder::new();
        let v = b.add_nodes([4, 6]);
        b.add_chain(&v).unwrap();
        DagTask::new(b.build().unwrap(), 20, d).unwrap()
    };
    let pass = TaskSet::new(vec![mk(12)]);
    let fail = TaskSet::new(vec![mk(9)]);
    let config = AnalysisConfig::new(2, Method::LpIlp);
    assert!(analyze(&pass, &config).schedulable);
    assert!(!analyze(&fail, &config).schedulable);
}

#[test]
fn report_accessors() {
    let ts = TaskSet::new(vec![single(1, 4), single(2, 8)]);
    let report = analyze(&ts, &AnalysisConfig::new(2, Method::LpIlp));
    assert_eq!(report.cores, 2);
    assert_eq!(report.method, Method::LpIlp);
    assert!(report.response_bound(0).is_some());
    assert!(report.response_bound(5).is_none());
}
