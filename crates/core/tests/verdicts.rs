//! The verdict fast path's contract: [`analyze_verdicts`] must agree with
//! the `schedulable` flags of full [`analyze_all`] reports on every input —
//! the dominance shortcut (FP-ideal ≼ LP-ILP ≼ LP-max) is an optimization,
//! never an approximation. Also pins the process-global partition table's
//! once-per-`m` property from the analysis layer's point of view.

// The legacy batch entry points under test are deprecated wrappers over
// the unified request API; this suite is exactly what pins them
// bit-identical to it.
#![allow(deprecated)]

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rta_analysis::{
    analyze_all, analyze_verdicts, verdicts_with_bounds, AnalysisConfig, Method, MuSolver,
    ResponseBound, RhoSolver, ScenarioSpace,
};
use rta_combinatorics::PartitionTable;
use rta_model::examples::figure1_task_set;
use rta_taskgen::{generate_task_set, group1, group2};

/// The exact configuration triple the Figure 2 sweeps evaluate.
fn sweep_configs(cores: usize, space: ScenarioSpace) -> Vec<AnalysisConfig> {
    Method::ALL
        .iter()
        .map(|&m| AnalysisConfig::new(cores, m).with_scenario_space(space))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Verdicts equal full-report schedulability on random group-1 sets,
    /// across core counts, utilizations and both scenario spaces.
    #[test]
    fn verdicts_match_full_reports_on_random_sets(
        seed in 0u64..1_000_000,
        cores in 1usize..=6,
        load_percent in 10u32..=110,
    ) {
        let target = cores as f64 * load_percent as f64 / 100.0;
        let mut rng = SmallRng::seed_from_u64(seed);
        let ts = generate_task_set(&mut rng, &group1(target));
        for space in [ScenarioSpace::PaperExact, ScenarioSpace::Extended] {
            let configs = sweep_configs(cores, space);
            let expected: Vec<bool> = analyze_all(&ts, &configs)
                .iter()
                .map(|r| r.schedulable)
                .collect();
            prop_assert_eq!(
                analyze_verdicts(&ts, &configs),
                expected,
                "seed {} cores {} {:?}",
                seed,
                cores,
                space
            );
        }
    }

    /// Same agreement on group-2 sets (uniformly parallel DAGs), whose
    /// heavier µ structure stresses the LP-ILP-only leg of the shortcut.
    #[test]
    fn verdicts_match_on_group2_sets(
        seed in 0u64..1_000_000,
        cores in 2usize..=4,
        load_percent in 30u32..=100,
    ) {
        let target = cores as f64 * load_percent as f64 / 100.0;
        let mut rng = SmallRng::seed_from_u64(seed);
        let ts = generate_task_set(&mut rng, &group2(target));
        let configs = sweep_configs(cores, ScenarioSpace::PaperExact);
        let expected: Vec<bool> = analyze_all(&ts, &configs)
            .iter()
            .map(|r| r.schedulable)
            .collect();
        prop_assert_eq!(analyze_verdicts(&ts, &configs), expected);
    }

    /// The bound-carrying variant is pinned to `analyze_all` on every
    /// field the validation campaign reads: the verdict flag and the
    /// per-task response bounds of the analyzed prefix (length included —
    /// it must stop at the same first unschedulable task).
    #[test]
    fn verdicts_with_bounds_match_analyze_all_on_random_sets(
        seed in 0u64..1_000_000,
        cores in 1usize..=6,
        load_percent in 10u32..=110,
    ) {
        let target = cores as f64 * load_percent as f64 / 100.0;
        let mut rng = SmallRng::seed_from_u64(seed);
        let ts = generate_task_set(&mut rng, &group1(target));
        for space in [ScenarioSpace::PaperExact, ScenarioSpace::Extended] {
            let configs = sweep_configs(cores, space);
            let reports = analyze_all(&ts, &configs);
            let verdicts = verdicts_with_bounds(&ts, &configs);
            prop_assert_eq!(verdicts.len(), reports.len());
            for (verdict, report) in verdicts.iter().zip(&reports) {
                prop_assert_eq!(verdict.schedulable, report.schedulable,
                    "seed {} cores {} {:?}", seed, cores, space);
                let expected: Vec<ResponseBound> =
                    report.tasks.iter().map(|t| t.response_bound).collect();
                prop_assert_eq!(&verdict.bounds, &expected,
                    "seed {} cores {} {:?}", seed, cores, space);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The new dominance edge used by the verdict shortcut, stated on the
    /// bounds themselves: per task, FP-ideal's bound never exceeds
    /// LP-sound's (the sound method adds a non-negative monotone term to
    /// the same fixed point), hence LP-sound schedulable ⇒ FP-ideal
    /// schedulable on every random set.
    #[test]
    fn lp_sound_bounds_dominate_fp_ideal(
        seed in 0u64..1_000_000,
        cores in 1usize..=6,
        load_percent in 10u32..=110,
    ) {
        let target = cores as f64 * load_percent as f64 / 100.0;
        let mut rng = SmallRng::seed_from_u64(seed);
        let ts = generate_task_set(&mut rng, &group1(target));
        let configs = [
            AnalysisConfig::new(cores, Method::FpIdeal),
            AnalysisConfig::new(cores, Method::LpSound),
        ];
        let verdicts = verdicts_with_bounds(&ts, &configs);
        let (fp, sound) = (&verdicts[0], &verdicts[1]);
        prop_assert!(
            !sound.schedulable || fp.schedulable,
            "seed {}: LP-sound accepted a set FP-ideal rejects",
            seed
        );
        for (k, (f, s)) in fp.bounds.iter().zip(&sound.bounds).enumerate() {
            // Compare converged bounds only: a diverged entry is the first
            // deadline-crossing iterate, not a bound.
            if k + 1 == fp.bounds.len() && !fp.schedulable {
                break;
            }
            if k + 1 == sound.bounds.len() && !sound.schedulable {
                break;
            }
            prop_assert!(
                f.scaled() <= s.scaled(),
                "seed {} task {}: FP {} above LP-sound {}",
                seed,
                k,
                f,
                s
            );
        }
    }
}

#[test]
fn verdicts_handle_mixed_families_and_solver_variants() {
    // Configurations from *different* families (core counts, spaces, solver
    // pairs) interleaved in one call: grouping must not mix them up.
    let ts = figure1_task_set();
    let mut configs = Vec::new();
    for cores in [2usize, 4] {
        for method in Method::ALL {
            configs.push(AnalysisConfig::new(cores, method));
        }
    }
    configs.push(
        AnalysisConfig::new(4, Method::LpIlp)
            .with_mu_solver(MuSolver::PaperIlp)
            .with_rho_solver(RhoSolver::PaperIlp),
    );
    configs.push(AnalysisConfig::new(4, Method::LpIlp).with_final_npr_refinement(true));
    let expected: Vec<bool> = analyze_all(&ts, &configs)
        .iter()
        .map(|r| r.schedulable)
        .collect();
    assert_eq!(analyze_verdicts(&ts, &configs), expected);
}

#[test]
fn partition_enumeration_happens_once_per_m_per_process() {
    // Warm every cardinality any test in this binary can touch, so the
    // counter below cannot be bumped by concurrent first-touches.
    for m in 0..=31u32 {
        let _ = PartitionTable::scenarios(m);
    }
    let before = PartitionTable::enumerations();
    // Dozens of task sets, each with its own cache, analyzed at several
    // platform sizes: under the old per-cache scenario cells this would
    // have re-enumerated partitions per task set; the global table must
    // perform zero further enumerations.
    for seed in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ts = generate_task_set(&mut rng, &group1(3.0));
        for cores in [2usize, 4, 6] {
            let configs = sweep_configs(cores, ScenarioSpace::PaperExact);
            let _ = analyze_verdicts(&ts, &configs);
            let _ = analyze_all(&ts, &configs);
        }
    }
    assert_eq!(
        PartitionTable::enumerations(),
        before,
        "scenario lists must come from the process-global table, \
         enumerated at most once per m per process"
    );
}
