//! The caching contract, end to end: batched and cached analyses are
//! bit-identical to the original per-call path, and the per-task-set
//! precomputation really computes each µ-array exactly once.

// The legacy batch entry points under test are deprecated wrappers over
// the unified request API; this suite is exactly what pins them
// bit-identical to it.
#![allow(deprecated)]

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rta_analysis::blocking::mu::{mu_array, mu_array_computations};
use rta_analysis::blocking::scenarios::delta;
use rta_analysis::cache::TaskSetCache;
use rta_analysis::{
    analyze_all, analyze_uncached, AnalysisConfig, Method, MuSolver, RhoSolver, ScenarioSpace,
};
use rta_model::examples::figure1_task_set;
use rta_model::Time;
use rta_taskgen::{generate_task_set, group1, group2};

/// The three Figure 2 methods plus the solver/space variations the CLI can
/// reach, all at the same core count.
fn config_matrix(cores: usize) -> Vec<AnalysisConfig> {
    let mut configs: Vec<AnalysisConfig> = Method::ALL
        .iter()
        .map(|&m| AnalysisConfig::new(cores, m))
        .collect();
    configs.push(
        AnalysisConfig::new(cores, Method::LpIlp).with_scenario_space(ScenarioSpace::PaperExact),
    );
    configs.push(AnalysisConfig::new(cores, Method::LpIlp).with_final_npr_refinement(true));
    configs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `analyze_all` over the whole configuration matrix is bit-identical
    /// to independent uncached analyses on randomly generated task sets.
    #[test]
    fn analyze_all_matches_independent_analyses_on_random_sets(
        seed in 0u64..1_000_000,
        cores in 1usize..=6,
        load_percent in 10u32..=70,
    ) {
        let target = cores as f64 * load_percent as f64 / 100.0;
        let mut rng = SmallRng::seed_from_u64(seed);
        let ts = generate_task_set(&mut rng, &group1(target));
        let configs = config_matrix(cores);
        let batched = analyze_all(&ts, &configs);
        for (config, report) in configs.iter().zip(&batched) {
            let reference = analyze_uncached(&ts, config);
            prop_assert_eq!(report, &reference, "{:?}", config);
        }
    }

    /// Same bit-identity on the group-2 generator (uniformly parallel
    /// DAGs), whose task sets have very different µ structure.
    #[test]
    fn analyze_all_matches_on_group2_sets(
        seed in 0u64..1_000_000,
        cores in 1usize..=4,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ts = generate_task_set(&mut rng, &group2(cores as f64 / 2.0));
        let configs = config_matrix(cores);
        let batched = analyze_all(&ts, &configs);
        for (config, report) in configs.iter().zip(&batched) {
            prop_assert_eq!(report, &analyze_uncached(&ts, config), "{:?}", config);
        }
    }
}

/// Cached µ and Δ agree with the direct (uncached) computations on the
/// Figure 1 example for every platform slice `m ∈ 1..=8`.
#[test]
fn figure1_cached_mu_and_delta_match_uncached_for_all_core_counts() {
    let ts = figure1_task_set();
    let cache = TaskSetCache::new(&ts, 8);
    for m in 1..=8usize {
        for solver in [MuSolver::Clique, MuSolver::PaperIlp] {
            for (k, task) in ts.tasks().iter().enumerate() {
                assert_eq!(
                    cache.mu(k, solver)[..m],
                    mu_array(task.dag(), m, solver),
                    "µ of task {k} at m = {m} ({solver:?})"
                );
            }
        }
        for space in [ScenarioSpace::PaperExact, ScenarioSpace::Extended] {
            for k in 0..ts.len() {
                let mu_arrays: Vec<Vec<Time>> = ts
                    .lower_priority(k)
                    .iter()
                    .map(|t| mu_array(t.dag(), m, MuSolver::Clique))
                    .collect();
                assert_eq!(
                    cache.delta(k, m, space, MuSolver::Clique, RhoSolver::Hungarian),
                    delta(&mu_arrays, m, space, RhoSolver::Hungarian),
                    "Δ of task {k} at m = {m} ({space:?})"
                );
            }
        }
    }
}

/// Large platforms exercise the *mixed* suffix-DP column: every `e_m` at
/// m ≥ 8 (with this few tasks) mixes DP-sized and too-large scenarios, so
/// the cached value combines the shared DP column with a per-task solve of
/// the remainder — and must still equal the direct computation exactly.
#[test]
fn figure1_cached_delta_matches_uncached_up_to_16_cores() {
    let ts = figure1_task_set();
    let cache = TaskSetCache::new(&ts, 16);
    // Query in priority order (like the analysis) so column mode engages
    // from the second distinct task on.
    for space in [ScenarioSpace::PaperExact, ScenarioSpace::Extended] {
        for m in [8usize, 12, 16] {
            for k in 0..ts.len() {
                let mu_arrays: Vec<Vec<Time>> = ts
                    .lower_priority(k)
                    .iter()
                    .map(|t| mu_array(t.dag(), m, MuSolver::Clique))
                    .collect();
                assert_eq!(
                    cache.delta(k, m, space, MuSolver::Clique, RhoSolver::Hungarian),
                    delta(&mu_arrays, m, space, RhoSolver::Hungarian),
                    "Δ of task {k} at m = {m} ({space:?})"
                );
            }
        }
    }
}

/// The headline caching guarantee: one batched analysis over all three
/// methods computes each needed µ-array exactly once per task set —
/// independent of how many methods, spaces or tasks under analysis read it.
#[test]
fn batched_analysis_computes_mu_once_per_task() {
    let ts = figure1_task_set();
    let configs = config_matrix(4);

    let before = mu_array_computations();
    let _ = analyze_all(&ts, &configs);
    let per_batch = mu_array_computations() - before;
    // Only lower-priority tasks' µ-arrays are ever consumed (`lp(k)` for
    // some k), i.e. every task except the highest-priority one.
    assert_eq!(
        per_batch,
        ts.len() as u64 - 1,
        "one batch must compute µ exactly once per lower-priority task"
    );

    // A second batch builds a fresh cache: same count again, while the
    // uncached reference recomputes µ per task under analysis.
    let before = mu_array_computations();
    let _ = analyze_all(&ts, &configs);
    assert_eq!(mu_array_computations() - before, ts.len() as u64 - 1);

    let before = mu_array_computations();
    let _ = analyze_uncached(&ts, &AnalysisConfig::new(4, Method::LpIlp));
    let uncached = mu_array_computations() - before;
    // Σ_{k} |lp(k)| = n(n−1)/2 — the O(n²) recomputation the cache kills.
    assert_eq!(uncached, (ts.len() * (ts.len() - 1) / 2) as u64);
}
