//! The Long-paths deadline-window rescue — the **only** accept-where-
//! Graham-diverges path in the analysis.
//!
//! Every other method in the dominance chain is settled negatively by an
//! FP-ideal failure: their fixed points all sit at or above the
//! fully-preemptive Graham recurrence, so once it diverges past the
//! deadline they cannot accept. [`Method::LongPaths`] is the exception.
//! Its stall-time refinement (He, Guan et al., arXiv 2211.08800) charges
//! the non-critical workload through the DAG's chain decomposition
//! instead of Graham's `(vol − L)/m` term, and when the Graham recurrence
//! diverges it gets one assume-and-verify rescue attempt: before the
//! earliest possible miss, every response window is contained in its
//! deadline window, so evaluating the higher-priority interference over
//! `m·D_k` and refining is sound — a refined bound at or below the
//! deadline accepts the task the recurrence could not.
//!
//! These tests pin that path end to end: the rescue accepting, the
//! rescue declining, and the request-API dominance chain *not* settling
//! LongPaths from an FP-ideal failure.

use rta_analysis::{analyze, AnalysisConfig, AnalysisRequest, Method};
use rta_model::{DagBuilder, DagTask, TaskSet};

/// Two parallel chains, lengths 10 and 6: `L = 10`, `vol = 16`.
fn two_chain_task(deadline_and_period: u64) -> TaskSet {
    let mut b = DagBuilder::new();
    b.add_node(10);
    b.add_node(6);
    TaskSet::new(vec![DagTask::with_implicit_deadline(
        b.build().unwrap(),
        deadline_and_period,
    )
    .unwrap()])
}

/// On 3 cores the Graham recurrence lands at `R = 10 + (16 − 10)/3 = 12`.
/// With `D = 10` it diverges past the deadline and FP-ideal rejects, but
/// the chains fit the cores side by side (`I = 0`), so the rescue's
/// refined bound is exactly the critical path: `10 ≤ D`, accepted.
#[test]
fn rescue_accepts_where_graham_diverges() {
    let ts = two_chain_task(10);
    let fp = analyze(&ts, &AnalysisConfig::new(3, Method::FpIdeal));
    let lp = analyze(&ts, &AnalysisConfig::new(3, Method::LongPaths));
    assert!(!fp.schedulable, "Graham must diverge past the deadline");
    assert!(lp.schedulable, "the deadline-window rescue must accept");
    assert_eq!(lp.tasks[0].response_bound.ceil(), 10);
}

/// The rescue is assume-and-verify, not assume-and-hope: when even the
/// refined bound crosses the deadline (`D = 9` is below the critical
/// path itself), the task stays rejected.
#[test]
fn rescue_declines_when_the_refined_bound_still_misses() {
    let ts = two_chain_task(9);
    let lp = analyze(&ts, &AnalysisConfig::new(3, Method::LongPaths));
    assert!(!lp.schedulable, "no bound below L = 10 exists");
}

/// The verdict-only dominance chain must treat LongPaths as the exception
/// it is: an FP-ideal failure settles every other method negatively, but
/// LongPaths still runs its own fixed point and can come back positive.
#[test]
fn dominance_chain_does_not_settle_long_paths_from_fp_failure() {
    let ts = two_chain_task(10);
    let outcome = AnalysisRequest::new(3)
        .with_methods([
            Method::FpIdeal,
            Method::LpIlp,
            Method::LpMax,
            Method::LongPaths,
        ])
        .evaluate(&ts);
    let verdict = |m| outcome.outcome(m).expect("method answered").schedulable;
    assert!(!verdict(Method::FpIdeal));
    assert!(!verdict(Method::LpIlp), "settled by the FP-ideal failure");
    assert!(!verdict(Method::LpMax), "settled by the FP-ideal failure");
    assert!(verdict(Method::LongPaths), "must run its own rescue path");
}

/// With a generous deadline the recurrence converges and no rescue is
/// needed — the refinement then takes the `min` with the Graham value,
/// so per-task dominance over FP-ideal stays structural.
#[test]
fn converged_path_dominates_graham() {
    let ts = two_chain_task(100);
    let fp = analyze(&ts, &AnalysisConfig::new(3, Method::FpIdeal));
    let lp = analyze(&ts, &AnalysisConfig::new(3, Method::LongPaths));
    assert!(fp.schedulable && lp.schedulable);
    assert!(lp.tasks[0].response_bound.scaled() <= fp.tasks[0].response_bound.scaled());
    assert_eq!(lp.tasks[0].response_bound.ceil(), 10);
}
