//! The admission-control cache's contract: whatever mix of repeats,
//! near-repeats and evictions a request stream produces, every answer the
//! [`AnalysisLru`] hands out is identical to a cold evaluation of the same
//! request — caching is an optimization, never an approximation. Also pins
//! the LRU bookkeeping itself (eviction order, stable-hash keying) from
//! the integration level.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rta_analysis::{AnalysisLru, AnalysisRequest, CacheOutcome, Method};
use rta_model::TaskSet;
use rta_taskgen::{generate_task_set, group1};

/// A request shape chosen by the proptest strategy: which methods, which
/// platform slice, bounds or not.
fn shaped_request(cores: usize, shape: u8, bounds: bool) -> AnalysisRequest {
    let methods: &[Method] = match shape % 7 {
        0 => &Method::ALL,
        1 => &[Method::FpIdeal],
        2 => &[Method::LpSound],
        3 => &[Method::LpIlp, Method::LpMax],
        4 => &[Method::LongPaths, Method::GenSporadic],
        5 => &[Method::GenSporadic, Method::FpIdeal, Method::LongPaths],
        _ => &[Method::LpSound, Method::FpIdeal, Method::LpSound],
    };
    AnalysisRequest::new(cores)
        .with_methods(methods.iter().copied())
        .with_bounds(bounds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A stream of varied requests over a handful of task sets, pushed
    /// through a deliberately tiny LRU (so evictions and re-admissions
    /// happen constantly), answers every query exactly like a cold
    /// evaluation.
    #[test]
    fn cached_and_cold_outcomes_are_identical(
        seed in 0u64..1_000_000,
        cores in 1usize..=4,
        load_percent in 20u32..=100,
        script in proptest::collection::vec((0usize..3, 0u8..=9, any::<bool>()), 1..24),
    ) {
        let target = cores as f64 * load_percent as f64 / 100.0;
        let mut rng = SmallRng::seed_from_u64(seed);
        let sets: Vec<TaskSet> = (0..3)
            .map(|_| generate_task_set(&mut rng, &group1(target)))
            .collect();
        let mut lru = AnalysisLru::new(2); // smaller than the working set
        for &(which, shape, bounds) in &script {
            let ts = &sets[which];
            let request = shaped_request(cores, shape, bounds);
            let (cached, _) = lru.analyze(ts, &request);
            prop_assert_eq!(cached, request.evaluate(ts), "set {} {:?}", which, request);
        }
        let stats = lru.stats();
        prop_assert_eq!(
            (stats.hits + stats.near_hits + stats.misses) as usize,
            script.len()
        );
    }
}

#[test]
fn competitor_requests_recombine_from_cached_facts() {
    // The new fully-preemptive competitor methods participate in the
    // per-set fact store like the paper's four: a set first analyzed for
    // FP-ideal answers a later Long-paths/Gen-sporadic request as a
    // near-hit (set cached, competitor facts evaluated on demand), a
    // repeat as a pure hit — and every answer equals a cold evaluation.
    let mut rng = SmallRng::seed_from_u64(23);
    let ts = generate_task_set(&mut rng, &group1(2.0));
    let fp_only = AnalysisRequest::new(4).with_methods([Method::FpIdeal]);
    let competitors =
        AnalysisRequest::new(4).with_methods([Method::LongPaths, Method::GenSporadic]);
    let mut lru = AnalysisLru::new(4);
    assert_eq!(lru.analyze(&ts, &fp_only).1, CacheOutcome::Miss);
    let (near, outcome) = lru.analyze(&ts, &competitors);
    assert_eq!(outcome, CacheOutcome::Near);
    assert_eq!(near, competitors.evaluate(&ts));
    let (hot, outcome) = lru.analyze(&ts, &competitors);
    assert_eq!(outcome, CacheOutcome::Hit);
    assert_eq!(hot, near);
    let stats = lru.stats();
    assert_eq!((stats.hits, stats.near_hits, stats.misses), (1, 1, 1));
}

#[test]
fn lru_keeps_recently_touched_sets_under_pressure() {
    let mut rng = SmallRng::seed_from_u64(7);
    let sets: Vec<TaskSet> = (0..4)
        .map(|_| generate_task_set(&mut rng, &group1(2.0)))
        .collect();
    let req = AnalysisRequest::new(2);
    let mut lru = AnalysisLru::new(3);
    for ts in &sets[..3] {
        assert_eq!(lru.analyze(ts, &req).1, CacheOutcome::Miss);
    }
    // Touch 0 and 1; 2 becomes the eviction victim when 3 arrives.
    assert_eq!(lru.analyze(&sets[0], &req).1, CacheOutcome::Hit);
    assert_eq!(lru.analyze(&sets[1], &req).1, CacheOutcome::Hit);
    assert_eq!(lru.analyze(&sets[3], &req).1, CacheOutcome::Miss);
    assert_eq!(lru.analyze(&sets[2], &req).1, CacheOutcome::Miss);
    assert_eq!(lru.stats().evictions, 2); // sets[2], then the next victim
}

#[test]
fn stable_hash_keys_entries_across_clones_and_rebuilds() {
    // A cloned set and a JSON round-trip of it are the same cache line:
    // the key is content, not identity.
    let mut rng = SmallRng::seed_from_u64(11);
    let ts = generate_task_set(&mut rng, &group1(2.0));
    let round_tripped =
        rta_model::json::task_set_from_json(&rta_model::json::task_set_to_json(&ts)).unwrap();
    assert_eq!(ts.stable_hash(), round_tripped.stable_hash());
    let req = AnalysisRequest::new(2);
    let mut lru = AnalysisLru::new(4);
    lru.analyze(&ts, &req);
    assert_eq!(lru.analyze(&ts.clone(), &req).1, CacheOutcome::Hit);
    assert_eq!(lru.analyze(&round_tripped, &req).1, CacheOutcome::Hit);
    assert_eq!(lru.len(), 1);
}
