//! Property tests on the response-time analysis itself.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rta_analysis::{analyze, AnalysisConfig, Method};
use rta_model::{DagBuilder, DagTask, TaskSet};
use rta_taskgen::{generate_task_set, group1};

fn scaled_task_set(ts: &TaskSet, factor: u64) -> TaskSet {
    let tasks = ts
        .tasks()
        .iter()
        .map(|t| {
            let mut b = DagBuilder::new();
            let ids: Vec<_> = t
                .dag()
                .wcets()
                .iter()
                .map(|&w| b.add_node(w * factor))
                .collect();
            for (from, to) in t.dag().edges() {
                b.add_edge(ids[from.index()], ids[to.index()])
                    .expect("edge");
            }
            DagTask::new(
                b.build().expect("valid DAG"),
                t.period() * factor,
                t.deadline() * factor,
            )
            .expect("valid task")
        })
        .collect();
    TaskSet::new(tasks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every reported bound is at least the Graham term
    /// `L + (vol − L)/m` (scaled: `m·L + vol − L`) — except Long-paths,
    /// whose whole point is to undercut the Graham self-interference term;
    /// it can never undercut the critical path itself.
    #[test]
    fn bound_at_least_graham(seed in any::<u64>(), cores in 2usize..9) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ts = generate_task_set(&mut rng, &group1(1.5));
        for method in Method::ALL {
            let report = analyze(&ts, &AnalysisConfig::new(cores, method));
            for t in &report.tasks {
                let task = ts.task(t.task.index());
                let critical = cores as u128 * task.dag().longest_path() as u128;
                let base =
                    critical + (task.dag().volume() - task.dag().longest_path()) as u128;
                if method == Method::LongPaths {
                    prop_assert!(t.response_bound.scaled() >= critical);
                } else {
                    prop_assert!(t.response_bound.scaled() >= base);
                }
            }
        }
    }

    /// Appending a task at the lowest priority never tightens an existing
    /// task's bound: interference is unchanged and blocking pools only grow.
    #[test]
    fn adding_lowest_priority_task_never_helps(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ts = generate_task_set(&mut rng, &group1(1.0));
        let extra = {
            let mut b = DagBuilder::new();
            b.add_node(90);
            DagTask::with_implicit_deadline(b.build().expect("valid"), 10_000).expect("valid")
        };
        let mut bigger = ts.clone();
        bigger.push(extra);
        for method in Method::ALL {
            let before = analyze(&ts, &AnalysisConfig::new(4, method));
            let after = analyze(&bigger, &AnalysisConfig::new(4, method));
            let n = before.tasks.len().min(after.tasks.len());
            for k in 0..n {
                if !before.tasks[k].schedulable || !after.tasks[k].schedulable {
                    // A failed task's stored value is the first iterate
                    // that crossed the deadline, not a converged bound —
                    // a larger per-step increment (LP-sound's workload
                    // term especially) can cross in fewer, coarser steps,
                    // so diverged iterates are not comparable.
                    break;
                }
                prop_assert!(
                    after.tasks[k].response_bound.scaled()
                        >= before.tasks[k].response_bound.scaled(),
                    "{method}: task {k} improved after adding blocking"
                );
            }
        }
    }

    /// Near-homogeneity under time scaling. Every term of the analysis is
    /// exactly homogeneous (`W`, `Δ`, `h`, `p` — all integer operations
    /// commute with a common factor k) EXCEPT the `⌊I/m⌋` floor of Eq. (4):
    /// `⌊kI/m⌋ ≥ k·⌊I/m⌋`, so the scaled system's bound can only be equal
    /// or slightly larger, by less than `k·(m−1)` scaled units per
    /// fixed-point iteration. (This asymmetry was discovered by this very
    /// test asserting exact homogeneity.)
    #[test]
    fn analysis_is_nearly_homogeneous(seed in any::<u64>(), factor in 2u64..9) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ts = generate_task_set(&mut rng, &group1(1.5));
        let scaled = scaled_task_set(&ts, factor);
        for method in Method::ALL {
            let base = analyze(&ts, &AnalysisConfig::new(4, method));
            let big = analyze(&scaled, &AnalysisConfig::new(4, method));
            prop_assert!(
                !big.schedulable || base.schedulable,
                "{method}: scaling can only lose the floor's rounding slack"
            );
            for (a, b) in base.tasks.iter().zip(&big.tasks) {
                if !a.schedulable || !b.schedulable {
                    break; // diverged iterates are not comparable
                }
                let k = factor as u128;
                let lower = a.response_bound.scaled() * k;
                let slop = k * 4 * (u128::from(b.iterations) + 1); // k·(m−1)·iters, rounded up
                prop_assert!(
                    b.response_bound.scaled() >= lower,
                    "{method}: scaled bound below k× original"
                );
                // Long-paths iterates its own floor-carrying stall
                // recurrence whose step count the report does not expose,
                // so only its lower bound is checked exactly.
                if method != Method::LongPaths {
                    prop_assert!(
                        b.response_bound.scaled() <= lower + slop,
                        "{method}: scaled bound exceeds k× original + floor slack"
                    );
                }
            }
        }
    }

    /// Deterministic: analyzing the same set twice gives identical reports.
    #[test]
    fn analysis_is_deterministic(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ts = generate_task_set(&mut rng, &group1(2.0));
        for method in Method::ALL {
            let a = analyze(&ts, &AnalysisConfig::new(4, method));
            let b = analyze(&ts, &AnalysisConfig::new(4, method));
            prop_assert_eq!(a, b);
        }
    }

    /// Shrinking a deadline never turns an unschedulable verdict
    /// schedulable (the bound itself is deadline-independent except for
    /// the early exit, which can only stop earlier).
    #[test]
    fn tighter_deadline_never_helps(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ts = generate_task_set(&mut rng, &group1(2.0));
        let tightened: TaskSet = ts
            .tasks()
            .iter()
            .map(|t| {
                let d = (t.deadline() * 3 / 4).max(t.dag().longest_path()).max(1);
                DagTask::new(t.dag().clone(), t.period(), d.min(t.period())).expect("valid")
            })
            .collect();
        for method in Method::ALL {
            if matches!(method, Method::LongPaths | Method::GenSporadic) {
                // Both anchor interference windows at deadlines (the
                // Gen-sporadic carry-in, the Long-paths rescue window), so
                // tightening deadlines also tightens the bounds and the
                // verdict can legitimately move in either direction.
                continue;
            }
            let loose = analyze(&ts, &AnalysisConfig::new(4, method));
            let tight = analyze(&tightened, &AnalysisConfig::new(4, method));
            prop_assert!(
                !tight.schedulable || loose.schedulable,
                "{method}: tightening deadlines cannot make a set schedulable"
            );
        }
    }
}
