//! Analysis results: exact response-time bounds and per-task reports.

use crate::blocking::BlockingBounds;
use crate::config::Method;
use rta_model::{TaskId, Time};
use std::fmt;

/// An exact response-time upper bound.
///
/// Eq. (4) mixes integer terms with the rational self-interference
/// `(vol − L)/m`, so the bound is a rational with denominator `m`. It is
/// stored **scaled by the core count** (`scaled = m·R`), keeping every
/// comparison exact — no floating point is involved in deciding
/// schedulability.
///
/// # Example
///
/// ```
/// use rta_analysis::ResponseBound;
///
/// let r = ResponseBound::from_scaled(37, 4); // R = 9.25
/// assert_eq!(r.ceil(), 10);
/// assert!(r.fits_within(10));
/// assert!(!r.fits_within(9));
/// assert_eq!(r.to_string(), "9+1/4");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ResponseBound {
    scaled: u128,
    cores: u32,
}

impl ResponseBound {
    /// Builds a bound from a scaled value (`m·R`) and the core count.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn from_scaled(scaled: u128, cores: u32) -> Self {
        assert!(cores > 0, "cores must be positive");
        Self { scaled, cores }
    }

    /// The scaled value `m·R`.
    pub fn scaled(self) -> u128 {
        self.scaled
    }

    /// The core count `m` (the denominator).
    pub fn cores(self) -> u32 {
        self.cores
    }

    /// The bound rounded up to whole time units (the value a user compares
    /// with integer deadlines).
    pub fn ceil(self) -> Time {
        Time::try_from(self.scaled.div_ceil(self.cores as u128))
            .expect("response bound exceeds the time type")
    }

    /// `true` when the bound is at most `deadline` — the schedulability
    /// condition `R_k ≤ D_k`, evaluated exactly.
    pub fn fits_within(self, deadline: Time) -> bool {
        self.scaled <= deadline as u128 * self.cores as u128
    }

    /// The bound as a float (for plotting; not used by the analysis).
    pub fn as_f64(self) -> f64 {
        self.scaled as f64 / self.cores as f64
    }
}

impl fmt::Display for ResponseBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.cores as u128;
        let whole = self.scaled / m;
        let rem = self.scaled % m;
        if rem == 0 {
            write!(f, "{whole}")
        } else {
            // Reduce the fraction for display.
            let g = gcd(rem, m);
            write!(f, "{whole}+{}/{}", rem / g, m / g)
        }
    }
}

fn gcd(a: u128, b: u128) -> u128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Per-task outcome of the analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskReport {
    /// Which task (index = priority).
    pub task: TaskId,
    /// The response-time upper bound reached by the fixed-point iteration.
    /// When `schedulable` is false this is the first iterate that crossed
    /// the deadline, not a converged bound.
    pub response_bound: ResponseBound,
    /// `R_k ≤ D_k`, decided exactly.
    pub schedulable: bool,
    /// The blocking bounds used. Absent under [`Method::FpIdeal`] (no
    /// blocking) and under [`Method::LpSound`], whose corrected term is
    /// window-dependent rather than a constant `(Δ^m, Δ^{m−1})` pair (see
    /// [`crate::blocking::sound`]).
    pub blocking: Option<BlockingBounds>,
    /// The preemption bound `p_k = min(q_k, h_k)` at the final iterate.
    pub preemption_bound: u64,
    /// Fixed-point iterations performed.
    pub iterations: u32,
}

/// Result of analyzing a complete task set.
///
/// Tasks are analyzed from highest to lowest priority; analysis stops at the
/// first unschedulable task (lower-priority bounds would depend on the
/// diverged response time and carry no meaning), so `tasks` holds reports
/// for the analyzed prefix.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalysisReport {
    /// `true` iff every task met its deadline bound.
    pub schedulable: bool,
    /// Core count the analysis ran with.
    pub cores: usize,
    /// Method used.
    pub method: Method,
    /// Per-task reports, highest priority first (prefix up to and including
    /// the first unschedulable task).
    pub tasks: Vec<TaskReport>,
}

impl AnalysisReport {
    /// The response bound of task `k`, if it was analyzed.
    pub fn response_bound(&self, k: usize) -> Option<ResponseBound> {
        self.tasks.get(k).map(|t| t.response_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_bound_displays_plainly() {
        assert_eq!(ResponseBound::from_scaled(36, 4).to_string(), "9");
    }

    #[test]
    fn fractional_bound_reduces() {
        assert_eq!(ResponseBound::from_scaled(38, 4).to_string(), "9+1/2");
        assert_eq!(ResponseBound::from_scaled(39, 4).to_string(), "9+3/4");
    }

    #[test]
    fn ceil_and_fits() {
        let r = ResponseBound::from_scaled(41, 4); // 10.25
        assert_eq!(r.ceil(), 11);
        assert!(r.fits_within(11));
        assert!(!r.fits_within(10));
        let exact = ResponseBound::from_scaled(40, 4); // 10
        assert!(exact.fits_within(10));
    }

    #[test]
    fn as_f64_matches() {
        assert!((ResponseBound::from_scaled(37, 4).as_f64() - 9.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cores must be positive")]
    fn zero_cores_rejected() {
        let _ = ResponseBound::from_scaled(1, 0);
    }

    #[test]
    fn accessors() {
        let r = ResponseBound::from_scaled(10, 2);
        assert_eq!(r.scaled(), 10);
        assert_eq!(r.cores(), 2);
    }
}
