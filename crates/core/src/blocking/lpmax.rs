//! The LP-max blocking bound (paper Eq. (5)).
//!
//! `Δ^m` is the sum of the `m` largest NPR WCETs among all lower-priority
//! tasks (taking at most the `m` largest per task, which cannot change the
//! result), and `Δ^{m−1}` likewise with `m−1`. Precedence constraints are
//! deliberately ignored — this is the cheap, pessimistic bound the paper
//! compares LP-ILP against.

use super::BlockingBounds;
use rta_model::{DagTask, Time};

/// Computes Eq. (5) for the lower-priority tasks of the task under analysis.
///
/// # Example
///
/// The paper's Figure 1 example on `m = 4`: `Δ⁴ = C_{3,1} + C_{4,1} +
/// C_{4,4} + C_{2,2} = 20` and `Δ³ = 16`.
///
/// ```
/// use rta_analysis::blocking::lpmax::lp_max_blocking;
/// use rta_model::{examples::figure1_dags, DagTask};
///
/// # fn main() -> Result<(), rta_model::ModelError> {
/// let lp_tasks: Vec<DagTask> = figure1_dags()
///     .into_iter()
///     .map(|d| DagTask::with_implicit_deadline(d, 1_000))
///     .collect::<Result<_, _>>()?;
/// let b = lp_max_blocking(&lp_tasks, 4);
/// assert_eq!(b.delta_m, 20);
/// assert_eq!(b.delta_m_minus_one, 16);
/// # Ok(())
/// # }
/// ```
pub fn lp_max_blocking(lp_tasks: &[DagTask], cores: usize) -> BlockingBounds {
    BlockingBounds {
        delta_m: sum_of_largest(lp_tasks, cores),
        delta_m_minus_one: if cores >= 1 {
            sum_of_largest(lp_tasks, cores - 1)
        } else {
            0
        },
    }
}

/// Sum of the `count` largest NPR WCETs pooled over all tasks.
fn sum_of_largest(tasks: &[DagTask], count: usize) -> Time {
    let mut pool: Vec<Time> = tasks
        .iter()
        .flat_map(|t| t.dag().largest_wcets(count))
        .collect();
    pool.sort_unstable_by(|a, b| b.cmp(a));
    pool.into_iter().take(count).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_model::examples::figure1_dags;
    use rta_model::{DagBuilder, DagTask};

    fn figure1_tasks() -> Vec<DagTask> {
        figure1_dags()
            .into_iter()
            .map(|d| DagTask::with_implicit_deadline(d, 1_000).unwrap())
            .collect()
    }

    #[test]
    fn paper_values_m4() {
        let b = lp_max_blocking(&figure1_tasks(), 4);
        assert_eq!(b.delta_m, 20);
        assert_eq!(b.delta_m_minus_one, 16);
    }

    #[test]
    fn no_lower_priority_tasks_no_blocking() {
        let b = lp_max_blocking(&[], 4);
        assert_eq!(b, BlockingBounds::default());
    }

    #[test]
    fn single_core() {
        // m = 1: blocked once by the single largest NPR; Δ⁰ = 0.
        let b = lp_max_blocking(&figure1_tasks(), 1);
        assert_eq!(b.delta_m, 6); // C_{3,1}
        assert_eq!(b.delta_m_minus_one, 0);
    }

    #[test]
    fn more_cores_than_nprs() {
        // A single 2-node lower-priority task on m = 8: pool exhausted.
        let mut builder = DagBuilder::new();
        let v = builder.add_nodes([5, 3]);
        builder.add_chain(&v).unwrap();
        let t = DagTask::with_implicit_deadline(builder.build().unwrap(), 100).unwrap();
        let b = lp_max_blocking(&[t], 8);
        assert_eq!(b.delta_m, 8);
        assert_eq!(b.delta_m_minus_one, 8);
    }

    #[test]
    fn per_task_truncation_matches_global_pool() {
        // Taking only the top-m per task first must not change the result:
        // compare against a naive global pool.
        let tasks = figure1_tasks();
        let m = 3;
        let mut global: Vec<Time> = tasks
            .iter()
            .flat_map(|t| t.dag().wcets().to_vec())
            .collect();
        global.sort_unstable_by(|a, b| b.cmp(a));
        let expected: Time = global.into_iter().take(m).sum();
        assert_eq!(lp_max_blocking(&tasks, m).delta_m, expected);
    }

    #[test]
    fn monotone_in_core_count() {
        let tasks = figure1_tasks();
        let mut last = 0;
        for m in 1..=8 {
            let d = lp_max_blocking(&tasks, m).delta_m;
            assert!(d >= last);
            last = d;
        }
    }
}
