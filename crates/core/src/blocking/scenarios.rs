//! Execution scenarios and the precedence-aware blocking bound (LP-ILP).
//!
//! Section IV-B of the paper: an *execution scenario* `s_l` fixes how many
//! cores each lower-priority task occupies — an integer partition of the
//! core count. Per scenario, the overall worst-case workload `ρ_k[s_l]`
//! assigns **distinct** tasks to the parts maximizing `Σ µ_i[c]` (Eq. (7)),
//! and the blocking bound is the maximum over scenarios (Eq. (8)):
//!
//! ```text
//! Δ^m_k = max_{s_l ∈ e_m} ρ_k[s_l]
//! ```
//!
//! `ρ` is solved either with the Hungarian algorithm (exact, default) or
//! with the paper's ILP formulation. One subtlety, discovered while
//! cross-validating the two: the ILP of Section V-B does not always pin the
//! selected core-count multiset to the scenario — e.g. under `s_l =
//! {2,2,2,1,1}` the assignment `{3,2,1,1,1}` satisfies all four constraints.
//! Every such "leaked" multiset is itself a partition of `m`, so `Δ^m`
//! (the maximum over *all* scenarios) is unaffected, but individual
//! `ρ_k[s_l]` values from the ILP can exceed the scenario's true optimum.
//! Tests therefore compare the two solvers on `Δ` and on non-degenerate
//! scenarios such as Table III.

use super::BlockingBounds;
use crate::config::{MuSolver, RhoSolver, ScenarioSpace};
use rta_combinatorics::{
    max_weight_assignment, max_weight_assignment_total, partitions, AssignmentScratch, Partition,
    PartitionTable,
};
use rta_model::{DagTask, Time};

/// The overall worst-case workload `ρ_k[s_l]` of one execution scenario
/// (Eq. (7)). Returns `None` when the scenario involves more tasks than
/// exist.
///
/// `mu_arrays[i][c − 1]` is `µ_i[c]` of the `i`-th lower-priority task.
///
/// # Example
///
/// Table III, scenario `s_3 = {2,1,1}`:
///
/// ```
/// use rta_analysis::blocking::scenarios::rho;
/// use rta_analysis::RhoSolver;
/// use rta_combinatorics::Partition;
/// use rta_model::examples::TABLE_I;
///
/// let mu: Vec<Vec<u64>> = TABLE_I.iter().map(|r| r.to_vec()).collect();
/// let s3 = Partition::new(vec![2, 1, 1]);
/// assert_eq!(rho(&mu, &s3, RhoSolver::Hungarian), Some(19));
/// ```
pub fn rho(mu_arrays: &[Vec<Time>], scenario: &Partition, solver: RhoSolver) -> Option<Time> {
    match solver {
        RhoSolver::Hungarian => rho_hungarian(mu_arrays, scenario),
        RhoSolver::PaperIlp => super::paper_ilp::rho_ilp(mu_arrays, scenario),
    }
}

fn rho_hungarian(mu_arrays: &[Vec<Time>], scenario: &Partition) -> Option<Time> {
    if scenario.cardinality() > mu_arrays.len() {
        return None;
    }
    let weights: Vec<Vec<u64>> = scenario
        .parts()
        .iter()
        .map(|&c| {
            mu_arrays
                .iter()
                .map(|mu| mu.get(c as usize - 1).copied().unwrap_or(0))
                .collect()
        })
        .collect();
    max_weight_assignment(&weights).map(|a| a.total)
}

/// `Δ^c` over a scenario space: the maximum `ρ` across the chosen set of
/// execution scenarios for a platform slice of `cores` cores (Eq. (8)).
pub fn delta(
    mu_arrays: &[Vec<Time>],
    cores: usize,
    space: ScenarioSpace,
    solver: RhoSolver,
) -> Time {
    if cores == 0 || mu_arrays.is_empty() {
        return 0;
    }
    let max_rho = |m: u32| -> Option<Time> {
        partitions(m)
            .filter_map(|s| rho(mu_arrays, &s, solver))
            .max()
    };
    match space {
        ScenarioSpace::PaperExact => max_rho(cores as u32).unwrap_or(0),
        ScenarioSpace::Extended => (1..=cores as u32).filter_map(max_rho).max().unwrap_or(0),
    }
}

/// Reusable working memory for [`max_rho`] / [`max_rho_over`]: the
/// Hungarian scratch plus a flat staging buffer for the per-scenario weight
/// matrix, so the sweep-campaign inner loop performs no allocation.
#[derive(Debug, Default)]
pub struct RhoScratch {
    assignment: AssignmentScratch,
    /// Row-major `parts × tasks` weight matrix of the current scenario.
    weights: Vec<u64>,
}

impl RhoScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// `max_{s_l ∈ e_c} ρ[s_l]` over the partitions of exactly `cores` — one
/// cardinality row of the Δ table (Eq. (8) for a single platform slice).
///
/// This is the primitive [`crate::cache::TaskSetCache`] memoizes: `Δ^m`
/// under [`ScenarioSpace::PaperExact`] is this value at `m`, and under
/// [`ScenarioSpace::Extended`] the maximum of this value over `1..=m` — so
/// one table of per-cardinality maxima serves `Δ^m`, `Δ^{m−1}`, both
/// scenario spaces and every method. Returns 0 when no scenario is feasible
/// (matching [`delta`]'s conventions).
pub fn max_rho(
    mu_arrays: &[&[Time]],
    cores: u32,
    solver: RhoSolver,
    scratch: &mut RhoScratch,
) -> Time {
    if cores == 0 {
        return 0;
    }
    max_rho_over(PartitionTable::scenarios(cores), mu_arrays, solver, scratch)
}

/// As [`max_rho`], over an explicit scenario list (the cache reads each
/// cardinality's list from the process-global [`PartitionTable`] and reuses
/// it for every task under analysis).
///
/// µ rows are borrowed slices so the cache can hand out its per-task arrays
/// without copying; the Hungarian path stages each scenario's weight matrix
/// in `scratch` and performs no allocation once warm.
pub fn max_rho_over(
    scenarios: &[Partition],
    mu_arrays: &[&[Time]],
    solver: RhoSolver,
    scratch: &mut RhoScratch,
) -> Time {
    max_rho_iter(scenarios.iter(), mu_arrays, solver, scratch)
}

/// As [`max_rho_over`], over borrowed scenario references — the cache's
/// mixed suffix-DP path hands in the non-DP-eligible remainder of a
/// cardinality class without cloning the partitions.
pub fn max_rho_over_refs(
    scenarios: &[&Partition],
    mu_arrays: &[&[Time]],
    solver: RhoSolver,
    scratch: &mut RhoScratch,
) -> Time {
    max_rho_iter(scenarios.iter().copied(), mu_arrays, solver, scratch)
}

fn max_rho_iter<'a>(
    scenarios: impl Iterator<Item = &'a Partition>,
    mu_arrays: &[&[Time]],
    solver: RhoSolver,
    scratch: &mut RhoScratch,
) -> Time {
    if mu_arrays.is_empty() {
        return 0;
    }
    match solver {
        RhoSolver::Hungarian => scenarios
            .filter_map(|s| rho_hungarian_in(mu_arrays, s, scratch))
            .max()
            .unwrap_or(0),
        RhoSolver::PaperIlp => {
            // The ILP entry point wants owned rows; materialize them once
            // for all scenarios, not per scenario.
            let owned: Vec<Vec<Time>> = mu_arrays.iter().map(|mu| mu.to_vec()).collect();
            scenarios
                .filter_map(|s| super::paper_ilp::rho_ilp(&owned, s))
                .max()
                .unwrap_or(0)
        }
    }
}

/// Scratch-backed Hungarian `ρ`: same optimum as [`rho`] with
/// [`RhoSolver::Hungarian`], zero allocation once warm.
fn rho_hungarian_in(
    mu_arrays: &[&[Time]],
    scenario: &Partition,
    scratch: &mut RhoScratch,
) -> Option<Time> {
    let parts = scenario.parts();
    let (rows, cols) = (parts.len(), mu_arrays.len());
    if rows > cols {
        return None;
    }
    let mu_at = |mu: &[Time], c: u32| mu.get(c as usize - 1).copied().unwrap_or(0);
    // A cardinality-1 scenario is a plain maximum — skip the assignment
    // machinery (every `e_c` contains `{c}`, so this path is always hot).
    if let [c] = parts {
        return mu_arrays.iter().map(|mu| mu_at(mu, *c)).max();
    }
    scratch.weights.clear();
    for &c in parts {
        scratch
            .weights
            .extend(mu_arrays.iter().map(|mu| mu_at(mu, c)));
    }
    let weights = &scratch.weights;
    max_weight_assignment_total(
        rows,
        cols,
        |r, t| weights[r * cols + t],
        &mut scratch.assignment,
    )
}

/// `ρ_k[s]` of **every** task under analysis at once, by subset dynamic
/// programming over task suffixes.
///
/// `lp(k)` shrinks by one task per priority level (`lp(k) = lp(k−1) \
/// {τ_k}`), so the per-`k` assignment problems of one scenario overlap
/// almost entirely. This DP walks the tasks from lowest to highest
/// priority, maintaining `f[S]` — the best total workload assigning the
/// scenario parts in subset `S` to distinct tasks of the suffix processed
/// so far — and reads off `ρ_k[s] = f[all parts]` after each step: one
/// `O(n · 2^|s| · |s|)` pass replaces `n` Hungarian solves.
///
/// `mu_tail[i]` is the µ-array of task `i + 1` (the highest-priority task
/// blocks no one, so its µ is never consulted). Returns `out[k] = ρ_k[s]`
/// for `k ∈ 0..=mu_tail.len()`, `None` where the scenario is infeasible
/// (more parts than `lp(k)` tasks) — element-wise identical to [`rho`] with
/// [`RhoSolver::Hungarian`] on each suffix.
pub fn rho_suffix_dp(scenario: &Partition, mu_tail: &[&[Time]]) -> Vec<Option<Time>> {
    let parts = scenario.parts();
    let r = parts.len();
    debug_assert!(
        r < usize::BITS as usize,
        "cardinality bounded by core count"
    );
    let full: usize = (1 << r) - 1;
    let t = mu_tail.len();
    let mu_at = |mu: &[Time], c: u32| mu.get(c as usize - 1).copied().unwrap_or(0);

    // `f[S]` for the empty suffix: only the empty part set is assignable.
    let mut f: Vec<Option<Time>> = vec![None; full + 1];
    f[0] = Some(0);
    let mut next = f.clone();
    let mut out = vec![None; t + 1];
    for i in (0..t).rev() {
        // Incorporate task `i + 1`: each part subset either ignores it or
        // assigns it one part `j`, leaving `S \ {j}` to strictly lower
        // priorities (the old `f`).
        let mu_i = mu_tail[i];
        for (mask, slot) in next.iter_mut().enumerate() {
            let mut best = f[mask];
            let mut bits = mask;
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if let Some(base) = f[mask & !(1 << j)] {
                    let val = base + mu_at(mu_i, parts[j]);
                    if best.is_none_or(|b| val > b) {
                        best = Some(val);
                    }
                }
            }
            *slot = best;
        }
        std::mem::swap(&mut f, &mut next);
        // `f` now covers tasks `i+1 ..= t` — exactly `lp(i)`.
        out[i] = f[full];
    }
    out
}

/// The full LP-ILP blocking bound for a task under analysis: computes
/// `µ_i[c]` for every lower-priority task and maximizes `ρ` over the
/// scenario spaces of `m` and `m−1` cores.
pub fn lp_ilp_blocking(
    lp_tasks: &[DagTask],
    cores: usize,
    mu_solver: MuSolver,
    rho_solver: RhoSolver,
    space: ScenarioSpace,
) -> BlockingBounds {
    let mu_arrays: Vec<Vec<Time>> = lp_tasks
        .iter()
        .map(|t| super::mu::mu_array(t.dag(), cores, mu_solver))
        .collect();
    blocking_from_mu(&mu_arrays, cores, rho_solver, space)
}

/// As [`lp_ilp_blocking`], but from pre-computed `µ` arrays (the arrays are
/// task-set independent, so callers analyzing many tasks reuse them).
pub fn blocking_from_mu(
    mu_arrays: &[Vec<Time>],
    cores: usize,
    rho_solver: RhoSolver,
    space: ScenarioSpace,
) -> BlockingBounds {
    BlockingBounds {
        delta_m: delta(mu_arrays, cores, space, rho_solver),
        delta_m_minus_one: if cores >= 2 {
            delta(mu_arrays, cores - 1, space, rho_solver)
        } else {
            0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::lpmax::lp_max_blocking;
    use rta_model::examples::{figure1_dags, TABLE_I};
    use rta_model::DagTask;

    fn mu() -> Vec<Vec<Time>> {
        TABLE_I.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn table_iii_all_scenarios_hungarian() {
        // Enumeration order: {4}, {3,1}, {2,2}, {2,1,1}, {1,1,1,1}.
        let expected = [11, 18, 16, 19, 18];
        for (scenario, want) in partitions(4).zip(expected) {
            assert_eq!(
                rho(&mu(), &scenario, RhoSolver::Hungarian),
                Some(want),
                "ρ[{scenario}]"
            );
        }
    }

    #[test]
    fn paper_deltas() {
        // Δ⁴ = 19 and Δ³ = 15 (Section IV-B3).
        let b = blocking_from_mu(&mu(), 4, RhoSolver::Hungarian, ScenarioSpace::PaperExact);
        assert_eq!(b.delta_m, 19);
        assert_eq!(b.delta_m_minus_one, 15);
        // The extended space agrees here (enough tasks to fill 4 cores).
        let be = blocking_from_mu(&mu(), 4, RhoSolver::Hungarian, ScenarioSpace::Extended);
        assert_eq!(be, b);
    }

    #[test]
    fn ilp_and_hungarian_agree_on_deltas() {
        for cores in 1..=5 {
            for space in [ScenarioSpace::PaperExact, ScenarioSpace::Extended] {
                let h = blocking_from_mu(&mu(), cores, RhoSolver::Hungarian, space);
                let i = blocking_from_mu(&mu(), cores, RhoSolver::PaperIlp, space);
                assert_eq!(h, i, "m = {cores}, {space:?}");
            }
        }
    }

    #[test]
    fn max_rho_rows_reproduce_both_delta_spaces() {
        // The cache derives Δ under either scenario space from per-cardinality
        // max-ρ rows; the rows must therefore match `delta` exactly.
        let mu_vecs = mu();
        let refs: Vec<&[Time]> = mu_vecs.iter().map(Vec::as_slice).collect();
        let mut scratch = RhoScratch::new();
        for solver in [RhoSolver::Hungarian, RhoSolver::PaperIlp] {
            for cores in 0..=6usize {
                let exact = delta(&mu_vecs, cores, ScenarioSpace::PaperExact, solver);
                assert_eq!(
                    max_rho(&refs, cores as u32, solver, &mut scratch),
                    exact,
                    "{solver:?} exact at m = {cores}"
                );
                let extended = delta(&mu_vecs, cores, ScenarioSpace::Extended, solver);
                let from_rows = (1..=cores as u32)
                    .map(|c| max_rho(&refs, c, solver, &mut scratch))
                    .max()
                    .unwrap_or(0);
                assert_eq!(from_rows, extended, "{solver:?} extended at m = {cores}");
            }
        }
    }

    #[test]
    fn suffix_dp_matches_per_suffix_hungarian() {
        // The DP's per-k row must equal a dedicated Hungarian solve on each
        // suffix, for every scenario of every cardinality.
        let mu_vecs: Vec<Vec<Time>> = vec![
            vec![3, 5, 6, 5],
            vec![4, 7, 0, 0],
            vec![6, 7, 9, 11],
            vec![5, 9, 12, 0],
            vec![2, 2, 0, 0],
        ];
        // mu_tail covers tasks 1.. of a 6-task set (task 0 has no µ uses).
        let mu_tail: Vec<&[Time]> = mu_vecs.iter().map(Vec::as_slice).collect();
        for cores in 1..=6u32 {
            for scenario in partitions(cores) {
                let dp = rho_suffix_dp(&scenario, &mu_tail);
                assert_eq!(dp.len(), mu_tail.len() + 1);
                for (k, &got) in dp.iter().enumerate() {
                    let suffix: Vec<Vec<Time>> = mu_vecs[k..].to_vec();
                    let want = rho(&suffix, &scenario, RhoSolver::Hungarian);
                    assert_eq!(got, want, "k = {k}, scenario {scenario}");
                }
            }
        }
    }

    #[test]
    fn lp_ilp_never_exceeds_lp_max() {
        let tasks: Vec<DagTask> = figure1_dags()
            .into_iter()
            .map(|d| DagTask::with_implicit_deadline(d, 1_000).unwrap())
            .collect();
        for cores in 1..=8 {
            let ilp = lp_ilp_blocking(
                &tasks,
                cores,
                MuSolver::Clique,
                RhoSolver::Hungarian,
                ScenarioSpace::Extended,
            );
            let max = lp_max_blocking(&tasks, cores);
            assert!(ilp.delta_m <= max.delta_m, "Δ^m at m = {cores}");
            assert!(
                ilp.delta_m_minus_one <= max.delta_m_minus_one,
                "Δ^(m−1) at m = {cores}"
            );
        }
    }

    #[test]
    fn extended_space_handles_few_tasks() {
        // A single lower-priority task with parallelism 2 on m = 4: the
        // paper's exact space only contains {4}, {3,1}, {2,2}, {2,1,1},
        // {1,1,1,1}; with one task only {4} is feasible and µ[4] = 0, so
        // PaperExact reports no blocking. The extended space finds µ[2].
        let mu_one = vec![vec![5u64, 8, 0, 0]];
        let exact = delta(&mu_one, 4, ScenarioSpace::PaperExact, RhoSolver::Hungarian);
        let extended = delta(&mu_one, 4, ScenarioSpace::Extended, RhoSolver::Hungarian);
        assert_eq!(exact, 0);
        assert_eq!(extended, 8);
    }

    #[test]
    fn no_lp_tasks_means_no_blocking() {
        let b = blocking_from_mu(&[], 4, RhoSolver::Hungarian, ScenarioSpace::Extended);
        assert_eq!(b, BlockingBounds::default());
    }

    #[test]
    fn single_core_delta() {
        let b = blocking_from_mu(&mu(), 1, RhoSolver::Hungarian, ScenarioSpace::Extended);
        // Largest µ_i[1] = 6 (τ3); Δ⁰ = 0.
        assert_eq!(b.delta_m, 6);
        assert_eq!(b.delta_m_minus_one, 0);
    }

    #[test]
    fn rho_infeasible_scenarios() {
        let one_task = vec![vec![3u64, 5]];
        let s = Partition::new(vec![1, 1]);
        assert_eq!(rho(&one_task, &s, RhoSolver::Hungarian), None);
        assert_eq!(rho(&one_task, &s, RhoSolver::PaperIlp), None);
    }

    #[test]
    fn extended_dominates_exact() {
        // On arbitrary µ arrays the extended space is ≥ the exact space.
        let arrays = vec![vec![4u64, 6, 0, 0], vec![2, 0, 0, 0]];
        for cores in 1..=4 {
            let e = delta(
                &arrays,
                cores,
                ScenarioSpace::Extended,
                RhoSolver::Hungarian,
            );
            let p = delta(
                &arrays,
                cores,
                ScenarioSpace::PaperExact,
                RhoSolver::Hungarian,
            );
            assert!(e >= p, "m = {cores}");
        }
    }
}
