//! The paper's ILP formulations, verbatim (Sections V-A2 and V-B).
//!
//! The evaluation's hot path uses the combinatorial solvers ([`super::mu`]
//! and [`super::scenarios`]); these formulations exist for fidelity to the
//! paper (it solved them with CPLEX) and as an independent implementation
//! that the test suite cross-checks against the combinatorial path.
//!
//! **Erratum applied** (DESIGN.md §5.5): constraint (2) of Section V-A2 is
//! stated as `Σ_{j<k} b_{j,k}·IsPar_{j,k} = c`, but `c` pairwise-parallel
//! nodes have `c(c−1)/2` parallel pairs; with constraint (1) in force the
//! consistent right-hand side is `c(c−1)/2`, which reproduces every value of
//! Table I (the stated `= c` makes even the paper's own examples
//! infeasible for `c ≥ 4` and over-constrained for `c = 1`).

use rta_combinatorics::Partition;
use rta_ilp::{IlpBuilder, Sense};
use rta_model::{parallel_adjacency, Dag, Time};

/// `µ_i[c]` for `c = 1..=cores` via the Section V-A2 ILP.
pub fn mu_array_ilp(dag: &Dag, cores: usize) -> Vec<Time> {
    (1..=cores).map(|c| mu_ilp(dag, c).unwrap_or(0)).collect()
}

/// Solves the Section V-A2 ILP for one cardinality `c`. Returns `None` when
/// the formulation is infeasible (no `c` NPRs can run in parallel), which
/// the paper maps to `µ_i[c] = 0`.
///
/// Problem variables: `b_j = 1` iff NPR `v_j` is selected, plus auxiliary
/// `b_{j,k} = b_j ∧ b_k`. Objective: `max Σ C_j·b_j`.
pub fn mu_ilp(dag: &Dag, c: usize) -> Option<Time> {
    let n = dag.node_count();
    if c == 0 || c > n {
        return None;
    }
    let is_par = parallel_adjacency(dag);

    let mut m = IlpBuilder::new();
    let b: Vec<_> = (0..n).map(|j| m.binary(format!("b{j}"))).collect();
    for (j, &var) in b.iter().enumerate() {
        m.objective(var, dag.wcet(rta_model::NodeId::new(j)) as f64);
    }

    // Constraint (1): exactly c NPRs selected.
    let all: Vec<_> = b.iter().map(|&v| (v, 1.0)).collect();
    m.constraint(&all, Sense::Eq, c as f64);

    // Auxiliary b_{j,k} with AND-linking constraints (3).
    let mut pair_terms = Vec::new();
    for j in 0..n {
        for k in j + 1..n {
            let bjk = m.binary(format!("b{j}_{k}"));
            m.constraint(&[(bjk, 1.0), (b[j], -1.0), (b[k], -1.0)], Sense::Ge, -1.0);
            m.constraint(&[(bjk, 1.0), (b[j], -1.0)], Sense::Le, 0.0);
            m.constraint(&[(bjk, 1.0), (b[k], -1.0)], Sense::Le, 0.0);
            if is_par[j].contains(k) {
                pair_terms.push((bjk, 1.0));
            }
        }
    }

    // Constraint (2), with the c(c−1)/2 erratum: every selected pair is
    // parallel.
    let pairs = (c * (c - 1) / 2) as f64;
    m.constraint(&pair_terms, Sense::Eq, pairs);

    match m.build().maximize() {
        Ok(sol) => Some(sol.objective.round() as Time),
        Err(rta_ilp::IlpError::Infeasible) => None,
        Err(e) => panic!("µ ILP solve failed unexpectedly: {e}"),
    }
}

/// Solves the Section V-B ILP: the overall worst-case workload `ρ_k[s_l]`
/// of lower-priority tasks under execution scenario `s_l`.
///
/// `mu_arrays[i][c − 1]` is `µ_i[c]` for the `i`-th lower-priority task.
/// Returns `None` when the scenario is infeasible (more parts than tasks).
///
/// Problem variables: `w_i^c = 1` iff task `i` contributes its `c`-core
/// workload. Constraints (paper verbatim): (1) `Σ w = |s_l|`; (2) at most
/// one `c` per task; (3) every core count in `s_l` is used by some task;
/// (4) `Σ w·c` equals the scenario's core total.
pub fn rho_ilp(mu_arrays: &[Vec<Time>], scenario: &Partition) -> Option<Time> {
    let tasks = mu_arrays.len();
    let parts = scenario.cardinality();
    if parts > tasks {
        return None;
    }
    // Variables must cover every core count the scenario mentions; µ values
    // beyond the supplied arrays are 0 (no antichain that large), matching
    // the Hungarian solver's treatment.
    let array_len = mu_arrays.iter().map(Vec::len).max().unwrap_or(0);
    let largest_part = scenario.parts().first().copied().unwrap_or(0) as usize;
    let max_c = array_len.max(largest_part);

    let mut m = IlpBuilder::new();
    // w[i][c-1]
    let w: Vec<Vec<_>> = (0..tasks)
        .map(|i| (1..=max_c).map(|c| m.binary(format!("w{i}_{c}"))).collect())
        .collect();
    for i in 0..tasks {
        for c in 1..=max_c {
            let mu = mu_arrays[i].get(c - 1).copied().unwrap_or(0);
            m.objective(w[i][c - 1], mu as f64);
        }
    }

    // (1) number of contributing tasks = |s_l|.
    let all: Vec<_> = w.iter().flatten().map(|&v| (v, 1.0)).collect();
    m.constraint(&all, Sense::Eq, parts as f64);

    // (2) each task contributes at most once.
    for row in &w {
        let terms: Vec<_> = row.iter().map(|&v| (v, 1.0)).collect();
        m.constraint(&terms, Sense::Le, 1.0);
    }

    // (3) every distinct core count of the scenario is used at least once.
    let mut distinct: Vec<u32> = scenario.parts().to_vec();
    distinct.dedup();
    for &c in &distinct {
        let terms: Vec<_> = w.iter().map(|row| (row[c as usize - 1], 1.0)).collect();
        m.constraint(&terms, Sense::Ge, 1.0);
    }

    // (4) total cores used = scenario total.
    let weighted: Vec<_> = w
        .iter()
        .flat_map(|row| row.iter().enumerate().map(|(ci, &v)| (v, (ci + 1) as f64)))
        .collect();
    m.constraint(&weighted, Sense::Eq, scenario.total() as f64);

    match m.build().maximize() {
        Ok(sol) => Some(sol.objective.round() as Time),
        Err(rta_ilp::IlpError::Infeasible) => None,
        Err(e) => panic!("ρ ILP solve failed unexpectedly: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_combinatorics::partitions;
    use rta_model::examples::{figure1_dags, TABLE_I};

    #[test]
    fn mu_ilp_reproduces_table_i() {
        for (i, dag) in figure1_dags().iter().enumerate() {
            for c in 1..=4usize {
                let got = mu_ilp(dag, c).unwrap_or(0);
                assert_eq!(got, TABLE_I[i][c - 1], "µ_{}[{}]", i + 1, c);
            }
        }
    }

    #[test]
    fn mu_ilp_out_of_range() {
        let dag = figure1_dags().remove(1); // τ2, 4 nodes
        assert_eq!(mu_ilp(&dag, 0), None);
        assert_eq!(mu_ilp(&dag, 5), None);
        // τ2 has max parallelism 2: c = 3 infeasible through the ILP too.
        assert_eq!(mu_ilp(&dag, 3), None);
    }

    #[test]
    fn rho_ilp_reproduces_table_iii() {
        let mu: Vec<Vec<Time>> = TABLE_I.iter().map(|r| r.to_vec()).collect();
        let expected = [11, 18, 16, 19, 18]; // {4},{3,1},{2,2},{2,1,1},{1,1,1,1}
        for (scenario, want) in partitions(4).zip([
            expected[0],
            expected[1],
            expected[2],
            expected[3],
            expected[4],
        ]) {
            let got = rho_ilp(&mu, &scenario).expect("feasible scenario");
            assert_eq!(got, want, "ρ[{scenario}]");
        }
    }

    #[test]
    fn rho_ilp_infeasible_when_parts_exceed_tasks() {
        let mu: Vec<Vec<Time>> = vec![vec![5, 3]]; // one task only
        let two_parts = Partition::new(vec![1, 1]);
        assert_eq!(rho_ilp(&mu, &two_parts), None);
    }
}
