//! Per-task worst-case workloads `µ_i[c]` (paper Section V-A).
//!
//! `µ_i[c]` is the largest total WCET of `c` NPRs of task `τ_i` that can all
//! execute in parallel (Definition 1) — a maximum-weight clique of
//! cardinality `c` in the task's parallelism graph, equivalently a
//! maximum-weight antichain of size `c` of its precedence order. When the
//! task cannot occupy `c` cores at once, `µ_i[c] = 0` (cf. `µ_2[3] =
//! µ_2[4] = 0` in Table I).
//!
//! `µ_i` is a property of the task alone (computable "at compile time" in
//! the paper's wording). The analysis exploits that through
//! [`crate::cache::TaskSetCache`]: each task's µ-array is computed **once
//! per task set**, at the largest core count any configuration asks for, and
//! the prefix `µ_i[1..=c]` is reused for every smaller platform slice `c`,
//! every scenario, every task under analysis and every analysis method.
//! (Each entry `µ_i[c]` is an independent fixed-cardinality search, so the
//! array computed at `m` cores restricts to the array for any `c ≤ m`.)

use crate::config::MuSolver;
use rta_combinatorics::{max_weight_clique_weight, BitSet, CliqueScratch};
use rta_model::{parallel_adjacency, Dag, Time};
use std::cell::Cell;

thread_local! {
    static MU_ARRAY_COMPUTATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Number of µ-array computations performed **by the current thread** since
/// it started.
///
/// Test instrumentation for the caching contract: the analysis cache must
/// compute each task's µ-array at most once per task set, which tests assert
/// by snapshotting this counter around [`crate::rta::analyze_all`]. Every
/// call to [`mu_array`] / [`mu_array_with`] increments it by one, whatever
/// the solver.
pub fn mu_array_computations() -> u64 {
    MU_ARRAY_COMPUTATIONS.with(Cell::get)
}

fn record_computation() {
    MU_ARRAY_COMPUTATIONS.with(|c| c.set(c.get() + 1));
}

/// Computes the array `µ_i[1..=cores]` for one task.
///
/// Index `c − 1` holds `µ_i[c]`. Once no antichain of size `c` exists, all
/// larger entries are 0 (antichains are downward closed in size, so the
/// search stops at the first infeasible cardinality).
///
/// # Example
///
/// Table I of the paper, task `τ_3`:
///
/// ```
/// use rta_analysis::blocking::mu::mu_array;
/// use rta_analysis::MuSolver;
/// use rta_model::examples::figure1_tau3;
///
/// let mu = mu_array(&figure1_tau3(), 4, MuSolver::Clique);
/// assert_eq!(mu, vec![6, 7, 9, 11]);
/// ```
pub fn mu_array(dag: &Dag, cores: usize, solver: MuSolver) -> Vec<Time> {
    match solver {
        MuSolver::Clique => {
            let adjacency = parallel_adjacency(dag);
            mu_array_with(dag, &adjacency, cores, solver, &mut CliqueScratch::new())
        }
        MuSolver::PaperIlp => {
            record_computation();
            super::paper_ilp::mu_array_ilp(dag, cores)
        }
    }
}

/// As [`mu_array`], but from a pre-computed parallel adjacency and with
/// reusable clique-search scratch — the entry point
/// [`crate::cache::TaskSetCache`] uses so that neither the adjacency nor the
/// search buffers are rebuilt per task under analysis. (The
/// [`MuSolver::PaperIlp`] arm ignores both and solves from the DAG alone.)
pub fn mu_array_with(
    dag: &Dag,
    adjacency: &[BitSet],
    cores: usize,
    solver: MuSolver,
    scratch: &mut CliqueScratch,
) -> Vec<Time> {
    record_computation();
    match solver {
        MuSolver::Clique => mu_array_clique(adjacency, dag.wcets(), cores, scratch),
        MuSolver::PaperIlp => super::paper_ilp::mu_array_ilp(dag, cores),
    }
}

fn mu_array_clique(
    adjacency: &[BitSet],
    weights: &[Time],
    cores: usize,
    scratch: &mut CliqueScratch,
) -> Vec<Time> {
    let mut mu = Vec::with_capacity(cores);
    for c in 1..=cores {
        match max_weight_clique_weight(adjacency, weights, c, scratch) {
            Some(weight) => mu.push(weight),
            None => break,
        }
    }
    mu.resize(cores, 0);
    mu
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_model::examples::{figure1_dags, TABLE_I};
    use rta_model::DagBuilder;

    #[test]
    fn table_i_clique_solver() {
        for (i, dag) in figure1_dags().iter().enumerate() {
            let mu = mu_array(dag, 4, MuSolver::Clique);
            assert_eq!(mu.as_slice(), &TABLE_I[i], "µ_{} mismatch", i + 1);
        }
    }

    #[test]
    fn table_i_paper_ilp_solver() {
        for (i, dag) in figure1_dags().iter().enumerate() {
            let mu = mu_array(dag, 4, MuSolver::PaperIlp);
            assert_eq!(mu.as_slice(), &TABLE_I[i], "µ_{} (ILP) mismatch", i + 1);
        }
    }

    #[test]
    fn sequential_task_has_only_mu1() {
        let mut b = DagBuilder::new();
        let v = b.add_nodes([4, 9, 2]);
        b.add_chain(&v).unwrap();
        let mu = mu_array(&b.build().unwrap(), 4, MuSolver::Clique);
        assert_eq!(mu, vec![9, 0, 0, 0]);
    }

    #[test]
    fn fully_parallel_task_accumulates() {
        // A source forking into three leaves of weight 5, 3, 2.
        let mut b = DagBuilder::new();
        let v = b.add_nodes([1, 5, 3, 2]);
        for &leaf in &v[1..] {
            b.add_edge(v[0], leaf).unwrap();
        }
        let mu = mu_array(&b.build().unwrap(), 4, MuSolver::Clique);
        assert_eq!(mu, vec![5, 8, 10, 0]);
    }

    #[test]
    fn mu1_is_largest_npr() {
        for dag in figure1_dags() {
            let mu = mu_array(&dag, 1, MuSolver::Clique);
            assert_eq!(mu, vec![dag.max_wcet()]);
        }
    }

    #[test]
    fn cores_beyond_node_count_are_zero() {
        let mut b = DagBuilder::new();
        b.add_node(7);
        let mu = mu_array(&b.build().unwrap(), 3, MuSolver::Clique);
        assert_eq!(mu, vec![7, 0, 0]);
    }

    #[test]
    fn full_array_restricts_to_smaller_core_counts() {
        // The slicing contract the cache relies on: µ computed at m cores,
        // truncated to c entries, equals µ computed at c cores.
        for dag in figure1_dags() {
            let full = mu_array(&dag, 8, MuSolver::Clique);
            for c in 1..=8 {
                assert_eq!(full[..c], mu_array(&dag, c, MuSolver::Clique), "c = {c}");
            }
        }
    }

    #[test]
    fn computations_are_counted() {
        let dag = figure1_dags().remove(0);
        let before = mu_array_computations();
        let _ = mu_array(&dag, 4, MuSolver::Clique);
        let adjacency = parallel_adjacency(&dag);
        let _ = mu_array_with(
            &dag,
            &adjacency,
            4,
            MuSolver::Clique,
            &mut CliqueScratch::new(),
        );
        assert_eq!(mu_array_computations(), before + 2);
    }

    #[test]
    fn solvers_agree_on_figure1() {
        for dag in figure1_dags() {
            for cores in 1..=5 {
                assert_eq!(
                    mu_array(&dag, cores, MuSolver::Clique),
                    mu_array(&dag, cores, MuSolver::PaperIlp),
                    "solver mismatch at m = {cores}"
                );
            }
        }
    }
}
