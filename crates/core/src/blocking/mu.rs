//! Per-task worst-case workloads `µ_i[c]` (paper Section V-A).
//!
//! `µ_i[c]` is the largest total WCET of `c` NPRs of task `τ_i` that can all
//! execute in parallel (Definition 1) — a maximum-weight clique of
//! cardinality `c` in the task's parallelism graph, equivalently a
//! maximum-weight antichain of size `c` of its precedence order. When the
//! task cannot occupy `c` cores at once, `µ_i[c] = 0` (cf. `µ_2[3] =
//! µ_2[4] = 0` in Table I).
//!
//! `µ_i` is a property of the task alone (computable "at compile time" in
//! the paper's wording); the analysis computes it once per task and reuses
//! it for every scenario.

use crate::config::MuSolver;
use rta_model::{parallel_adjacency, Dag, Time};

/// Computes the array `µ_i[1..=cores]` for one task.
///
/// Index `c − 1` holds `µ_i[c]`. Once no antichain of size `c` exists, all
/// larger entries are 0 (antichains are downward closed in size, so the
/// search stops at the first infeasible cardinality).
///
/// # Example
///
/// Table I of the paper, task `τ_3`:
///
/// ```
/// use rta_analysis::blocking::mu::mu_array;
/// use rta_analysis::MuSolver;
/// use rta_model::examples::figure1_tau3;
///
/// let mu = mu_array(&figure1_tau3(), 4, MuSolver::Clique);
/// assert_eq!(mu, vec![6, 7, 9, 11]);
/// ```
pub fn mu_array(dag: &Dag, cores: usize, solver: MuSolver) -> Vec<Time> {
    match solver {
        MuSolver::Clique => mu_array_clique(dag, cores),
        MuSolver::PaperIlp => super::paper_ilp::mu_array_ilp(dag, cores),
    }
}

fn mu_array_clique(dag: &Dag, cores: usize) -> Vec<Time> {
    let adjacency = parallel_adjacency(dag);
    let weights = dag.wcets();
    let mut mu = Vec::with_capacity(cores);
    for c in 1..=cores {
        match rta_combinatorics::max_weight_clique_of_size(&adjacency, weights, c) {
            Some(sol) => mu.push(sol.weight),
            None => break,
        }
    }
    mu.resize(cores, 0);
    mu
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_model::examples::{figure1_dags, TABLE_I};
    use rta_model::DagBuilder;

    #[test]
    fn table_i_clique_solver() {
        for (i, dag) in figure1_dags().iter().enumerate() {
            let mu = mu_array(dag, 4, MuSolver::Clique);
            assert_eq!(mu.as_slice(), &TABLE_I[i], "µ_{} mismatch", i + 1);
        }
    }

    #[test]
    fn table_i_paper_ilp_solver() {
        for (i, dag) in figure1_dags().iter().enumerate() {
            let mu = mu_array(dag, 4, MuSolver::PaperIlp);
            assert_eq!(mu.as_slice(), &TABLE_I[i], "µ_{} (ILP) mismatch", i + 1);
        }
    }

    #[test]
    fn sequential_task_has_only_mu1() {
        let mut b = DagBuilder::new();
        let v = b.add_nodes([4, 9, 2]);
        b.add_chain(&v).unwrap();
        let mu = mu_array(&b.build().unwrap(), 4, MuSolver::Clique);
        assert_eq!(mu, vec![9, 0, 0, 0]);
    }

    #[test]
    fn fully_parallel_task_accumulates() {
        // A source forking into three leaves of weight 5, 3, 2.
        let mut b = DagBuilder::new();
        let v = b.add_nodes([1, 5, 3, 2]);
        for &leaf in &v[1..] {
            b.add_edge(v[0], leaf).unwrap();
        }
        let mu = mu_array(&b.build().unwrap(), 4, MuSolver::Clique);
        assert_eq!(mu, vec![5, 8, 10, 0]);
    }

    #[test]
    fn mu1_is_largest_npr() {
        for dag in figure1_dags() {
            let mu = mu_array(&dag, 1, MuSolver::Clique);
            assert_eq!(mu, vec![dag.max_wcet()]);
        }
    }

    #[test]
    fn cores_beyond_node_count_are_zero() {
        let mut b = DagBuilder::new();
        b.add_node(7);
        let mu = mu_array(&b.build().unwrap(), 3, MuSolver::Clique);
        assert_eq!(mu, vec![7, 0, 0]);
    }

    #[test]
    fn solvers_agree_on_figure1() {
        for dag in figure1_dags() {
            for cores in 1..=5 {
                assert_eq!(
                    mu_array(&dag, cores, MuSolver::Clique),
                    mu_array(&dag, cores, MuSolver::PaperIlp),
                    "solver mismatch at m = {cores}"
                );
            }
        }
    }
}
