//! The corrected, **sound** lower-priority blocking term ([`Method::LpSound`]).
//!
//! # Why the paper's Eq. (3) is not sound
//!
//! The paper bounds lower-priority interference as
//! `I_lp = Δ^m + p_k·Δ^{m−1}`: one blocking *event* at release (all `m`
//! cores may have just started lower-priority NPRs) plus one per
//! preemption (at most `m−1` cores). Both Δ terms — the LP-max pool of
//! Eq. (5) and the LP-ILP scenarios of Eqs. (6)–(8) alike — count NPRs
//! that are **already running** when the event happens, and the event
//! count is gated on `p_k = min(q_k, h_k)`.
//!
//! That event model misses a whole blocking class: whenever the DAG under
//! analysis leaves cores idle through its *own precedence constraints*
//! (a join waiting on one long predecessor, say), a work-conserving
//! limited-preemptive scheduler legally dispatches **newly started**
//! lower-priority NPRs onto those cores, and they later block the DAG's
//! remaining nodes mid-job — with `p_k = 0` for the highest-priority task,
//! Eq. (3) accounts for none of them. This repository's validation
//! campaign found exactly such schedules (simulated response times 1–3%
//! above the LP-ILP/LP-max bound on rare `m = 2` sets; one is frozen as a
//! regression test in `rta-experiments`), matching the unsoundness of
//! eager limited-preemptive global DAG analyses demonstrated by Nasri,
//! Nelissen & Brandenburg, *"Response-Time Analysis of Limited-Preemptive
//! Parallel DAG Tasks Under Global Scheduling"*, ECRTS 2019.
//!
//! # The corrected term
//!
//! The fix drops the per-event gating entirely: instead of asking *when*
//! lower-priority NPRs may block (and requiring the blocking cores to be
//! simultaneously busy), it bounds the **total lower-priority workload
//! that can occupy cores anywhere inside the response window**, per task —
//! the same carry-in workload bound the analysis already applies to
//! higher-priority interference (Melani et al., [`crate::workload`]):
//!
//! ```text
//! I_lp_sound_k(t) = Σ_{i ∈ lp(k)} W_i(t)      with R_i := D_i
//! ```
//!
//! Lower-priority response bounds are not known while task `k` is analyzed
//! (priority order computes them later), so the carry-in window uses the
//! deadline `D_i` in place of `R_i`. This is the standard
//! assume-and-verify argument: consider a legal schedule and the earliest
//! deadline miss in it. Before that instant every completed job met its
//! deadline, so any job of `τ_i` executing inside a window of length `t`
//! was released after `window start − D_i`, and `W_i(t)` evaluated with
//! `R_i = D_i` bounds its workload. If the analysis accepts the set, every
//! per-task bound — derived under that assumption — sits at or below its
//! deadline, contradicting the existence of a first miss; hence an
//! accepted set has no miss at all and the per-task bounds are valid.
//!
//! Soundness needs nothing beyond **work conservation** of the scheduler:
//! whenever a ready node of the job under analysis is not executing, all
//! `m` cores are busy — with higher-priority work, with the job's own
//! sibling nodes, or with lower-priority NPRs (preemptable or not). The
//! critical path is therefore delayed by at most `1/m` of the total
//! interfering workload, and `I_lp_sound` bounds the lower-priority share
//! of it no matter *when* each NPR started. In particular the bound holds
//! under both the eager and the lazy limited-preemption policy of
//! `rta-sim`, and for any sporadic release pattern (inter-arrivals of at
//! least `T_i`, which both the jitter and the sporadic release models of
//! the validation campaign respect).
//!
//! The price is pessimism: every lower-priority job in the window is
//! charged its full volume, even though only its NPR prefixes can block in
//! practice. `repro campaign` quantifies this as the *soundness cost* —
//! the acceptance-ratio gap between [`Method::LpIlp`] and
//! [`Method::LpSound`] — in `soundness_cost.csv`.
//!
//! [`Method::LpSound`]: crate::config::Method::LpSound
//! [`Method::LpIlp`]: crate::config::Method::LpIlp

use crate::workload::interfering_workload;
use rta_model::{DagTask, Time};

/// The per-window sound lower-priority interference bound of one task
/// under analysis: the precomputed `(m·D_i, vol_i, T_i)` invariants of its
/// lower-priority tasks, evaluated per fixed-point iterate via
/// [`interference`](Self::interference).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoundBlocking {
    /// Per lower-priority task: `(m·D_i, vol_i, T_i)` — the scaled
    /// deadline standing in for the unknown response bound, plus the
    /// quantities [`interfering_workload`] reads.
    lp: Vec<(u128, Time, Time)>,
    cores: usize,
}

impl SoundBlocking {
    /// Builds the bound from the lower-priority tasks of the task under
    /// analysis on an `cores`-core platform.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn new(lp_tasks: &[DagTask], cores: usize) -> Self {
        Self::from_parts(
            lp_tasks
                .iter()
                .map(|t| (t.dag().volume(), t.period(), t.deadline())),
            cores,
        )
    }

    /// Builds the bound from raw `(volume, period, deadline)` triples —
    /// the entry the [`TaskSetCache`](crate::cache::TaskSetCache) uses so
    /// no DAG is re-walked.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn from_parts(lp: impl IntoIterator<Item = (Time, Time, Time)>, cores: usize) -> Self {
        assert!(cores >= 1, "at least one core required");
        let m = cores as u128;
        Self {
            lp: lp
                .into_iter()
                .map(|(volume, period, deadline)| (m * deadline as u128, volume, period))
                .collect(),
            cores,
        }
    }

    /// `I_lp_sound(t) = Σ_{i ∈ lp(k)} W_i(t)` for a response window of
    /// scaled length `window_scaled` (`m·t`), in plain time units —
    /// monotone non-decreasing in the window, as the fixed point requires.
    pub fn interference(&self, window_scaled: u128) -> u128 {
        self.lp
            .iter()
            .map(|&(deadline_scaled, volume, period)| {
                interfering_workload(window_scaled, deadline_scaled, volume, period, self.cores)
            })
            .sum()
    }

    /// `true` when there are no lower-priority tasks (no blocking at all).
    pub fn is_empty(&self) -> bool {
        self.lp.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_model::{DagBuilder, DagTask};

    fn single(wcet: u64, period: u64) -> DagTask {
        let mut b = DagBuilder::new();
        b.add_node(wcet);
        DagTask::with_implicit_deadline(b.build().unwrap(), period).unwrap()
    }

    #[test]
    fn no_lower_priority_tasks_no_interference() {
        let sound = SoundBlocking::new(&[], 4);
        assert!(sound.is_empty());
        assert_eq!(sound.interference(1_000_000), 0);
    }

    #[test]
    fn single_lp_task_matches_workload_bound() {
        // m = 1, lp task vol = 4, T = D = 10: a window of 10 admits the
        // carry-in job plus one full job's worth of workload.
        let sound = SoundBlocking::new(&[single(4, 10)], 1);
        assert_eq!(
            sound.interference(10),
            interfering_workload(10, 10, 4, 10, 1)
        );
        // x = 10 + 10 − 4 = 16 → 1 full job (4) + min(4, 6) = 8.
        assert_eq!(sound.interference(10), 8);
    }

    #[test]
    fn sums_over_all_lower_priority_tasks() {
        let tasks = [single(4, 10), single(6, 30)];
        let sound = SoundBlocking::new(&tasks, 2);
        let expected: u128 = tasks
            .iter()
            .map(|t| {
                interfering_workload(
                    40,
                    2 * t.deadline() as u128,
                    t.dag().volume(),
                    t.period(),
                    2,
                )
            })
            .sum();
        assert_eq!(sound.interference(40), expected);
    }

    #[test]
    fn monotone_in_window() {
        let sound = SoundBlocking::new(&[single(4, 10), single(7, 13)], 2);
        let mut last = 0;
        for window in 0..500u128 {
            let i = sound.interference(window);
            assert!(i >= last, "interference must be monotone in the window");
            last = i;
        }
    }

    #[test]
    fn from_parts_matches_new() {
        let tasks = [single(4, 10), single(6, 30)];
        let direct = SoundBlocking::new(&tasks, 3);
        let parts = SoundBlocking::from_parts(
            tasks
                .iter()
                .map(|t| (t.dag().volume(), t.period(), t.deadline())),
            3,
        );
        assert_eq!(direct, parts);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = SoundBlocking::new(&[], 0);
    }
}
