//! Lower-priority blocking bounds `Δ^m_k` and `Δ^{m−1}_k`.
//!
//! Under limited preemption, a task can be blocked by non-preemptive
//! regions of **lower-priority** tasks: once when it is released (all `m`
//! cores may have just started lower-priority NPRs — `Δ^m`) and once per
//! preemption (at most `m−1` cores, since the task itself holds one —
//! `Δ^{m−1}`); paper Eq. (3):
//!
//! ```text
//! I_lp_k = Δ^m_k + p_k · Δ^{m−1}_k
//! ```
//!
//! Three bounds are provided:
//!
//! * [`lpmax`] — Eq. (5), precedence-oblivious;
//! * [`mu`] + [`scenarios`] — Eqs. (6)–(8), precedence-aware (the LP-ILP
//!   method), with both combinatorial solvers and the paper's verbatim ILP
//!   formulations ([`paper_ilp`]);
//! * [`sound`] — the corrected term of the LP-sound method: Eq. (3)'s
//!   event counting is provably optimistic (newly-started lower-priority
//!   NPRs on cores the DAG leaves idle; Nasri et al., ECRTS 2019), so the
//!   sound bound charges the full lower-priority carry-in workload of the
//!   window instead. It is window-dependent, hence not a
//!   [`BlockingBounds`] pair — the fixed point evaluates it per iterate.

pub mod lpmax;
pub mod mu;
pub mod paper_ilp;
pub mod scenarios;
pub mod sound;

use rta_model::Time;

/// The pair of blocking bounds used by Eq. (3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockingBounds {
    /// `Δ^m_k`: blocking on the first NPR (task release).
    pub delta_m: Time,
    /// `Δ^{m−1}_k`: blocking at each later preemption point.
    pub delta_m_minus_one: Time,
}

impl BlockingBounds {
    /// The lower-priority interference `I_lp = Δ^m + p·Δ^{m−1}` for a given
    /// preemption count `p` (paper Eq. (3)), in plain time units.
    pub fn interference(&self, preemptions: u128) -> u128 {
        self.delta_m as u128 + preemptions * self.delta_m_minus_one as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interference_formula() {
        let b = BlockingBounds {
            delta_m: 19,
            delta_m_minus_one: 15,
        };
        assert_eq!(b.interference(0), 19);
        assert_eq!(b.interference(3), 19 + 3 * 15);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(BlockingBounds::default().interference(10), 0);
    }
}
