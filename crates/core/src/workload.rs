//! Higher-priority interference: the DAG workload bound of Melani et al.
//!
//! The inter-task interference term of Eq. (2), `I_hp_k = Σ_{i∈hp(k)}
//! W_i(R_k)`, uses the upper bound on the workload an interfering DAG task
//! `τ_i` can execute inside **any** window of length `L` (Melani et al.,
//! ECRTS 2015):
//!
//! ```text
//! W_i(L) = ⌊(L + R_i − vol_i/m) / T_i⌋ · vol_i
//!        + min( vol_i , m · ((L + R_i − vol_i/m) mod T_i) )
//! ```
//!
//! The worst case aligns the carry-in job so that it finishes exactly `R_i`
//! after its release with its last `vol_i/m` units executing at full
//! parallelism `m`, and packs subsequent jobs as early as possible.
//!
//! # Scaled arithmetic
//!
//! `vol_i/m` is rational; to stay exact, windows and response times flow
//! through this module **scaled by `m`** (a value `x` represents `x/m` time
//! units). With `λ = m·L` and `r_i = m·R_i`:
//!
//! ```text
//! x    = λ + r_i − vol_i          (scaled argument, ≥ 0 whenever r_i ≥ vol_i)
//! W    = ⌊x / (m·T_i)⌋ · vol_i + min(vol_i, x mod (m·T_i))
//! ```
//!
//! where the second term is already in plain time units because the `m·(…
//! mod T_i)` factor of the original formula exactly cancels the `1/m`
//! scaling of the remainder. The returned workload is therefore a plain
//! integer number of execution units.

use rta_model::Time;

/// Workload upper bound `W_i(L)` of one interfering task in a window.
///
/// * `window_scaled` — the window length `L`, scaled by the core count
///   (`m·L`).
/// * `response_scaled` — the interfering task's own response-time bound
///   `R_i`, scaled by the core count (`m·R_i`).
/// * `volume` — `vol(G_i)` in plain time units.
/// * `period` — `T_i` in plain time units.
/// * `cores` — `m`.
///
/// Returns the workload in **plain time units**.
///
/// # Panics
///
/// Panics if `period == 0` or `cores == 0`.
pub fn interfering_workload(
    window_scaled: u128,
    response_scaled: u128,
    volume: Time,
    period: Time,
    cores: usize,
) -> u128 {
    assert!(period > 0, "period must be positive");
    assert!(cores > 0, "cores must be positive");
    let x = (window_scaled + response_scaled).saturating_sub(volume as u128);
    let scaled_period = cores as u128 * period as u128;
    let full_jobs = x / scaled_period;
    let remainder = x % scaled_period;
    full_jobs * volume as u128 + remainder.min(volume as u128)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation in f64, straight from the paper's formula.
    fn reference(window: f64, response: f64, volume: f64, period: f64, m: f64) -> f64 {
        let x = window + response - volume / m;
        if x < 0.0 {
            return 0.0;
        }
        let full = (x / period).floor();
        full * volume + (m * (x - full * period)).min(volume)
    }

    #[test]
    fn zero_window_gives_carry_in_only() {
        // L = 0: x = R_i − vol/m. With R_i = vol/m the workload is 0.
        let w = interfering_workload(0, 40, 40, 100, 1);
        assert_eq!(w, 0);
    }

    #[test]
    fn single_core_sequential_task() {
        // m = 1, vol = 4, T = 10, R = 4 (task alone). Window 10 → x = 10 +
        // 4 − 4 = 10 → 1 full job (4) + min(4, 0) = 4.
        let w = interfering_workload(10, 4, 4, 10, 1);
        assert_eq!(w, 4);
        // Window 16 → x = 16: 1 full job + min(4, 6) = 8.
        let w = interfering_workload(16, 4, 4, 10, 1);
        assert_eq!(w, 8);
    }

    #[test]
    fn carry_in_truncates_at_volume() {
        // Large response time: the carry term saturates at vol.
        let w = interfering_workload(0, 1000, 7, 1000, 2);
        // x = 1000 − 7 = 993, m·T = 2000, full = 0, min(7, 993) = 7.
        assert_eq!(w, 7);
    }

    #[test]
    fn matches_float_reference_on_grid() {
        let m = 4usize;
        for vol in [1u64, 5, 17, 40] {
            for period in [5u64, 13, 50] {
                // Response bound at least vol/m, scaled by m: r ≥ vol.
                for r_scaled in [vol as u128, (vol + 3) as u128 * 2, 97] {
                    if r_scaled < vol as u128 {
                        continue;
                    }
                    for window_scaled in [0u128, 1, 7, 40, 173, 1000] {
                        let exact = interfering_workload(window_scaled, r_scaled, vol, period, m);
                        let approx = reference(
                            window_scaled as f64 / m as f64,
                            r_scaled as f64 / m as f64,
                            vol as f64,
                            period as f64,
                            m as f64,
                        );
                        assert!(
                            (exact as f64 - approx).abs() < 1e-6,
                            "vol={vol} T={period} r={r_scaled} λ={window_scaled}: {exact} vs {approx}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn monotone_in_window() {
        let mut last = 0;
        for window in 0..500u128 {
            let w = interfering_workload(window, 30, 12, 7, 3);
            assert!(w >= last, "W must be non-decreasing in the window");
            last = w;
        }
    }

    #[test]
    fn monotone_in_response_time() {
        let mut last = 0;
        for r in 12..300u128 {
            let w = interfering_workload(100, r, 12, 7, 3);
            assert!(w >= last, "W must be non-decreasing in R_i");
            last = w;
        }
    }

    #[test]
    fn negative_argument_clamps_to_zero() {
        // r < vol (cannot normally happen, but the guard must hold).
        let w = interfering_workload(0, 3, 10, 5, 2);
        assert_eq!(w, 0);
    }

    #[test]
    fn long_window_approaches_utilization() {
        // Over many periods the bound is ≈ window·vol/T.
        let vol = 10u64;
        let period = 40u64;
        let m = 2usize;
        let window_scaled = 2 * 40 * 1000; // window = 40 000 time units
        let w = interfering_workload(window_scaled, vol as u128, vol, period, m);
        let expected = 1000 * vol as u128; // 1000 jobs
        assert!(w >= expected && w <= expected + vol as u128);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let _ = interfering_workload(0, 0, 1, 0, 1);
    }
}
