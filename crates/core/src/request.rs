//! The unified analysis API: one request in, one outcome out.
//!
//! Historically the crate grew four ad-hoc entry points — `analyze_all`
//! (full reports), `analyze_with` (caller-owned cache), `analyze_verdicts`
//! (dominance-short-circuited flags) and `verdicts_with_bounds` (flags +
//! per-task bounds) — each hard-coding one point in the same small design
//! space: *which methods*, *which platform*, *bounds or verdicts only*.
//! [`AnalysisRequest`] names that space explicitly and resolves every
//! combination to a single result type, [`AnalysisOutcome`]:
//!
//! * **verdict-only requests** (`want_bounds == false`) run the
//!   method-dominance chain of the old verdict fast path — FP-ideal first
//!   (settling the whole request when it fails), LP-ILP answered from
//!   LP-max's positive verdict, LP-sound on its own combinatorics-free
//!   fixed point — so a sweep cell or an admission-control server pays the
//!   combinatorial blocking machinery only when a verdict actually needs
//!   it;
//! * **bound-carrying requests** (`want_bounds == true`) run every
//!   requested method's own fixed point and return the per-task response
//!   bounds of the analyzed prefix — what empirical validation and clients
//!   that act on slack need.
//!
//! Both shapes share one [`TaskSetCache`] per task set; [`evaluate_with`]
//! lets callers share it across requests too. The four legacy entry points
//! survive as thin `#[deprecated]` wrappers over this module, pinned
//! bit-identical by the crate's proptests.
//!
//! The request derives [`Hash`]/[`Eq`], so it doubles as the memo key of
//! the admission-control LRU ([`crate::lru::AnalysisLru`]) and as the wire
//! contract of `repro serve`.
//!
//! [`evaluate_with`]: AnalysisRequest::evaluate_with
//!
//! # Example
//!
//! ```
//! use rta_analysis::{AnalysisRequest, Method};
//! use rta_model::examples::figure1_task_set;
//!
//! let task_set = figure1_task_set();
//! let outcome = AnalysisRequest::new(4).evaluate(&task_set);
//! // All six methods accept the paper's running example on 4 cores.
//! assert!(outcome.verdicts().iter().all(|&ok| ok));
//! assert_eq!(outcome.verdict(Method::LpSound), Some(true));
//!
//! // Bounds on request: per-task response bounds of the analyzed prefix.
//! let outcome = AnalysisRequest::new(4)
//!     .with_methods([Method::LpIlp])
//!     .with_bounds(true)
//!     .evaluate(&task_set);
//! let bounds = outcome.outcomes()[0].bounds.as_ref().unwrap();
//! assert_eq!(bounds.len(), task_set.len());
//! ```

use crate::cache::TaskSetCache;
use crate::config::{AnalysisConfig, Method, MuSolver, RhoSolver, ScenarioSpace};
use crate::report::ResponseBound;
use crate::rta;
use rta_model::TaskSet;

/// One analysis question, fully specified: task-set-independent platform
/// and method selection plus the solver knobs every method shares.
///
/// Requests are cheap to clone and hash — the admission-control layers key
/// their memoization on `(task-set hash, request)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AnalysisRequest {
    /// Number of identical cores `m ≥ 1`.
    pub cores: usize,
    /// The methods to answer, in answer order. Duplicates are allowed and
    /// answered from one evaluation each.
    pub methods: Vec<Method>,
    /// `true` to materialize per-task response bounds (each requested
    /// method then runs its own fixed point); `false` for verdicts only,
    /// short-circuited through the method-dominance chain.
    pub want_bounds: bool,
    /// Solver for `µ_i[c]` (LP-ILP only).
    pub mu_solver: MuSolver,
    /// Solver for `ρ_k[s_l]` (LP-ILP only).
    pub rho_solver: RhoSolver,
    /// Scenario space for `Δ^m` / `Δ^{m−1}` (LP-ILP only).
    pub scenario_space: ScenarioSpace,
    /// The final-NPR preemption-window refinement (see
    /// [`AnalysisConfig::final_npr_refinement`]).
    pub final_npr_refinement: bool,
}

impl AnalysisRequest {
    /// A verdict-only request for all six methods with default solvers.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn new(cores: usize) -> Self {
        assert!(cores >= 1, "at least one core required");
        Self {
            cores,
            methods: Method::ALL.to_vec(),
            want_bounds: false,
            mu_solver: MuSolver::default(),
            rho_solver: RhoSolver::default(),
            scenario_space: ScenarioSpace::default(),
            final_npr_refinement: false,
        }
    }

    /// The request equivalent of one legacy [`AnalysisConfig`]: that
    /// configuration's single method, bounds included iff `want_bounds`.
    /// This is the migration shim the deprecated wrappers are built from.
    pub fn for_config(config: &AnalysisConfig, want_bounds: bool) -> Self {
        Self {
            cores: config.cores,
            methods: vec![config.method],
            want_bounds,
            mu_solver: config.mu_solver,
            rho_solver: config.rho_solver,
            scenario_space: config.scenario_space,
            final_npr_refinement: config.final_npr_refinement,
        }
    }

    /// Selects the methods to answer (in answer order).
    #[must_use]
    pub fn with_methods(mut self, methods: impl IntoIterator<Item = Method>) -> Self {
        self.methods = methods.into_iter().collect();
        self
    }

    /// Requests (or drops) per-task response bounds.
    #[must_use]
    pub fn with_bounds(mut self, want_bounds: bool) -> Self {
        self.want_bounds = want_bounds;
        self
    }

    /// Selects the `µ_i[c]` solver.
    #[must_use]
    pub fn with_mu_solver(mut self, solver: MuSolver) -> Self {
        self.mu_solver = solver;
        self
    }

    /// Selects the `ρ_k[s_l]` solver.
    #[must_use]
    pub fn with_rho_solver(mut self, solver: RhoSolver) -> Self {
        self.rho_solver = solver;
        self
    }

    /// Selects the scenario space.
    #[must_use]
    pub fn with_scenario_space(mut self, space: ScenarioSpace) -> Self {
        self.scenario_space = space;
        self
    }

    /// Enables the final-NPR preemption-window refinement.
    #[must_use]
    pub fn with_final_npr_refinement(mut self, enabled: bool) -> Self {
        self.final_npr_refinement = enabled;
        self
    }

    /// The legacy configuration this request implies for one method.
    pub fn config_for(&self, method: Method) -> AnalysisConfig {
        AnalysisConfig {
            cores: self.cores,
            method,
            mu_solver: self.mu_solver,
            rho_solver: self.rho_solver,
            scenario_space: self.scenario_space,
            final_npr_refinement: self.final_npr_refinement,
        }
    }

    /// Evaluates the request against a task set, building a
    /// [`TaskSetCache`] internally.
    pub fn evaluate(&self, task_set: &TaskSet) -> AnalysisOutcome {
        let cache = TaskSetCache::new(task_set, self.cores);
        self.evaluate_with(&cache)
    }

    /// Evaluates the request through a caller-owned cache (shared across
    /// requests over the same task set).
    ///
    /// # Panics
    ///
    /// Panics if `self.cores > cache.max_cores()`.
    pub fn evaluate_with(&self, cache: &TaskSetCache<'_>) -> AnalysisOutcome {
        assert!(
            self.cores <= cache.max_cores(),
            "request wants {} cores but the cache was built for {}",
            self.cores,
            cache.max_cores()
        );
        if self.methods.is_empty() {
            return AnalysisOutcome {
                cores: self.cores,
                outcomes: Vec::new(),
            };
        }
        let outcomes = if self.want_bounds {
            self.evaluate_bounds(cache)
        } else {
            self.evaluate_verdicts(cache)
        };
        AnalysisOutcome {
            cores: self.cores,
            outcomes,
        }
    }

    /// The bound-carrying shape: each distinct method runs its own fixed
    /// point once; duplicates share the evaluation.
    fn evaluate_bounds(&self, cache: &TaskSetCache<'_>) -> Vec<MethodOutcome> {
        let mut memo: [Option<(bool, Vec<ResponseBound>)>; 6] = [const { None }; 6];
        self.methods
            .iter()
            .map(|&method| {
                let slot = &mut memo[method_index(method)];
                let (schedulable, bounds) = slot
                    .get_or_insert_with(|| rta::bounds_with(cache, &self.config_for(method)))
                    .clone();
                MethodOutcome {
                    method,
                    schedulable,
                    bounds: Some(bounds),
                }
            })
            .collect()
    }

    /// The verdict-only shape: the method-dominance chain.
    ///
    /// All six methods iterate the same monotone fixed-point shape and
    /// differ only in the interference terms it consumes, giving (see the
    /// extended argument on the legacy `analyze_verdicts`, the dominance
    /// sections of [`crate::gen_sporadic`] and [`crate::long_paths`]):
    ///
    /// ```text
    /// LP-max schedulable ⇒ LP-ILP schedulable ⇒ FP-ideal schedulable
    /// LP-sound schedulable ⇒ FP-ideal schedulable
    /// Gen-sporadic schedulable ⇒ FP-ideal schedulable
    /// FP-ideal schedulable ⇒ Long-paths schedulable
    /// ```
    ///
    /// FP-ideal is therefore always evaluated first — it touches no
    /// blocking machinery at all, and a negative verdict settles every
    /// method of the request except Long-paths. LP-ILP is answered from
    /// LP-max's cheap positive verdict when possible; its own combinatorial
    /// blocking runs only when FP-ideal passes and LP-max fails. LP-sound
    /// and Gen-sporadic, when requested and not settled by FP-ideal, run
    /// their own (combinatorics-free) fixed points. Long-paths is the one
    /// method FP-ideal dominates in the *opposite* direction: its per-task
    /// bound never exceeds FP-ideal's, so an FP-ideal **pass** settles it
    /// positively — while an FP-ideal *failure* settles nothing (the
    /// deadline-window rescue of [`crate::long_paths`] can accept sets the
    /// Graham recurrence diverges on), so only then does it run its own
    /// fixed point.
    fn evaluate_verdicts(&self, cache: &TaskSetCache<'_>) -> Vec<MethodOutcome> {
        let wants = |method: Method| self.methods.contains(&method);
        let fp = rta::verdict_with(cache, &self.config_for(Method::FpIdeal));
        let (ilp, max, sound, gen) = if !fp {
            (false, false, false, false)
        } else {
            let max = if wants(Method::LpMax) || wants(Method::LpIlp) {
                rta::verdict_with(cache, &self.config_for(Method::LpMax))
            } else {
                false
            };
            let ilp = if !wants(Method::LpIlp) {
                false
            } else if max {
                true // dominated: LP-max schedulable ⇒ LP-ILP schedulable
            } else {
                rta::verdict_with(cache, &self.config_for(Method::LpIlp))
            };
            let sound = wants(Method::LpSound)
                && rta::verdict_with(cache, &self.config_for(Method::LpSound));
            let gen = wants(Method::GenSporadic)
                && rta::verdict_with(cache, &self.config_for(Method::GenSporadic));
            (ilp, max, sound, gen)
        };
        let long = wants(Method::LongPaths)
            && (fp || rta::verdict_with(cache, &self.config_for(Method::LongPaths)));
        self.methods
            .iter()
            .map(|&method| MethodOutcome {
                method,
                schedulable: match method {
                    Method::FpIdeal => fp,
                    Method::LpIlp => ilp,
                    Method::LpMax => max,
                    Method::LpSound => sound,
                    Method::LongPaths => long,
                    Method::GenSporadic => gen,
                },
                bounds: None,
            })
            .collect()
    }
}

fn method_index(method: Method) -> usize {
    Method::ALL
        .iter()
        .position(|&m| m == method)
        .expect("every method appears in Method::ALL")
}

/// The verdict (and optional bounds) of one requested method.
#[derive(Clone, Debug, PartialEq)]
pub struct MethodOutcome {
    /// The method this outcome answers.
    pub method: Method,
    /// `true` iff every task met its deadline bound.
    pub schedulable: bool,
    /// Per-task response bounds of the analyzed prefix, highest priority
    /// first — up to and including the first unschedulable task. `Some`
    /// iff the request asked for bounds; when `schedulable` is false the
    /// last entry is the first iterate that crossed its deadline.
    pub bounds: Option<Vec<ResponseBound>>,
}

impl MethodOutcome {
    /// The bound of the `k`-th highest-priority task, if the request asked
    /// for bounds and the analyzed prefix reached it (mirrors
    /// [`SetVerdict::bound`](crate::SetVerdict::bound)).
    pub fn bound(&self, k: usize) -> Option<ResponseBound> {
        self.bounds.as_ref().and_then(|b| b.get(k).copied())
    }
}

/// What an [`AnalysisRequest`] resolves to: one [`MethodOutcome`] per
/// requested method, in request order.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalysisOutcome {
    /// Core count the request ran with.
    pub cores: usize,
    outcomes: Vec<MethodOutcome>,
}

impl AnalysisOutcome {
    /// Assembles an outcome from parts (the LRU reconstructs cached
    /// outcomes method by method).
    pub(crate) fn from_parts(cores: usize, outcomes: Vec<MethodOutcome>) -> Self {
        Self { cores, outcomes }
    }

    /// The per-method outcomes, in request order.
    pub fn outcomes(&self) -> &[MethodOutcome] {
        &self.outcomes
    }

    /// The schedulability flags, in request order.
    pub fn verdicts(&self) -> Vec<bool> {
        self.outcomes.iter().map(|o| o.schedulable).collect()
    }

    /// The verdict of the first outcome answering `method`, if any.
    pub fn verdict(&self, method: Method) -> Option<bool> {
        self.outcomes
            .iter()
            .find(|o| o.method == method)
            .map(|o| o.schedulable)
    }

    /// The first outcome answering `method`, if any.
    pub fn outcome(&self, method: Method) -> Option<&MethodOutcome> {
        self.outcomes.iter().find(|o| o.method == method)
    }

    /// Consumes the outcome into its per-method parts.
    pub fn into_outcomes(self) -> Vec<MethodOutcome> {
        self.outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_model::examples::figure1_task_set;

    #[test]
    fn default_request_answers_all_methods() {
        let ts = figure1_task_set();
        let outcome = AnalysisRequest::new(4).evaluate(&ts);
        assert_eq!(outcome.cores, 4);
        assert_eq!(outcome.outcomes().len(), 6);
        for (mo, &method) in outcome.outcomes().iter().zip(Method::ALL.iter()) {
            assert_eq!(mo.method, method);
            assert!(mo.schedulable);
            assert!(mo.bounds.is_none());
        }
    }

    #[test]
    fn bounds_are_materialized_on_request() {
        let ts = figure1_task_set();
        let outcome = AnalysisRequest::new(4).with_bounds(true).evaluate(&ts);
        for mo in outcome.outcomes() {
            let bounds = mo.bounds.as_ref().expect("bounds requested");
            assert_eq!(bounds.len(), ts.len(), "{}", mo.method);
        }
    }

    #[test]
    fn duplicate_methods_share_one_evaluation() {
        let ts = figure1_task_set();
        let outcome = AnalysisRequest::new(4)
            .with_methods([Method::LpIlp, Method::LpIlp])
            .with_bounds(true)
            .evaluate(&ts);
        let [a, b] = outcome.outcomes() else {
            panic!("two outcomes expected");
        };
        assert_eq!(a, b);
    }

    #[test]
    fn verdict_lookup_by_method() {
        let ts = figure1_task_set();
        let outcome = AnalysisRequest::new(4)
            .with_methods([Method::FpIdeal])
            .evaluate(&ts);
        assert_eq!(outcome.verdict(Method::FpIdeal), Some(true));
        assert_eq!(outcome.verdict(Method::LpIlp), None);
        assert!(outcome.outcome(Method::LpIlp).is_none());
    }

    #[test]
    fn empty_method_list_is_an_empty_outcome() {
        let ts = figure1_task_set();
        let outcome = AnalysisRequest::new(4).with_methods([]).evaluate(&ts);
        assert!(outcome.outcomes().is_empty());
        assert!(outcome.verdicts().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = AnalysisRequest::new(0);
    }

    #[test]
    fn request_is_a_hashable_memo_key() {
        use std::collections::HashMap;
        let mut memo: HashMap<AnalysisRequest, u32> = HashMap::new();
        memo.insert(AnalysisRequest::new(4), 1);
        memo.insert(AnalysisRequest::new(4).with_bounds(true), 2);
        assert_eq!(memo.get(&AnalysisRequest::new(4)), Some(&1));
        assert_eq!(memo.len(), 2);
    }
}
