//! Per-task-set precomputation: the analysis cache.
//!
//! The paper stresses that the per-task worst-case workloads `µ_i[c]` are a
//! property of the task alone, computable "at compile time" (Section V-A) —
//! independent of which task is under analysis, of the platform slice and
//! of the analysis method. The same holds for every other quantity the
//! fixed-point iteration touches repeatedly: longest paths, volumes,
//! preemption-point counts, the "can run in parallel" adjacency, the LP-max
//! WCET pools of Eq. (5) and the per-cardinality scenario maxima behind
//! `Δ^m` / `Δ^{m−1}` (Eq. (8)).
//!
//! [`TaskSetCache`] materializes all of them **once per task set**:
//!
//! * cheap per-task facts (longest path, volume, preemption points, periods,
//!   deadlines, the single-sink WCET used by the final-NPR refinement) are
//!   captured eagerly at construction;
//! * everything combinatorial — parallel adjacency, µ-arrays, LP-max prefix
//!   sums, and the per-cardinality `max ρ` rows — sits behind
//!   [`OnceCell`]s and is computed on first use, then shared by every
//!   subsequent query. An unschedulable set that dies at the
//!   highest-priority task therefore pays no more than the uncached
//!   analysis did, while a batched [`crate::analyze_all`] over all three
//!   methods pays the combinatorial cost exactly once.
//!
//! µ-arrays are computed at the cache's `max_cores` and *sliced* for
//! smaller platform slices (each entry is an independent fixed-cardinality
//! clique search, so the array at `m` restricts to the array at any
//! `c ≤ m`). The Δ work is shared the same way: one `max ρ` value per
//! cardinality `c ∈ 1..=m` serves `Δ^m`, `Δ^{m−1}`, the
//! [`ScenarioSpace::PaperExact`] and [`ScenarioSpace::Extended`] spaces, and
//! every method reading them. The combinatorial solvers draw their working
//! memory from **per-thread** scratch buffers (the thread-local
//! `CLIQUE_SCRATCH` / `RHO_SCRATCH` statics) shared across every task set
//! the thread analyzes, so a streaming sweep's inner loops allocate
//! nothing once its workers are warm — not merely nothing per query, but
//! nothing per *task set*. Scenario lists are not cached here at all:
//! they depend only on the core count, so they come from the
//! **process-global** [`PartitionTable`] — enumerated once per process,
//! shared by every task set and worker thread of a whole sweep campaign.
//!
//! The cache is deliberately **single-threaded** (interior mutability via
//! [`OnceCell`] / [`RefCell`]): sweep campaigns parallelize over task sets,
//! with each worker building its own cache, so nothing here needs
//! synchronization.
//!
//! # Example
//!
//! ```
//! use rta_analysis::cache::TaskSetCache;
//! use rta_analysis::{AnalysisRequest, MuSolver};
//! use rta_model::examples::figure1_task_set;
//!
//! let task_set = figure1_task_set();
//! let cache = TaskSetCache::new(&task_set, 4);
//! // µ of τ3 (Table I), computed once and shared by every query below.
//! assert_eq!(cache.mu(3, MuSolver::default()), &[6, 7, 9, 11]);
//! // All six methods answered from the shared tables in one request.
//! let outcome = AnalysisRequest::new(4).with_bounds(true).evaluate_with(&cache);
//! assert!(outcome.verdicts().iter().all(|&ok| ok));
//! ```

use crate::blocking::scenarios::{max_rho_over, max_rho_over_refs, rho_suffix_dp, RhoScratch};
use crate::blocking::sound::SoundBlocking;
use crate::blocking::{mu, BlockingBounds};
use crate::config::{AnalysisConfig, Method, MuSolver, RhoSolver, ScenarioSpace};
use rta_combinatorics::{BitSet, CliqueScratch, PartitionTable};
use rta_model::{parallel_adjacency, TaskSet, Time};
use std::cell::{OnceCell, RefCell};

thread_local! {
    /// The calling thread's reusable clique-search working memory. Scratch
    /// buffers used to live inside each [`TaskSetCache`], which made their
    /// allocations once-per-task-set; a streaming sweep builds thousands of
    /// caches per worker, so the scratch now lives **per thread** and is
    /// reused across every task set the worker claims (sweep workers are
    /// threads, and the serial driver keeps one scratch for the whole
    /// campaign). The buffers are cleared by each solver invocation and
    /// never influence a result — equivalence with the uncached path stays
    /// pinned by `tests/cache_equivalence.rs`.
    static CLIQUE_SCRATCH: RefCell<CliqueScratch> = RefCell::new(CliqueScratch::new());
    /// Per-thread `ρ` assignment scratch, shared across task sets like
    /// [`CLIQUE_SCRATCH`].
    static RHO_SCRATCH: RefCell<RhoScratch> = RefCell::new(RhoScratch::new());
}

/// Quantities of one task that every analysis reads, captured eagerly.
#[derive(Clone, Debug)]
struct TaskFacts {
    longest_path: Time,
    volume: Time,
    preemption_points: usize,
    period: Time,
    deadline: Time,
    /// WCET of the sole sink when the DAG has exactly one (the final-NPR
    /// preemption-window refinement applies only then).
    single_sink_wcet: Option<Time>,
}

/// Lazily-computed µ-arrays for one `µ` solver choice. The cell vector
/// itself is allocated on first touch, so untouched solver combinations
/// (and FP-ideal-only analyses) cost nothing at construction.
struct MuSlot {
    solver: MuSolver,
    /// `per_task[i]`: `µ_i[1..=max_cores]` of task `i`.
    per_task: OnceCell<Vec<OnceCell<Vec<Time>>>>,
}

/// Lazily-computed per-cardinality scenario maxima for one solver pair;
/// cell storage allocated on first touch like [`MuSlot`]'s.
struct RhoSlot {
    mu_solver: MuSolver,
    rho_solver: RhoSolver,
    /// `per_task[k][c − 1]`: `max_{s_l ∈ e_c} ρ_k[s_l]` over the partitions
    /// of exactly `c`, with `lp(k)` as the candidate tasks.
    per_task: OnceCell<Vec<Vec<OnceCell<Time>>>>,
    /// `dp_columns[c − 1][k]`: the suffix-DP's `max ρ` over the
    /// **DP-eligible** scenarios of `e_c` for every task under analysis —
    /// computed once per cardinality column and shared by every `k`, so
    /// large platforms (m = 16) whose cardinality class mixes small and
    /// huge scenarios still amortize the small ones across tasks.
    dp_columns: OnceCell<Vec<OnceCell<Vec<Time>>>>,
}

/// Everything about a [`TaskSet`] that the response-time analysis can
/// precompute and share across tasks under analysis, platform slices and
/// methods. See the [module docs](self) for what is cached and when.
pub struct TaskSetCache<'ts> {
    task_set: &'ts TaskSet,
    max_cores: usize,
    facts: Vec<TaskFacts>,
    adjacency: Vec<OnceCell<Vec<BitSet>>>,
    mu: Vec<MuSlot>,
    rho: Vec<RhoSlot>,
    /// `lp_max[k]`: prefix sums of the pooled, descending lower-priority
    /// NPR WCETs — `prefix[c]` is Eq. (5)'s `Δ^c` for `c` up to the pool
    /// size (clamped at `max_cores`).
    lp_max: Vec<OnceCell<Vec<Time>>>,
    /// `long_paths[k]`: the vertex-disjoint chain decomposition of task
    /// `k`'s DAG ([`rta_model::Dag::long_path_decomposition`]) — the
    /// platform-independent input of [`Method::LongPaths`], computed on
    /// first use and shared across core slices.
    long_paths: Vec<OnceCell<Vec<Time>>>,
}

impl<'ts> TaskSetCache<'ts> {
    /// Builds the cache for platform slices of up to `max_cores` cores.
    ///
    /// Captures the cheap per-task facts immediately; the combinatorial
    /// tables (for **every** solver combination — they cost nothing until
    /// queried) fill in lazily.
    ///
    /// # Panics
    ///
    /// Panics if `max_cores == 0`.
    pub fn new(task_set: &'ts TaskSet, max_cores: usize) -> Self {
        assert!(max_cores >= 1, "at least one core required");
        let n = task_set.len();
        let facts = task_set
            .tasks()
            .iter()
            .map(|t| {
                let dag = t.dag();
                // The sole sink and its WCET, without materializing the
                // sink list (this runs for every generated set, also under
                // methods that never read it).
                let mut sinks = dag.nodes().filter(|&v| dag.successors(v).is_empty());
                let single_sink_wcet = match (sinks.next(), sinks.next()) {
                    (Some(only), None) => Some(dag.wcet(only)),
                    _ => None,
                };
                TaskFacts {
                    longest_path: dag.longest_path(),
                    volume: dag.volume(),
                    preemption_points: dag.preemption_points(),
                    period: t.period(),
                    deadline: t.deadline(),
                    single_sink_wcet,
                }
            })
            .collect();
        let mu_slots = [MuSolver::Clique, MuSolver::PaperIlp]
            .into_iter()
            .map(|solver| MuSlot {
                solver,
                per_task: OnceCell::new(),
            })
            .collect();
        let mut rho_slots = Vec::with_capacity(4);
        for mu_solver in [MuSolver::Clique, MuSolver::PaperIlp] {
            for rho_solver in [RhoSolver::Hungarian, RhoSolver::PaperIlp] {
                rho_slots.push(RhoSlot {
                    mu_solver,
                    rho_solver,
                    per_task: OnceCell::new(),
                    dp_columns: OnceCell::new(),
                });
            }
        }
        crate::metrics::CACHE_BUILDS.inc();
        Self {
            task_set,
            max_cores,
            facts,
            adjacency: (0..n).map(|_| OnceCell::new()).collect(),
            mu: mu_slots,
            rho: rho_slots,
            lp_max: (0..n).map(|_| OnceCell::new()).collect(),
            long_paths: (0..n).map(|_| OnceCell::new()).collect(),
        }
    }

    /// Builds a cache sized for every configuration in `configs` (the
    /// largest core count wins; defaults to 1 when `configs` is empty).
    pub fn for_configs(task_set: &'ts TaskSet, configs: &[AnalysisConfig]) -> Self {
        let max_cores = configs.iter().map(|c| c.cores).max().unwrap_or(1);
        Self::new(task_set, max_cores)
    }

    /// The task set this cache was built over.
    pub fn task_set(&self) -> &'ts TaskSet {
        self.task_set
    }

    /// The largest platform slice the cache serves; every query must stay
    /// at or below it.
    pub fn max_cores(&self) -> usize {
        self.max_cores
    }

    /// Longest (critical) path `L_k` of task `k`.
    pub fn longest_path(&self, k: usize) -> Time {
        self.facts[k].longest_path
    }

    /// Volume `vol(G_k)` of task `k`.
    pub fn volume(&self, k: usize) -> Time {
        self.facts[k].volume
    }

    /// Preemption-point count `q_k = |V_k| − 1` of task `k`.
    pub fn preemption_points(&self, k: usize) -> usize {
        self.facts[k].preemption_points
    }

    /// Period `T_k` of task `k`.
    pub fn period(&self, k: usize) -> Time {
        self.facts[k].period
    }

    /// Relative deadline `D_k` of task `k`.
    pub fn deadline(&self, k: usize) -> Time {
        self.facts[k].deadline
    }

    /// WCET of the sole sink of task `k`'s DAG, when it has exactly one —
    /// the quantity the final-NPR preemption-window refinement subtracts.
    pub fn single_sink_wcet(&self, k: usize) -> Option<Time> {
        self.facts[k].single_sink_wcet
    }

    /// The long-chain decomposition `ℓ1 ≥ … ≥ ℓp` of task `k`'s DAG,
    /// computed on first use — what [`Method::LongPaths`]'s stall bound
    /// consumes. Platform-independent, so one cell serves every core slice.
    pub fn long_path_decomposition(&self, k: usize) -> &[Time] {
        self.long_paths[k].get_or_init(|| self.task_set.task(k).dag().long_path_decomposition())
    }

    /// The symmetric "can execute in parallel" adjacency of task `k`'s DAG,
    /// computed on first use.
    pub fn parallel_adjacency(&self, k: usize) -> &[BitSet] {
        self.adjacency[k].get_or_init(|| parallel_adjacency(self.task_set.task(k).dag()))
    }

    /// The µ-array `µ_k[1..=max_cores]` of task `k`, computed on first use
    /// with `solver` and shared by every later query. For a platform slice
    /// of `c < max_cores` cores, use the first `c` entries.
    pub fn mu(&self, k: usize, solver: MuSolver) -> &[Time] {
        let slot = self
            .mu
            .iter()
            .find(|s| s.solver == solver)
            .expect("every µ solver has a slot");
        let per_task = slot
            .per_task
            .get_or_init(|| (0..self.task_set.len()).map(|_| OnceCell::new()).collect());
        per_task[k].get_or_init(|| {
            crate::metrics::CACHE_MU_BUILDS.inc();
            match solver {
                MuSolver::Clique => {
                    let adjacency = self.parallel_adjacency(k);
                    CLIQUE_SCRATCH.with(|scratch| {
                        mu::mu_array_with(
                            self.task_set.task(k).dag(),
                            adjacency,
                            self.max_cores,
                            solver,
                            &mut scratch.borrow_mut(),
                        )
                    })
                }
                // The ILP solver reads the DAG directly; don't touch the
                // adjacency cell (or the clique scratch) on its behalf.
                MuSolver::PaperIlp => {
                    mu::mu_array(self.task_set.task(k).dag(), self.max_cores, solver)
                }
            }
        })
    }

    /// `max_{s_l ∈ e_cores} ρ_k[s_l]`: the best scenario over the partitions
    /// of exactly `cores`, with `lp(k)` as the candidate tasks. Memoized per
    /// `(k, cores)` and solver pair; 0 when no scenario is feasible.
    ///
    /// # Panics
    ///
    /// Panics if `cores > max_cores`.
    pub fn max_rho(
        &self,
        k: usize,
        cores: usize,
        mu_solver: MuSolver,
        rho_solver: RhoSolver,
    ) -> Time {
        assert!(
            cores <= self.max_cores,
            "cores = {cores} exceeds the cache's max_cores = {}",
            self.max_cores
        );
        if cores == 0 {
            return 0;
        }
        let slot = self
            .rho
            .iter()
            .find(|s| s.mu_solver == mu_solver && s.rho_solver == rho_solver)
            .expect("every solver pair has a slot");
        let n = self.task_set.len();
        let per_task = slot.per_task.get_or_init(|| {
            (0..n)
                .map(|_| (0..self.max_cores).map(|_| OnceCell::new()).collect())
                .collect()
        });
        *per_task[k][cores - 1].get_or_init(|| {
            crate::metrics::CACHE_RHO_BUILDS.inc();
            // Scenario lists come from the process-global partition table:
            // enumerated once per process, not once per task set (let alone
            // once per query) — see `rta_combinatorics::PartitionTable`.
            let scenarios = PartitionTable::scenarios(cores as u32);

            // Column mode: scenarios of small enough cardinality are solved
            // by one suffix DP per scenario, yielding the `max ρ` of
            // *every* task under analysis at once — `lp(k)` shrinks one
            // task per priority, so the n per-task problems are suffixes of
            // each other. Eligibility is **per scenario**: a cardinality
            // class that mixes DP-sized and huge scenarios (every `e_m` at
            // m = 16 does — partitions of cardinality > ~10 blow the
            // `2^|s|` state space) still amortizes its DP-sized majority
            // across all tasks via a memoized column, and only the large
            // remainder falls back to a per-task Hungarian solve.
            //
            // The analysis walks k in priority order and most generated
            // sets at high utilization fail at k = 0 without ever asking
            // for k ≥ 1, so the first query of a column is answered
            // individually; the DP kicks in at the second distinct k, when
            // the remaining n − 1 rows are known to be worth amortizing.
            let dp_eligible = |cardinality: usize| {
                cardinality < 63 && (1u64 << cardinality) <= 4 * (cardinality * n) as u64
            };
            let column_untouched = || {
                (0..n)
                    .filter(|&i| i != k)
                    .all(|i| per_task[i][cores - 1].get().is_none())
            };
            let eligible = scenarios
                .iter()
                .filter(|s| dp_eligible(s.cardinality()))
                .count();
            if rho_solver == RhoSolver::Hungarian && eligible > 0 && !column_untouched() {
                let dp_columns = slot
                    .dp_columns
                    .get_or_init(|| (0..self.max_cores).map(|_| OnceCell::new()).collect());
                let column = dp_columns[cores - 1].get_or_init(|| {
                    let mu_tail: Vec<&[Time]> = (1..n).map(|i| self.mu(i, mu_solver)).collect();
                    let mut best = vec![0; n];
                    for scenario in scenarios.iter().filter(|s| dp_eligible(s.cardinality())) {
                        for (b, v) in best.iter_mut().zip(rho_suffix_dp(scenario, &mu_tail)) {
                            if let Some(v) = v {
                                *b = (*b).max(v);
                            }
                        }
                    }
                    best
                });
                if eligible == scenarios.len() {
                    // The DP covered the whole class: the column is final,
                    // publish it to every sibling cell immediately.
                    for (k_other, &value) in column.iter().enumerate() {
                        if k_other != k {
                            // Already-initialized siblings hold the same value.
                            let _ = per_task[k_other][cores - 1].set(value);
                        }
                    }
                    return column[k];
                }
                // Mixed class: combine the shared DP column with a per-task
                // solve over the (few) scenarios too large for the DP.
                let rest: Vec<&rta_combinatorics::Partition> = scenarios
                    .iter()
                    .filter(|s| !dp_eligible(s.cardinality()))
                    .collect();
                let mu_refs: Vec<&[Time]> = (k + 1..n).map(|i| self.mu(i, mu_solver)).collect();
                return RHO_SCRATCH.with(|scratch| {
                    column[k].max(max_rho_over_refs(
                        &rest,
                        &mu_refs,
                        rho_solver,
                        &mut scratch.borrow_mut(),
                    ))
                });
            }

            let mu_refs: Vec<&[Time]> = (k + 1..n).map(|i| self.mu(i, mu_solver)).collect();
            RHO_SCRATCH.with(|scratch| {
                max_rho_over(scenarios, &mu_refs, rho_solver, &mut scratch.borrow_mut())
            })
        })
    }

    /// `Δ^cores_k` (Eq. (8)) over the chosen scenario space, derived from
    /// the memoized per-cardinality [`max_rho`](Self::max_rho) rows.
    pub fn delta(
        &self,
        k: usize,
        cores: usize,
        space: ScenarioSpace,
        mu_solver: MuSolver,
        rho_solver: RhoSolver,
    ) -> Time {
        match space {
            ScenarioSpace::PaperExact => self.max_rho(k, cores, mu_solver, rho_solver),
            ScenarioSpace::Extended => (1..=cores)
                .map(|c| self.max_rho(k, c, mu_solver, rho_solver))
                .max()
                .unwrap_or(0),
        }
    }

    /// The precedence-aware blocking bounds of task `k` (Eqs. (6)–(8)),
    /// from the cached µ and `max ρ` tables.
    pub fn lp_ilp_blocking(
        &self,
        k: usize,
        cores: usize,
        mu_solver: MuSolver,
        rho_solver: RhoSolver,
        space: ScenarioSpace,
    ) -> BlockingBounds {
        BlockingBounds {
            delta_m: self.delta(k, cores, space, mu_solver, rho_solver),
            delta_m_minus_one: if cores >= 2 {
                self.delta(k, cores - 1, space, mu_solver, rho_solver)
            } else {
                0
            },
        }
    }

    /// Prefix sums of the pooled descending lower-priority NPR WCETs of
    /// task `k` — `prefix[c]` is Eq. (5)'s sum of the `c` largest.
    fn lp_max_prefix(&self, k: usize) -> &[Time] {
        self.lp_max[k].get_or_init(|| {
            let mut pool: Vec<Time> = self
                .task_set
                .lower_priority(k)
                .iter()
                .flat_map(|t| t.dag().largest_wcets(self.max_cores))
                .collect();
            pool.sort_unstable_by(|a, b| b.cmp(a));
            pool.truncate(self.max_cores);
            let mut prefix = Vec::with_capacity(pool.len() + 1);
            prefix.push(0);
            for w in pool {
                prefix.push(prefix.last().copied().unwrap_or(0) + w);
            }
            prefix
        })
    }

    /// The LP-max blocking bounds of task `k` (Eq. (5)), from the cached
    /// prefix sums.
    ///
    /// # Panics
    ///
    /// Panics if `cores > max_cores` or `cores == 0`.
    pub fn lp_max_blocking(&self, k: usize, cores: usize) -> BlockingBounds {
        assert!(
            (1..=self.max_cores).contains(&cores),
            "cores = {cores} outside the cache's 1..={}",
            self.max_cores
        );
        let prefix = self.lp_max_prefix(k);
        let sum_of_largest = |count: usize| prefix[count.min(prefix.len() - 1)];
        BlockingBounds {
            delta_m: sum_of_largest(cores),
            delta_m_minus_one: sum_of_largest(cores - 1),
        }
    }

    /// The blocking bounds of task `k` under `config` — the cached
    /// equivalent of the per-method dispatch in [`crate::analyze`].
    pub fn blocking_for(&self, k: usize, config: &AnalysisConfig) -> Option<BlockingBounds> {
        match config.method {
            // LP-sound's corrected term is window-dependent, not a
            // (Δ^m, Δ^{m−1}) pair: see [`Self::sound_blocking_for`]. The
            // fully-preemptive competitor methods carry no blocking at all.
            Method::FpIdeal | Method::LpSound | Method::LongPaths | Method::GenSporadic => None,
            Method::LpMax => Some(self.lp_max_blocking(k, config.cores)),
            Method::LpIlp => Some(self.lp_ilp_blocking(
                k,
                config.cores,
                config.mu_solver,
                config.rho_solver,
                config.scenario_space,
            )),
        }
    }

    /// The sound, window-dependent lower-priority term of task `k`
    /// ([`crate::blocking::sound`]), assembled from the eagerly-captured
    /// per-task facts — no DAG is re-walked. `None` unless the
    /// configuration's method is [`Method::LpSound`].
    pub fn sound_blocking_for(&self, k: usize, config: &AnalysisConfig) -> Option<SoundBlocking> {
        (config.method == Method::LpSound).then(|| {
            SoundBlocking::from_parts(
                self.facts[k + 1..]
                    .iter()
                    .map(|f| (f.volume, f.period, f.deadline)),
                config.cores,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::lpmax::lp_max_blocking;
    use crate::blocking::mu::mu_array;
    use crate::blocking::scenarios::blocking_from_mu;
    use rta_model::examples::{figure1_task_set, TABLE_I};

    #[test]
    fn mu_matches_direct_computation_and_slices() {
        let ts = figure1_task_set();
        let cache = TaskSetCache::new(&ts, 8);
        for solver in [MuSolver::Clique, MuSolver::PaperIlp] {
            for k in 0..ts.len() {
                let full = cache.mu(k, solver);
                for c in 1..=8 {
                    assert_eq!(
                        full[..c],
                        mu_array(ts.task(k).dag(), c, solver),
                        "task {k}, c = {c}, {solver:?}"
                    );
                }
            }
        }
        // Tasks 1..=4 are the Figure 1 DAGs; their 4-core prefixes are Table I.
        for (i, row) in TABLE_I.iter().enumerate() {
            assert_eq!(&cache.mu(i + 1, MuSolver::Clique)[..4], row);
        }
    }

    #[test]
    fn deltas_match_uncached_blocking() {
        let ts = figure1_task_set();
        let cache = TaskSetCache::new(&ts, 8);
        for cores in 1..=8usize {
            for space in [ScenarioSpace::PaperExact, ScenarioSpace::Extended] {
                for k in 0..ts.len() {
                    let mu_arrays: Vec<Vec<Time>> = ts
                        .lower_priority(k)
                        .iter()
                        .map(|t| mu_array(t.dag(), cores, MuSolver::Clique))
                        .collect();
                    let uncached = blocking_from_mu(&mu_arrays, cores, RhoSolver::Hungarian, space);
                    let cached = cache.lp_ilp_blocking(
                        k,
                        cores,
                        MuSolver::Clique,
                        RhoSolver::Hungarian,
                        space,
                    );
                    assert_eq!(cached, uncached, "task {k}, m = {cores}, {space:?}");
                }
            }
        }
    }

    #[test]
    fn lp_max_matches_uncached_blocking() {
        let ts = figure1_task_set();
        let cache = TaskSetCache::new(&ts, 8);
        for cores in 1..=8usize {
            for k in 0..ts.len() {
                assert_eq!(
                    cache.lp_max_blocking(k, cores),
                    lp_max_blocking(ts.lower_priority(k), cores),
                    "task {k}, m = {cores}"
                );
            }
        }
    }

    #[test]
    fn facts_match_the_model() {
        let ts = figure1_task_set();
        let cache = TaskSetCache::new(&ts, 4);
        for (k, t) in ts.tasks().iter().enumerate() {
            assert_eq!(cache.longest_path(k), t.dag().longest_path());
            assert_eq!(cache.volume(k), t.dag().volume());
            assert_eq!(cache.preemption_points(k), t.dag().preemption_points());
            assert_eq!(cache.period(k), t.period());
            assert_eq!(cache.deadline(k), t.deadline());
            let sinks = t.dag().sinks();
            match cache.single_sink_wcet(k) {
                Some(w) => {
                    assert_eq!(sinks.len(), 1);
                    assert_eq!(w, t.dag().wcet(sinks[0]));
                }
                None => assert_ne!(sinks.len(), 1),
            }
        }
    }

    #[test]
    fn mu_is_computed_once_per_task() {
        let ts = figure1_task_set();
        let cache = TaskSetCache::new(&ts, 4);
        let before = mu::mu_array_computations();
        // Query blocking for every task, core slice, and space, repeatedly.
        for _ in 0..3 {
            for k in 0..ts.len() {
                for cores in 1..=4 {
                    for space in [ScenarioSpace::PaperExact, ScenarioSpace::Extended] {
                        let _ = cache.lp_ilp_blocking(
                            k,
                            cores,
                            MuSolver::Clique,
                            RhoSolver::Hungarian,
                            space,
                        );
                    }
                }
            }
        }
        // Only the lower-priority tasks' arrays are ever needed (the
        // highest-priority task blocks no one), each exactly once.
        assert_eq!(
            mu::mu_array_computations() - before,
            ts.len() as u64 - 1,
            "µ must be computed once per (lower-priority) task"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds the cache's max_cores")]
    fn querying_beyond_max_cores_panics() {
        let ts = figure1_task_set();
        let cache = TaskSetCache::new(&ts, 2);
        let _ = cache.max_rho(0, 3, MuSolver::Clique, RhoSolver::Hungarian);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_cache_panics() {
        let ts = figure1_task_set();
        let _ = TaskSetCache::new(&ts, 0);
    }
}
