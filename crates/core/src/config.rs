//! Analysis configuration.

/// Which response-time analysis to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Fully-preemptive ideal baseline (paper Eq. (1)): no lower-priority
    /// blocking, preemption overheads ignored. This is the `FP-ideal` curve
    /// of the paper's Figure 2.
    FpIdeal,
    /// Limited preemption with the pessimistic blocking bound of Eq. (5):
    /// the `m` / `m−1` largest NPRs among all lower-priority tasks.
    LpMax,
    /// Limited preemption with the precedence-aware blocking bound of
    /// Eqs. (6)–(8): per-task parallel workloads combined over execution
    /// scenarios.
    LpIlp,
    /// Limited preemption with the **corrected, sound** blocking term of
    /// [`crate::blocking::sound`]: lower-priority tasks contribute their
    /// full carry-in workload over the response window (deadline-bounded
    /// carry-in), which in particular covers non-preemptive regions that
    /// *newly start* on cores the DAG under analysis leaves idle through
    /// its own precedence constraints — the blocking class that makes the
    /// paper's Eq. (3) optimistic (Nasri, Nelissen & Brandenburg,
    /// ECRTS 2019). The validation campaign checks this bound against both
    /// the eager- and the lazy-preemption simulator and treats any
    /// exceedance as a hard violation.
    LpSound,
    /// **Fully-preemptive competitor**: the long-path stall refinement of
    /// [`crate::long_paths`] (He, Guan et al., arXiv 2211.08800 spirit) —
    /// the Graham self-interference term `(vol − L)/m` is replaced by a
    /// greatest-fixed-point stall bound over a vertex-disjoint chain
    /// decomposition of the DAG, never worse than FP-ideal's bound and
    /// strictly tighter on DAGs with fewer long chains than cores. Being
    /// a fully-preemptive analysis, the validation campaign holds it to
    /// the hard zero-exceedance standard against the fully-preemptive
    /// simulation leg.
    LongPaths,
    /// **Fully-preemptive competitor**: the generalized-sporadic
    /// interference characterization of [`crate::gen_sporadic`] (Dinh,
    /// Gill & Agrawal, arXiv 1905.05119 spirit) — higher-priority
    /// carry-in windows anchored at deadlines instead of analyzed
    /// response bounds, sound for any release pattern with inter-arrivals
    /// of at least `T_i`, and never tighter than FP-ideal. Held to the
    /// same hard zero-exceedance validation standard.
    GenSporadic,
}

impl Method {
    /// All methods: the paper's three in plot order, then the corrected
    /// sound bound this reproduction adds as a fourth curve, then the two
    /// published fully-preemptive competitors of the benchmark panel —
    /// appended last so every index (and CSV column) of the first four
    /// stays stable.
    pub const ALL: [Method; 6] = [
        Method::FpIdeal,
        Method::LpIlp,
        Method::LpMax,
        Method::LpSound,
        Method::LongPaths,
        Method::GenSporadic,
    ];

    /// The paper's own three methods (Figure 2's curves), without the
    /// corrected bound — what the strict-reproduction comparisons use.
    pub const PAPER: [Method; 3] = [Method::FpIdeal, Method::LpIlp, Method::LpMax];

    /// The label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            Method::FpIdeal => "FP-ideal",
            Method::LpMax => "LP-max",
            Method::LpIlp => "LP-ILP",
            Method::LpSound => "LP-sound",
            Method::LongPaths => "Long-paths",
            Method::GenSporadic => "Gen-sporadic",
        }
    }

    /// The machine-readable slug used in CSV columns and metric names
    /// (`analysis_verdict_ns_<slug>`): lowercase, underscore-separated,
    /// stable across releases.
    pub fn slug(self) -> &'static str {
        match self {
            Method::FpIdeal => "fp_ideal",
            Method::LpMax => "lp_max",
            Method::LpIlp => "lp_ilp",
            Method::LpSound => "lp_sound",
            Method::LongPaths => "long_paths",
            Method::GenSporadic => "gen_sporadic",
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How to compute the per-task worst-case workloads `µ_i[c]`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MuSolver {
    /// Exact branch-and-bound over max-weight parallel cliques (default;
    /// orders of magnitude faster than the ILP on DAG-sized problems).
    #[default]
    Clique,
    /// The paper's ILP formulation (Section V-A2), solved by [`rta_ilp`],
    /// with the `c(c−1)/2` erratum applied (see DESIGN.md §5.5).
    PaperIlp,
}

/// How to compute the per-scenario overall workloads `ρ_k[s_l]`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RhoSolver {
    /// Hungarian maximum-weight assignment (default).
    #[default]
    Hungarian,
    /// The paper's ILP formulation (Section V-B), solved by [`rta_ilp`].
    PaperIlp,
}

/// Which execution scenarios to maximize over when computing `Δ^m` and
/// `Δ^{m−1}`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ScenarioSpace {
    /// Partitions of every `m' ≤ m` with at most `|lp(k)|` parts (default).
    ///
    /// This dominates the paper's space whenever the latter is feasible and
    /// remains sound when fewer lower-priority tasks than cores exist (the
    /// paper's formulation would silently report zero blocking there; see
    /// DESIGN.md §6).
    #[default]
    Extended,
    /// Exactly the paper's `e_m`: partitions of exactly `m`; scenarios
    /// naming more tasks than `lp(k)` contains are infeasible and skipped.
    PaperExact,
}

/// Full configuration of one analysis run.
///
/// # Example
///
/// ```
/// use rta_analysis::{AnalysisConfig, Method, ScenarioSpace};
///
/// let config = AnalysisConfig::new(8, Method::LpIlp)
///     .with_scenario_space(ScenarioSpace::PaperExact);
/// assert_eq!(config.cores, 8);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AnalysisConfig {
    /// Number of identical cores `m ≥ 1`.
    pub cores: usize,
    /// Analysis method.
    pub method: Method,
    /// Solver for `µ_i[c]` (LP-ILP only).
    pub mu_solver: MuSolver,
    /// Solver for `ρ_k[s_l]` (LP-ILP only).
    pub rho_solver: RhoSolver,
    /// Scenario space for `Δ^m` / `Δ^{m−1}` (LP-ILP only).
    pub scenario_space: ScenarioSpace,
    /// Extension (paper future work (ii)): once the final NPR of the task
    /// under analysis has started it cannot be preempted, so preemptions —
    /// and hence `Δ^{m−1}` blocking events — are only counted in the window
    /// `R_k − min_{sink} C_sink`. Off by default; evaluated in the ablation
    /// benches and validated against the simulator.
    pub final_npr_refinement: bool,
}

impl AnalysisConfig {
    /// Creates a configuration with default solver choices.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn new(cores: usize, method: Method) -> Self {
        assert!(cores >= 1, "at least one core required");
        Self {
            cores,
            method,
            mu_solver: MuSolver::default(),
            rho_solver: RhoSolver::default(),
            scenario_space: ScenarioSpace::default(),
            final_npr_refinement: false,
        }
    }

    /// Selects the `µ_i[c]` solver.
    #[must_use]
    pub fn with_mu_solver(mut self, solver: MuSolver) -> Self {
        self.mu_solver = solver;
        self
    }

    /// Selects the `ρ_k[s_l]` solver.
    #[must_use]
    pub fn with_rho_solver(mut self, solver: RhoSolver) -> Self {
        self.rho_solver = solver;
        self
    }

    /// Selects the scenario space.
    #[must_use]
    pub fn with_scenario_space(mut self, space: ScenarioSpace) -> Self {
        self.scenario_space = space;
        self
    }

    /// Enables the final-NPR preemption-window refinement.
    #[must_use]
    pub fn with_final_npr_refinement(mut self, enabled: bool) -> Self {
        self.final_npr_refinement = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(Method::FpIdeal.label(), "FP-ideal");
        assert_eq!(Method::LpMax.to_string(), "LP-max");
        assert_eq!(Method::LpIlp.to_string(), "LP-ILP");
        assert_eq!(Method::LpSound.to_string(), "LP-sound");
        assert_eq!(Method::LongPaths.to_string(), "Long-paths");
        assert_eq!(Method::GenSporadic.to_string(), "Gen-sporadic");
    }

    #[test]
    fn paper_methods_are_a_prefix_of_all() {
        assert_eq!(&Method::ALL[..3], &Method::PAPER);
        assert_eq!(Method::ALL[3], Method::LpSound);
        // The competitor panel is appended, keeping the first four CSV
        // columns (and every method index) stable across the repo.
        assert_eq!(&Method::ALL[4..], &[Method::LongPaths, Method::GenSporadic]);
    }

    #[test]
    fn builder_chain() {
        let c = AnalysisConfig::new(4, Method::LpIlp)
            .with_mu_solver(MuSolver::PaperIlp)
            .with_rho_solver(RhoSolver::PaperIlp)
            .with_scenario_space(ScenarioSpace::PaperExact)
            .with_final_npr_refinement(true);
        assert_eq!(c.mu_solver, MuSolver::PaperIlp);
        assert_eq!(c.rho_solver, RhoSolver::PaperIlp);
        assert_eq!(c.scenario_space, ScenarioSpace::PaperExact);
        assert!(c.final_npr_refinement);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = AnalysisConfig::new(0, Method::FpIdeal);
    }

    #[test]
    fn defaults_are_fast_solvers() {
        let c = AnalysisConfig::new(2, Method::LpIlp);
        assert_eq!(c.mu_solver, MuSolver::Clique);
        assert_eq!(c.rho_solver, RhoSolver::Hungarian);
        assert_eq!(c.scenario_space, ScenarioSpace::Extended);
        assert!(!c.final_npr_refinement);
    }
}
