//! Response-time analysis of DAG tasks under global fixed-priority
//! scheduling with limited preemptions.
//!
//! This crate is the reproduction of the primary contribution of Serrano,
//! Melani, Bertogna, Quinones — *"Response-Time Analysis of DAG Tasks under
//! Fixed Priority Scheduling with Limited Preemptions"*, DATE 2016. It
//! computes, for every task of a [`TaskSet`] running on `m` identical cores:
//!
//! ```text
//! R_k ← L_k + (1/m)(vol(G_k) − L_k) + ⌊(1/m)(I_lp_k + I_hp_k)⌋     (Eq. 4)
//! ```
//!
//! where the higher-priority interference `I_hp` uses the DAG workload bound
//! of Melani et al. ([`workload`]), and the lower-priority blocking
//! `I_lp = Δ^m + p_k·Δ^{m−1}` ([`blocking`]) is bounded with either of the
//! paper's two methods:
//!
//! * [`Method::LpMax`] — the `m` (and `m−1`) largest NPRs among
//!   lower-priority tasks (Eq. 5);
//! * [`Method::LpIlp`] — precedence-aware: per-task worst-case workloads
//!   `µ_i[c]` (max-weight parallel sets) combined over all execution
//!   scenarios (integer partitions of `m`) via an assignment problem
//!   (Eqs. 6–8).
//!
//! [`Method::FpIdeal`] is the fully-preemptive baseline of the paper's
//! evaluation (Eq. 1, zero blocking and zero preemption cost).
//!
//! Beyond the paper, [`Method::LpSound`] replaces the event-counted
//! `I_lp` — empirically refuted by this repository's validation campaign
//! (the eager-LP unsoundness class of Nasri, Nelissen & Brandenburg,
//! ECRTS 2019) — with the **corrected, sound** window-workload term of
//! [`blocking::sound`]: lower-priority tasks charge their full
//! deadline-bounded carry-in workload over the response window, which
//! covers non-preemptive regions newly started on cores the DAG's own
//! precedence constraints leave idle.
//!
//! All arithmetic is exact: the rational terms of Eq. 4 are tracked in
//! scaled units of `1/m` (see [`report::ResponseBound`]); there is no
//! floating point anywhere in the fixed-point iteration.
//!
//! Everything task-intrinsic — µ-arrays, parallel adjacency, LP-max WCET
//! pools, per-cardinality Δ rows, longest paths and volumes — is computed
//! once per task set in a [`cache::TaskSetCache`] and shared across tasks
//! under analysis, platform slices and methods. [`analyze`] builds the
//! cache internally; [`analyze_uncached`] keeps the original
//! recompute-per-task path as a pinned reference.
//!
//! # The unified request API (and migrating off the legacy entry points)
//!
//! Batch analysis goes through **one** entry point: build an
//! [`AnalysisRequest`] (platform + method selection + bounds on/off +
//! solver knobs) and call [`AnalysisRequest::evaluate`] (or
//! [`AnalysisRequest::evaluate_with`] to share a [`TaskSetCache`]); it
//! resolves to an [`AnalysisOutcome`] carrying one verdict — and, on
//! request, the per-task response bounds — per method. Verdict-only
//! requests run the method-dominance fast path automatically. On top of
//! it, [`lru::AnalysisLru`] memoizes outcomes across repeated task sets —
//! the admission-control layer behind `repro serve`.
//!
//! The four former batch entry points are deprecated thin wrappers,
//! pinned bit-identical to the request path by this crate's proptests.
//! Migration is mechanical:
//!
//! | Legacy call | Request equivalent |
//! |---|---|
//! | `analyze_verdicts(ts, &configs)` | `AnalysisRequest::new(m).with_methods(methods).evaluate(ts).verdicts()` |
//! | `verdicts_with_bounds(ts, &configs)` | `…​.with_bounds(true).evaluate(ts)`, read `outcomes()[i].bounds` |
//! | `analyze_all(ts, &configs)` | `…​.with_bounds(true).evaluate(ts)` (or [`analyze`] per config for full [`TaskReport`]s) |
//! | `analyze_with(&cache, &config)` | `AnalysisRequest::for_config(&config, true).evaluate_with(&cache)` (or [`analyze`]) |
//!
//! # Example
//!
//! ```
//! use rta_analysis::{analyze, AnalysisConfig, Method};
//! use rta_model::examples::figure1_task_set;
//!
//! let task_set = figure1_task_set();
//! let config = AnalysisConfig::new(4, Method::LpIlp);
//! let report = analyze(&task_set, &config);
//! assert!(report.schedulable);
//! // The highest-priority task is blocked once by Δ⁴ = 19 (paper Table III).
//! let blocking = report.tasks[0].blocking.as_ref().unwrap();
//! assert_eq!(blocking.delta_m, 19);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod cache;
pub mod config;
pub mod gen_sporadic;
pub mod long_paths;
pub mod lru;
mod metrics;
pub mod report;
pub mod request;
pub mod rta;
pub mod workload;

pub use cache::TaskSetCache;
pub use config::{AnalysisConfig, Method, MuSolver, RhoSolver, ScenarioSpace};
pub use lru::{AnalysisLru, CacheOutcome, LruStats};
pub use report::{AnalysisReport, ResponseBound, TaskReport};
pub use request::{AnalysisOutcome, AnalysisRequest, MethodOutcome};
pub use rta::{analyze, analyze_uncached, verdict_with, SetVerdict};
#[allow(deprecated)]
pub use rta::{analyze_all, analyze_verdicts, analyze_with, verdicts_with_bounds};

// Re-exported for callers that want to work with model types directly.
pub use rta_model::{DagTask, TaskSet, Time};
