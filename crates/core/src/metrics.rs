//! The observability handles this crate records into — created once, on
//! first use, against the process-global [`rta_obs`] registry.
//!
//! Everything here is deliberately coarse so the analysis hot paths stay
//! un-measurable in the CI perf gates: per-method verdict latency is timed
//! around whole `verdict_with` / `analyze_with_impl` calls (two `Instant`
//! reads per method evaluation, which itself costs microseconds), the
//! fixed-point iteration counter is flushed **once** per fixed point from
//! its local tally, and the cache counters ride inside `get_or_init`
//! closures that run once per materialized table. Nothing in a per-iterate
//! or per-node loop ever touches a metric.

use crate::config::Method;
use rta_obs::{Counter, Histogram};
use std::sync::LazyLock;

/// Per-method verdict latency in nanoseconds
/// (`analysis_verdict_ns_<slug>`), indexed in [`Method::ALL`] order.
static VERDICT_NS: LazyLock<[Histogram; Method::ALL.len()]> = LazyLock::new(|| {
    Method::ALL.map(|m| rta_obs::histogram(format!("analysis_verdict_ns_{}", m.slug())))
});

/// The verdict-latency histogram of `method`.
pub(crate) fn verdict_ns(method: Method) -> Histogram {
    let i = Method::ALL
        .iter()
        .position(|&m| m == method)
        .expect("Method::ALL covers every method");
    VERDICT_NS[i]
}

/// Total fixed-point iterations across all tasks, methods and calls.
pub(crate) static FIXED_POINT_ITERS: LazyLock<Counter> =
    LazyLock::new(|| rta_obs::counter("analysis_fixed_point_iters_total"));

/// [`crate::lru::AnalysisLru`] requests answered entirely from the memo.
pub(crate) static LRU_HITS: LazyLock<Counter> =
    LazyLock::new(|| rta_obs::counter("lru_hits_total"));

/// LRU requests on a cached set that still had to evaluate some method.
pub(crate) static LRU_NEAR_HITS: LazyLock<Counter> =
    LazyLock::new(|| rta_obs::counter("lru_near_hits_total"));

/// LRU requests on an uncached set.
pub(crate) static LRU_MISSES: LazyLock<Counter> =
    LazyLock::new(|| rta_obs::counter("lru_misses_total"));

/// LRU task-set entries displaced by the capacity bound.
pub(crate) static LRU_EVICTIONS: LazyLock<Counter> =
    LazyLock::new(|| rta_obs::counter("lru_evictions_total"));

/// [`crate::cache::TaskSetCache`] constructions.
pub(crate) static CACHE_BUILDS: LazyLock<Counter> =
    LazyLock::new(|| rta_obs::counter("cache_builds_total"));

/// µ-arrays materialized (first touch of a `(task, solver)` cell).
pub(crate) static CACHE_MU_BUILDS: LazyLock<Counter> =
    LazyLock::new(|| rta_obs::counter("cache_mu_builds_total"));

/// `max ρ` cells materialized (first touch of a `(task, cores)` cell).
pub(crate) static CACHE_RHO_BUILDS: LazyLock<Counter> =
    LazyLock::new(|| rta_obs::counter("cache_rho_builds_total"));
