//! The response-time fixed-point iteration (paper Eqs. (1) and (4)).
//!
//! For each task, from highest to lowest priority:
//!
//! ```text
//! R_k ← L_k + (1/m)(vol(G_k) − L_k) + ⌊(1/m)(I_lp_k + I_hp_k)⌋
//! ```
//!
//! starting at `R⁰_k = L_k + (vol − L)/m` and iterating until the value is
//! stable or provably exceeds the deadline. All quantities are kept scaled
//! by `m` (units of `1/m` time), so the rational self-interference term and
//! the `⌈R/T⌉` ceilings are computed exactly in integer arithmetic. The
//! update is monotone non-decreasing, so the iteration converges to the
//! least fixed point or crosses `m·D_k` in finitely many steps (each step
//! increases the scaled value by at least 1).

use crate::blocking::lpmax::lp_max_blocking;
use crate::blocking::scenarios::lp_ilp_blocking;
use crate::blocking::sound::SoundBlocking;
use crate::blocking::BlockingBounds;
use crate::cache::TaskSetCache;
use crate::config::{AnalysisConfig, Method};
use crate::gen_sporadic::gen_sporadic_workload;
use crate::long_paths::long_path_bound;
use crate::report::{AnalysisReport, ResponseBound, TaskReport};
use crate::request::AnalysisRequest;
use crate::workload::interfering_workload;
use rta_model::{TaskId, TaskSet, Time};

/// The deprecation note shared by the four legacy batch entry points (see
/// the crate docs' migration notes).
/// Analyzes a task set, producing per-task response-time bounds and the
/// overall schedulability verdict.
///
/// Tasks are processed in priority order; analysis stops after the first
/// unschedulable task. See the crate docs for an end-to-end example.
///
/// Builds a [`TaskSetCache`] internally, so the per-task µ-arrays and the
/// per-cardinality Δ rows are computed once and shared across all tasks
/// under analysis. To additionally share them across configurations (e.g.
/// all three methods of a Figure 2 sweep point), use [`analyze_all`]; to
/// share them across calls, build the cache yourself and use
/// [`analyze_with`]. All three produce bit-identical reports (also
/// bit-identical to the uncached reference path [`analyze_uncached`]).
///
/// # Panics
///
/// Panics if `config.cores == 0` (prevented by
/// [`AnalysisConfig::new`]).
pub fn analyze(task_set: &TaskSet, config: &AnalysisConfig) -> AnalysisReport {
    let cache = TaskSetCache::for_configs(task_set, std::slice::from_ref(config));
    analyze_with_impl(&cache, config)
}

/// Analyzes a task set under several configurations, sharing one
/// [`TaskSetCache`] across all of them.
///
/// The µ-arrays, `max ρ` rows and LP-max pools are computed at the largest
/// requested core count, once, then sliced for every configuration —
/// methods, scenario spaces and platform slices all read the same tables.
/// Reports are returned in `configs` order, each bit-identical to an
/// independent [`analyze`] call with the same configuration.
#[deprecated(
    since = "0.1.0",
    note = "superseded by the unified request API: build an `AnalysisRequest` and \
                      call `evaluate` / `evaluate_with` — see the migration notes in the crate docs"
)]
pub fn analyze_all(task_set: &TaskSet, configs: &[AnalysisConfig]) -> Vec<AnalysisReport> {
    let cache = TaskSetCache::for_configs(task_set, configs);
    configs
        .iter()
        .map(|c| analyze_with_impl(&cache, c))
        .collect()
}

/// Schedulability verdicts only — one `bool` per configuration, equal to
/// the `schedulable` flag of the corresponding [`analyze_all`] report but
/// computed without materializing per-task reports and, crucially,
/// **short-circuited through the method-dominance chain**.
///
/// All three methods iterate the identical monotone fixed point; they
/// differ only in the blocking pair `(Δ^m, Δ^{m−1})` it consumes, and those
/// pairs are ordered per task: FP-ideal contributes `(0, 0)`; LP-ILP's `ρ`
/// sums over distinct lower-priority tasks `µ_i[c]` values, each bounded by
/// the sum of the `c` largest NPRs of `τ_i`, so `Δ_ILP` never exceeds
/// LP-max's sum of the pooled largest NPRs (Eq. (5)); the fixed point is
/// monotone non-decreasing in the blocking pair and in the higher-priority
/// response bounds ([`interfering_workload`] is monotone in `R_i`).
/// Induction over the priority order then gives, for configurations
/// differing only in method:
///
/// ```text
/// LP-max schedulable ⇒ LP-ILP schedulable ⇒ FP-ideal schedulable
/// ```
///
/// The corrected [`Method::LpSound`] extends the chain by one structural
/// edge: its fixed point is FP-ideal's plus a non-negative, monotone
/// lower-priority workload term, so per-task `R_FP ≤ R_sound` and
///
/// ```text
/// LP-sound schedulable ⇒ FP-ideal schedulable
/// ```
///
/// No edge connects LP-sound to LP-ILP or LP-max in either direction —
/// the sound bound charges whole lower-priority job volumes where the
/// paper's bounds charge a few NPRs per event, and neither dominates the
/// other on every set (empirically LP-sound is the more pessimistic one
/// almost everywhere; `soundness_cost.csv` charts the gap).
///
/// So within each group of configurations that agree on everything but the
/// method, this evaluates FP-ideal first (no blocking machinery at all —
/// unschedulable sets of a high-utilization sweep point never touch µ,
/// scenario or closure computation — and a negative verdict settles
/// LP-sound too), answers LP-ILP from LP-max's cheap positive verdict when
/// possible, and only runs the combinatorial LP-ILP blocking when FP-ideal
/// passes and LP-max fails; LP-sound, when requested and not settled by
/// FP-ideal, runs its own (combinatorics-free) fixed point. Equality with
/// [`analyze_all`] is pinned by `tests/verdicts.rs` over random generated
/// task sets.
///
/// Now a thin wrapper: each group of configurations agreeing on everything
/// but the method becomes one verdict-only [`AnalysisRequest`], whose
/// evaluation *is* the dominance chain described above.
#[deprecated(
    since = "0.1.0",
    note = "superseded by the unified request API: build an `AnalysisRequest` and \
                      call `evaluate` / `evaluate_with` — see the migration notes in the crate docs"
)]
pub fn analyze_verdicts(task_set: &TaskSet, configs: &[AnalysisConfig]) -> Vec<bool> {
    let cache = TaskSetCache::for_configs(task_set, configs);
    let same_family = |a: &AnalysisConfig, b: &AnalysisConfig| {
        a.cores == b.cores
            && a.mu_solver == b.mu_solver
            && a.rho_solver == b.rho_solver
            && a.scenario_space == b.scenario_space
            && a.final_npr_refinement == b.final_npr_refinement
    };
    let mut verdicts: Vec<Option<bool>> = vec![None; configs.len()];
    for i in 0..configs.len() {
        if verdicts[i].is_some() {
            continue;
        }
        let family: Vec<usize> = (i..configs.len())
            .filter(|&j| verdicts[j].is_none() && same_family(&configs[i], &configs[j]))
            .collect();
        let request = AnalysisRequest::for_config(&configs[i], false)
            .with_methods(family.iter().map(|&j| configs[j].method));
        let outcome = request.evaluate_with(&cache);
        for (&j, answer) in family.iter().zip(outcome.outcomes()) {
            verdicts[j] = Some(answer.schedulable);
        }
    }
    verdicts
        .into_iter()
        .map(|v| v.expect("every configuration received a verdict"))
        .collect()
}

/// Verdict plus per-task response-time bounds of one configuration — what
/// [`verdicts_with_bounds`] returns per requested configuration.
///
/// The dominance shortcut of [`analyze_verdicts`] deliberately discards
/// per-task bounds (a set answered through the chain never runs its own
/// fixed point), which is exactly what empirical validation *cannot* live
/// without: checking `sim max RT ≤ analytical bound` needs the bound of
/// every task of every method. This type carries them in the same compact
/// shape the verdict path uses everywhere else.
#[derive(Clone, Debug, PartialEq)]
pub struct SetVerdict {
    /// `true` iff every task met its deadline bound (the `schedulable`
    /// flag of the corresponding [`AnalysisReport`]).
    pub schedulable: bool,
    /// Response bounds of the analyzed prefix, highest priority first — up
    /// to and including the first unschedulable task, exactly mirroring
    /// [`AnalysisReport::tasks`]. When `schedulable` is false the last
    /// entry is the first iterate that crossed its deadline, not a
    /// converged bound.
    pub bounds: Vec<ResponseBound>,
}

impl SetVerdict {
    /// The response bound of task `k`, if it was analyzed.
    pub fn bound(&self, k: usize) -> Option<ResponseBound> {
        self.bounds.get(k).copied()
    }
}

/// Per-task response-time bounds *and* verdicts for a batch of
/// configurations, sharing one [`TaskSetCache`] — the validation
/// campaign's analysis entry point.
///
/// [`analyze_all`] projected onto `(schedulable, per-task response
/// bounds)`: same cache sharing, same per-configuration fixed points, no
/// dominance shortcut (bounds of every requested method are materialized,
/// so there is nothing to skip). Equality with [`analyze_all`] is pinned
/// by proptests in `tests/verdicts.rs`.
///
/// Now a thin wrapper: each configuration becomes one bound-carrying
/// [`AnalysisRequest`] sharing the batch's cache.
#[deprecated(
    since = "0.1.0",
    note = "superseded by the unified request API: build an `AnalysisRequest` and \
                      call `evaluate` / `evaluate_with` — see the migration notes in the crate docs"
)]
pub fn verdicts_with_bounds(task_set: &TaskSet, configs: &[AnalysisConfig]) -> Vec<SetVerdict> {
    let cache = TaskSetCache::for_configs(task_set, configs);
    configs
        .iter()
        .map(|config| {
            let outcome = AnalysisRequest::for_config(config, true).evaluate_with(&cache);
            let answer = outcome
                .into_outcomes()
                .pop()
                .expect("single-method request yields one outcome");
            SetVerdict {
                schedulable: answer.schedulable,
                bounds: answer.bounds.expect("bounds were requested"),
            }
        })
        .collect()
}

/// The schedulability verdict of one configuration through a caller-owned
/// cache: the `schedulable` flag of [`analyze_with`] without building the
/// per-task reports. No dominance shortcuts — callers wanting those use
/// [`analyze_verdicts`].
///
/// # Panics
///
/// Panics if `config.cores == 0` or `config.cores > cache.max_cores()`.
pub fn verdict_with(cache: &TaskSetCache<'_>, config: &AnalysisConfig) -> bool {
    let start = std::time::Instant::now();
    let verdict = verdict_with_impl(cache, config);
    crate::metrics::verdict_ns(config.method).observe_since(start);
    verdict
}

fn verdict_with_impl(cache: &TaskSetCache<'_>, config: &AnalysisConfig) -> bool {
    assert!(config.cores >= 1, "at least one core required");
    assert!(
        config.cores <= cache.max_cores(),
        "config wants {} cores but the cache was built for {}",
        config.cores,
        cache.max_cores()
    );
    let task_set = cache.task_set();
    let mut hp_bounds: Vec<u128> = Vec::with_capacity(task_set.len());
    for k in 0..task_set.len() {
        let blocking = cache.blocking_for(k, config);
        let sound = cache.sound_blocking_for(k, config);
        let task = FixedPointTask {
            longest_path: cache.longest_path(k),
            volume: cache.volume(k),
            deadline: cache.deadline(k),
            preemption_points: cache.preemption_points(k),
            single_sink_wcet: cache.single_sink_wcet(k),
        };
        let outcome = if config.method == Method::LongPaths {
            long_paths_outcome(
                &task,
                task_set,
                k,
                &hp_bounds,
                cache.long_path_decomposition(k),
                config,
            )
        } else {
            fixed_point(
                &task,
                task_set,
                k,
                &hp_bounds,
                blocking.as_ref(),
                sound.as_ref(),
                config,
            )
        };
        if !outcome.schedulable {
            return false;
        }
        hp_bounds.push(outcome.scaled);
    }
    true
}

/// Analyzes a task set through a caller-owned [`TaskSetCache`].
///
/// # Panics
///
/// Panics if `config.cores == 0` or `config.cores > cache.max_cores()`.
#[deprecated(
    since = "0.1.0",
    note = "superseded by the unified request API: build an `AnalysisRequest` and \
                      call `evaluate` / `evaluate_with` — see the migration notes in the crate docs"
)]
pub fn analyze_with(cache: &TaskSetCache<'_>, config: &AnalysisConfig) -> AnalysisReport {
    analyze_with_impl(cache, config)
}

/// Per-task response bounds and the verdict of one configuration — the
/// bound-carrying evaluation behind [`AnalysisRequest::evaluate_with`]:
/// the `(schedulable, response bounds of the analyzed prefix)` projection
/// of [`analyze_with_impl`], bit-identical to projecting the full report.
pub(crate) fn bounds_with(
    cache: &TaskSetCache<'_>,
    config: &AnalysisConfig,
) -> (bool, Vec<ResponseBound>) {
    let report = analyze_with_impl(cache, config);
    (
        report.schedulable,
        report.tasks.iter().map(|t| t.response_bound).collect(),
    )
}

/// The full-report workhorse behind [`analyze`], the deprecated batch
/// wrappers and the bound-carrying request shape.
pub(crate) fn analyze_with_impl(
    cache: &TaskSetCache<'_>,
    config: &AnalysisConfig,
) -> AnalysisReport {
    let start = std::time::Instant::now();
    let report = analyze_with_inner(cache, config);
    crate::metrics::verdict_ns(config.method).observe_since(start);
    report
}

fn analyze_with_inner(cache: &TaskSetCache<'_>, config: &AnalysisConfig) -> AnalysisReport {
    assert!(config.cores >= 1, "at least one core required");
    assert!(
        config.cores <= cache.max_cores(),
        "config wants {} cores but the cache was built for {}",
        config.cores,
        cache.max_cores()
    );
    let task_set = cache.task_set();
    let mut tasks = Vec::with_capacity(task_set.len());
    let mut schedulable = true;
    // Scaled response bounds of already-analyzed (higher-priority) tasks.
    let mut hp_bounds: Vec<u128> = Vec::with_capacity(task_set.len());

    for k in 0..task_set.len() {
        let blocking = cache.blocking_for(k, config);
        let sound = cache.sound_blocking_for(k, config);
        let task = FixedPointTask {
            longest_path: cache.longest_path(k),
            volume: cache.volume(k),
            deadline: cache.deadline(k),
            preemption_points: cache.preemption_points(k),
            single_sink_wcet: cache.single_sink_wcet(k),
        };
        let outcome = if config.method == Method::LongPaths {
            long_paths_outcome(
                &task,
                task_set,
                k,
                &hp_bounds,
                cache.long_path_decomposition(k),
                config,
            )
        } else {
            fixed_point(
                &task,
                task_set,
                k,
                &hp_bounds,
                blocking.as_ref(),
                sound.as_ref(),
                config,
            )
        };
        let report = TaskReport {
            task: TaskId::new(k),
            response_bound: ResponseBound::from_scaled(outcome.scaled, config.cores as u32),
            schedulable: outcome.schedulable,
            blocking,
            preemption_bound: outcome.preemptions,
            iterations: outcome.iterations,
        };
        let ok = report.schedulable;
        tasks.push(report);
        if !ok {
            schedulable = false;
            break;
        }
        hp_bounds.push(outcome.scaled);
    }

    AnalysisReport {
        schedulable,
        cores: config.cores,
        method: config.method,
        tasks,
    }
}

/// The original per-call analysis: recomputes every lower-priority task's
/// µ-array and both Δ bounds from scratch for each task under analysis.
///
/// Kept as the reference the cached path is pinned against (tests assert
/// bit-identical [`AnalysisReport`]s) and as the baseline of
/// `benches/cache.rs`. Use [`analyze`] everywhere else.
///
/// # Panics
///
/// Panics if `config.cores == 0`.
pub fn analyze_uncached(task_set: &TaskSet, config: &AnalysisConfig) -> AnalysisReport {
    assert!(config.cores >= 1, "at least one core required");
    let mut tasks = Vec::with_capacity(task_set.len());
    let mut schedulable = true;
    let mut hp_bounds: Vec<u128> = Vec::with_capacity(task_set.len());

    for k in 0..task_set.len() {
        let blocking = blocking_for_uncached(task_set, k, config);
        let sound = (config.method == Method::LpSound)
            .then(|| SoundBlocking::new(task_set.lower_priority(k), config.cores));
        let dag = task_set.task(k).dag();
        let task = FixedPointTask {
            longest_path: dag.longest_path(),
            volume: dag.volume(),
            deadline: task_set.task(k).deadline(),
            preemption_points: dag.preemption_points(),
            single_sink_wcet: match dag.sinks().as_slice() {
                [only] => Some(dag.wcet(*only)),
                _ => None,
            },
        };
        let outcome = if config.method == Method::LongPaths {
            long_paths_outcome(
                &task,
                task_set,
                k,
                &hp_bounds,
                &dag.long_path_decomposition(),
                config,
            )
        } else {
            fixed_point(
                &task,
                task_set,
                k,
                &hp_bounds,
                blocking.as_ref(),
                sound.as_ref(),
                config,
            )
        };
        let report = TaskReport {
            task: TaskId::new(k),
            response_bound: ResponseBound::from_scaled(outcome.scaled, config.cores as u32),
            schedulable: outcome.schedulable,
            blocking,
            preemption_bound: outcome.preemptions,
            iterations: outcome.iterations,
        };
        let ok = report.schedulable;
        tasks.push(report);
        if !ok {
            schedulable = false;
            break;
        }
        hp_bounds.push(outcome.scaled);
    }

    AnalysisReport {
        schedulable,
        cores: config.cores,
        method: config.method,
        tasks,
    }
}

fn blocking_for_uncached(
    task_set: &TaskSet,
    k: usize,
    config: &AnalysisConfig,
) -> Option<BlockingBounds> {
    let lp = task_set.lower_priority(k);
    match config.method {
        // LP-sound has no (Δ^m, Δ^{m−1}) pair — its window-dependent term
        // is built separately and evaluated per fixed-point iterate. The
        // two fully-preemptive competitor methods have no blocking at all.
        Method::FpIdeal | Method::LpSound | Method::LongPaths | Method::GenSporadic => None,
        Method::LpMax => Some(lp_max_blocking(lp, config.cores)),
        Method::LpIlp => Some(lp_ilp_blocking(
            lp,
            config.cores,
            config.mu_solver,
            config.rho_solver,
            config.scenario_space,
        )),
    }
}

/// The per-task quantities the fixed point reads, pre-fetched by the caller
/// (from the [`TaskSetCache`] or straight from the model).
struct FixedPointTask {
    longest_path: Time,
    volume: Time,
    deadline: Time,
    preemption_points: usize,
    single_sink_wcet: Option<Time>,
}

struct FixedPointOutcome {
    /// Scaled (`m·R`) response bound; when `schedulable` is false, the first
    /// iterate that crossed the deadline.
    scaled: u128,
    schedulable: bool,
    preemptions: u64,
    iterations: u32,
}

/// The total higher-priority interfering workload (plain execution units)
/// over a window of scaled length `window_scaled`, Melani-bounded with the
/// analyzed response bounds — the `I` the long-path refinement consumes.
fn hp_interference(
    task_set: &TaskSet,
    k: usize,
    hp_bounds: &[u128],
    window_scaled: u128,
    cores: usize,
) -> u128 {
    task_set
        .higher_priority(k)
        .iter()
        .zip(hp_bounds)
        .map(|(t, &r_i)| {
            interfering_workload(window_scaled, r_i, t.dag().volume(), t.period(), cores)
        })
        .sum()
}

/// The [`Method::LongPaths`] driver: the fully-preemptive fixed point —
/// fed this method's **own** higher-priority bounds — post-refined by the
/// long-path stall bound of [`crate::long_paths`], with one
/// deadline-window rescue attempt when the Graham-shaped recurrence
/// diverges (see the module docs there for why both windows are sound and
/// why an FP-ideal failure does not settle this method).
fn long_paths_outcome(
    task: &FixedPointTask,
    task_set: &TaskSet,
    k: usize,
    hp_bounds: &[u128],
    decomposition: &[Time],
    config: &AnalysisConfig,
) -> FixedPointOutcome {
    let m = config.cores as u128;
    let deadline_scaled = m * task.deadline as u128;
    let base = fixed_point(task, task_set, k, hp_bounds, None, None, config);
    if base.schedulable {
        // The converged window certifies its own interference; the `min`
        // makes per-task dominance over the Graham value structural.
        let i = hp_interference(task_set, k, hp_bounds, base.scaled, config.cores);
        let refined = long_path_bound(i, decomposition, task.volume, config.cores).min(base.scaled);
        FixedPointOutcome {
            scaled: refined,
            ..base
        }
    } else {
        // Rescue: assume-and-verify over the deadline window — before the
        // earliest miss every response window fits inside its deadline
        // window, so a refined bound at or below `m·D_k` is sound even
        // though the Graham recurrence never converged.
        let i = hp_interference(task_set, k, hp_bounds, deadline_scaled, config.cores);
        let refined = long_path_bound(i, decomposition, task.volume, config.cores);
        if refined <= deadline_scaled {
            FixedPointOutcome {
                scaled: refined,
                schedulable: true,
                ..base
            }
        } else {
            base
        }
    }
}

fn fixed_point(
    task: &FixedPointTask,
    task_set: &TaskSet,
    k: usize,
    hp_bounds: &[u128],
    blocking: Option<&BlockingBounds>,
    sound: Option<&SoundBlocking>,
    config: &AnalysisConfig,
) -> FixedPointOutcome {
    let m = config.cores as u128;
    let longest = task.longest_path as u128;
    let volume = task.volume as u128;
    let deadline_scaled = m * task.deadline as u128;
    let q = task.preemption_points as u128;
    // R⁰ = L + (vol − L)/m, scaled: m·L + (vol − L).
    let base = m * longest + (volume - longest);

    // Final-NPR refinement (extension, DESIGN.md §6): in a single-sink DAG
    // the sink is the last node to start, and once started it cannot be
    // preempted, so preemptions only occur in the first R − C_sink units.
    let preemption_window_shrink: u128 = if config.final_npr_refinement {
        task.single_sink_wcet.map_or(0, |w| m * w as u128)
    } else {
        0
    };

    // Loop-invariant higher-priority quantities, hoisted out of the
    // iteration: the scaled period `m·T_i` behind every ⌈·⌉, plus the
    // volume, period and deadline the workload bounds read.
    let hp_invariants: Vec<(u128, Time, Time, Time)> = task_set
        .higher_priority(k)
        .iter()
        .map(|t| {
            (
                m * t.period() as u128,
                t.dag().volume(),
                t.period(),
                t.deadline(),
            )
        })
        .collect();

    let mut r = base;
    let mut iterations = 0u32;
    loop {
        iterations += 1;
        // h_k = Σ_{i ∈ hp(k)} ⌈t/T_i⌉ with t the current response window;
        // ⌈(r/m)/T⌉ = ⌈r/(m·T)⌉ exactly.
        let window = r.saturating_sub(preemption_window_shrink);
        let h: u128 = hp_invariants
            .iter()
            .map(|&(scaled_period, ..)| window.div_ceil(scaled_period))
            .sum();
        let p = q.min(h);
        // Event-counted blocking (LP-ILP / LP-max) or the sound
        // window-workload term (LP-sound) — at most one is present.
        let i_lp: u128 =
            blocking.map_or(0, |b| b.interference(p)) + sound.map_or(0, |s| s.interference(r));
        let i_hp: u128 = if config.method == Method::GenSporadic {
            // Contract-anchored interference ([`crate::gen_sporadic`]):
            // deadline-anchored Melani windows, independent of the
            // analyzed higher-priority response bounds.
            hp_invariants
                .iter()
                .map(|&(_, vol, period, deadline)| {
                    gen_sporadic_workload(r, vol, period, deadline, config.cores)
                })
                .sum()
        } else {
            hp_invariants
                .iter()
                .zip(hp_bounds)
                .map(|(&(_, vol, period, _), &r_i)| {
                    interfering_workload(r, r_i, vol, period, config.cores)
                })
                .sum()
        };
        let r_new = base + m * ((i_lp + i_hp) / m);
        debug_assert!(r_new >= r, "fixed-point iteration must be monotone");
        let preemptions = u64::try_from(p).expect("preemption bound fits u64");
        if r_new == r {
            crate::metrics::FIXED_POINT_ITERS.add(u64::from(iterations));
            return FixedPointOutcome {
                scaled: r,
                schedulable: r <= deadline_scaled,
                preemptions,
                iterations,
            };
        }
        if r_new > deadline_scaled {
            crate::metrics::FIXED_POINT_ITERS.add(u64::from(iterations));
            return FixedPointOutcome {
                scaled: r_new,
                schedulable: false,
                preemptions,
                iterations,
            };
        }
        r = r_new;
    }
}

#[cfg(test)]
mod tests {
    // The legacy entry points stay under test: they are deprecated, not
    // removed, and the wrappers must remain bit-identical to the unified
    // request path they delegate to.
    #![allow(deprecated)]

    use super::*;
    use crate::config::{Method, MuSolver, RhoSolver, ScenarioSpace};
    use rta_model::examples::figure1_task_set;
    use rta_model::{DagBuilder, DagTask, NodeId};

    fn single_node_task(wcet: u64, period: u64) -> DagTask {
        let mut b = DagBuilder::new();
        b.add_node(wcet);
        DagTask::with_implicit_deadline(b.build().unwrap(), period).unwrap()
    }

    fn fork_join(wcets: [u64; 4], period: u64) -> DagTask {
        let mut b = DagBuilder::new();
        let v: Vec<NodeId> = b.add_nodes(wcets);
        b.add_edge(v[0], v[1]).unwrap();
        b.add_edge(v[0], v[2]).unwrap();
        b.add_edge(v[1], v[3]).unwrap();
        b.add_edge(v[2], v[3]).unwrap();
        DagTask::with_implicit_deadline(b.build().unwrap(), period).unwrap()
    }

    #[test]
    fn lone_task_bound_is_graham() {
        // Single task, no interference: R = L + (vol − L)/m.
        let ts = TaskSet::new(vec![fork_join([1, 3, 2, 1], 100)]);
        // L = 1+3+1 = 5, vol = 7.
        let report = analyze(&ts, &AnalysisConfig::new(2, Method::FpIdeal));
        assert!(report.schedulable);
        let r = report.tasks[0].response_bound;
        assert_eq!(r.scaled(), 2 * 5 + (7 - 5)); // 12 → R = 6
        assert_eq!(r.ceil(), 6);
        assert_eq!(report.tasks[0].iterations, 1);
    }

    #[test]
    fn highest_priority_lp_task_blocked_once() {
        // Two single-node tasks; the lower-priority one has WCET 9, so the
        // top task is blocked by Δ¹ = 9 on m = 1 with p = 0.
        let ts = TaskSet::new(vec![single_node_task(2, 20), single_node_task(9, 50)]);
        let report = analyze(&ts, &AnalysisConfig::new(1, Method::LpMax));
        let top = &report.tasks[0];
        assert_eq!(top.blocking.unwrap().delta_m, 9);
        assert_eq!(top.preemption_bound, 0);
        // R = 2 + ⌊9/1⌋ = 11.
        assert_eq!(top.response_bound.ceil(), 11);
        assert!(top.schedulable);
    }

    #[test]
    fn two_tasks_with_interference_hand_computed() {
        // m = 1, FP-ideal, classic RTA: τ1 (C=2, T=10), τ2 (C=3, T=20).
        // R1 = 2. R2: 3 + W1(R2). Iteration: R=3 → W = ⌊(3+2−2)/10⌋·2 +
        // min(2, (3)%10) = 0·2 + min(2,3) = 2 → R=5 → W = min(2,5)=2 → 5 ✓.
        let ts = TaskSet::new(vec![single_node_task(2, 10), single_node_task(3, 20)]);
        let report = analyze(&ts, &AnalysisConfig::new(1, Method::FpIdeal));
        assert!(report.schedulable);
        assert_eq!(report.tasks[0].response_bound.ceil(), 2);
        assert_eq!(report.tasks[1].response_bound.ceil(), 5);
    }

    #[test]
    fn figure1_example_analyzes_schedulably() {
        // All four methods — including the corrected LP-sound bound —
        // schedule the paper's running example on its m = 4 platform.
        let ts = figure1_task_set();
        for method in Method::ALL {
            let report = analyze(&ts, &AnalysisConfig::new(4, method));
            assert!(report.schedulable, "{method} should schedule the example");
            assert_eq!(report.tasks.len(), 5);
        }
    }

    #[test]
    fn figure1_blocking_matches_tables() {
        let ts = figure1_task_set();
        let report = analyze(&ts, &AnalysisConfig::new(4, Method::LpIlp));
        let b = report.tasks[0].blocking.unwrap();
        assert_eq!(b.delta_m, 19); // Table III maximum
        assert_eq!(b.delta_m_minus_one, 15);
        let report = analyze(&ts, &AnalysisConfig::new(4, Method::LpMax));
        let b = report.tasks[0].blocking.unwrap();
        assert_eq!(b.delta_m, 20); // Eq. (5) on the same example
        assert_eq!(b.delta_m_minus_one, 16);
    }

    #[test]
    fn method_dominance_on_example() {
        // Per-task bounds: FP-ideal ≤ LP-ILP ≤ LP-max, and FP-ideal ≤
        // LP-sound (the only theorem edge the corrected bound joins).
        let ts = figure1_task_set();
        let fp = analyze(&ts, &AnalysisConfig::new(4, Method::FpIdeal));
        let ilp = analyze(&ts, &AnalysisConfig::new(4, Method::LpIlp));
        let max = analyze(&ts, &AnalysisConfig::new(4, Method::LpMax));
        let sound = analyze(&ts, &AnalysisConfig::new(4, Method::LpSound));
        for k in 0..ts.len() {
            let (f, i, m, s) = (
                fp.tasks[k].response_bound.scaled(),
                ilp.tasks[k].response_bound.scaled(),
                max.tasks[k].response_bound.scaled(),
                sound.tasks[k].response_bound.scaled(),
            );
            assert!(f <= i, "task {k}: FP {f} > ILP {i}");
            assert!(i <= m, "task {k}: ILP {i} > MAX {m}");
            assert!(f <= s, "task {k}: FP {f} > SOUND {s}");
        }
    }

    #[test]
    fn lp_sound_dominates_fp_ideal_per_task() {
        // LP-sound's fixed point is FP-ideal's plus a non-negative monotone
        // term, so every converged per-task bound is at least FP-ideal's.
        let ts = figure1_task_set();
        for cores in [1usize, 2, 4, 8] {
            let fp = analyze(&ts, &AnalysisConfig::new(cores, Method::FpIdeal));
            let sound = analyze(&ts, &AnalysisConfig::new(cores, Method::LpSound));
            for (f, s) in fp.tasks.iter().zip(&sound.tasks) {
                if !f.schedulable || !s.schedulable {
                    break;
                }
                assert!(
                    s.response_bound.scaled() >= f.response_bound.scaled(),
                    "m = {cores}: LP-sound below FP-ideal"
                );
            }
        }
    }

    #[test]
    fn long_paths_never_exceeds_fp_ideal_per_task() {
        // The `min` against the Graham value in `long_paths_outcome`, plus
        // the hp-bound induction, makes per-task R_LongPaths ≤ R_FpIdeal
        // structural on any prefix both methods accept.
        let ts = figure1_task_set();
        for cores in [1usize, 2, 4, 8] {
            let fp = analyze(&ts, &AnalysisConfig::new(cores, Method::FpIdeal));
            let lp = analyze(&ts, &AnalysisConfig::new(cores, Method::LongPaths));
            for (f, l) in fp.tasks.iter().zip(&lp.tasks) {
                if !f.schedulable || !l.schedulable {
                    break;
                }
                assert!(
                    l.response_bound.scaled() <= f.response_bound.scaled(),
                    "m = {cores}: Long-paths above FP-ideal"
                );
            }
        }
    }

    #[test]
    fn gen_sporadic_dominates_fp_ideal_per_task() {
        // Deadline-anchored carry-in windows are at least the analyzed
        // response windows of an accepted prefix, so per-task
        // R_FpIdeal ≤ R_GenSporadic (the verdict edge the request layer
        // exploits in the other direction).
        let ts = figure1_task_set();
        for cores in [1usize, 2, 4, 8] {
            let fp = analyze(&ts, &AnalysisConfig::new(cores, Method::FpIdeal));
            let gs = analyze(&ts, &AnalysisConfig::new(cores, Method::GenSporadic));
            for (f, g) in fp.tasks.iter().zip(&gs.tasks) {
                if !f.schedulable || !g.schedulable {
                    break;
                }
                assert!(
                    g.response_bound.scaled() >= f.response_bound.scaled(),
                    "m = {cores}: Gen-sporadic below FP-ideal"
                );
            }
        }
    }

    #[test]
    fn long_paths_tightens_a_two_chain_dag() {
        // Two independent nodes of 10 and 6 on m = 3: Graham charges
        // R = 10 + (16 − 10)/3 = 12; both chains fit on the 3 cores, so
        // the long-path bound is exactly the critical path, R = 10.
        let mut b = DagBuilder::new();
        b.add_node(10);
        b.add_node(6);
        let ts = TaskSet::new(vec![DagTask::with_implicit_deadline(
            b.build().unwrap(),
            100,
        )
        .unwrap()]);
        let fp = analyze(&ts, &AnalysisConfig::new(3, Method::FpIdeal));
        let lp = analyze(&ts, &AnalysisConfig::new(3, Method::LongPaths));
        assert_eq!(fp.tasks[0].response_bound.ceil(), 12);
        assert_eq!(lp.tasks[0].response_bound.ceil(), 10);
    }

    #[test]
    fn gen_sporadic_carries_no_blocking_pair() {
        let ts = figure1_task_set();
        for method in [Method::LongPaths, Method::GenSporadic] {
            let report = analyze(&ts, &AnalysisConfig::new(4, method));
            for t in &report.tasks {
                assert!(t.blocking.is_none(), "{method} must carry no blocking");
            }
        }
    }

    #[test]
    fn lp_sound_carries_no_blocking_pair() {
        // The corrected term is window-dependent; the report's constant
        // (Δ^m, Δ^{m−1}) slot stays empty, like FP-ideal's.
        let ts = figure1_task_set();
        let report = analyze(&ts, &AnalysisConfig::new(4, Method::LpSound));
        for t in &report.tasks {
            assert!(t.blocking.is_none());
        }
    }

    #[test]
    fn lp_sound_alone_equals_fp_ideal() {
        // A lone task has neither higher- nor lower-priority interference:
        // the sound term is empty and the bound is exactly the Graham term
        // FP-ideal computes. (For a lowest-priority task inside a set the
        // bounds differ: the higher-priority carry-in windows use the
        // method's own — larger — response bounds.)
        let ts = TaskSet::new(vec![fork_join([1, 3, 2, 1], 100)]);
        let fp = analyze(&ts, &AnalysisConfig::new(2, Method::FpIdeal));
        let sound = analyze(&ts, &AnalysisConfig::new(2, Method::LpSound));
        assert!(sound.schedulable);
        assert_eq!(fp.tasks[0].response_bound, sound.tasks[0].response_bound);
    }

    #[test]
    fn lp_sound_blocks_highest_priority_task_mid_job() {
        // The defining scenario of the correction: the top task has p = 0,
        // so the paper's Eq. (3) charges at most one blocking event — the
        // sound term instead charges the lower-priority carry-in workload
        // of the whole window. m = 1, lp NPR of 9: LP-max gives R = 2 + 9
        // = 11; LP-sound additionally admits further lp workload in the
        // window (here the window stays short, so one job: same 11).
        let ts = TaskSet::new(vec![single_node_task(2, 20), single_node_task(9, 50)]);
        let max = analyze(&ts, &AnalysisConfig::new(1, Method::LpMax));
        let sound = analyze(&ts, &AnalysisConfig::new(1, Method::LpSound));
        assert!(sound.schedulable);
        assert!(
            sound.tasks[0].response_bound.scaled() >= max.tasks[0].response_bound.scaled(),
            "one lp job's volume subsumes its single NPR here"
        );
    }

    #[test]
    fn unschedulable_set_stops_early() {
        // Huge lower-priority NPR blocks a tight top task on one core.
        let ts = TaskSet::new(vec![single_node_task(2, 5), single_node_task(100, 1000)]);
        let report = analyze(&ts, &AnalysisConfig::new(1, Method::LpMax));
        assert!(!report.schedulable);
        assert_eq!(report.tasks.len(), 1); // stops at the first failure
        assert!(!report.tasks[0].schedulable);
        // FP-ideal has no blocking and schedules both.
        let fp = analyze(&ts, &AnalysisConfig::new(1, Method::FpIdeal));
        assert!(fp.schedulable);
        assert_eq!(fp.tasks.len(), 2);
    }

    #[test]
    fn deadline_equal_bound_is_schedulable() {
        // R = D exactly must count as schedulable (R ≤ D).
        let ts = TaskSet::new(vec![single_node_task(7, 7)]);
        let report = analyze(&ts, &AnalysisConfig::new(1, Method::FpIdeal));
        assert!(report.schedulable);
        assert_eq!(report.tasks[0].response_bound.ceil(), 7);
    }

    #[test]
    fn preemption_bound_counts_hp_releases() {
        // τ2 (8 nodes, q = 7) under a fast τ1: p = min(q, ⌈R/T1⌉).
        let mut b = DagBuilder::new();
        let v: Vec<NodeId> = b.add_nodes([1, 1, 1, 1, 1, 1, 1, 1]);
        b.add_chain(&v).unwrap();
        let slow = DagTask::with_implicit_deadline(b.build().unwrap(), 100).unwrap();
        let fast = single_node_task(1, 4);
        let ts = TaskSet::new(vec![fast, slow]);
        let report = analyze(&ts, &AnalysisConfig::new(2, Method::LpMax));
        assert!(report.schedulable);
        let t2 = &report.tasks[1];
        // No lower-priority tasks for τ2 → blocking zero, but p still
        // reported from the window.
        assert_eq!(t2.blocking.unwrap(), BlockingBounds::default());
        assert!(t2.preemption_bound >= 1);
        assert!(t2.preemption_bound <= 7);
    }

    #[test]
    fn final_npr_refinement_never_hurts() {
        let ts = figure1_task_set();
        let base_cfg = AnalysisConfig::new(4, Method::LpIlp);
        let refined_cfg = AnalysisConfig::new(4, Method::LpIlp).with_final_npr_refinement(true);
        let base = analyze(&ts, &base_cfg);
        let refined = analyze(&ts, &refined_cfg);
        for (b, r) in base.tasks.iter().zip(&refined.tasks) {
            assert!(r.response_bound.scaled() <= b.response_bound.scaled());
        }
    }

    #[test]
    fn solver_choices_agree_end_to_end() {
        // Like-for-like: same scenario space, combinatorial vs ILP solvers.
        let ts = figure1_task_set();
        let fast = analyze(
            &ts,
            &AnalysisConfig::new(4, Method::LpIlp).with_scenario_space(ScenarioSpace::PaperExact),
        );
        let paper = analyze(
            &ts,
            &AnalysisConfig::new(4, Method::LpIlp)
                .with_mu_solver(MuSolver::PaperIlp)
                .with_rho_solver(RhoSolver::PaperIlp)
                .with_scenario_space(ScenarioSpace::PaperExact),
        );
        for (a, b) in fast.tasks.iter().zip(&paper.tasks) {
            assert_eq!(a.response_bound, b.response_bound);
        }
    }

    #[test]
    fn extended_space_is_at_least_as_conservative() {
        // The default Extended scenario space accounts for blocking that the
        // paper's exact space misses when |lp(k)| < |s_l| for every feasible
        // scenario; its bounds dominate PaperExact's.
        let ts = figure1_task_set();
        let extended = analyze(&ts, &AnalysisConfig::new(4, Method::LpIlp));
        let exact = analyze(
            &ts,
            &AnalysisConfig::new(4, Method::LpIlp).with_scenario_space(ScenarioSpace::PaperExact),
        );
        for (e, p) in extended.tasks.iter().zip(&exact.tasks) {
            assert!(e.response_bound.scaled() >= p.response_bound.scaled());
        }
    }

    #[test]
    fn cached_paths_are_bit_identical_to_uncached() {
        // `analyze`, `analyze_all` and `analyze_uncached` must agree to the
        // bit on every method, core count and solver/space combination.
        let ts = figure1_task_set();
        for cores in 1..=6 {
            let mut configs = Vec::new();
            for method in Method::ALL {
                configs.push(AnalysisConfig::new(cores, method));
            }
            configs.push(
                AnalysisConfig::new(cores, Method::LpIlp)
                    .with_scenario_space(ScenarioSpace::PaperExact),
            );
            configs.push(AnalysisConfig::new(cores, Method::LpIlp).with_final_npr_refinement(true));
            let batched = analyze_all(&ts, &configs);
            for (config, from_batch) in configs.iter().zip(&batched) {
                let single = analyze(&ts, config);
                let reference = analyze_uncached(&ts, config);
                assert_eq!(single, reference, "analyze vs uncached, {config:?}");
                assert_eq!(
                    *from_batch, reference,
                    "analyze_all vs uncached, {config:?}"
                );
            }
        }
    }

    #[test]
    fn analyze_all_mixes_core_counts() {
        // One cache built at the largest m must serve smaller slices
        // identically to dedicated analyses.
        let ts = figure1_task_set();
        let configs: Vec<AnalysisConfig> = [1usize, 3, 4, 8]
            .into_iter()
            .map(|m| AnalysisConfig::new(m, Method::LpIlp))
            .collect();
        for (config, report) in configs.iter().zip(analyze_all(&ts, &configs)) {
            assert_eq!(report, analyze_uncached(&ts, config), "{config:?}");
        }
    }

    #[test]
    fn analyze_with_shares_a_cache_across_calls() {
        let ts = figure1_task_set();
        let cache = crate::cache::TaskSetCache::new(&ts, 4);
        for method in Method::ALL {
            let config = AnalysisConfig::new(4, method);
            let a = analyze_with(&cache, &config);
            let b = analyze_with(&cache, &config);
            assert_eq!(a, b);
            assert_eq!(a, analyze_uncached(&ts, &config));
        }
    }

    #[test]
    #[should_panic(expected = "cache was built for")]
    fn analyze_with_rejects_oversized_configs() {
        let ts = figure1_task_set();
        let cache = crate::cache::TaskSetCache::new(&ts, 2);
        let _ = analyze_with(&cache, &AnalysisConfig::new(4, Method::FpIdeal));
    }

    #[test]
    fn verdicts_with_bounds_mirror_full_reports() {
        // Schedulable and unschedulable sets, every method: the compact
        // verdict must carry exactly the bounds of the analyzed prefix.
        let sets = [
            figure1_task_set(),
            TaskSet::new(vec![single_node_task(2, 5), single_node_task(100, 1000)]),
        ];
        for ts in &sets {
            for cores in [1usize, 4] {
                let configs: Vec<AnalysisConfig> = Method::ALL
                    .iter()
                    .map(|&m| AnalysisConfig::new(cores, m))
                    .collect();
                let reports = analyze_all(ts, &configs);
                let verdicts = verdicts_with_bounds(ts, &configs);
                for (report, verdict) in reports.iter().zip(&verdicts) {
                    assert_eq!(verdict.schedulable, report.schedulable);
                    let expected: Vec<ResponseBound> =
                        report.tasks.iter().map(|t| t.response_bound).collect();
                    assert_eq!(verdict.bounds, expected);
                    assert_eq!(verdict.bound(0), report.response_bound(0));
                }
            }
        }
    }

    #[test]
    fn single_core_lp_is_classic_blocking() {
        // m = 1: LP blocking reduces to the largest lower-priority NPR.
        let ts = TaskSet::new(vec![
            single_node_task(1, 10),
            single_node_task(4, 40),
            single_node_task(6, 60),
        ]);
        let r = analyze(&ts, &AnalysisConfig::new(1, Method::LpIlp));
        assert_eq!(r.tasks[0].blocking.unwrap().delta_m, 6);
        assert_eq!(r.tasks[1].blocking.unwrap().delta_m, 6);
        assert_eq!(r.tasks[2].blocking.unwrap().delta_m, 0);
    }
}
