//! The long-path response-time refinement ([`Method::LongPaths`]).
//!
//! A fully-preemptive competitor analysis in the spirit of He, Guan et
//! al., *"Bounding the Response Time of DAG Tasks Using Long Paths"*
//! (arXiv 2211.08800): the Graham-style term `(vol − L)/m` charges the
//! task's entire non-critical workload as if it could stall the critical
//! path at full parallelism, but whatever executes while the critical
//! path stalls comes from **chains** of the DAG — sequential by
//! precedence — and a chain of length `ℓ` can contribute at most
//! `min(ℓ, S)` work to stall intervals of total measure `S`. Decomposing
//! the DAG into long chains and charging each at most its length turns
//! the stall-time bound into a fixed-point constraint that is strictly
//! tighter than Graham's whenever the DAG has fewer (or shorter) chains
//! than the platform has cores.
//!
//! # The bound
//!
//! Take a vertex-disjoint chain decomposition `ℓ1 ≥ ℓ2 ≥ … ≥ ℓp` with
//! `ℓ1 = L` and `Σ ℓi = vol`
//! ([`Dag::long_path_decomposition`](rta_model::Dag)). In any
//! work-conserving schedule there is a chain `λ` through the job under
//! analysis such that whenever no node of `λ` executes, all `m` cores are
//! busy with interfering workload or with the job's own non-`λ` nodes
//! (the standard construction: walk backwards from the last-finishing
//! node through each node's latest-finishing predecessor). Let `x =
//! len(λ)` and let `S` be the total measure of the stall intervals, so
//! `R ≤ x + S` and
//!
//! ```text
//! m·S ≤ I + min( vol − x , Σ_{i=1}^{p} min(ℓi, S) )            (†)
//! ```
//!
//! where `I` bounds the interfering workload in the response window: the
//! stall intervals carry `m·S` units of non-`λ` work; at most `vol − x`
//! of it is the job's own; and the job's own share coming from chain
//! `P_i` is at most `min(ℓi, S)` (a chain executes sequentially, so over
//! intervals of total measure `S` it advances at most `S`, and never past
//! its length). The sum ranges over **all** chains, `ℓ1` included: `λ` is
//! generally *not* the decomposition's first chain, so `P_1 \ λ` may
//! execute during stalls and only the `vol − x` cap accounts for the
//! overlap exactly.
//!
//! Substituting `x = ℓ1` is sound because the combined bound is
//! non-decreasing in `x`: raising `x` by `δ` lowers the right side of (†)
//! by at most `δ`, hence `S` by at most `δ/m`, so `x + S` changes by at
//! least `δ(1 − 1/m) ≥ 0` — the same monotonicity that lets the Graham
//! bound replace `len(λ)` by `L`.
//!
//! # Greatest fixed point, not least
//!
//! (†) constrains `S` from **above** (`S ≤ f(S)` with `f` monotone): it
//! says nothing about small `S`, so the valid upper bound on the true
//! stall time is the *greatest* `S` satisfying (†), found by iterating
//! `S ← f(S)` **downward** from the a-priori cap `S0 = (I + vol − ℓ1)/m`
//! (every feasible `S` is below `S0` because the inner `min` never
//! exceeds `vol − ℓ1`). Iterating **upward from zero** — the habit the
//! least-fixed-point recurrences everywhere else in this crate instill —
//! would be unsound: for the DAG of four unit nodes in a chain plus eight
//! isolated unit nodes on `m = 2`, upward iteration stabilizes at `S = 0`
//! (`R = 4`) while an adversarial work-conserving scheduler runs the
//! eight isolated nodes first, four time units on both cores, and only
//! then the chain: `R = 8`. The greatest fixed point yields exactly
//! `S = 4`, `R = 8`. Pinned by
//! `least_fixed_point_would_undershoot_the_adversary` below.
//!
//! Every feasible point lies below every iterate (by induction: `z ≤ y`
//! and `z ≤ f(z) ≤ f(y)` give `z ≤ min(y, f(y))`), the iterates decrease
//! strictly until feasible, and integers bounded below terminate — so the
//! iteration returns an upper bound on the true stall time, reaching the
//! greatest feasible point itself whenever the feasible set is an
//! interval.
//!
//! # How the method uses it
//!
//! [`Method::LongPaths`] first runs the fully-preemptive fixed point of
//! Eq. (1) with its **own** higher-priority bounds (valid by induction:
//! they are themselves sound LongPaths bounds). If it converges to
//! `r_fp ≤ m·D_k`, the interference `I` inside the true response window
//! is bounded by the converged window's interference, and the reported
//! bound is `min(r_fp, ℓ1 + S*)` — both terms sound, so their minimum is,
//! and the `min` makes per-task dominance `R_LongPaths ≤ R_Graham`
//! structural. If the fixed point *diverges past the deadline*, the
//! refinement gets one rescue attempt with `I` evaluated over the
//! deadline window `m·D_k` (assume-and-verify: before the earliest miss
//! the job's window is contained in its deadline window); a refined
//! bound at or below the deadline accepts the task where the Graham
//! recurrence could not — so an FP-ideal *failure* does **not** settle
//! LongPaths, unlike every other edge in the dominance chain.
//!
//! # Scaled arithmetic
//!
//! With `y = m·S` (scaled stall time; numerically the stall intervals'
//! workload capacity) the constraint (†) becomes pure integers:
//!
//! ```text
//! m·y ≤ m·I + min( m·(vol − ℓ1) , Σ_i min(m·ℓi, y) )
//! ```
//!
//! and the reported scaled bound is `m·ℓ1 + y*`. No rounding happens
//! anywhere, so no direction-of-rounding argument is needed.
//!
//! [`Method::LongPaths`]: crate::config::Method::LongPaths

use rta_model::Time;

/// The long-path stall bound: `m·ℓ1 + y*` (scaled by `m`), where `y*`
/// upper-bounds `m·S` over every stall time `S` feasible for (†) — see
/// the [module docs](self).
///
/// * `interference` — plain-unit bound `I` on the interfering workload in
///   the response window the caller certified (converged window or
///   deadline window).
/// * `decomposition` — chain lengths `ℓ1 ≥ … ≥ ℓp`, summing to `volume`.
/// * `volume`, `cores` — `vol(G_k)` and `m`.
///
/// # Panics
///
/// Panics if `decomposition` is empty, unsorted, or does not sum to
/// `volume` (debug builds), or if `cores == 0`.
pub fn long_path_bound(
    interference: u128,
    decomposition: &[Time],
    volume: Time,
    cores: usize,
) -> u128 {
    assert!(cores >= 1, "at least one core required");
    let longest = *decomposition.first().expect("decomposition is non-empty");
    debug_assert!(
        decomposition.windows(2).all(|w| w[0] >= w[1]),
        "chain lengths must be non-increasing"
    );
    debug_assert_eq!(
        decomposition.iter().sum::<Time>(),
        volume,
        "chains must partition the volume"
    );
    let m = cores as u128;
    let slack = (volume - longest) as u128;
    // Downward iteration from the a-priori cap: every feasible y is below
    // I + (vol − ℓ1) because the inner min never exceeds m·(vol − ℓ1).
    let mut y = interference + slack;
    loop {
        let own: u128 = decomposition.iter().map(|&l| (m * l as u128).min(y)).sum();
        let h = (m * interference + own.min(m * slack)) / m;
        if y <= h {
            break;
        }
        y = h;
    }
    m * longest as u128 + y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_chains_on_three_cores_cost_only_the_critical_path() {
        // Chains of 10 and 6 on m = 3, no interference: both run in
        // parallel on a work-conserving scheduler, so R = 10 exactly —
        // the Graham term would add (16 − 10)/3 = 2.
        assert_eq!(long_path_bound(0, &[10, 6], 16, 3), 30);
    }

    #[test]
    fn least_fixed_point_would_undershoot_the_adversary() {
        // Four unit nodes in a chain + eight isolated unit nodes, m = 2:
        // the adversary runs all eight isolated nodes first (four time
        // units, both cores busy — work conservation is respected because
        // chain work *is* ready, just not chosen), then the chain alone:
        // R = 8. Upward iteration from S = 0 would stop at S = 0 (R = 4);
        // the greatest fixed point finds S = 4.
        let decomposition = [4, 1, 1, 1, 1, 1, 1, 1, 1];
        assert_eq!(long_path_bound(0, &decomposition, 12, 2), 16); // m·R = 16 → R = 8
    }

    #[test]
    fn never_exceeds_the_graham_term() {
        // m·L + (vol − L) + m·⌊I/m⌋ is the Graham/Melani value the
        // fully-preemptive recurrence would produce from the same inputs;
        // the long-path bound never exceeds the un-floored version.
        for (decomposition, volume, cores) in [
            (vec![10u64, 6], 16u64, 3usize),
            (vec![4, 1, 1, 1, 1, 1, 1, 1, 1], 12, 2),
            (vec![7, 7, 7], 21, 2),
            (vec![30], 30, 4),
        ] {
            for interference in [0u128, 1, 5, 40, 1000] {
                let m = cores as u128;
                let graham = m * decomposition[0] as u128
                    + (volume - decomposition[0]) as u128
                    + interference;
                let lp = long_path_bound(interference, &decomposition, volume, cores);
                assert!(
                    lp <= graham,
                    "I={interference} m={cores} {decomposition:?}: {lp} > {graham}"
                );
            }
        }
    }

    #[test]
    fn single_chain_is_exactly_its_length_plus_interference_delay() {
        // One chain (a sequential DAG): no self-interference at all, so
        // R = L + I/m.
        assert_eq!(long_path_bound(0, &[30], 30, 4), 120);
        assert_eq!(long_path_bound(8, &[30], 30, 4), 128);
    }

    #[test]
    fn interference_reopens_the_stall_window() {
        // The two-chain DAG of the first test: with interference the
        // second chain can legally stall the first again.
        let with_i = long_path_bound(9, &[10, 6], 16, 3);
        assert!(with_i > 30, "interference must increase the bound");
        // Feasibility at the returned point: m·y ≤ m·I + min(m·slack, Σ).
        let y = with_i - 30;
        let own = (3 * 10u128).min(y) + (3 * 6u128).min(y);
        assert!(3 * y <= 3 * 9 + own.min(3 * 6));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = long_path_bound(0, &[1], 1, 0);
    }
}
