//! Bounded memoization of analysis outcomes across repeated task sets —
//! the admission-control cache behind `repro serve`.
//!
//! An admission controller sees the same task sets over and over: the
//! currently-admitted workload is re-analyzed with every candidate change,
//! and clients retry or poll with identical payloads. [`AnalysisLru`]
//! makes that traffic cheap without touching the analysis itself:
//!
//! * task sets are keyed by [`TaskSet::stable_hash`] (with a full equality
//!   check behind the hash, so 64-bit collisions cannot cross-pollute
//!   results) and kept in a bounded least-recently-used store;
//! * per task set, the cache remembers **per-method facts**, keyed by the
//!   exact [`AnalysisConfig`] the method ran under: the verdict, and — when
//!   they were materialized — the per-task response bounds. A request is a
//!   *hit* when every method it asks for is already answered, so repeat
//!   queries **and** near-repeats that recombine previously answered
//!   methods (e.g. all four methods first, `LP-sound` alone later) are
//!   O(lookup).
//!
//! Sharing verdicts across request shapes is sound: a method's
//! schedulability flag is the same fact whether it came from the
//! verdict-only dominance chain or from a bound-carrying fixed point —
//! the chain's short-circuits are exact (see
//! [`AnalysisRequest::evaluate`]), and only *requested* methods are ever
//! recorded, never the chain's internal placeholders.
//!
//! The cache cannot hold [`crate::TaskSetCache`]s directly — those borrow
//! their task set, and this crate forbids the `unsafe` a self-referential
//! owner would need — so a *near* lookup (set known, some requested method
//! not yet answered) re-derives the lazy tables. What the LRU buys is the
//! O(lookup) repeat path; what it stores is small (verdicts and bound
//! vectors, not the combinatorial tables).
//!
//! Locking discipline: [`fetch`] and [`store`] are split so a concurrent
//! server holds its mutex only for the O(lookup) parts and evaluates
//! outside the lock; single-threaded callers use [`analyze`].
//!
//! [`fetch`]: AnalysisLru::fetch
//! [`store`]: AnalysisLru::store
//! [`analyze`]: AnalysisLru::analyze
//!
//! # Example
//!
//! ```
//! use rta_analysis::{AnalysisLru, AnalysisRequest, CacheOutcome, Method};
//! use rta_model::examples::figure1_task_set;
//!
//! let mut lru = AnalysisLru::new(8);
//! let ts = figure1_task_set();
//! let all = AnalysisRequest::new(4);
//! assert_eq!(lru.analyze(&ts, &all).1, CacheOutcome::Miss);
//! // Identical repeat: answered from the memo.
//! assert_eq!(lru.analyze(&ts, &all).1, CacheOutcome::Hit);
//! // Near-repeat recombining already-answered methods: still a hit.
//! let sound = AnalysisRequest::new(4).with_methods([Method::LpSound]);
//! assert_eq!(lru.analyze(&ts, &sound).1, CacheOutcome::Hit);
//! ```

use crate::config::AnalysisConfig;
use crate::report::ResponseBound;
use crate::request::{AnalysisOutcome, AnalysisRequest, MethodOutcome};
use rta_model::TaskSet;
use std::collections::HashMap;

/// Per-entry bound on remembered per-method facts. A cooperating client
/// reuses a handful of configurations; only an adversarial stream of
/// ever-new solver knobs could grow an entry without bound, so past the
/// cap the entry's facts are simply reset.
const MAX_FACTS_PER_SET: usize = 256;

/// How a request was answered relative to the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Task set known and every requested method already answered.
    Hit,
    /// Task set known, but at least one requested method had to run.
    Near,
    /// Task set not in the cache.
    Miss,
}

impl CacheOutcome {
    /// The wire label (`"hit"` / `"near"` / `"miss"`).
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Near => "near",
            CacheOutcome::Miss => "miss",
        }
    }
}

/// Running counters of cache behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LruStats {
    /// Requests answered entirely from the memo.
    pub hits: u64,
    /// Requests on a cached set that still had to evaluate some method.
    pub near_hits: u64,
    /// Requests on an uncached set.
    pub misses: u64,
    /// Task-set entries displaced by the capacity bound.
    pub evictions: u64,
}

/// One cached task set with its answered per-method facts.
struct Entry {
    key: u64,
    task_set: TaskSet,
    /// Verdicts recorded from verdict-only evaluations.
    verdicts: HashMap<AnalysisConfig, bool>,
    /// Verdict + per-task bounds from bound-carrying evaluations.
    bounds: HashMap<AnalysisConfig, (bool, Vec<ResponseBound>)>,
    /// Recency stamp from the owner's monotone clock.
    last_used: u64,
}

impl Entry {
    fn fact_count(&self) -> usize {
        self.verdicts.len() + self.bounds.len()
    }

    /// Answers one method from the recorded facts, if present. A bound
    ///-carrying fact also answers the verdict-only shape of the same
    /// configuration (the flag is the same fixed point's answer); the
    /// converse direction is impossible.
    fn answer(&self, config: &AnalysisConfig, want_bounds: bool) -> Option<MethodOutcome> {
        let method = config.method;
        if want_bounds {
            let (schedulable, bounds) = self.bounds.get(config)?;
            Some(MethodOutcome {
                method,
                schedulable: *schedulable,
                bounds: Some(bounds.clone()),
            })
        } else {
            let schedulable = self
                .verdicts
                .get(config)
                .copied()
                .or_else(|| self.bounds.get(config).map(|(s, _)| *s))?;
            Some(MethodOutcome {
                method,
                schedulable,
                bounds: None,
            })
        }
    }
}

/// A bounded least-recently-used cache of analysis outcomes, keyed by
/// [`TaskSet::stable_hash`]. See the [module docs](self) for the design.
pub struct AnalysisLru {
    entries: Vec<Entry>,
    capacity: usize,
    clock: u64,
    stats: LruStats,
}

impl AnalysisLru {
    /// Creates a cache holding at most `capacity` task sets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        Self {
            entries: Vec::new(),
            capacity,
            clock: 0,
            stats: LruStats::default(),
        }
    }

    /// Number of task sets currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The capacity this cache was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The running counters.
    pub fn stats(&self) -> LruStats {
        self.stats
    }

    /// Attempts to answer `request` from the cache alone — O(lookup), no
    /// analysis. On [`CacheOutcome::Hit`] the full outcome is returned and
    /// the entry's recency is bumped; otherwise the caller should evaluate
    /// the request (outside any lock guarding this cache) and hand the
    /// result to [`store`](Self::store).
    pub fn fetch(
        &mut self,
        task_set: &TaskSet,
        request: &AnalysisRequest,
    ) -> (Option<AnalysisOutcome>, CacheOutcome) {
        self.clock += 1;
        let key = task_set.stable_hash();
        let Some(entry) = self
            .entries
            .iter_mut()
            .find(|e| e.key == key && e.task_set == *task_set)
        else {
            self.stats.misses += 1;
            crate::metrics::LRU_MISSES.inc();
            return (None, CacheOutcome::Miss);
        };
        entry.last_used = self.clock;
        let answers: Option<Vec<MethodOutcome>> = request
            .methods
            .iter()
            .map(|&m| entry.answer(&request.config_for(m), request.want_bounds))
            .collect();
        match answers {
            Some(outcomes) => {
                self.stats.hits += 1;
                crate::metrics::LRU_HITS.inc();
                (
                    Some(AnalysisOutcome::from_parts(request.cores, outcomes)),
                    CacheOutcome::Hit,
                )
            }
            None => {
                self.stats.near_hits += 1;
                crate::metrics::LRU_NEAR_HITS.inc();
                (None, CacheOutcome::Near)
            }
        }
    }

    /// Answers `request` from recorded facts only, or not at all — the
    /// degraded-mode fast path for callers shedding load. Behaves like
    /// [`fetch`](Self::fetch) on a full hit (recency bumped, hit counted);
    /// on anything less it returns `None` **without** counting a miss or
    /// near-hit, because no analysis follows — the caller refuses the
    /// request instead, and its own shed accounting covers that.
    pub fn fetch_facts(
        &mut self,
        task_set: &TaskSet,
        request: &AnalysisRequest,
    ) -> Option<AnalysisOutcome> {
        let key = task_set.stable_hash();
        let entry = self
            .entries
            .iter_mut()
            .find(|e| e.key == key && e.task_set == *task_set)?;
        let outcomes: Vec<MethodOutcome> = request
            .methods
            .iter()
            .map(|&m| entry.answer(&request.config_for(m), request.want_bounds))
            .collect::<Option<_>>()?;
        self.clock += 1;
        entry.last_used = self.clock;
        self.stats.hits += 1;
        crate::metrics::LRU_HITS.inc();
        Some(AnalysisOutcome::from_parts(request.cores, outcomes))
    }

    /// Records an evaluated outcome: every `(configuration, method)` fact
    /// it carries becomes answerable, creating (and if necessary evicting
    /// to make room for) the task set's entry.
    pub fn store(
        &mut self,
        task_set: &TaskSet,
        request: &AnalysisRequest,
        outcome: &AnalysisOutcome,
    ) {
        self.clock += 1;
        let key = task_set.stable_hash();
        let entry = match self
            .entries
            .iter_mut()
            .position(|e| e.key == key && e.task_set == *task_set)
        {
            Some(i) => &mut self.entries[i],
            None => {
                if self.entries.len() == self.capacity {
                    let (lru, _) = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_used)
                        .expect("capacity >= 1, so a full cache is non-empty");
                    self.entries.swap_remove(lru);
                    self.stats.evictions += 1;
                    crate::metrics::LRU_EVICTIONS.inc();
                }
                self.entries.push(Entry {
                    key,
                    task_set: task_set.clone(),
                    verdicts: HashMap::new(),
                    bounds: HashMap::new(),
                    last_used: 0,
                });
                self.entries.last_mut().expect("just pushed")
            }
        };
        entry.last_used = self.clock;
        if entry.fact_count() + outcome.outcomes().len() > MAX_FACTS_PER_SET {
            entry.verdicts.clear();
            entry.bounds.clear();
        }
        for answer in outcome.outcomes() {
            let config = request.config_for(answer.method);
            match &answer.bounds {
                Some(bounds) => {
                    entry
                        .bounds
                        .insert(config, (answer.schedulable, bounds.clone()));
                }
                None => {
                    entry.verdicts.insert(config, answer.schedulable);
                }
            }
        }
    }

    /// Fetch-or-evaluate convenience for single-threaded callers: answers
    /// from the cache when possible, otherwise evaluates and stores.
    pub fn analyze(
        &mut self,
        task_set: &TaskSet,
        request: &AnalysisRequest,
    ) -> (AnalysisOutcome, CacheOutcome) {
        match self.fetch(task_set, request) {
            (Some(outcome), status) => (outcome, status),
            (None, status) => {
                let outcome = request.evaluate(task_set);
                self.store(task_set, request, &outcome);
                (outcome, status)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Method;
    use rta_model::examples::figure1_task_set;
    use rta_model::{DagBuilder, DagTask};

    fn small_set(wcet: u64, period: u64) -> TaskSet {
        let mut b = DagBuilder::new();
        b.add_node(wcet);
        TaskSet::new(vec![DagTask::with_implicit_deadline(
            b.build().unwrap(),
            period,
        )
        .unwrap()])
    }

    #[test]
    fn repeat_and_recombined_queries_hit() {
        let mut lru = AnalysisLru::new(4);
        let ts = figure1_task_set();
        let all = AnalysisRequest::new(4);
        assert_eq!(lru.analyze(&ts, &all).1, CacheOutcome::Miss);
        let (outcome, status) = lru.analyze(&ts, &all);
        assert_eq!(status, CacheOutcome::Hit);
        assert_eq!(outcome, all.evaluate(&ts));
        // Any subset of the answered methods is a hit, in any order.
        let sub = AnalysisRequest::new(4).with_methods([Method::LpSound, Method::FpIdeal]);
        let (outcome, status) = lru.analyze(&ts, &sub);
        assert_eq!(status, CacheOutcome::Hit);
        assert_eq!(outcome, sub.evaluate(&ts));
    }

    #[test]
    fn bounds_answer_verdicts_but_not_vice_versa() {
        let mut lru = AnalysisLru::new(4);
        let ts = figure1_task_set();
        let with_bounds = AnalysisRequest::new(4).with_bounds(true);
        lru.analyze(&ts, &with_bounds);
        // Bound-carrying facts answer the verdict-only shape...
        let verdicts_only = AnalysisRequest::new(4);
        assert_eq!(lru.analyze(&ts, &verdicts_only).1, CacheOutcome::Hit);
        // ...but verdict facts cannot conjure bounds: a different platform
        // slice has only verdicts recorded, so asking it for bounds is Near.
        let narrow = AnalysisRequest::new(2);
        lru.analyze(&ts, &narrow);
        let narrow_bounds = AnalysisRequest::new(2).with_bounds(true);
        assert_eq!(lru.analyze(&ts, &narrow_bounds).1, CacheOutcome::Near);
    }

    #[test]
    fn near_hits_on_new_methods_then_hit() {
        let mut lru = AnalysisLru::new(4);
        let ts = figure1_task_set();
        let fp = AnalysisRequest::new(4).with_methods([Method::FpIdeal]);
        lru.analyze(&ts, &fp);
        let more = AnalysisRequest::new(4).with_methods([Method::FpIdeal, Method::LpMax]);
        assert_eq!(lru.analyze(&ts, &more).1, CacheOutcome::Near);
        assert_eq!(lru.analyze(&ts, &more).1, CacheOutcome::Hit);
        assert_eq!(
            lru.stats(),
            LruStats {
                hits: 1,
                near_hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn eviction_displaces_the_least_recently_used_set() {
        let mut lru = AnalysisLru::new(2);
        let a = small_set(1, 10);
        let b = small_set(2, 10);
        let c = small_set(3, 10);
        let req = AnalysisRequest::new(2);
        lru.analyze(&a, &req);
        lru.analyze(&b, &req);
        lru.analyze(&a, &req); // touch a: b is now the LRU entry
        lru.analyze(&c, &req); // evicts b
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.stats().evictions, 1);
        assert_eq!(lru.analyze(&a, &req).1, CacheOutcome::Hit);
        assert_eq!(lru.analyze(&c, &req).1, CacheOutcome::Hit);
        assert_eq!(lru.analyze(&b, &req).1, CacheOutcome::Miss);
    }

    #[test]
    fn hash_collisions_cannot_cross_pollute() {
        // Force a collision by lying about the key: two entries with equal
        // keys but different sets must still resolve by full equality.
        let mut lru = AnalysisLru::new(4);
        let a = small_set(1, 10);
        let b = small_set(9, 10);
        let req = AnalysisRequest::new(2);
        let (outcome_a, _) = lru.analyze(&a, &req);
        lru.entries[0].key = b.stable_hash();
        assert_eq!(lru.analyze(&b, &req).1, CacheOutcome::Miss);
        let (outcome_b, _) = lru.analyze(&b, &req);
        assert_eq!(outcome_a, req.evaluate(&a));
        assert_eq!(outcome_b, req.evaluate(&b));
    }

    #[test]
    fn structurally_equal_sets_share_an_entry() {
        let mut lru = AnalysisLru::new(4);
        let req = AnalysisRequest::new(2);
        lru.analyze(&small_set(1, 10), &req);
        // An independently built but equal set is the same cache line.
        assert_eq!(lru.analyze(&small_set(1, 10), &req).1, CacheOutcome::Hit);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn fact_bound_resets_instead_of_growing() {
        let mut lru = AnalysisLru::new(1);
        let ts = figure1_task_set();
        for cores in 1..=(MAX_FACTS_PER_SET + 2) {
            let req = AnalysisRequest::new(cores).with_methods([Method::FpIdeal]);
            lru.analyze(&ts, &req);
        }
        assert_eq!(lru.len(), 1);
        assert!(lru.entries[0].fact_count() <= MAX_FACTS_PER_SET);
    }

    #[test]
    fn empty_method_lists_only_hit_known_sets() {
        let mut lru = AnalysisLru::new(2);
        let ts = small_set(1, 10);
        let none = AnalysisRequest::new(2).with_methods([]);
        assert_eq!(lru.analyze(&ts, &none).1, CacheOutcome::Miss);
        assert_eq!(lru.analyze(&ts, &none).1, CacheOutcome::Hit);
    }

    #[test]
    fn facts_only_path_answers_hits_and_refuses_everything_else() {
        let mut lru = AnalysisLru::new(4);
        let ts = figure1_task_set();
        let req = AnalysisRequest::new(4);
        // Nothing recorded: no answer, and no miss/near counted — the
        // caller refuses the request and accounts for it as shed.
        assert_eq!(lru.fetch_facts(&ts, &req), None);
        lru.analyze(&ts, &req);
        let stats_before = lru.stats();
        let outcome = lru.fetch_facts(&ts, &req).expect("recorded facts");
        assert_eq!(outcome, req.evaluate(&ts));
        assert_eq!(lru.stats().hits, stats_before.hits + 1);
        // A shape needing facts that were never recorded is refused, and
        // neither the miss nor the near-hit counter moves.
        let bounds = AnalysisRequest::new(4).with_bounds(true);
        assert_eq!(lru.fetch_facts(&ts, &bounds), None);
        assert_eq!(lru.stats().misses, stats_before.misses);
        assert_eq!(lru.stats().near_hits, stats_before.near_hits);
        // The hit bumped recency: under eviction pressure the facts-served
        // set survives over one analyzed earlier but never re-touched.
        let mut lru = AnalysisLru::new(2);
        let small = AnalysisRequest::new(2);
        let a = small_set(1, 10);
        let b = small_set(2, 10);
        lru.analyze(&a, &small);
        lru.analyze(&b, &small);
        lru.fetch_facts(&a, &small).expect("a is cached");
        lru.analyze(&small_set(3, 10), &small); // evicts b, not a
        assert_eq!(lru.analyze(&a, &small).1, CacheOutcome::Hit);
        assert_eq!(lru.analyze(&b, &small).1, CacheOutcome::Miss);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = AnalysisLru::new(0);
    }
}
