//! The generalized-sporadic GFP interference bound ([`Method::GenSporadic`]).
//!
//! A fully-preemptive competitor analysis in the spirit of Dinh, Gill &
//! Agrawal, *"Analysis of Global Fixed-Priority Scheduling for Generalized
//! Sporadic DAG Tasks"* (arXiv 1905.05119): instead of anchoring each
//! higher-priority task's carry-in window at its *analyzed response bound*
//! — which requires the recurrence to thread per-task results through the
//! priority order — the interfering workload is characterized from the
//! task's **contract alone** (period, deadline, volume). That makes the
//! bound valid for generalized sporadic release patterns: any release
//! sequence with inter-arrivals of at least `T_i` whose jobs execute
//! within their deadline windows, with no assumption about where inside
//! `[release, release + D_i]` the work actually lands.
//!
//! # The interfering-workload characterization
//!
//! For a higher-priority task `τ_i` and an interference window of length
//! `t`, the workload `τ_i` executes inside the window is bounded by the
//! Melani window bound ([`crate::workload::interfering_workload`])
//! evaluated with `R_i := D_i`:
//!
//! ```text
//! W_i^GS(t) = W_i^Melani(t; R_i = D_i)
//! ```
//!
//! Any job with execution inside the window was released after
//! `window start − D_i` (it would have missed its deadline otherwise),
//! which is exactly the carry-in alignment the Melani bound captures with
//! `R_i = D_i`. Soundness follows by the standard assume-and-verify
//! argument: consider the earliest deadline miss of a legal schedule —
//! every job completed before it met its deadline, so the bound holds for
//! the window of the job under analysis, and an accepted set therefore
//! admits no first miss (the same argument [`crate::blocking::sound`]
//! spells out for the lower-priority direction). The response-time
//! recurrence is otherwise the fully-preemptive Eq. (1) shape: no
//! lower-priority blocking term.
//!
//! The release-*counting* characterization of the generalized-sporadic
//! model — at most `⌊(t + D_i)/T_i⌋ + 1` jobs can touch the window, each
//! contributing at most `vol_i` — is **implied** by the bound above and
//! is therefore not taken as an extra `min` leg: with
//! `x = m·t + m·D_i − vol_i`,
//!
//! ```text
//! W_i^GS = ⌊x/(m·T_i)⌋·vol_i + min(vol_i, x mod m·T_i)
//!        ≤ (⌊x/(m·T_i)⌋ + 1)·vol_i
//!        ≤ (⌊(t + D_i)/T_i⌋ + 1)·vol_i ,
//! ```
//!
//! pinned by `release_counting_bound_is_implied` below.
//!
//! # Provable dominance: FP-ideal ⇒ Gen-sporadic (per task)
//!
//! On any prefix of the priority order that FP-ideal accepts, every
//! per-task Gen-sporadic bound is **at least** FP-ideal's: FP-ideal's
//! interference term is `W_i^Melani(t; R_i = r_i)` with `r_i ≤ D_i` on an
//! accepted prefix, the Melani bound is monotone in its response
//! argument, each Gen-sporadic interference term therefore dominates the
//! FP-ideal term pointwise, the shared fixed point is monotone in its
//! interference term, and induction over the priority order gives
//! per-task `R_FP ≤ R_GS` — hence the verdict edge **Gen-sporadic
//! schedulable ⇒ FP-ideal schedulable**, which the dominance chain of
//! [`crate::AnalysisRequest`] exploits (an FP-ideal failure settles
//! Gen-sporadic negatively without evaluating it).
//!
//! # Scaled arithmetic
//!
//! As everywhere in this crate, windows flow in scaled units of `1/m`
//! (`w = m·t`), so `R_i = D_i` enters as the scaled `m·D_i` and no
//! floating point is involved.
//!
//! [`Method::GenSporadic`]: crate::config::Method::GenSporadic

use crate::workload::interfering_workload;
use rta_model::Time;

/// `W_i^GS(t)`: the generalized-sporadic workload bound of one interfering
/// task over a window of scaled length `window_scaled` (`m·t`), in plain
/// execution units. See the [module docs](self) for the derivation.
///
/// # Panics
///
/// Panics if `period == 0` or `cores == 0` (via the Melani bound).
pub fn gen_sporadic_workload(
    window_scaled: u128,
    volume: Time,
    period: Time,
    deadline: Time,
    cores: usize,
) -> u128 {
    let deadline_scaled = cores as u128 * deadline as u128;
    interfering_workload(window_scaled, deadline_scaled, volume, period, cores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_hand_computed() {
        // m = 1, vol = 4, T = 10, D = 10, window 16: x = 16 + 10 − 4 = 22
        // → 2 full jobs (8) + min(4, 2) = 10.
        assert_eq!(gen_sporadic_workload(16, 4, 10, 10, 1), 10);
    }

    #[test]
    fn constrained_deadline_shrinks_the_carry_in() {
        // m = 1, vol = 6, T = 20, window 1: with D = 8 the carry job can
        // reach at most x = 1 + 8 − 6 = 3 units into the window; with the
        // implicit D = 20 it reaches min(6, 15) = 6.
        assert_eq!(gen_sporadic_workload(1, 6, 20, 8, 1), 3);
        assert_eq!(gen_sporadic_workload(1, 6, 20, 20, 1), 6);
    }

    #[test]
    fn dominates_response_anchored_melani() {
        // For every r_i ≤ m·D_i the deadline-anchored GS bound is at least
        // the FP-ideal term — the per-term half of the dominance proof.
        let (volume, period, deadline, cores) = (9u64, 14u64, 11u64, 3usize);
        let m = cores as u128;
        for window in 0..200u128 {
            let gs = gen_sporadic_workload(window, volume, period, deadline, cores);
            for r_scaled in [volume as u128, 17, 23, m * deadline as u128] {
                let fp = interfering_workload(window, r_scaled, volume, period, cores);
                assert!(
                    gs >= fp,
                    "window {window}, r_i {r_scaled}: GS {gs} < FP {fp}"
                );
            }
        }
    }

    #[test]
    fn release_counting_bound_is_implied() {
        // The generalized-sporadic job-counting bound (⌊(t + D)/T⌋ + 1)
        // releases, vol each — never falls below the Melani-with-deadline
        // bound, so taking their min would be a no-op.
        for (volume, period, deadline, cores) in
            [(6u64, 20u64, 8u64, 1usize), (9, 14, 11, 3), (40, 13, 13, 4)]
        {
            let m = cores as u128;
            for window in 0..300u128 {
                let gs = gen_sporadic_workload(window, volume, period, deadline, cores);
                let releases = (window + m * deadline as u128) / (m * period as u128) + 1;
                assert!(
                    gs <= releases * volume as u128,
                    "vol={volume} T={period} D={deadline} m={cores} w={window}"
                );
            }
        }
    }

    #[test]
    fn monotone_in_window() {
        let mut last = 0;
        for window in 0..500u128 {
            let w = gen_sporadic_workload(window, 12, 7, 6, 3);
            assert!(w >= last, "W^GS must be non-decreasing in the window");
            last = w;
        }
    }

    #[test]
    fn zero_window_still_charges_carry_in() {
        // A zero-length window can still contain carry-in execution of a
        // job released D_i before it.
        assert!(gen_sporadic_workload(0, 5, 10, 10, 2) > 0);
    }
}
