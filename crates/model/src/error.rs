//! Error types for model construction and validation.

use crate::ids::NodeId;
use std::fmt;

/// Error raised when constructing or validating model objects.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// The DAG has no nodes.
    EmptyDag,
    /// An edge references a node that does not exist.
    UnknownNode {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// An edge from a node to itself.
    SelfLoop {
        /// The node with the self-loop.
        node: NodeId,
    },
    /// The edge set contains a cycle, so the graph is not a DAG.
    CycleDetected,
    /// A task period of zero.
    ZeroPeriod,
    /// A task deadline of zero.
    ZeroDeadline,
    /// Deadline exceeds period: the model requires constrained deadlines
    /// (`D_k ≤ T_k`, paper Section III-A).
    DeadlineExceedsPeriod {
        /// The relative deadline.
        deadline: u64,
        /// The period (minimum inter-arrival time).
        period: u64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyDag => write!(f, "DAG has no nodes"),
            ModelError::UnknownNode { node, node_count } => write!(
                f,
                "edge references {node} but the graph has only {node_count} nodes"
            ),
            ModelError::SelfLoop { node } => write!(f, "self-loop on {node}"),
            ModelError::CycleDetected => write!(f, "edge set contains a cycle"),
            ModelError::ZeroPeriod => write!(f, "task period must be positive"),
            ModelError::ZeroDeadline => write!(f, "task deadline must be positive"),
            ModelError::DeadlineExceedsPeriod { deadline, period } => write!(
                f,
                "deadline {deadline} exceeds period {period}; constrained deadlines required"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let msgs = [
            ModelError::EmptyDag.to_string(),
            ModelError::CycleDetected.to_string(),
            ModelError::ZeroPeriod.to_string(),
            ModelError::DeadlineExceedsPeriod {
                deadline: 10,
                period: 5,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_error(ModelError::EmptyDag);
    }
}
