//! The DAGs of the paper's **Figure 1**, reconstructed.
//!
//! Figure 1 shows the four lower-priority tasks `lp(k) = {τ_1, τ_2, τ_3,
//! τ_4}` used by the paper's running example on an `m = 4` platform. The
//! figure itself is not machine-readable in the source text, but its
//! structure and WCETs are pinned down by:
//!
//! * **Table I** (all `µ_i[c]` values, including which nodes realize them),
//! * **Table III** (all `ρ_k[s_l]` values and `Δ⁴ = 19`, `Δ³ = 15`),
//! * the Section V-A1 worked example of Algorithm 1 on `τ_1`
//!   (`SUCC`/`PRED`/`Par` sets), and
//! * the prose (`τ_2` has maximum parallelism 2; `v_{4,1}` and `v_{4,4}`
//!   cannot execute in parallel; the LP-max sum `Δ⁴ = C_{3,1} + C_{4,1} +
//!   C_{4,4} + C_{2,2} = 20`).
//!
//! WCETs not pinned by any of the above (the fork/join "glue" nodes
//! `C_{1,1}`, `C_{2,1}`, `C_{2,4}`) are chosen small enough not to perturb
//! any table value; the choices are documented inline. Every derived value
//! is asserted in this module's tests and again, end-to-end, in the
//! workspace integration tests.

use crate::dag::{Dag, DagBuilder};
use crate::task::DagTask;
use crate::taskset::TaskSet;

/// `τ_1` of Figure 1: a two-level fork-join diamond.
///
/// ```text
///            v1(2)
///   ┌─────┬───┴──┬─────┐
/// v2(1) v3(1) v4(1) v5(2)
///   └──┬──┘      └──┬──┘
///    v6(3)        v7(2)
///       └─────┬─────┘
///           v8(3)
/// ```
///
/// Pinned by the paper: `C_{1,6} = C_{1,8} = 3` (`µ_1[1] = 3`),
/// `C_{1,7} = 2` (`µ_1[2] = C_{1,6} + C_{1,7} = 5`),
/// `C_{1,4} + C_{1,5} = 3` (`µ_1[3] = 6`), `C_{1,2} + C_{1,3} = 2`
/// (`µ_1[4] = 5`), and the `SUCC`/`Par` sets of Section V-A1.
/// Free choice: `C_{1,1} = 2` (any value ≤ 3 preserves every table entry).
pub fn figure1_tau1() -> Dag {
    let mut b = DagBuilder::new();
    let v = b.add_nodes([2, 1, 1, 1, 2, 3, 2, 3]);
    for &mid in &v[1..5] {
        b.add_edge(v[0], mid).expect("valid edge");
    }
    b.add_edge(v[1], v[5]).expect("valid edge");
    b.add_edge(v[2], v[5]).expect("valid edge");
    b.add_edge(v[3], v[6]).expect("valid edge");
    b.add_edge(v[4], v[6]).expect("valid edge");
    b.add_edge(v[5], v[7]).expect("valid edge");
    b.add_edge(v[6], v[7]).expect("valid edge");
    b.build().expect("τ1 is a valid DAG")
}

/// `τ_2` of Figure 1: a simple fork-join with two parallel branches.
///
/// ```text
///     v1(2)
///   ┌───┴───┐
/// v2(4)   v3(3)
///   └───┬───┘
///     v4(1)
/// ```
///
/// Pinned: `C_{2,2} = 4` (`µ_2[1]`), `C_{2,3} = 3` (`µ_2[2] = 7`), maximum
/// parallelism 2 (`µ_2[3] = µ_2[4] = 0`). Free choices: `C_{2,1} = 2`,
/// `C_{2,4} = 1` (≤ 4 so `µ_2[1]` stays 4).
pub fn figure1_tau2() -> Dag {
    let mut b = DagBuilder::new();
    let v = b.add_nodes([2, 4, 3, 1]);
    b.add_edge(v[0], v[1]).expect("valid edge");
    b.add_edge(v[0], v[2]).expect("valid edge");
    b.add_edge(v[1], v[3]).expect("valid edge");
    b.add_edge(v[2], v[3]).expect("valid edge");
    b.build().expect("τ2 is a valid DAG")
}

/// `τ_3` of Figure 1: a source spawning four parallel branches.
///
/// ```text
///          v1(6)
///   ┌─────┬──┴───┬─────┐
/// v2(2) v3(4) v4(3) v5(2)
/// ```
///
/// Pinned: `C_{3,1} = 6` (`µ_3[1]`, and `v_{3,1}` participates in the
/// LP-max sum, so it must not be parallel with the others — it is the
/// source), `C_{3,3} + C_{3,4} = 7` (`µ_3[2]`), `C_{3,2} = C_{3,5} = 2`
/// (`µ_3[3] = 9` with "`C_{3,2}` or `C_{3,5}`", `µ_3[4] = 11`).
pub fn figure1_tau3() -> Dag {
    let mut b = DagBuilder::new();
    let v = b.add_nodes([6, 2, 4, 3, 2]);
    for &child in &v[1..] {
        b.add_edge(v[0], child).expect("valid edge");
    }
    b.build().expect("τ3 is a valid DAG")
}

/// `τ_4` of Figure 1: an asymmetric fork.
///
/// ```text
///   v1(5)
///   ┌─┴──────┐
/// v2(2)    v3(4)
///   ├────┐
/// v4(5) v5(3)
/// ```
///
/// Pinned: `C_{4,1} = C_{4,4} = 5` (`µ_4[1] = 5`, "`C_{4,1}` or
/// `C_{4,4}`", and the prose notes `v_{4,1}` and `v_{4,4}` cannot execute
/// in parallel — `v_{4,1}` is the source and an ancestor of `v_{4,4}`),
/// `C_{4,3} = 4` (`µ_4[2] = C_{4,4} + C_{4,3} = 9`), `C_{4,5} = 3`
/// (`µ_4[3] = 12`), maximum parallelism 3 (`µ_4[4] = 0`). Free choice:
/// `C_{4,2} = 2` (≤ 3 keeps `µ_4[2]` and `µ_4[3]` as published).
pub fn figure1_tau4() -> Dag {
    let mut b = DagBuilder::new();
    let v = b.add_nodes([5, 2, 4, 5, 3]);
    b.add_edge(v[0], v[1]).expect("valid edge");
    b.add_edge(v[0], v[2]).expect("valid edge");
    b.add_edge(v[1], v[3]).expect("valid edge");
    b.add_edge(v[1], v[4]).expect("valid edge");
    b.build().expect("τ4 is a valid DAG")
}

/// All four DAGs of Figure 1, in task order.
pub fn figure1_dags() -> Vec<Dag> {
    vec![
        figure1_tau1(),
        figure1_tau2(),
        figure1_tau3(),
        figure1_tau4(),
    ]
}

/// The four Figure 1 tasks as the `lp(k)` of a five-task set, preceded by a
/// higher-priority task under analysis.
///
/// The paper uses Figure 1 only as a set of lower-priority tasks; it never
/// gives them timing parameters. This helper supplies generous implicit
/// deadlines (periods = 100) so the example can be run end-to-end through
/// the full analysis in examples and tests. The task under analysis (`τ_k`)
/// is a small fork-join with period 50.
pub fn figure1_task_set() -> TaskSet {
    let mut analyzed = DagBuilder::new();
    let v = analyzed.add_nodes([1, 2, 2, 1]);
    analyzed.add_edge(v[0], v[1]).expect("valid edge");
    analyzed.add_edge(v[0], v[2]).expect("valid edge");
    analyzed.add_edge(v[1], v[3]).expect("valid edge");
    analyzed.add_edge(v[2], v[3]).expect("valid edge");
    let analyzed = DagTask::with_implicit_deadline(analyzed.build().expect("valid DAG"), 50)
        .expect("valid task")
        .named("τk (under analysis)");

    let mut tasks = vec![analyzed];
    for (i, dag) in figure1_dags().into_iter().enumerate() {
        tasks.push(
            DagTask::with_implicit_deadline(dag, 100)
                .expect("valid task")
                .named(format!("τ{} (Figure 1)", i + 1)),
        );
    }
    TaskSet::new(tasks)
}

/// The frozen `m = 2` counterexample to the paper's lower-priority
/// blocking bound (Eqs. 5–8) — the eager-LP unsoundness witness this
/// repository's validation campaign found and pinned.
///
/// Two implicit-deadline tasks. The analysis accepts the set with an LP
/// bound of `300.5` for the higher-priority task (`Δ² = 189`, `p = 0`),
/// yet an eager limited-preemptive simulation over `3 · T_lp = 3648` time
/// units legally observes a response of `304`: lower-priority
/// non-preemptive regions that *start mid-job* on cores the hp-DAG's own
/// precedence structure leaves idle are invisible to the event-counted
/// blocking term. Found by `repro validate` on the `m = 2` utilization
/// sweep (generator seed population, `U` target 4/3); the exceedance is
/// re-asserted by the validation tests and rendered by `repro trace`.
pub fn lp_counterexample_task_set() -> TaskSet {
    let task = |period: u64, wcets: &[u64], edges: &[(usize, usize)]| {
        let mut b = DagBuilder::new();
        let nodes: Vec<crate::NodeId> = wcets.iter().map(|&w| b.add_node(w)).collect();
        for &(u, v) in edges {
            b.add_edge(nodes[u], nodes[v]).expect("valid edge");
        }
        DagTask::with_implicit_deadline(b.build().expect("valid DAG"), period).expect("valid task")
    };
    let hp = task(
        502,
        &[15, 62, 72, 17, 85],
        &[(0, 2), (0, 3), (0, 4), (2, 1), (3, 1), (4, 1)],
    );
    let lp = task(
        1216,
        &[18, 15, 36, 42, 96, 93, 79, 26, 91, 60, 52],
        &[
            (0, 2),
            (0, 3),
            (0, 5),
            (0, 7),
            (0, 8),
            (2, 1),
            (3, 4),
            (4, 1),
            (5, 6),
            (6, 1),
            (7, 1),
            (8, 9),
            (9, 10),
            (10, 1),
        ],
    );
    TaskSet::new(vec![
        hp.named("τ_hp (under analysis)"),
        lp.named("τ_lp (blocking)"),
    ])
}

/// Table I of the paper: `µ_i[c]` for `c = 1..4`, for each Figure 1 task.
/// Used as golden values by tests in this workspace.
pub const TABLE_I: [[u64; 4]; 4] = [
    [3, 5, 6, 5],  // µ_1
    [4, 7, 0, 0],  // µ_2
    [6, 7, 9, 11], // µ_3
    [5, 9, 12, 0], // µ_4
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::parallel_sets_exact;
    use rta_combinatorics::max_weight_clique_of_size;

    /// Recompute µ_i[c] from a DAG with the clique solver.
    fn mu(dag: &Dag, c: usize) -> u64 {
        let adj = parallel_sets_exact(dag);
        max_weight_clique_of_size(&adj, dag.wcets(), c)
            .map(|s| s.weight)
            .unwrap_or(0)
    }

    #[test]
    fn table_i_is_reproduced_exactly() {
        for (i, dag) in figure1_dags().iter().enumerate() {
            for c in 1..=4usize {
                assert_eq!(mu(dag, c), TABLE_I[i][c - 1], "µ_{}[{}] mismatch", i + 1, c);
            }
        }
    }

    #[test]
    fn tau1_structure_matches_worked_example() {
        let dag = figure1_tau1();
        assert_eq!(dag.node_count(), 8);
        // SUCC(v_{1,2}) = {v6, v8}, SUCC(v_{1,4}) = {v7, v8} (Section V-A1).
        assert_eq!(
            dag.descendants(crate::NodeId::new(1))
                .iter()
                .collect::<Vec<_>>(),
            vec![5, 7]
        );
        assert_eq!(
            dag.descendants(crate::NodeId::new(3))
                .iter()
                .collect::<Vec<_>>(),
            vec![6, 7]
        );
    }

    #[test]
    fn tau2_has_max_parallelism_two() {
        assert_eq!(figure1_tau2().max_parallelism(), 2);
    }

    #[test]
    fn tau4_source_not_parallel_with_v44() {
        let dag = figure1_tau4();
        let par = parallel_sets_exact(&dag);
        // v_{4,1} (index 0) and v_{4,4} (index 3) cannot execute in parallel.
        assert!(!par[0].contains(3));
    }

    #[test]
    fn lp_max_pool_matches_paper() {
        // Δ⁴_max = C_{3,1} + C_{4,1} + C_{4,4} + C_{2,2} = 20;
        // Δ³_max = 16.
        let mut all: Vec<u64> = figure1_dags()
            .iter()
            .flat_map(|d| d.wcets().to_vec())
            .collect();
        all.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(all[..4].iter().sum::<u64>(), 20);
        assert_eq!(all[..3].iter().sum::<u64>(), 16);
    }

    #[test]
    fn figure1_task_set_is_well_formed() {
        let ts = figure1_task_set();
        assert_eq!(ts.len(), 5);
        assert_eq!(ts.lower_priority(0).len(), 4);
        assert!(ts.tasks().iter().all(|t| !t.is_trivially_infeasible()));
    }
}
