//! Graphviz DOT export for DAGs and task sets.
//!
//! Handy for inspecting generated task sets and for documenting examples;
//! render with `dot -Tpng task.dot -o task.png`.

use crate::dag::Dag;
use crate::task::DagTask;
use std::fmt::Write as _;

/// Renders a DAG as a Graphviz `digraph`, one node per NPR labelled
/// `v<j> (C=<wcet>)`.
///
/// # Example
///
/// ```
/// use rta_model::{DagBuilder, dot::dag_to_dot};
///
/// # fn main() -> Result<(), rta_model::ModelError> {
/// let mut b = DagBuilder::new();
/// let a = b.add_node(1);
/// let c = b.add_node(2);
/// b.add_edge(a, c)?;
/// let dot = dag_to_dot(&b.build()?, "example");
/// assert!(dot.contains("digraph example"));
/// assert!(dot.contains("v1 -> v2"));
/// # Ok(())
/// # }
/// ```
pub fn dag_to_dot(dag: &Dag, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=ellipse];");
    for v in dag.nodes() {
        let _ = writeln!(
            out,
            "  v{} [label=\"v{} ({})\"];",
            v.index() + 1,
            v.index() + 1,
            dag.wcet(v)
        );
    }
    for (from, to) in dag.edges() {
        let _ = writeln!(out, "  v{} -> v{};", from.index() + 1, to.index() + 1);
    }
    out.push_str("}\n");
    out
}

/// Renders a task (DAG plus timing parameters in the graph label).
pub fn task_to_dot(task: &DagTask, name: &str) -> String {
    let mut dot = dag_to_dot(task.dag(), name);
    let label = format!(
        "  label=\"{} T={} D={} vol={} L={}\";\n",
        task.name().unwrap_or(name),
        task.period(),
        task.deadline(),
        task.dag().volume(),
        task.dag().longest_path()
    );
    // Insert the label just before the closing brace.
    let insert_at = dot.rfind('}').expect("well-formed dot");
    dot.insert_str(insert_at, &label);
    dot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagBuilder;
    use crate::task::DagTask;

    #[test]
    fn dot_contains_nodes_edges_and_wcets() {
        let mut b = DagBuilder::new();
        let v = b.add_nodes([3, 7]);
        b.add_edge(v[0], v[1]).unwrap();
        let dot = dag_to_dot(&b.build().unwrap(), "g");
        assert!(dot.starts_with("digraph g {"));
        assert!(dot.contains("v1 [label=\"v1 (3)\"]"));
        assert!(dot.contains("v2 [label=\"v2 (7)\"]"));
        assert!(dot.contains("v1 -> v2;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn task_dot_contains_timing_label() {
        let mut b = DagBuilder::new();
        b.add_node(5);
        let t = DagTask::new(b.build().unwrap(), 10, 9)
            .unwrap()
            .named("cam");
        let dot = task_to_dot(&t, "t0");
        assert!(dot.contains("cam T=10 D=9 vol=5 L=5"));
    }

    #[test]
    fn figure1_dags_render() {
        for (i, dag) in crate::examples::figure1_dags().iter().enumerate() {
            let dot = dag_to_dot(dag, &format!("tau{}", i + 1));
            // Every node and edge appears.
            assert_eq!(dot.matches("label=").count(), dag.node_count());
            assert_eq!(dot.matches("->").count(), dag.edge_count());
        }
    }
}
