//! Priority-ordered task sets.

use crate::ids::TaskId;
use crate::task::DagTask;

/// A set of sporadic DAG tasks under global fixed-priority scheduling.
///
/// Tasks are stored in **decreasing priority order**: `tasks()[0]` is the
/// highest-priority task (the paper's `τ_1`). The index therefore encodes
/// the unique priority, and the paper's `hp(k)` / `lp(k)` subsets are the
/// slices before / after index `k` ([`higher_priority`]
/// / [`lower_priority`]).
///
/// [`higher_priority`]: TaskSet::higher_priority
/// [`lower_priority`]: TaskSet::lower_priority
///
/// # Example
///
/// ```
/// use rta_model::{DagBuilder, DagTask, TaskSet};
///
/// # fn main() -> Result<(), rta_model::ModelError> {
/// let mk = |wcet, period| -> Result<DagTask, rta_model::ModelError> {
///     let mut b = DagBuilder::new();
///     b.add_node(wcet);
///     DagTask::with_implicit_deadline(b.build()?, period)
/// };
/// let ts = TaskSet::new(vec![mk(1, 4)?, mk(2, 8)?, mk(3, 12)?]);
/// assert_eq!(ts.len(), 3);
/// assert_eq!(ts.higher_priority(1).len(), 1);
/// assert_eq!(ts.lower_priority(1).len(), 1);
/// assert!((ts.total_utilization() - (0.25 + 0.25 + 0.25)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TaskSet {
    tasks: Vec<DagTask>,
}

impl TaskSet {
    /// Creates a task set from tasks already sorted by decreasing priority.
    pub fn new(tasks: Vec<DagTask>) -> Self {
        Self { tasks }
    }

    /// The tasks, highest priority first.
    pub fn tasks(&self) -> &[DagTask] {
        &self.tasks
    }

    /// The task with index (priority) `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of bounds.
    pub fn task(&self, k: usize) -> &DagTask {
        &self.tasks[k]
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if the set has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The paper's `hp(k)`: tasks with higher priority than task `k`.
    pub fn higher_priority(&self, k: usize) -> &[DagTask] {
        &self.tasks[..k]
    }

    /// The paper's `lp(k)`: tasks with lower priority than task `k`.
    pub fn lower_priority(&self, k: usize) -> &[DagTask] {
        &self.tasks[k + 1..]
    }

    /// Iterator over `(TaskId, &DagTask)` pairs in priority order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &DagTask)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId::new(i), t))
    }

    /// Total utilization `Σ_k vol(G_k)/T_k`.
    pub fn total_utilization(&self) -> f64 {
        self.tasks.iter().map(DagTask::utilization).sum()
    }

    /// Sorts the tasks by non-decreasing relative deadline (deadline
    /// monotonic — equivalently rate monotonic under implicit deadlines),
    /// which is the standard priority assignment for this kind of analysis.
    /// Ties are broken by volume (larger volume first) then original order.
    #[must_use]
    pub fn sorted_deadline_monotonic(mut self) -> Self {
        self.tasks.sort_by(|a, b| {
            a.deadline()
                .cmp(&b.deadline())
                .then(b.dag().volume().cmp(&a.dag().volume()))
        });
        self
    }

    /// Appends a task at the lowest priority.
    pub fn push(&mut self, task: DagTask) {
        self.tasks.push(task);
    }

    /// A stable 64-bit content hash of the task set (FNV-1a over the
    /// canonical field order), covering everything [`PartialEq`] covers:
    /// task order (= priorities), periods, deadlines, names, WCETs and
    /// edges.
    ///
    /// Unlike [`std::hash::DefaultHasher`], the value is specified: it does
    /// not vary across processes, platforms or Rust releases, so it can key
    /// persistent or cross-process caches — it is the task-set key of the
    /// admission-control LRU behind `repro serve`. Equal sets hash equal;
    /// distinct sets may collide (64-bit), so collision-sensitive callers
    /// must still compare the sets.
    pub fn stable_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        struct Fnv(u64);
        impl Fnv {
            fn bytes(&mut self, bytes: &[u8]) {
                for &b in bytes {
                    self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
                }
            }
            fn u64(&mut self, v: u64) {
                self.bytes(&v.to_le_bytes());
            }
        }
        let mut h = Fnv(FNV_OFFSET);
        h.u64(self.tasks.len() as u64);
        for task in &self.tasks {
            h.u64(task.period());
            h.u64(task.deadline());
            // Length-prefix the name so field boundaries cannot alias;
            // u64::MAX is not a valid length, so "no name" is distinct
            // from every named task.
            match task.name() {
                Some(name) => {
                    h.u64(name.len() as u64);
                    h.bytes(name.as_bytes());
                }
                None => h.u64(u64::MAX),
            }
            let dag = task.dag();
            h.u64(dag.node_count() as u64);
            for &wcet in dag.wcets() {
                h.u64(wcet);
            }
            h.u64(dag.edge_count() as u64);
            for (from, to) in dag.edges() {
                h.u64(from.index() as u64);
                h.u64(to.index() as u64);
            }
        }
        h.0
    }
}

impl FromIterator<DagTask> for TaskSet {
    fn from_iter<I: IntoIterator<Item = DagTask>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl IntoIterator for TaskSet {
    type Item = DagTask;
    type IntoIter = std::vec::IntoIter<DagTask>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagBuilder;
    use crate::task::DagTask;

    fn mk(wcet: u64, period: u64) -> DagTask {
        let mut b = DagBuilder::new();
        b.add_node(wcet);
        DagTask::with_implicit_deadline(b.build().unwrap(), period).unwrap()
    }

    #[test]
    fn hp_lp_slices() {
        let ts = TaskSet::new(vec![mk(1, 10), mk(2, 20), mk(3, 30)]);
        assert!(ts.higher_priority(0).is_empty());
        assert_eq!(ts.higher_priority(2).len(), 2);
        assert_eq!(ts.lower_priority(0).len(), 2);
        assert!(ts.lower_priority(2).is_empty());
    }

    #[test]
    fn empty_set() {
        let ts = TaskSet::default();
        assert!(ts.is_empty());
        assert_eq!(ts.total_utilization(), 0.0);
    }

    #[test]
    fn utilization_sums() {
        let ts = TaskSet::new(vec![mk(5, 10), mk(5, 20)]);
        assert!((ts.total_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn deadline_monotonic_sorts_by_deadline() {
        let ts = TaskSet::new(vec![mk(1, 30), mk(1, 10), mk(1, 20)]).sorted_deadline_monotonic();
        let periods: Vec<u64> = ts.tasks().iter().map(|t| t.period()).collect();
        assert_eq!(periods, vec![10, 20, 30]);
    }

    #[test]
    fn deadline_monotonic_breaks_ties_by_volume() {
        let ts = TaskSet::new(vec![mk(1, 10), mk(9, 10)]).sorted_deadline_monotonic();
        assert_eq!(ts.task(0).dag().volume(), 9);
    }

    #[test]
    fn from_iterator_and_push() {
        let mut ts: TaskSet = vec![mk(1, 10)].into_iter().collect();
        ts.push(mk(2, 20));
        assert_eq!(ts.len(), 2);
        let back: Vec<DagTask> = ts.into_iter().collect();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn iter_yields_ids_in_priority_order() {
        let ts = TaskSet::new(vec![mk(1, 10), mk(2, 20)]);
        let ids: Vec<usize> = ts.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn stable_hash_distinguishes_every_hashed_field() {
        let base = TaskSet::new(vec![mk(1, 10), mk(2, 20)]);
        let variants = [
            TaskSet::new(vec![mk(2, 20), mk(1, 10)]), // priority order
            TaskSet::new(vec![mk(1, 10)]),            // task count
            TaskSet::new(vec![mk(1, 10), mk(3, 20)]), // a WCET
            TaskSet::new(vec![mk(1, 10), mk(2, 21)]), // a period
            TaskSet::new(vec![mk(1, 10), mk(2, 20).named("x")]), // a name
        ];
        for variant in &variants {
            assert_ne!(base.stable_hash(), variant.stable_hash(), "{variant:?}");
        }
        // An edge flip changes the hash even at equal volume.
        let chain = |order: [u64; 2]| {
            let mut b = DagBuilder::new();
            let nodes = b.add_nodes(order);
            b.add_chain(&nodes).unwrap();
            TaskSet::new(vec![DagTask::with_implicit_deadline(
                b.build().unwrap(),
                10,
            )
            .unwrap()])
        };
        assert_ne!(chain([1, 2]).stable_hash(), chain([2, 1]).stable_hash());
        // Equal content hashes equal, however it was built.
        assert_eq!(
            base.stable_hash(),
            TaskSet::new(vec![mk(1, 10), mk(2, 20)]).stable_hash()
        );
    }

    #[test]
    fn stable_hash_is_pinned_across_platforms_and_releases() {
        // Golden values: a changed hash silently invalidates (or worse,
        // cross-pollutes) any persistent cache keyed on it, so the function
        // is append-only. If this test fails, the hash definition changed —
        // bump the cache semantics consciously instead of updating blindly.
        assert_eq!(TaskSet::default().stable_hash(), 0xa8c7_f832_281a_39c5);
        let ts = TaskSet::new(vec![mk(3, 12).named("τ"), mk(5, 20)]);
        assert_eq!(ts.stable_hash(), 0x19c8_c5d6_b347_7360);
    }
}
