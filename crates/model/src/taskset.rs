//! Priority-ordered task sets.

use crate::ids::TaskId;
use crate::task::DagTask;

/// A set of sporadic DAG tasks under global fixed-priority scheduling.
///
/// Tasks are stored in **decreasing priority order**: `tasks()[0]` is the
/// highest-priority task (the paper's `τ_1`). The index therefore encodes
/// the unique priority, and the paper's `hp(k)` / `lp(k)` subsets are the
/// slices before / after index `k` ([`higher_priority`]
/// / [`lower_priority`]).
///
/// [`higher_priority`]: TaskSet::higher_priority
/// [`lower_priority`]: TaskSet::lower_priority
///
/// # Example
///
/// ```
/// use rta_model::{DagBuilder, DagTask, TaskSet};
///
/// # fn main() -> Result<(), rta_model::ModelError> {
/// let mk = |wcet, period| -> Result<DagTask, rta_model::ModelError> {
///     let mut b = DagBuilder::new();
///     b.add_node(wcet);
///     DagTask::with_implicit_deadline(b.build()?, period)
/// };
/// let ts = TaskSet::new(vec![mk(1, 4)?, mk(2, 8)?, mk(3, 12)?]);
/// assert_eq!(ts.len(), 3);
/// assert_eq!(ts.higher_priority(1).len(), 1);
/// assert_eq!(ts.lower_priority(1).len(), 1);
/// assert!((ts.total_utilization() - (0.25 + 0.25 + 0.25)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TaskSet {
    tasks: Vec<DagTask>,
}

impl TaskSet {
    /// Creates a task set from tasks already sorted by decreasing priority.
    pub fn new(tasks: Vec<DagTask>) -> Self {
        Self { tasks }
    }

    /// The tasks, highest priority first.
    pub fn tasks(&self) -> &[DagTask] {
        &self.tasks
    }

    /// The task with index (priority) `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of bounds.
    pub fn task(&self, k: usize) -> &DagTask {
        &self.tasks[k]
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if the set has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The paper's `hp(k)`: tasks with higher priority than task `k`.
    pub fn higher_priority(&self, k: usize) -> &[DagTask] {
        &self.tasks[..k]
    }

    /// The paper's `lp(k)`: tasks with lower priority than task `k`.
    pub fn lower_priority(&self, k: usize) -> &[DagTask] {
        &self.tasks[k + 1..]
    }

    /// Iterator over `(TaskId, &DagTask)` pairs in priority order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &DagTask)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId::new(i), t))
    }

    /// Total utilization `Σ_k vol(G_k)/T_k`.
    pub fn total_utilization(&self) -> f64 {
        self.tasks.iter().map(DagTask::utilization).sum()
    }

    /// Sorts the tasks by non-decreasing relative deadline (deadline
    /// monotonic — equivalently rate monotonic under implicit deadlines),
    /// which is the standard priority assignment for this kind of analysis.
    /// Ties are broken by volume (larger volume first) then original order.
    #[must_use]
    pub fn sorted_deadline_monotonic(mut self) -> Self {
        self.tasks.sort_by(|a, b| {
            a.deadline()
                .cmp(&b.deadline())
                .then(b.dag().volume().cmp(&a.dag().volume()))
        });
        self
    }

    /// Appends a task at the lowest priority.
    pub fn push(&mut self, task: DagTask) {
        self.tasks.push(task);
    }
}

impl FromIterator<DagTask> for TaskSet {
    fn from_iter<I: IntoIterator<Item = DagTask>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl IntoIterator for TaskSet {
    type Item = DagTask;
    type IntoIter = std::vec::IntoIter<DagTask>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagBuilder;
    use crate::task::DagTask;

    fn mk(wcet: u64, period: u64) -> DagTask {
        let mut b = DagBuilder::new();
        b.add_node(wcet);
        DagTask::with_implicit_deadline(b.build().unwrap(), period).unwrap()
    }

    #[test]
    fn hp_lp_slices() {
        let ts = TaskSet::new(vec![mk(1, 10), mk(2, 20), mk(3, 30)]);
        assert!(ts.higher_priority(0).is_empty());
        assert_eq!(ts.higher_priority(2).len(), 2);
        assert_eq!(ts.lower_priority(0).len(), 2);
        assert!(ts.lower_priority(2).is_empty());
    }

    #[test]
    fn empty_set() {
        let ts = TaskSet::default();
        assert!(ts.is_empty());
        assert_eq!(ts.total_utilization(), 0.0);
    }

    #[test]
    fn utilization_sums() {
        let ts = TaskSet::new(vec![mk(5, 10), mk(5, 20)]);
        assert!((ts.total_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn deadline_monotonic_sorts_by_deadline() {
        let ts = TaskSet::new(vec![mk(1, 30), mk(1, 10), mk(1, 20)]).sorted_deadline_monotonic();
        let periods: Vec<u64> = ts.tasks().iter().map(|t| t.period()).collect();
        assert_eq!(periods, vec![10, 20, 30]);
    }

    #[test]
    fn deadline_monotonic_breaks_ties_by_volume() {
        let ts = TaskSet::new(vec![mk(1, 10), mk(9, 10)]).sorted_deadline_monotonic();
        assert_eq!(ts.task(0).dag().volume(), 9);
    }

    #[test]
    fn from_iterator_and_push() {
        let mut ts: TaskSet = vec![mk(1, 10)].into_iter().collect();
        ts.push(mk(2, 20));
        assert_eq!(ts.len(), 2);
        let back: Vec<DagTask> = ts.into_iter().collect();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn iter_yields_ids_in_priority_order() {
        let ts = TaskSet::new(vec![mk(1, 10), mk(2, 20)]);
        let ids: Vec<usize> = ts.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
