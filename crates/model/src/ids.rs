//! Typed identifiers for nodes and tasks.

use std::fmt;

/// Identifier of a node (NPR) within a single task's DAG.
///
/// Displayed as `v3` (1-based, matching the paper's `v_{i,j}` numbering);
/// the underlying [`index`](NodeId::index) is 0-based.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Creates a node id from a 0-based index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The 0-based index of the node within its DAG.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0 + 1)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.0
    }
}

/// Index of a task within a [`TaskSet`](crate::TaskSet).
///
/// Task indices double as priorities: `τ_i` has higher priority than `τ_j`
/// iff `i < j` (paper Section III-A). Displayed 1-based as `τ2`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub(crate) usize);

impl TaskId {
    /// Creates a task id from a 0-based index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The 0-based index of the task within its task set.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\u{3c4}{}", self.0 + 1)
    }
}

impl From<TaskId> for usize {
    fn from(id: TaskId) -> usize {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_based() {
        assert_eq!(NodeId::new(0).to_string(), "v1");
        assert_eq!(NodeId::new(7).to_string(), "v8");
        assert_eq!(TaskId::new(0).to_string(), "τ1");
    }

    #[test]
    fn conversions_round_trip() {
        let id = NodeId::new(5);
        assert_eq!(usize::from(id), 5);
        assert_eq!(id.index(), 5);
        let t = TaskId::new(3);
        assert_eq!(usize::from(t), 3);
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(TaskId::new(0) < TaskId::new(9));
    }
}
