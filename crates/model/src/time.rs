//! Discrete time.
//!
//! All temporal quantities (WCETs, periods, deadlines, response-time bounds)
//! are unsigned integers in an arbitrary common unit, as is standard in
//! response-time analysis. The analysis crate performs its internal
//! arithmetic in scaled units of `1/m` to keep the rational terms of the
//! paper's Eq. (4) exact; at this layer everything is a plain [`Time`].

/// A point in time or a duration, in discrete time units.
pub type Time = u64;
