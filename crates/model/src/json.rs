//! Dependency-free JSON serialization of tasks and task sets.
//!
//! The workspace builds with no access to crates.io, so instead of serde
//! this module hand-rolls the (tiny) JSON schema task sets need — used by
//! `repro dump-set` and by anyone wanting to persist generated workloads:
//!
//! ```json
//! {
//!   "version": 1,
//!   "tasks": [
//!     {
//!       "name": "video",
//!       "period": 40,
//!       "deadline": 40,
//!       "dag": { "wcets": [2, 6, 4, 1], "edges": [[0, 1], [0, 2]] }
//!     }
//!   ]
//! }
//! ```
//!
//! `name` is omitted for unnamed tasks. Parsing accepts standard JSON
//! (insignificant whitespace, string escapes, any key order) and validates
//! through the usual [`DagBuilder`] / [`DagTask::new`] constructors, so a
//! parsed task upholds every model invariant.
//!
//! Task-**set** payloads are versioned: writers stamp the current
//! [`TASK_SET_SCHEMA_VERSION`], readers accept version-less legacy payloads
//! (implicitly version 1) and reject anything newer with the structured
//! [`JsonError::UnknownVersion`] — never a panic — so an old server given a
//! new client's payload degrades into a clean protocol error.
//!
//! Besides the pretty printers there are single-line compact writers
//! ([`task_set_to_json_compact`]) for line-delimited wire framing, and the
//! generic JSON layer ([`Value`], [`parse`], [`task_set_from_value`]) is
//! public so protocol envelopes that *embed* a task set (the `repro serve`
//! request format) can parse once and pick fields off the tree.
//!
//! # Example
//!
//! ```
//! use rta_model::{json, DagBuilder, DagTask};
//!
//! # fn main() -> Result<(), rta_model::json::JsonError> {
//! let mut b = DagBuilder::new();
//! let v = b.add_nodes([3, 4]);
//! b.add_chain(&v).unwrap();
//! let task = DagTask::new(b.build().unwrap(), 20, 15).unwrap().named("t");
//! let round_tripped = json::task_from_json(&json::task_to_json(&task))?;
//! assert_eq!(task, round_tripped);
//! # Ok(())
//! # }
//! ```

use crate::dag::{Dag, DagBuilder};
use crate::error::ModelError;
use crate::ids::NodeId;
use crate::task::DagTask;
use crate::taskset::TaskSet;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// The newest task-set payload schema version this build reads and the one
/// it writes. Version-less payloads predate versioning and are read as
/// version 1.
pub const TASK_SET_SCHEMA_VERSION: u64 = 1;

/// Why a JSON document could not be turned into a model value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonError {
    /// The text is not well-formed JSON; byte offset and description.
    Syntax {
        /// Byte offset of the problem.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Well-formed JSON that does not match the schema.
    Schema(String),
    /// The payload declares a schema version this build does not read.
    UnknownVersion {
        /// The version the payload declares.
        found: u64,
        /// The newest version this build understands
        /// ([`TASK_SET_SCHEMA_VERSION`]).
        supported: u64,
    },
    /// Schema-valid input rejected by a model constructor (e.g. a cycle or
    /// a deadline exceeding the period).
    Model(ModelError),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Syntax { offset, message } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            JsonError::Schema(message) => write!(f, "JSON schema error: {message}"),
            JsonError::UnknownVersion { found, supported } => write!(
                f,
                "unsupported task-set schema version {found} (this build reads up to {supported})"
            ),
            JsonError::Model(e) => write!(f, "parsed JSON violates the task model: {e}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl From<ModelError> for JsonError {
    fn from(e: ModelError) -> Self {
        JsonError::Model(e)
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn dag_into(out: &mut String, dag: &Dag, indent: &str) {
    let _ = write!(out, "{{\n{indent}  \"wcets\": [");
    for (i, w) in dag.wcets().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{w}");
    }
    let _ = write!(out, "],\n{indent}  \"edges\": [");
    for (i, (from, to)) in dag.edges().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "[{}, {}]", from.index(), to.index());
    }
    let _ = write!(out, "]\n{indent}}}");
}

fn task_into(out: &mut String, task: &DagTask, indent: &str) {
    let _ = write!(out, "{{\n{indent}  ");
    if let Some(name) = task.name() {
        out.push_str("\"name\": ");
        escape_into(out, name);
        let _ = write!(out, ",\n{indent}  ");
    }
    let _ = write!(
        out,
        "\"period\": {},\n{indent}  \"deadline\": {},\n{indent}  \"dag\": ",
        task.period(),
        task.deadline()
    );
    dag_into(out, task.dag(), &format!("{indent}  "));
    let _ = write!(out, "\n{indent}}}");
}

/// Renders one task as pretty-printed JSON.
pub fn task_to_json(task: &DagTask) -> String {
    let mut out = String::new();
    task_into(&mut out, task, "");
    out
}

/// Renders a task set as pretty-printed JSON (tasks in priority order),
/// stamped with the current [`TASK_SET_SCHEMA_VERSION`].
pub fn task_set_to_json(task_set: &TaskSet) -> String {
    let mut out = format!("{{\n  \"version\": {TASK_SET_SCHEMA_VERSION},\n  \"tasks\": [");
    for (i, task) in task_set.tasks().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        task_into(&mut out, task, "    ");
    }
    if !task_set.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

fn dag_into_compact(out: &mut String, dag: &Dag) {
    out.push_str("{\"wcets\":[");
    for (i, w) in dag.wcets().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{w}");
    }
    out.push_str("],\"edges\":[");
    for (i, (from, to)) in dag.edges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},{}]", from.index(), to.index());
    }
    out.push_str("]}");
}

fn task_into_compact(out: &mut String, task: &DagTask) {
    out.push('{');
    if let Some(name) = task.name() {
        out.push_str("\"name\":");
        escape_into(out, name);
        out.push(',');
    }
    let _ = write!(
        out,
        "\"period\":{},\"deadline\":{},\"dag\":",
        task.period(),
        task.deadline()
    );
    dag_into_compact(out, task.dag());
    out.push('}');
}

/// Renders one task as single-line compact JSON (same schema as
/// [`task_to_json`], no insignificant whitespace).
pub fn task_to_json_compact(task: &DagTask) -> String {
    let mut out = String::new();
    task_into_compact(&mut out, task);
    out
}

/// Renders a task set as single-line compact JSON — the form the
/// line-delimited `repro serve` wire protocol embeds in its request frames.
/// Parses back through [`task_set_from_json`] like the pretty form.
pub fn task_set_to_json_compact(task_set: &TaskSet) -> String {
    let mut out = format!("{{\"version\":{TASK_SET_SCHEMA_VERSION},\"tasks\":[");
    for (i, task) in task_set.tasks().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        task_into_compact(&mut out, task);
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// Parsing: a minimal recursive-descent JSON reader
// ---------------------------------------------------------------------------

/// A parsed JSON value.
///
/// Public so that protocol layers embedding a task set in a larger
/// envelope (the `repro serve` request format) can [`parse`] the document
/// once, pick their own fields off the tree, and hand the `"task_set"`
/// subtree to [`task_set_from_value`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Numbers that fit an unsigned integer exactly stay exact.
    UInt(u64),
    /// Any other number (negative, fractional, or in exponent form).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Key order is not preserved (nor significant).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value of `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The exact unsigned integer, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError::Syntax {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        self.skip_ws();
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", byte as char))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => self.err(format!("unexpected character '{}'", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            self.err(format!("expected '{text}'"))
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.peek() != Some(b'"') {
            return self.err("expected string");
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escape) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            let scalar = match code {
                                // High surrogate: standard JSON encodes
                                // non-BMP characters as a \uXXXX\uXXXX
                                // pair (e.g. Python's ensure_ascii).
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                        return self
                                            .err("high surrogate not followed by \\u escape");
                                    }
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return self
                                            .err("high surrogate not followed by low surrogate");
                                    }
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                }
                                0xDC00..=0xDFFF => {
                                    return self.err("unpaired low surrogate");
                                }
                                code => code,
                            };
                            let Some(c) = char::from_u32(scalar) else {
                                return self.err("\\u escape is not a scalar value");
                            };
                            out.push(c);
                        }
                        other => return self.err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
                c if c < 0x20 => return self.err("control character in string"),
                _ => {
                    // Re-decode UTF-8 from the byte stream.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let Some(slice) = self.bytes.get(start..start + len) else {
                        return self.err("truncated UTF-8 sequence");
                    };
                    let Ok(s) = std::str::from_utf8(slice) else {
                        return self.err("invalid UTF-8 in string");
                    };
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    /// Reads exactly four hex digits (the payload of a `\u` escape).
    /// `from_str_radix` alone would also accept a leading `+`.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let code = self
            .bytes
            .get(self.pos..self.pos + 4)
            .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok());
        let Some(code) = code else {
            return self.err("invalid \\u escape");
        };
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Value::Float(v)),
            Err(_) => self.err(format!("invalid number '{text}'")),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parses one complete JSON document into a [`Value`] tree.
///
/// # Errors
///
/// Returns [`JsonError::Syntax`] when the text is not well-formed JSON or
/// has trailing characters after the document.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing characters after JSON document");
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Schema mapping
// ---------------------------------------------------------------------------

fn as_u64(value: &Value, what: &str) -> Result<u64, JsonError> {
    match value {
        Value::UInt(v) => Ok(*v),
        _ => Err(JsonError::Schema(format!(
            "{what} must be a non-negative integer, got {value:?}"
        ))),
    }
}

fn dag_from_value(value: &Value) -> Result<Dag, JsonError> {
    let Value::Object(obj) = value else {
        return Err(JsonError::Schema("\"dag\" must be an object".into()));
    };
    let Some(Value::Array(wcets)) = obj.get("wcets") else {
        return Err(JsonError::Schema("\"dag.wcets\" must be an array".into()));
    };
    let Some(Value::Array(edges)) = obj.get("edges") else {
        return Err(JsonError::Schema("\"dag.edges\" must be an array".into()));
    };
    let mut builder = DagBuilder::new();
    let nodes: Vec<NodeId> = wcets
        .iter()
        .map(|w| as_u64(w, "a WCET").map(|w| builder.add_node(w)))
        .collect::<Result<_, _>>()?;
    for edge in edges {
        let Value::Array(pair) = edge else {
            return Err(JsonError::Schema(
                "an edge must be a [from, to] pair".into(),
            ));
        };
        let [from, to] = pair.as_slice() else {
            return Err(JsonError::Schema(
                "an edge must be a [from, to] pair".into(),
            ));
        };
        let from = as_u64(from, "an edge endpoint")? as usize;
        let to = as_u64(to, "an edge endpoint")? as usize;
        if from >= nodes.len() || to >= nodes.len() {
            return Err(JsonError::Schema(format!(
                "edge [{from}, {to}] references a node out of range (|V| = {})",
                nodes.len()
            )));
        }
        builder.add_edge(nodes[from], nodes[to])?;
    }
    Ok(builder.build()?)
}

fn task_from_value(value: &Value) -> Result<DagTask, JsonError> {
    let Value::Object(obj) = value else {
        return Err(JsonError::Schema("a task must be an object".into()));
    };
    let period = as_u64(
        obj.get("period")
            .ok_or_else(|| JsonError::Schema("task is missing \"period\"".into()))?,
        "\"period\"",
    )?;
    let deadline = as_u64(
        obj.get("deadline")
            .ok_or_else(|| JsonError::Schema("task is missing \"deadline\"".into()))?,
        "\"deadline\"",
    )?;
    let dag = dag_from_value(
        obj.get("dag")
            .ok_or_else(|| JsonError::Schema("task is missing \"dag\"".into()))?,
    )?;
    let task = DagTask::new(dag, period, deadline)?;
    match obj.get("name") {
        None | Some(Value::Null) => Ok(task),
        Some(Value::Str(name)) => Ok(task.named(name.clone())),
        Some(other) => Err(JsonError::Schema(format!(
            "\"name\" must be a string, got {other:?}"
        ))),
    }
}

/// Parses one task from JSON (the format of [`task_to_json`]).
///
/// # Errors
///
/// Returns [`JsonError`] for malformed JSON, schema mismatches, or inputs
/// rejected by the model constructors.
pub fn task_from_json(text: &str) -> Result<DagTask, JsonError> {
    task_from_value(&parse(text)?)
}

/// Maps an already-parsed [`Value`] to a task set, enforcing the schema
/// version: a missing `"version"` reads as the legacy version 1, a declared
/// version must equal [`TASK_SET_SCHEMA_VERSION`].
///
/// # Errors
///
/// Returns [`JsonError`] for schema mismatches, unknown schema versions, or
/// inputs rejected by the model constructors.
pub fn task_set_from_value(value: &Value) -> Result<TaskSet, JsonError> {
    let Value::Object(obj) = value else {
        return Err(JsonError::Schema("a task set must be a JSON object".into()));
    };
    match obj.get("version") {
        None => {} // version-less legacy payload: version 1
        Some(Value::UInt(v)) if *v == TASK_SET_SCHEMA_VERSION => {}
        Some(Value::UInt(v)) => {
            return Err(JsonError::UnknownVersion {
                found: *v,
                supported: TASK_SET_SCHEMA_VERSION,
            });
        }
        Some(other) => {
            return Err(JsonError::Schema(format!(
                "\"version\" must be a non-negative integer, got {other:?}"
            )));
        }
    }
    let Some(Value::Array(tasks)) = obj.get("tasks") else {
        return Err(JsonError::Schema("\"tasks\" must be an array".into()));
    };
    Ok(TaskSet::new(
        tasks
            .iter()
            .map(task_from_value)
            .collect::<Result<_, _>>()?,
    ))
}

/// Parses a task set from JSON (the format of [`task_set_to_json`]).
///
/// # Errors
///
/// Returns [`JsonError`] for malformed JSON, schema mismatches, unknown
/// schema versions, or inputs rejected by the model constructors.
pub fn task_set_from_json(text: &str) -> Result<TaskSet, JsonError> {
    task_set_from_value(&parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagBuilder;

    fn fork_join() -> DagTask {
        let mut b = DagBuilder::new();
        let v1 = b.add_node(2);
        let v2 = b.add_node(6);
        let v3 = b.add_node(4);
        let v4 = b.add_node(1);
        b.add_edge(v1, v2).unwrap();
        b.add_edge(v1, v3).unwrap();
        b.add_edge(v2, v4).unwrap();
        b.add_edge(v3, v4).unwrap();
        DagTask::new(b.build().unwrap(), 40, 32).unwrap()
    }

    #[test]
    fn task_round_trip_unnamed_and_named() {
        let task = fork_join();
        assert_eq!(task_from_json(&task_to_json(&task)).unwrap(), task);
        let named = fork_join().named("vidéo \"main\"\n");
        assert_eq!(task_from_json(&task_to_json(&named)).unwrap(), named);
    }

    #[test]
    fn task_set_round_trip() {
        let ts = TaskSet::new(vec![fork_join().named("a"), fork_join()]);
        let json = task_set_to_json(&ts);
        assert_eq!(task_set_from_json(&json).unwrap(), ts);
        let empty = TaskSet::new(vec![]);
        assert_eq!(
            task_set_from_json(&task_set_to_json(&empty)).unwrap(),
            empty
        );
    }

    #[test]
    fn whitespace_and_key_order_are_insignificant() {
        let text = r#"{ "dag": {"edges": [], "wcets": [5]}, "deadline": 3, "period": 9 }"#;
        let task = task_from_json(text).unwrap();
        assert_eq!(task.period(), 9);
        assert_eq!(task.deadline(), 3);
        assert_eq!(task.dag().volume(), 5);
    }

    #[test]
    fn syntax_errors_are_reported_with_offset() {
        let err = task_from_json("{\"period\": }").unwrap_err();
        assert!(matches!(err, JsonError::Syntax { .. }), "{err:?}");
    }

    #[test]
    fn schema_errors_name_the_field() {
        let err =
            task_from_json(r#"{"deadline": 3, "dag": {"wcets": [], "edges": []}}"#).unwrap_err();
        assert_eq!(err, JsonError::Schema("task is missing \"period\"".into()));
        let err = task_from_json(
            r#"{"period": 5, "deadline": 3, "dag": {"wcets": [1], "edges": [[0, 7]]}}"#,
        )
        .unwrap_err();
        assert!(matches!(err, JsonError::Schema(_)), "{err:?}");
    }

    #[test]
    fn model_violations_surface_as_model_errors() {
        let err =
            task_from_json(r#"{"period": 5, "deadline": 9, "dag": {"wcets": [1], "edges": []}}"#)
                .unwrap_err();
        assert_eq!(
            err,
            JsonError::Model(ModelError::DeadlineExceedsPeriod {
                deadline: 9,
                period: 5
            })
        );
    }

    #[test]
    fn surrogate_pairs_decode_and_unpaired_halves_are_rejected() {
        // What an ensure_ascii JSON writer emits for a name with 😀.
        let ok = task_from_json(
            "{\"name\": \"\\ud83d\\ude00\", \"period\": 5, \"deadline\": 3, \
             \"dag\": {\"wcets\": [1], \"edges\": []}}",
        )
        .unwrap();
        assert_eq!(ok.name(), Some("😀"));
        for bad in [
            "\"\\ud83d\"",
            "\"\\ud83dx\"",
            "\"\\ud83d\\u0041\"",
            "\"\\ude00\"",
        ] {
            let doc = format!(
                "{{\"name\": {bad}, \"period\": 5, \"deadline\": 3, \
                 \"dag\": {{\"wcets\": [1], \"edges\": []}}}}"
            );
            let err = task_from_json(&doc).unwrap_err();
            assert!(matches!(err, JsonError::Syntax { .. }), "{bad}: {err:?}");
        }
    }

    #[test]
    fn unicode_escape_requires_four_hex_digits() {
        // from_str_radix would accept "+041"; the parser must not.
        let err = task_from_json(
            "{\"name\": \"\\u+041\", \"period\": 5, \"deadline\": 3, \
             \"dag\": {\"wcets\": [1], \"edges\": []}}",
        )
        .unwrap_err();
        assert!(matches!(err, JsonError::Syntax { .. }), "{err:?}");
        let ok = task_from_json(
            "{\"name\": \"\\u0041\", \"period\": 5, \"deadline\": 3, \
             \"dag\": {\"wcets\": [1], \"edges\": []}}",
        )
        .unwrap();
        assert_eq!(ok.name(), Some("A"));
    }

    #[test]
    fn floats_rejected_where_integers_required() {
        let err =
            task_from_json(r#"{"period": 5.5, "deadline": 3, "dag": {"wcets": [1], "edges": []}}"#)
                .unwrap_err();
        assert!(matches!(err, JsonError::Schema(_)), "{err:?}");
    }

    #[test]
    fn task_set_payloads_are_version_stamped() {
        let ts = TaskSet::new(vec![fork_join()]);
        let json = task_set_to_json(&ts);
        assert!(json.contains("\"version\": 1"), "{json}");
        assert_eq!(task_set_from_json(&json).unwrap(), ts);
    }

    #[test]
    fn version_less_legacy_payloads_still_parse() {
        let legacy =
            r#"{"tasks": [{"period": 5, "deadline": 3, "dag": {"wcets": [1], "edges": []}}]}"#;
        assert_eq!(task_set_from_json(legacy).unwrap().len(), 1);
    }

    #[test]
    fn unknown_versions_are_rejected_with_a_structured_error() {
        let future = r#"{"version": 2, "tasks": []}"#;
        assert_eq!(
            task_set_from_json(future).unwrap_err(),
            JsonError::UnknownVersion {
                found: 2,
                supported: TASK_SET_SCHEMA_VERSION
            }
        );
        // Non-integer versions are a schema error, not a panic.
        for bad in [
            r#"{"version": "1", "tasks": []}"#,
            r#"{"version": -1, "tasks": []}"#,
        ] {
            let err = task_set_from_json(bad).unwrap_err();
            assert!(matches!(err, JsonError::Schema(_)), "{bad}: {err:?}");
        }
    }

    #[test]
    fn compact_writers_are_single_line_and_round_trip() {
        let ts = TaskSet::new(vec![fork_join().named("a \"b\"\n"), fork_join()]);
        let compact = task_set_to_json_compact(&ts);
        assert!(!compact.contains('\n'), "{compact}");
        assert!(compact.starts_with("{\"version\":1,"), "{compact}");
        assert_eq!(task_set_from_json(&compact).unwrap(), ts);
        // Compact and pretty forms parse to the same model value.
        assert_eq!(
            task_set_from_json(&task_set_to_json(&ts)).unwrap(),
            task_set_from_json(&compact).unwrap()
        );
        let task = fork_join().named("t");
        let one = task_to_json_compact(&task);
        assert!(!one.contains('\n'), "{one}");
        assert_eq!(task_from_json(&one).unwrap(), task);
    }

    #[test]
    fn envelope_parsing_through_the_public_value_layer() {
        let doc = parse(r#"{"cores": 4, "bounds": true, "task_set": {"version": 1, "tasks": []}}"#)
            .unwrap();
        assert_eq!(doc.get("cores").and_then(Value::as_u64), Some(4));
        assert_eq!(doc.get("bounds").and_then(Value::as_bool), Some(true));
        let ts = task_set_from_value(doc.get("task_set").unwrap()).unwrap();
        assert!(ts.is_empty());
        assert!(doc.get("missing").is_none());
    }
}
