//! Parallel-NPR sets: which nodes of a DAG can execute simultaneously.
//!
//! Two NPRs of the same task can potentially overlap in time exactly when
//! neither precedes the other — i.e. when they are *incomparable* in the
//! DAG's reachability partial order. The paper computes these sets with its
//! **Algorithm 1** (Section V-A1); this module provides both:
//!
//! * [`parallel_sets_exact`] — directly from the definition, using the
//!   transitive closures pre-computed by [`Dag`]: `Par(v) = V \ (SUCC(v) ∪
//!   PRED(v) ∪ {v})`. This is the default used by the analysis.
//! * [`parallel_sets_algorithm1`] — a faithful transliteration of the
//!   paper's Algorithm 1, kept for fidelity and cross-validation.
//!
//! The two agree on every nested fork-join DAG (the class produced by
//! OpenMP-style programs and by the paper's task generator; property-tested
//! in `rta-taskgen`). On arbitrary DAGs Algorithm 1 can over-approximate:
//! its sibling seed (line 5) only excludes *direct* edges, so a sibling
//! reachable through a longer path (e.g. `a→b, a→c, b→d, d→c`) is wrongly
//! classified parallel. See DESIGN.md §5.6; `rta-analysis` uses the exact
//! sets, which are also what Definition 1 of the paper requires.

use crate::dag::Dag;
use crate::ids::NodeId;
use rta_combinatorics::BitSet;

/// Computes `Par(v)` for every node directly from the partial order:
/// `u ∈ Par(v)` iff `u ≠ v`, `u` does not reach `v` and `v` does not reach
/// `u`.
///
/// # Example
///
/// ```
/// use rta_model::{DagBuilder, parallel_sets_exact};
///
/// # fn main() -> Result<(), rta_model::ModelError> {
/// let mut b = DagBuilder::new();
/// let v1 = b.add_node(1);
/// let v2 = b.add_node(1);
/// let v3 = b.add_node(1);
/// b.add_edge(v1, v2)?;
/// b.add_edge(v1, v3)?;
/// let dag = b.build()?;
/// let par = parallel_sets_exact(&dag);
/// assert!(par[v2.index()].contains(v3.index()));
/// assert!(par[v1.index()].is_empty());
/// # Ok(())
/// # }
/// ```
pub fn parallel_sets_exact(dag: &Dag) -> Vec<BitSet> {
    let n = dag.node_count();
    let all = BitSet::full(n);
    dag.nodes()
        .map(|v| {
            let mut par = all.clone();
            par.remove(v.index());
            par.difference_with(dag.descendants(v));
            par.difference_with(dag.ancestors(v));
            par
        })
        .collect()
}

/// Faithful implementation of the paper's **Algorithm 1** (Section V-A1).
///
/// Inputs per the paper: the DAG, its topological order, and for each node
/// the `SIBLING`, `SUCC` (descendants) and `PRED` (ancestors) sets — all
/// supplied by [`Dag`]. Output: `Par(v)` for every node.
///
/// The first loop seeds `Par(v)` from siblings not directly connected to
/// `v`, together with the siblings' descendants that are not descendants of
/// `v`; the second loop propagates the parents' parallel sets down the
/// topological order, removing `v`'s ancestors.
pub fn parallel_sets_algorithm1(dag: &Dag) -> Vec<BitSet> {
    let n = dag.node_count();
    let mut par = vec![BitSet::with_capacity(n); n];

    // Lines 2–10: sibling seeding.
    for vj in dag.nodes() {
        let j = vj.index();
        for l in dag.siblings(vj).iter() {
            let vl = NodeId::new(l);
            let direct_edge = dag.successors(vj).contains(l) || dag.successors(vl).contains(j);
            if !direct_edge {
                // Succ ← SUCC(v_l) \ SUCC(v_j)
                let mut succ = dag.descendants(vl).clone();
                succ.difference_with(dag.descendants(vj));
                par[j].insert(l);
                par[j].union_with(&succ);
            }
        }
    }

    // Lines 11–16: propagate along the topological order. `PRED` is the
    // transitive predecessor set per the algorithm's input definition.
    for &vj in dag.topological_order() {
        let j = vj.index();
        let mut add = BitSet::with_capacity(n);
        for l in dag.ancestors(vj).iter() {
            // Pred ← Par(v_l) \ PRED(v_j)
            let mut pred = par[l].clone();
            pred.difference_with(dag.ancestors(vj));
            add.union_with(&pred);
        }
        // Nodes that precede or equal v_j can never run in parallel with it;
        // Algorithm 1 removes ancestors via line 13. The node itself can
        // appear in a parent's Par set; drop it.
        add.remove(j);
        par[j].union_with(&add);
    }

    par
}

/// Symmetric adjacency of the "can execute in parallel" relation, suitable
/// for [`rta_combinatorics::max_weight_clique_of_size`]. Uses the exact
/// parallel sets.
pub fn parallel_adjacency(dag: &Dag) -> Vec<BitSet> {
    parallel_sets_exact(dag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagBuilder;

    fn ids(set: &BitSet) -> Vec<usize> {
        set.iter().collect()
    }

    /// τ1 of the paper's Figure 1 (structure): v1 → {v2,v3,v4,v5};
    /// v2,v3 → v6; v4,v5 → v7; v6,v7 → v8.
    fn tau1() -> Dag {
        let mut b = DagBuilder::new();
        let v = b.add_nodes([2, 1, 1, 1, 2, 3, 2, 3]);
        for &mid in &v[1..5] {
            b.add_edge(v[0], mid).unwrap();
        }
        b.add_edge(v[1], v[5]).unwrap();
        b.add_edge(v[2], v[5]).unwrap();
        b.add_edge(v[3], v[6]).unwrap();
        b.add_edge(v[4], v[6]).unwrap();
        b.add_edge(v[5], v[7]).unwrap();
        b.add_edge(v[6], v[7]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn paper_worked_example_par_v13() {
        // Section V-A1: Par(v_{1,3}) = {v_{1,2}, v_{1,4}, v_{1,5}, v_{1,7}}.
        let dag = tau1();
        let par = parallel_sets_algorithm1(&dag);
        assert_eq!(ids(&par[2]), vec![1, 3, 4, 6]);
        // And the exact method agrees.
        assert_eq!(ids(&parallel_sets_exact(&dag)[2]), vec![1, 3, 4, 6]);
    }

    #[test]
    fn paper_worked_example_par_v17() {
        // Section V-A1: the second loop adds v_{1,2}, v_{1,3}, v_{1,6} to
        // Par(v_{1,7}).
        let dag = tau1();
        let par = parallel_sets_algorithm1(&dag);
        assert_eq!(ids(&par[6]), vec![1, 2, 5]);
    }

    #[test]
    fn source_and_sink_have_empty_par() {
        let dag = tau1();
        for par in [parallel_sets_algorithm1(&dag), parallel_sets_exact(&dag)] {
            assert!(par[0].is_empty(), "source Par must be empty");
            assert!(par[7].is_empty(), "sink Par must be empty");
        }
    }

    #[test]
    fn exact_and_algorithm1_agree_on_tau1() {
        let dag = tau1();
        assert_eq!(parallel_sets_exact(&dag), parallel_sets_algorithm1(&dag));
    }

    #[test]
    fn exact_is_symmetric_and_irreflexive() {
        let dag = tau1();
        let par = parallel_sets_exact(&dag);
        for v in 0..dag.node_count() {
            assert!(!par[v].contains(v));
            for u in par[v].iter() {
                assert!(par[u].contains(v), "symmetry broken for ({u}, {v})");
            }
        }
    }

    #[test]
    fn chain_has_no_parallelism() {
        let mut b = DagBuilder::new();
        let v = b.add_nodes([1, 1, 1, 1]);
        b.add_chain(&v).unwrap();
        let dag = b.build().unwrap();
        for par in parallel_sets_exact(&dag) {
            assert!(par.is_empty());
        }
        for par in parallel_sets_algorithm1(&dag) {
            assert!(par.is_empty());
        }
    }

    #[test]
    fn independent_nodes_all_parallel_exact() {
        // Multi-source DAG: no edges at all. The exact method sees full
        // parallelism.
        let mut b = DagBuilder::new();
        b.add_nodes([1, 1, 1]);
        let dag = b.build().unwrap();
        let par = parallel_sets_exact(&dag);
        for par_v in par.iter().take(3) {
            assert_eq!(par_v.len(), 2);
        }
    }

    #[test]
    fn algorithm1_misses_parallel_sources() {
        // Documented divergence (DESIGN.md §5.6): Algorithm 1 seeds from
        // siblings, so independent sources are never discovered as parallel.
        let mut b = DagBuilder::new();
        b.add_nodes([1, 1]);
        let dag = b.build().unwrap();
        let par = parallel_sets_algorithm1(&dag);
        assert!(par[0].is_empty());
        assert!(par[1].is_empty());
    }

    #[test]
    fn algorithm1_overapproximates_on_sibling_with_indirect_path() {
        // a→b, a→c, b→d, d→c: b and c are siblings with no direct edge, but
        // b reaches c through d. Algorithm 1 wrongly reports them parallel;
        // the exact method does not.
        let mut b = DagBuilder::new();
        let v = b.add_nodes([1, 1, 1, 1]); // a=0, b=1, c=2, d=3
        b.add_edge(v[0], v[1]).unwrap();
        b.add_edge(v[0], v[2]).unwrap();
        b.add_edge(v[1], v[3]).unwrap();
        b.add_edge(v[3], v[2]).unwrap();
        let dag = b.build().unwrap();
        let alg1 = parallel_sets_algorithm1(&dag);
        let exact = parallel_sets_exact(&dag);
        assert!(alg1[1].contains(2), "Algorithm 1 calls b ∥ c");
        assert!(!exact[1].contains(2), "exact method knows b precedes c");
        // In this graph every pair is ordered, so b is parallel to nothing.
        assert!(exact[1].is_empty());
    }
}
