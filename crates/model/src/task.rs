//! The sporadic DAG task: a DAG plus timing parameters.

use crate::dag::Dag;
use crate::error::ModelError;
use crate::time::Time;

/// A sporadic DAG task `τ_k = (G_k, T_k, D_k)` (paper Section III-A).
///
/// Releases an infinite sequence of jobs separated by at least the period
/// `T_k`; every job must finish within the constrained relative deadline
/// `D_k ≤ T_k`. The DAG's nodes are non-preemptive regions.
///
/// # Example
///
/// ```
/// use rta_model::{DagBuilder, DagTask};
///
/// # fn main() -> Result<(), rta_model::ModelError> {
/// let mut b = DagBuilder::new();
/// b.add_node(5);
/// let task = DagTask::new(b.build()?, 10, 8)?;
/// assert_eq!(task.period(), 10);
/// assert_eq!(task.deadline(), 8);
/// assert!((task.utilization() - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DagTask {
    dag: Dag,
    period: Time,
    deadline: Time,
    name: Option<String>,
}

impl DagTask {
    /// Creates a task with implicit or constrained deadline.
    ///
    /// # Errors
    ///
    /// * [`ModelError::ZeroPeriod`] / [`ModelError::ZeroDeadline`] for zero
    ///   timing parameters;
    /// * [`ModelError::DeadlineExceedsPeriod`] if `deadline > period` — the
    ///   analysis requires constrained deadlines.
    pub fn new(dag: Dag, period: Time, deadline: Time) -> Result<Self, ModelError> {
        if period == 0 {
            return Err(ModelError::ZeroPeriod);
        }
        if deadline == 0 {
            return Err(ModelError::ZeroDeadline);
        }
        if deadline > period {
            return Err(ModelError::DeadlineExceedsPeriod { deadline, period });
        }
        Ok(Self {
            dag,
            period,
            deadline,
            name: None,
        })
    }

    /// Creates a task with an implicit deadline (`D = T`), the configuration
    /// used throughout the paper's evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ZeroPeriod`] if `period` is zero.
    pub fn with_implicit_deadline(dag: Dag, period: Time) -> Result<Self, ModelError> {
        Self::new(dag, period, period)
    }

    /// Attaches a human-readable name (used in DOT exports and reports).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// The task's DAG of non-preemptive regions.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Minimum inter-arrival time `T_k`.
    pub fn period(&self) -> Time {
        self.period
    }

    /// Constrained relative deadline `D_k ≤ T_k`.
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// Optional display name.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Utilization `vol(G_k) / T_k`.
    pub fn utilization(&self) -> f64 {
        self.dag.volume() as f64 / self.period as f64
    }

    /// Density `vol(G_k) / D_k`.
    pub fn density(&self) -> f64 {
        self.dag.volume() as f64 / self.deadline as f64
    }

    /// `true` when the critical path alone already exceeds the deadline, so
    /// the task can never be schedulable on any number of cores.
    pub fn is_trivially_infeasible(&self) -> bool {
        self.dag.longest_path() > self.deadline
    }

    /// Replaces the period (and clamps the deadline to stay constrained).
    /// Used by generators that re-scale a task to hit a utilization target.
    #[must_use]
    pub fn with_period(mut self, period: Time) -> Self {
        assert!(period > 0, "period must be positive");
        self.period = period;
        if self.deadline > period {
            self.deadline = period;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagBuilder;

    fn simple_dag(wcet: Time) -> Dag {
        let mut b = DagBuilder::new();
        b.add_node(wcet);
        b.build().unwrap()
    }

    #[test]
    fn constrained_deadline_accepted() {
        let t = DagTask::new(simple_dag(3), 10, 7).unwrap();
        assert_eq!(t.period(), 10);
        assert_eq!(t.deadline(), 7);
    }

    #[test]
    fn implicit_deadline() {
        let t = DagTask::with_implicit_deadline(simple_dag(3), 10).unwrap();
        assert_eq!(t.deadline(), 10);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert_eq!(
            DagTask::new(simple_dag(1), 0, 1).unwrap_err(),
            ModelError::ZeroPeriod
        );
        assert_eq!(
            DagTask::new(simple_dag(1), 5, 0).unwrap_err(),
            ModelError::ZeroDeadline
        );
        assert_eq!(
            DagTask::new(simple_dag(1), 5, 6).unwrap_err(),
            ModelError::DeadlineExceedsPeriod {
                deadline: 6,
                period: 5
            }
        );
    }

    #[test]
    fn utilization_and_density() {
        let t = DagTask::new(simple_dag(4), 8, 4).unwrap();
        assert!((t.utilization() - 0.5).abs() < 1e-12);
        assert!((t.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trivially_infeasible_detection() {
        let mut b = DagBuilder::new();
        let v = b.add_nodes([5, 5]);
        b.add_chain(&v).unwrap();
        let t = DagTask::new(b.build().unwrap(), 20, 8).unwrap();
        assert!(t.is_trivially_infeasible()); // L = 10 > D = 8
        let ok = DagTask::new(simple_dag(5), 20, 8).unwrap();
        assert!(!ok.is_trivially_infeasible());
    }

    #[test]
    fn with_period_clamps_deadline() {
        let t = DagTask::new(simple_dag(1), 10, 10).unwrap().with_period(6);
        assert_eq!(t.period(), 6);
        assert_eq!(t.deadline(), 6);
    }

    #[test]
    fn named_task() {
        let t = DagTask::new(simple_dag(1), 2, 2).unwrap().named("camera");
        assert_eq!(t.name(), Some("camera"));
    }
}
