//! The DAG of non-preemptive regions and its builder.

use crate::error::ModelError;
use crate::ids::NodeId;
use crate::time::Time;
use rta_combinatorics::BitSet;
use std::sync::OnceLock;

/// A directed acyclic graph of non-preemptive regions (paper Section III-A).
///
/// Nodes carry WCETs; edges are precedence constraints. A `Dag` is immutable
/// once built (use [`DagBuilder`]) and pre-computes what every consumer
/// reads: a topological order and the graph's aggregate measures
/// [`volume`](Dag::volume) (`vol(G)`) and [`longest_path`](Dag::longest_path)
/// (`L`, the critical path). The per-node transitive closures (ancestors and
/// descendants) are computed **lazily** on first use and then shared: sweep
/// campaigns generate thousands of DAGs whose closures are only consulted
/// when an analysis actually reaches the precedence-aware µ computation, so
/// eager closure construction was pure overhead on the generation hot path.
#[derive(Clone, Debug)]
pub struct Dag {
    wcets: Vec<Time>,
    succ: Vec<BitSet>,
    pred: Vec<BitSet>,
    topo: Vec<NodeId>,
    closures: OnceLock<Closures>,
    volume: Time,
    longest_path: Time,
}

/// The lazily-derived transitive closures of a [`Dag`].
#[derive(Clone, Debug)]
struct Closures {
    ancestors: Vec<BitSet>,
    descendants: Vec<BitSet>,
}

impl PartialEq for Dag {
    fn eq(&self, other: &Self) -> bool {
        // The closures, `pred` and `topo` are all functions of the WCETs and
        // the successor sets; comparing the defining data keeps equality
        // independent of whether the lazy closures have been materialized.
        self.wcets == other.wcets && self.succ == other.succ
    }
}

impl Eq for Dag {}

impl Dag {
    /// Number of nodes (`q_k + 1` in the paper's notation).
    pub fn node_count(&self) -> usize {
        self.wcets.len()
    }

    /// Number of potential preemption points `q_k = |V_k| − 1`.
    pub fn preemption_points(&self) -> usize {
        self.node_count() - 1
    }

    /// Iterator over all node ids in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// WCET `C_{k,j}` of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn wcet(&self, node: NodeId) -> Time {
        self.wcets[node.index()]
    }

    /// All WCETs, indexed by node.
    pub fn wcets(&self) -> &[Time] {
        &self.wcets
    }

    /// Direct successors of `node`.
    pub fn successors(&self, node: NodeId) -> &BitSet {
        &self.succ[node.index()]
    }

    /// Direct predecessors of `node`.
    pub fn predecessors(&self, node: NodeId) -> &BitSet {
        &self.pred[node.index()]
    }

    /// Transitive closures along the topological order, computed on first
    /// use and shared by every later query.
    fn closures(&self) -> &Closures {
        self.closures.get_or_init(|| {
            let n = self.wcets.len();
            let mut descendants = vec![BitSet::with_capacity(n); n];
            for &v in self.topo.iter().rev() {
                let mut d = self.succ[v.index()].clone();
                for s in self.succ[v.index()].iter() {
                    d.union_with(&descendants[s]);
                }
                descendants[v.index()] = d;
            }
            let mut ancestors = vec![BitSet::with_capacity(n); n];
            for &v in &self.topo {
                let mut a = self.pred[v.index()].clone();
                for p in self.pred[v.index()].iter() {
                    a.union_with(&ancestors[p]);
                }
                ancestors[v.index()] = a;
            }
            Closures {
                ancestors,
                descendants,
            }
        })
    }

    /// All nodes reachable from `node` (the paper's `SUCC(v)`), excluding
    /// `node` itself.
    pub fn descendants(&self, node: NodeId) -> &BitSet {
        &self.closures().descendants[node.index()]
    }

    /// All nodes from which `node` is reachable (the paper's `PRED(v)`),
    /// excluding `node` itself.
    pub fn ancestors(&self, node: NodeId) -> &BitSet {
        &self.closures().ancestors[node.index()]
    }

    /// Nodes sharing a common direct predecessor with `node` (the paper's
    /// `SIBLING(v)`), excluding `node` itself.
    pub fn siblings(&self, node: NodeId) -> BitSet {
        let mut sib = BitSet::with_capacity(self.node_count());
        for p in self.pred[node.index()].iter() {
            sib.union_with(&self.succ[p]);
        }
        sib.remove(node.index());
        sib
    }

    /// `true` if `to` is reachable from `from` by a non-empty path.
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        self.closures().descendants[from.index()].contains(to.index())
    }

    /// A topological order of the nodes (parents before children).
    pub fn topological_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Nodes with no predecessors.
    pub fn sources(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|v| self.pred[v.index()].is_empty())
            .collect()
    }

    /// Nodes with no successors.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|v| self.succ[v.index()].is_empty())
            .collect()
    }

    /// `vol(G)`: total WCET of all nodes — the execution time of the task on
    /// a dedicated single core.
    pub fn volume(&self) -> Time {
        self.volume
    }

    /// `L`: the length of the longest (critical) path — the minimum makespan
    /// of the task on infinitely many cores.
    pub fn longest_path(&self) -> Time {
        self.longest_path
    }

    /// The largest WCET of any single node (`max_j C_{k,j}`): the longest
    /// non-preemptive region of the task.
    pub fn max_wcet(&self) -> Time {
        self.wcets.iter().copied().max().unwrap_or(0)
    }

    /// The number of nodes on the longest path counted in nodes (not WCET).
    /// The paper's generator bounds this at 7.
    pub fn longest_path_node_count(&self) -> usize {
        let n = self.node_count();
        let mut depth = vec![1usize; n];
        let mut best = 1;
        for &v in &self.topo {
            let d = self.pred[v.index()]
                .iter()
                .map(|p| depth[p] + 1)
                .max()
                .unwrap_or(1);
            depth[v.index()] = d;
            best = best.max(d);
        }
        best
    }

    /// The `n` largest node WCETs in non-increasing order (fewer if the DAG
    /// has fewer nodes). Used by the LP-max blocking bound (paper Eq. (5)).
    pub fn largest_wcets(&self, n: usize) -> Vec<Time> {
        let mut sorted = self.wcets.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted.truncate(n);
        sorted
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(BitSet::len).sum()
    }

    /// Iterator over all edges as `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.succ.iter().enumerate().flat_map(|(from, set)| {
            set.iter()
                .map(move |to| (NodeId::new(from), NodeId::new(to)))
        })
    }

    /// Greedy decomposition of the node set into vertex-disjoint **chains**
    /// (totally precedence-ordered node sets), longest first: repeatedly
    /// peel the maximum-WCET chain of the remaining induced sub-poset.
    ///
    /// Returns the chain lengths `ℓ1 ≥ ℓ2 ≥ … ≥ ℓp` with
    /// `ℓ1 = L` (the critical path is a chain, and no chain can outweigh
    /// it: a chain's nodes lie on a real path, whose length bounds the
    /// chain's WCET sum from above) and `Σ ℓi = vol(G)` (every node lands
    /// in exactly one chain). The sequence is non-increasing because a
    /// chain of the remaining sub-poset is a chain of the original poset,
    /// so each peel's optimum is feasible for — and therefore bounded by —
    /// the previous peel's.
    ///
    /// Chains rather than paths on purpose: peeling may disconnect a
    /// direct path (`u → v → w` loses `v` to an earlier chain), but `u`
    /// and `w` stay precedence-ordered and still execute sequentially,
    /// which is the only property the long-paths response-time refinement
    /// needs. The chain DP runs over the transitive closure
    /// ([`ancestors`](Self::ancestors)) for exactly that reason.
    pub fn long_path_decomposition(&self) -> Vec<Time> {
        let n = self.node_count();
        let mut alive = vec![true; n];
        let mut remaining = n;
        let mut lengths = Vec::new();
        // Scratch for the weighted-chain DP: best chain WCET ending at v,
        // and the chain predecessor that achieved it.
        let mut best = vec![0 as Time; n];
        let mut prev: Vec<Option<usize>> = vec![None; n];
        while remaining > 0 {
            let mut top: Option<usize> = None;
            for &v in &self.topo {
                let v = v.index();
                if !alive[v] {
                    continue;
                }
                let mut chain_best: Time = 0;
                let mut chain_prev = None;
                for a in self.ancestors(NodeId::new(v)).iter() {
                    if alive[a] && best[a] > chain_best {
                        chain_best = best[a];
                        chain_prev = Some(a);
                    }
                }
                best[v] = chain_best + self.wcets[v];
                prev[v] = chain_prev;
                if top.is_none_or(|t| best[v] > best[t]) {
                    top = Some(v);
                }
            }
            let top = top.expect("remaining > 0 leaves a live node");
            lengths.push(best[top]);
            let mut cursor = Some(top);
            while let Some(v) = cursor {
                alive[v] = false;
                remaining -= 1;
                cursor = prev[v];
            }
        }
        lengths
    }

    /// The maximum number of nodes that can execute simultaneously: the size
    /// of the largest antichain of the precedence order.
    ///
    /// Computed by growing the required clique size over the parallelism
    /// graph; DAG tasks are small (the paper caps them at 30 nodes), so the
    /// exact search is cheap.
    pub fn max_parallelism(&self) -> usize {
        let adjacency = crate::parallel::parallel_adjacency(self);
        let weights = vec![1u64; self.node_count()];
        let mut best = 1;
        for size in 2..=self.node_count() {
            if rta_combinatorics::max_weight_clique_of_size(&adjacency, &weights, size).is_some() {
                best = size;
            } else {
                break;
            }
        }
        best
    }
}

/// Incremental builder for [`Dag`].
///
/// # Example
///
/// ```
/// use rta_model::DagBuilder;
///
/// # fn main() -> Result<(), rta_model::ModelError> {
/// let mut b = DagBuilder::new();
/// let a = b.add_node(3);
/// let c = b.add_node(4);
/// b.add_edge(a, c)?;
/// let dag = b.build()?;
/// assert_eq!(dag.longest_path(), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct DagBuilder {
    wcets: Vec<Time>,
    edges: Vec<(NodeId, NodeId)>,
}

impl DagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with the given WCET and returns its id.
    pub fn add_node(&mut self, wcet: Time) -> NodeId {
        self.wcets.push(wcet);
        NodeId::new(self.wcets.len() - 1)
    }

    /// Adds several nodes at once, returning their ids in order.
    pub fn add_nodes<I: IntoIterator<Item = Time>>(&mut self, wcets: I) -> Vec<NodeId> {
        wcets.into_iter().map(|w| self.add_node(w)).collect()
    }

    /// Adds a precedence edge `from → to`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownNode`] if either endpoint has not been
    /// added, or [`ModelError::SelfLoop`] if `from == to`. Cycles are
    /// detected at [`build`](DagBuilder::build) time.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<&mut Self, ModelError> {
        let n = self.wcets.len();
        for node in [from, to] {
            if node.index() >= n {
                return Err(ModelError::UnknownNode {
                    node,
                    node_count: n,
                });
            }
        }
        if from == to {
            return Err(ModelError::SelfLoop { node: from });
        }
        self.edges.push((from, to));
        Ok(self)
    }

    /// Adds a chain of edges `nodes[0] → nodes[1] → …`.
    ///
    /// # Errors
    ///
    /// Same as [`add_edge`](DagBuilder::add_edge).
    pub fn add_chain(&mut self, nodes: &[NodeId]) -> Result<&mut Self, ModelError> {
        for pair in nodes.windows(2) {
            self.add_edge(pair[0], pair[1])?;
        }
        Ok(self)
    }

    /// Current number of nodes added.
    pub fn node_count(&self) -> usize {
        self.wcets.len()
    }

    /// Validates the graph and produces an immutable [`Dag`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyDag`] for a graph without nodes, or
    /// [`ModelError::CycleDetected`] if the edges are not acyclic.
    pub fn build(self) -> Result<Dag, ModelError> {
        build_dag(self.wcets, &self.edges)
    }

    /// As [`build`](Self::build), but resets the builder in place so its
    /// edge buffer's capacity is reused by the next DAG: the node WCETs move
    /// into the built DAG, the edge list is cleared but keeps its
    /// allocation. This is the entry point of scratch-reusing generators
    /// that build thousands of DAGs per sweep campaign.
    ///
    /// # Errors
    ///
    /// As [`build`](Self::build). The builder is reset even on error.
    pub fn build_reset(&mut self) -> Result<Dag, ModelError> {
        let wcets = std::mem::take(&mut self.wcets);
        let result = build_dag(wcets, &self.edges);
        self.edges.clear();
        result
    }
}

/// Validates `(wcets, edges)` and assembles the immutable [`Dag`].
fn build_dag(wcets: Vec<Time>, edges: &[(NodeId, NodeId)]) -> Result<Dag, ModelError> {
    let n = wcets.len();
    if n == 0 {
        return Err(ModelError::EmptyDag);
    }
    let mut succ = vec![BitSet::with_capacity(n); n];
    let mut pred = vec![BitSet::with_capacity(n); n];
    for (from, to) in edges {
        succ[from.index()].insert(to.index());
        pred[to.index()].insert(from.index());
    }

    // Kahn's algorithm for the topological order + cycle detection.
    let mut indegree: Vec<usize> = (0..n).map(|v| pred[v].len()).collect();
    let mut queue: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    let mut topo = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        topo.push(NodeId::new(v));
        for s in succ[v].iter() {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                queue.push(s);
            }
        }
    }
    if topo.len() != n {
        return Err(ModelError::CycleDetected);
    }

    // Longest path by dynamic programming over the topological order. The
    // transitive closures are *not* computed here — see [`Dag::closures`].
    let mut finish: Vec<Time> = vec![0; n];
    let mut longest = 0;
    for &v in &topo {
        let start = pred[v.index()].iter().map(|p| finish[p]).max().unwrap_or(0);
        finish[v.index()] = start + wcets[v.index()];
        longest = longest.max(finish[v.index()]);
    }

    Ok(Dag {
        volume: wcets.iter().sum(),
        longest_path: longest,
        wcets,
        succ,
        pred,
        topo,
        closures: OnceLock::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example: v1 -> {v2,v3,v4,v5}; v2,v3 -> v6; v4,v5 -> v7;
    /// v6,v7 -> v8 (task τ1 of the paper's Figure 1, structure only).
    fn diamond() -> Dag {
        let mut b = DagBuilder::new();
        let v: Vec<NodeId> = b.add_nodes([2, 1, 1, 1, 2, 3, 2, 3]);
        for &mid in &v[1..5] {
            b.add_edge(v[0], mid).unwrap();
        }
        b.add_edge(v[1], v[5]).unwrap();
        b.add_edge(v[2], v[5]).unwrap();
        b.add_edge(v[3], v[6]).unwrap();
        b.add_edge(v[4], v[6]).unwrap();
        b.add_edge(v[5], v[7]).unwrap();
        b.add_edge(v[6], v[7]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn empty_dag_is_rejected() {
        assert_eq!(DagBuilder::new().build().unwrap_err(), ModelError::EmptyDag);
    }

    #[test]
    fn build_reset_reuses_the_builder_and_matches_build() {
        let mut b = DagBuilder::new();
        let v: Vec<NodeId> = b.add_nodes([2, 3, 4]);
        b.add_edge(v[0], v[1]).unwrap();
        b.add_edge(v[0], v[2]).unwrap();
        let reference = b.clone().build().unwrap();
        let first = b.build_reset().unwrap();
        assert_eq!(first, reference);
        // The builder is empty again and usable for an unrelated DAG.
        assert_eq!(b.node_count(), 0);
        let w = b.add_node(7);
        let x = b.add_node(1);
        b.add_edge(w, x).unwrap();
        let second = b.build_reset().unwrap();
        assert_eq!(second.node_count(), 2);
        assert_eq!(second.longest_path(), 8);
        assert_ne!(first, second);
    }

    #[test]
    fn equality_ignores_lazy_closure_state() {
        let a = diamond();
        let b = diamond();
        // Force `a`'s closures only; the DAGs must still compare equal, and
        // a clone must preserve the defining data either way.
        let _ = a.descendants(NodeId::new(0));
        assert_eq!(a, b);
        assert_eq!(a.clone(), b.clone());
        // Closures computed on both sides agree node for node.
        for v in a.nodes() {
            assert_eq!(a.descendants(v), b.descendants(v));
            assert_eq!(a.ancestors(v), b.ancestors(v));
        }
    }

    #[test]
    fn single_node() {
        let mut b = DagBuilder::new();
        b.add_node(7);
        let dag = b.build().unwrap();
        assert_eq!(dag.node_count(), 1);
        assert_eq!(dag.preemption_points(), 0);
        assert_eq!(dag.volume(), 7);
        assert_eq!(dag.longest_path(), 7);
        assert_eq!(dag.max_parallelism(), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = DagBuilder::new();
        let v = b.add_node(1);
        assert_eq!(
            b.add_edge(v, v).unwrap_err(),
            ModelError::SelfLoop { node: v }
        );
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = DagBuilder::new();
        let v = b.add_node(1);
        let ghost = NodeId::new(5);
        assert!(matches!(
            b.add_edge(v, ghost),
            Err(ModelError::UnknownNode { .. })
        ));
    }

    #[test]
    fn cycle_rejected() {
        let mut b = DagBuilder::new();
        let a = b.add_node(1);
        let c = b.add_node(1);
        b.add_edge(a, c).unwrap();
        b.add_edge(c, a).unwrap();
        assert_eq!(b.build().unwrap_err(), ModelError::CycleDetected);
    }

    #[test]
    fn volume_and_longest_path() {
        let dag = diamond();
        assert_eq!(dag.volume(), 15);
        // Critical path: v1(2) v5(2) v7(2) v8(3) = 9? No: v1(2) v2(1) v6(3)
        // v8(3) = 9 as well; both are 9.
        assert_eq!(dag.longest_path(), 9);
    }

    #[test]
    fn closures_and_reachability() {
        let dag = diamond();
        let v1 = NodeId::new(0);
        let v3 = NodeId::new(2);
        let v6 = NodeId::new(5);
        let v7 = NodeId::new(6);
        let v8 = NodeId::new(7);
        assert!(dag.reaches(v1, v8));
        assert!(dag.reaches(v3, v6));
        assert!(!dag.reaches(v3, v7));
        assert!(!dag.reaches(v6, v3));
        assert_eq!(dag.descendants(v3).iter().collect::<Vec<_>>(), vec![5, 7]);
        assert_eq!(dag.ancestors(v6).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(dag.ancestors(v1).len(), 0);
        assert_eq!(dag.descendants(v8).len(), 0);
    }

    #[test]
    fn siblings_share_a_direct_parent() {
        let dag = diamond();
        let v3 = NodeId::new(2);
        // Siblings of v3: the other children of v1.
        assert_eq!(dag.siblings(v3).iter().collect::<Vec<_>>(), vec![1, 3, 4]);
        // v8 has parents v6 and v7 whose only child is v8: no siblings.
        assert!(dag.siblings(NodeId::new(7)).is_empty());
    }

    #[test]
    fn topological_order_respects_edges() {
        let dag = diamond();
        let pos: Vec<usize> = {
            let mut pos = vec![0; dag.node_count()];
            for (i, v) in dag.topological_order().iter().enumerate() {
                pos[v.index()] = i;
            }
            pos
        };
        for (from, to) in dag.edges() {
            assert!(pos[from.index()] < pos[to.index()], "{from} before {to}");
        }
    }

    #[test]
    fn sources_and_sinks() {
        let dag = diamond();
        assert_eq!(dag.sources(), vec![NodeId::new(0)]);
        assert_eq!(dag.sinks(), vec![NodeId::new(7)]);
    }

    #[test]
    fn max_parallelism_of_diamond_is_four() {
        assert_eq!(diamond().max_parallelism(), 4);
    }

    #[test]
    fn largest_wcets_sorted() {
        let dag = diamond();
        assert_eq!(dag.largest_wcets(3), vec![3, 3, 2]);
        assert_eq!(dag.largest_wcets(100).len(), 8);
        assert_eq!(dag.max_wcet(), 3);
    }

    #[test]
    fn longest_path_node_count_diamond() {
        // v1 → middle → v6/v7 → v8: four nodes on the longest path.
        assert_eq!(diamond().longest_path_node_count(), 4);
        let mut b = DagBuilder::new();
        b.add_node(5);
        assert_eq!(b.build().unwrap().longest_path_node_count(), 1);
    }

    #[test]
    fn long_path_decomposition_covers_the_diamond() {
        let dag = diamond();
        let lengths = dag.long_path_decomposition();
        // First chain is the critical path; the rest are non-increasing
        // and the chains partition the node set by WCET.
        assert_eq!(lengths[0], dag.longest_path());
        assert!(lengths.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(lengths.iter().sum::<Time>(), dag.volume());
    }

    #[test]
    fn long_path_decomposition_of_a_chain_is_one_path() {
        let mut b = DagBuilder::new();
        let v = b.add_nodes([1, 2, 3]);
        b.add_chain(&v).unwrap();
        assert_eq!(b.build().unwrap().long_path_decomposition(), vec![6]);
    }

    #[test]
    fn long_path_decomposition_of_independent_nodes_is_singletons() {
        let mut b = DagBuilder::new();
        b.add_nodes([4, 9, 1]);
        assert_eq!(b.build().unwrap().long_path_decomposition(), vec![9, 4, 1]);
    }

    #[test]
    fn long_path_decomposition_peels_chains_not_direct_paths() {
        // u(4) → v(10) → w(4), x(5) → v → y(5). The first peel takes the
        // heaviest chain x·v·y (20) and removes v; u and w then lose their
        // connecting node but stay precedence-ordered through the closure,
        // so the second peel is the chain u·w (8) — a direct-edge DP would
        // strand them as two singleton paths instead.
        let mut b = DagBuilder::new();
        let n = b.add_nodes([4, 10, 4, 5, 5]);
        b.add_chain(&n[..3]).unwrap();
        b.add_edge(n[3], n[1]).unwrap();
        b.add_edge(n[1], n[4]).unwrap();
        assert_eq!(b.build().unwrap().long_path_decomposition(), vec![20, 8]);
    }

    #[test]
    fn chain_builder() {
        let mut b = DagBuilder::new();
        let v = b.add_nodes([1, 2, 3]);
        b.add_chain(&v).unwrap();
        let dag = b.build().unwrap();
        assert_eq!(dag.longest_path(), 6);
        assert_eq!(dag.max_parallelism(), 1);
        assert_eq!(dag.edge_count(), 2);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut b = DagBuilder::new();
        let a = b.add_node(1);
        let c = b.add_node(1);
        b.add_edge(a, c).unwrap();
        b.add_edge(a, c).unwrap();
        let dag = b.build().unwrap();
        assert_eq!(dag.edge_count(), 1);
    }
}
