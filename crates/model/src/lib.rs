//! Sporadic DAG task model with non-preemptive regions (NPRs).
//!
//! This crate implements the task model of Serrano et al., *"Response-Time
//! Analysis of DAG Tasks under Fixed Priority Scheduling with Limited
//! Preemptions"* (DATE 2016), Section III-A:
//!
//! * a task `τ_k` is a directed acyclic graph `G_k = (V_k, E_k)` whose nodes
//!   are **non-preemptive regions** of code labelled with a worst-case
//!   execution time (WCET) `C_{k,j}`, and whose edges are precedence
//!   constraints — see [`Dag`] and [`DagBuilder`];
//! * a [`DagTask`] adds the sporadic parameters: minimum inter-arrival time
//!   `T_k` and constrained relative deadline `D_k ≤ T_k`;
//! * a [`TaskSet`] is a priority-ordered collection of tasks (`τ_i` has
//!   higher priority than `τ_j` iff `i < j`) scheduled by global fixed
//!   priority on `m` identical cores.
//!
//! The crate also provides the graph analyses the RTA needs: volume,
//! longest path, transitive closures, and the *parallel-NPR sets* `Par(v)`
//! of the paper's **Algorithm 1** ([`parallel`]), plus DOT export
//! ([`dot`]), dependency-free JSON persistence ([`json`]) and the
//! reconstructed DAGs of the paper's Figure 1 ([`examples`]).
//!
//! # Example
//!
//! ```
//! use rta_model::{DagBuilder, DagTask};
//!
//! # fn main() -> Result<(), rta_model::ModelError> {
//! // A fork-join task: v1 -> {v2, v3} -> v4.
//! let mut b = DagBuilder::new();
//! let v1 = b.add_node(2);
//! let v2 = b.add_node(4);
//! let v3 = b.add_node(3);
//! let v4 = b.add_node(1);
//! b.add_edge(v1, v2)?;
//! b.add_edge(v1, v3)?;
//! b.add_edge(v2, v4)?;
//! b.add_edge(v3, v4)?;
//! let dag = b.build()?;
//! assert_eq!(dag.volume(), 10);
//! assert_eq!(dag.longest_path(), 7); // v1, v2, v4
//!
//! let task = DagTask::new(dag, 20, 20)?;
//! assert!((task.utilization() - 0.5).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
pub mod dot;
pub mod error;
pub mod examples;
pub mod ids;
pub mod json;
pub mod parallel;
pub mod task;
pub mod taskset;
pub mod time;

pub use dag::{Dag, DagBuilder};
pub use error::ModelError;
pub use ids::{NodeId, TaskId};
pub use parallel::{parallel_adjacency, parallel_sets_algorithm1, parallel_sets_exact};
pub use task::DagTask;
pub use taskset::TaskSet;
pub use time::Time;
