//! Property tests on arbitrary random DAGs (not just the fork-join family
//! the generator produces): structural invariants of the graph engine.

use proptest::prelude::*;
use rta_combinatorics::BitSet;
use rta_model::{parallel_sets_exact, Dag, DagBuilder, NodeId};

/// Builds a random DAG from a node count and an edge bitmask over the
/// upper-triangular pairs (i < j edges only — guarantees acyclicity).
fn arbitrary_dag(nodes: usize, edge_bits: &[bool]) -> Dag {
    let mut b = DagBuilder::new();
    let ids: Vec<NodeId> = (0..nodes).map(|i| b.add_node((i as u64 % 9) + 1)).collect();
    let mut bit = 0;
    for i in 0..nodes {
        for j in i + 1..nodes {
            if edge_bits[bit % edge_bits.len()] {
                b.add_edge(ids[i], ids[j]).expect("forward edge is valid");
            }
            bit += 1;
        }
    }
    b.build().expect("forward edges cannot form a cycle")
}

proptest! {
    #[test]
    fn topological_order_is_a_valid_linearization(
        nodes in 1usize..20,
        edges in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let dag = arbitrary_dag(nodes, &edges);
        let mut pos = vec![0usize; nodes];
        for (i, v) in dag.topological_order().iter().enumerate() {
            pos[v.index()] = i;
        }
        for (from, to) in dag.edges() {
            prop_assert!(pos[from.index()] < pos[to.index()]);
        }
    }

    #[test]
    fn closures_agree_with_bfs(
        nodes in 1usize..16,
        edges in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let dag = arbitrary_dag(nodes, &edges);
        // Reference reachability by BFS on direct successors.
        for v in dag.nodes() {
            let mut reach = BitSet::with_capacity(nodes);
            let mut stack: Vec<usize> = dag.successors(v).iter().collect();
            while let Some(u) = stack.pop() {
                if reach.insert(u) {
                    stack.extend(dag.successors(NodeId::new(u)).iter());
                }
            }
            prop_assert_eq!(dag.descendants(v), &reach, "descendants of {}", v);
            // Ancestors are the transpose.
            for u in dag.nodes() {
                prop_assert_eq!(
                    dag.ancestors(u).contains(v.index()),
                    reach.contains(u.index()),
                    "ancestor/descendant transpose broken for ({}, {})", v, u
                );
            }
        }
    }

    #[test]
    fn volume_and_longest_path_invariants(
        nodes in 1usize..20,
        edges in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let dag = arbitrary_dag(nodes, &edges);
        prop_assert_eq!(dag.volume(), dag.wcets().iter().sum::<u64>());
        prop_assert!(dag.longest_path() <= dag.volume());
        prop_assert!(dag.longest_path() >= dag.max_wcet());
        prop_assert!(dag.longest_path_node_count() <= dag.node_count());
        // A DAG with no edges: L = max WCET; fully chained: L = volume.
        if dag.edge_count() == 0 {
            prop_assert_eq!(dag.longest_path(), dag.max_wcet());
        }
    }

    #[test]
    fn exact_parallel_sets_are_complement_of_comparability(
        nodes in 1usize..14,
        edges in proptest::collection::vec(any::<bool>(), 1..120),
    ) {
        let dag = arbitrary_dag(nodes, &edges);
        let par = parallel_sets_exact(&dag);
        for u in dag.nodes() {
            // Irreflexive.
            prop_assert!(!par[u.index()].contains(u.index()));
            for w in dag.nodes() {
                if u == w { continue; }
                let comparable = dag.reaches(u, w) || dag.reaches(w, u);
                prop_assert_eq!(
                    par[u.index()].contains(w.index()),
                    !comparable,
                    "parallel({}, {}) must equal incomparable", u, w
                );
                // Symmetric.
                prop_assert_eq!(
                    par[u.index()].contains(w.index()),
                    par[w.index()].contains(u.index())
                );
            }
        }
    }

    #[test]
    fn max_parallelism_bounds(
        nodes in 1usize..12,
        edges in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let dag = arbitrary_dag(nodes, &edges);
        let width = dag.max_parallelism();
        prop_assert!(width >= 1);
        prop_assert!(width <= dag.node_count());
        // Mirman check: a DAG with no edges has width = n; a total order has 1.
        if dag.edge_count() == 0 {
            prop_assert_eq!(width, dag.node_count());
        }
        // Width 1 ⇔ every pair comparable.
        let par = parallel_sets_exact(&dag);
        let any_parallel = par.iter().any(|s| !s.is_empty());
        prop_assert_eq!(width > 1, any_parallel);
    }

    #[test]
    fn json_round_trip(
        nodes in 1usize..10,
        edges in proptest::collection::vec(any::<bool>(), 1..60),
    ) {
        let dag = arbitrary_dag(nodes, &edges);
        let task = rta_model::DagTask::with_implicit_deadline(dag, 10_000).expect("valid");
        let json = rta_model::json::task_to_json(&task);
        let back = rta_model::json::task_from_json(&json).expect("deserialize");
        prop_assert_eq!(task, back);
    }
}
