//! Property-based tests for the combinatorial substrate.

use proptest::prelude::*;
use rta_combinatorics::assignment::{max_weight_assignment, max_weight_assignment_bruteforce};
use rta_combinatorics::clique::{max_weight_clique_bruteforce, max_weight_clique_of_size};
use rta_combinatorics::{partition_count, partitions, BitSet};
use std::collections::BTreeSet;

proptest! {
    #[test]
    fn bitset_behaves_like_btreeset(ops in proptest::collection::vec((0usize..200, any::<bool>()), 0..200)) {
        let mut bs = BitSet::new();
        let mut reference = BTreeSet::new();
        for (idx, insert) in ops {
            if insert {
                prop_assert_eq!(bs.insert(idx), reference.insert(idx));
            } else {
                prop_assert_eq!(bs.remove(idx), reference.remove(&idx));
            }
        }
        prop_assert_eq!(bs.len(), reference.len());
        prop_assert_eq!(bs.iter().collect::<Vec<_>>(), reference.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn bitset_algebra_matches_btreeset(
        a in proptest::collection::btree_set(0usize..150, 0..60),
        b in proptest::collection::btree_set(0usize..150, 0..60),
    ) {
        let ba: BitSet = a.iter().copied().collect();
        let bb: BitSet = b.iter().copied().collect();
        let union: Vec<usize> = a.union(&b).copied().collect();
        let inter: Vec<usize> = a.intersection(&b).copied().collect();
        let diff: Vec<usize> = a.difference(&b).copied().collect();
        prop_assert_eq!(ba.union(&bb).iter().collect::<Vec<_>>(), union);
        prop_assert_eq!(ba.intersection(&bb).iter().collect::<Vec<_>>(), inter);
        prop_assert_eq!(ba.difference(&bb).iter().collect::<Vec<_>>(), diff);
        prop_assert_eq!(ba.is_subset(&bb), a.is_subset(&b));
        prop_assert_eq!(ba.is_disjoint(&bb), a.is_disjoint(&b));
    }

    #[test]
    fn partition_enumeration_is_complete_and_sound(m in 1u32..=18) {
        let all: Vec<_> = partitions(m).collect();
        // Count matches the pentagonal-number recurrence.
        prop_assert_eq!(all.len() as u64, partition_count(m));
        // Each partition sums to m with non-increasing positive parts.
        for p in &all {
            prop_assert_eq!(p.total(), m);
            prop_assert!(p.parts().windows(2).all(|w| w[0] >= w[1]));
            prop_assert!(p.parts().iter().all(|&x| x > 0));
        }
        // No duplicates.
        let set: BTreeSet<_> = all.iter().map(|p| p.parts().to_vec()).collect();
        prop_assert_eq!(set.len(), all.len());
    }

    #[test]
    fn hungarian_matches_bruteforce(
        rows in 1usize..5,
        cols in 1usize..6,
        seed in proptest::collection::vec(0u64..1000, 30),
    ) {
        prop_assume!(rows <= cols);
        let weights: Vec<Vec<u64>> = (0..rows)
            .map(|r| (0..cols).map(|c| seed[(r * cols + c) % seed.len()]).collect())
            .collect();
        let fast = max_weight_assignment(&weights).map(|a| a.total);
        let slow = max_weight_assignment_bruteforce(&weights);
        prop_assert_eq!(fast, slow);
        // The reported assignment must be consistent with the total.
        if let Some(a) = max_weight_assignment(&weights) {
            let recomputed: u64 = a.column_of.iter().enumerate().map(|(r, &c)| weights[r][c]).sum();
            prop_assert_eq!(recomputed, a.total);
            let distinct: BTreeSet<_> = a.column_of.iter().collect();
            prop_assert_eq!(distinct.len(), rows);
        }
    }

    #[test]
    fn clique_matches_bruteforce(
        n in 1usize..9,
        edge_bits in any::<u64>(),
        weight_seed in proptest::collection::vec(1u64..100, 9),
    ) {
        let mut adj = vec![BitSet::with_capacity(n); n];
        let mut bit = 0;
        for a in 0..n {
            for b in a + 1..n {
                if edge_bits >> (bit % 64) & 1 == 1 {
                    adj[a].insert(b);
                    adj[b].insert(a);
                }
                bit += 1;
            }
        }
        let weights: Vec<u64> = (0..n).map(|i| weight_seed[i]).collect();
        for size in 0..=n {
            let fast = max_weight_clique_of_size(&adj, &weights, size).map(|s| s.weight);
            let slow = max_weight_clique_bruteforce(&adj, &weights, size);
            prop_assert_eq!(fast, slow, "size {}", size);
        }
    }

    #[test]
    fn clique_members_are_actually_a_clique(
        n in 2usize..9,
        edge_bits in any::<u64>(),
        size in 1usize..5,
    ) {
        let mut adj = vec![BitSet::with_capacity(n); n];
        let mut bit = 0;
        for a in 0..n {
            for b in a + 1..n {
                if edge_bits >> (bit % 64) & 1 == 1 {
                    adj[a].insert(b);
                    adj[b].insert(a);
                }
                bit += 1;
            }
        }
        let weights: Vec<u64> = (1..=n as u64).collect();
        if let Some(sol) = max_weight_clique_of_size(&adj, &weights, size) {
            prop_assert_eq!(sol.members.len(), size);
            for (i, &a) in sol.members.iter().enumerate() {
                for &b in &sol.members[i + 1..] {
                    prop_assert!(adj[a].contains(b), "members {} and {} not adjacent", a, b);
                }
            }
            let w: u64 = sol.members.iter().map(|&v| weights[v]).sum();
            prop_assert_eq!(w, sol.weight);
        }
    }
}
