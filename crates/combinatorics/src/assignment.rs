//! Maximum-weight assignment (Hungarian algorithm).
//!
//! The overall worst-case workload `ρ_k[s_l]` of the paper (Section V-B) asks:
//! given an execution scenario — a partition of the cores into parts
//! `c_1 ≥ c_2 ≥ …` — assign **distinct** lower-priority tasks to the parts so
//! that the summed per-task workloads `µ_i[c_j]` are maximal. That is a
//! rectangular maximum-weight perfect-matching problem on (parts × tasks),
//! which the paper solves with CPLEX and we solve exactly with the Hungarian
//! algorithm in `O(rows² · cols)`.
//!
//! The ILP path (the `rta-ilp` crate) solves the paper's original formulation; the
//! two are cross-checked against each other in the analysis crate's tests.

/// Result of a maximum-weight assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Total weight of the optimal assignment.
    pub total: u64,
    /// `column_of[r]` is the column assigned to row `r`.
    pub column_of: Vec<usize>,
}

/// Reusable working memory for the Hungarian algorithm.
///
/// One `ρ_k[s_l]` evaluation needs six short per-call vectors; a Figure 2
/// sweep performs millions of them. Callers on that hot path keep one
/// scratch alive and hand it to [`max_weight_assignment_total`], which then
/// performs no allocation at all once the buffers have grown to the largest
/// problem seen.
#[derive(Clone, Debug, Default)]
pub struct AssignmentScratch {
    u: Vec<i64>,
    v: Vec<i64>,
    row_of_col: Vec<usize>,
    way: Vec<usize>,
    minv: Vec<i64>,
    used: Vec<bool>,
}

impl AssignmentScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, rows: usize, cols: usize) {
        self.u.clear();
        self.u.resize(rows + 1, 0);
        self.v.clear();
        self.v.resize(cols + 1, 0);
        self.row_of_col.clear();
        self.row_of_col.resize(cols + 1, 0);
        self.way.clear();
        self.way.resize(cols + 1, 0);
        self.minv.resize(cols + 1, 0);
        self.used.resize(cols + 1, false);
    }
}

/// Hungarian algorithm with potentials (e-maxx formulation), minimizing the
/// negated weights. Indices are 1-based internally; index 0 is the virtual
/// start column. On return `scratch.row_of_col[j]` holds the (1-based) row
/// assigned to column `j`, or 0 when the column is unused.
///
/// Requires `1 <= rows <= cols`.
fn hungarian(
    rows: usize,
    cols: usize,
    weight: &impl Fn(usize, usize) -> u64,
    s: &mut AssignmentScratch,
) {
    s.reset(rows, cols);
    let cost = |r: usize, c: usize| -> i64 { -(weight(r, c) as i64) };

    for r in 1..=rows {
        s.row_of_col[0] = r;
        let mut j0 = 0usize;
        for j in 0..=cols {
            s.minv[j] = i64::MAX;
            s.used[j] = false;
        }
        loop {
            s.used[j0] = true;
            let i0 = s.row_of_col[j0];
            let mut delta = i64::MAX;
            let mut j1 = 0usize;
            for j in 1..=cols {
                if s.used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - s.u[i0] - s.v[j];
                if cur < s.minv[j] {
                    s.minv[j] = cur;
                    s.way[j] = j0;
                }
                if s.minv[j] < delta {
                    delta = s.minv[j];
                    j1 = j;
                }
            }
            debug_assert!(delta < i64::MAX, "augmenting path must exist");
            for j in 0..=cols {
                if s.used[j] {
                    s.u[s.row_of_col[j]] += delta;
                    s.v[j] -= delta;
                } else {
                    s.minv[j] -= delta;
                }
            }
            j0 = j1;
            if s.row_of_col[j0] == 0 {
                break;
            }
        }
        // Unwind the augmenting path.
        loop {
            let j1 = s.way[j0];
            s.row_of_col[j0] = s.row_of_col[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
}

/// The optimal total of a maximum-weight assignment, without materializing
/// the weight matrix or the assignment itself.
///
/// `weight(r, c)` is the gain of assigning row `r` to column `c` (callers
/// typically close over µ-arrays and scenario parts). Returns `None` when
/// `rows > cols` — the infeasible-scenario case of [`max_weight_assignment`].
/// Reuses `scratch` across calls, so the sweep-campaign inner loop performs
/// no allocation.
///
/// # Example
///
/// ```
/// use rta_combinatorics::{max_weight_assignment_total, AssignmentScratch};
///
/// let weights = [[9u64, 7, 0], [4, 6, 5]];
/// let mut scratch = AssignmentScratch::new();
/// let total = max_weight_assignment_total(2, 3, |r, c| weights[r][c], &mut scratch);
/// assert_eq!(total, Some(15));
/// ```
pub fn max_weight_assignment_total(
    rows: usize,
    cols: usize,
    weight: impl Fn(usize, usize) -> u64,
    scratch: &mut AssignmentScratch,
) -> Option<u64> {
    if rows == 0 {
        return Some(0);
    }
    if rows > cols {
        return None;
    }
    hungarian(rows, cols, &weight, scratch);
    let mut total = 0u64;
    for j in 1..=cols {
        let r = scratch.row_of_col[j];
        if r != 0 {
            total += weight(r - 1, j - 1);
        }
    }
    Some(total)
}

/// Computes a maximum-weight assignment of every row to a distinct column.
///
/// `weights` is a rectangular row-major matrix with `rows ≤ cols`; entry
/// `weights[r][c]` is the gain of assigning row `r` to column `c`. Every row
/// is assigned; columns may be left unused. Weights are unsigned, so the
/// optimum is always well-defined.
///
/// Returns `None` when the matrix has more rows than columns (no perfect
/// assignment of rows exists) — in the paper's terms, when an execution
/// scenario mentions more tasks than `lp(k)` contains, the scenario is
/// infeasible.
///
/// # Panics
///
/// Panics if the rows have inconsistent lengths.
///
/// # Example
///
/// ```
/// use rta_combinatorics::max_weight_assignment;
///
/// // Two scenario parts, three candidate tasks.
/// let weights = vec![
///     vec![9, 7, 0], // part of 2 cores: µ values per task
///     vec![4, 6, 5], // part of 1 core
/// ];
/// let a = max_weight_assignment(&weights).expect("feasible");
/// assert_eq!(a.total, 15); // 9 (task 0 on 2 cores) + 6 (task 1 on 1 core)
/// assert_eq!(a.column_of, vec![0, 1]);
/// ```
pub fn max_weight_assignment(weights: &[Vec<u64>]) -> Option<Assignment> {
    let rows = weights.len();
    if rows == 0 {
        return Some(Assignment {
            total: 0,
            column_of: Vec::new(),
        });
    }
    let cols = weights[0].len();
    for row in weights {
        assert_eq!(row.len(), cols, "assignment matrix must be rectangular");
    }
    if rows > cols {
        return None;
    }

    let mut scratch = AssignmentScratch::new();
    hungarian(rows, cols, &|r, c| weights[r][c], &mut scratch);

    let mut column_of = vec![usize::MAX; rows];
    for j in 1..=cols {
        if scratch.row_of_col[j] != 0 {
            column_of[scratch.row_of_col[j] - 1] = j - 1;
        }
    }
    debug_assert!(column_of.iter().all(|&c| c != usize::MAX));
    let total = column_of
        .iter()
        .enumerate()
        .map(|(r, &c)| weights[r][c])
        .sum();
    Some(Assignment { total, column_of })
}

/// Exhaustive reference solver used to validate the Hungarian implementation
/// in tests; exponential in the number of rows, exact.
pub fn max_weight_assignment_bruteforce(weights: &[Vec<u64>]) -> Option<u64> {
    let rows = weights.len();
    if rows == 0 {
        return Some(0);
    }
    let cols = weights[0].len();
    if rows > cols {
        return None;
    }
    fn rec(weights: &[Vec<u64>], row: usize, used: &mut Vec<bool>) -> u64 {
        if row == weights.len() {
            return 0;
        }
        let mut best = 0;
        for c in 0..weights[0].len() {
            if !used[c] {
                used[c] = true;
                let val = weights[row][c] + rec(weights, row + 1, used);
                used[c] = false;
                best = best.max(val);
            }
        }
        best
    }
    Some(rec(weights, 0, &mut vec![false; cols]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_assignment() {
        let a = max_weight_assignment(&[]).expect("empty is feasible");
        assert_eq!(a.total, 0);
        assert!(a.column_of.is_empty());
    }

    #[test]
    fn square_identity() {
        let w = vec![vec![10, 1, 1], vec![1, 10, 1], vec![1, 1, 10]];
        let a = max_weight_assignment(&w).expect("feasible");
        assert_eq!(a.total, 30);
        assert_eq!(a.column_of, vec![0, 1, 2]);
    }

    #[test]
    fn forced_tradeoff() {
        // Row 0 prefers col 0 (9) but row 1 needs it more (overall optimum
        // assigns row 0 -> col 1).
        let w = vec![vec![9, 8], vec![9, 1]];
        let a = max_weight_assignment(&w).expect("feasible");
        assert_eq!(a.total, 17);
        assert_eq!(a.column_of, vec![1, 0]);
    }

    #[test]
    fn infeasible_when_more_rows_than_columns() {
        let w = vec![vec![1], vec![2]];
        assert_eq!(max_weight_assignment(&w), None);
    }

    #[test]
    fn rectangular_leaves_columns_unused() {
        let w = vec![vec![5, 100, 5, 7]];
        let a = max_weight_assignment(&w).expect("feasible");
        assert_eq!(a.total, 100);
        assert_eq!(a.column_of, vec![1]);
    }

    #[test]
    fn zeros_are_fine() {
        let w = vec![vec![0, 0], vec![0, 0]];
        let a = max_weight_assignment(&w).expect("feasible");
        assert_eq!(a.total, 0);
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn ragged_matrix_panics() {
        let w = vec![vec![1, 2], vec![3]];
        let _ = max_weight_assignment(&w);
    }

    #[test]
    fn paper_scenario_s3_shape() {
        // Scenario s3 = {2,1,1} from Table III: parts (2 cores, 1 core,
        // 1 core) over tasks τ1..τ4 with µ from Table I.
        // Rows: c=2, c=1, c=1; columns: τ1, τ2, τ3, τ4.
        let w = vec![
            vec![5, 7, 7, 9], // µ_i[2]
            vec![3, 4, 6, 5], // µ_i[1]
            vec![3, 4, 6, 5], // µ_i[1]
        ];
        let a = max_weight_assignment(&w).expect("feasible");
        // ρ[s3] = µ4[2] + µ3[1] + µ2[1] = 9 + 6 + 4 = 19 (paper Table III).
        assert_eq!(a.total, 19);
    }

    #[test]
    fn total_agrees_with_full_assignment_and_reuses_scratch() {
        // One scratch across problems of different shapes, interleaved with
        // infeasible and empty cases.
        let mut scratch = AssignmentScratch::new();
        let cases: Vec<Vec<Vec<u64>>> = vec![
            vec![vec![3, 1, 4], vec![1, 5, 9], vec![2, 6, 5]],
            vec![vec![5, 100, 5, 7]],
            vec![vec![9, 8], vec![9, 1]],
            vec![vec![0, 0], vec![0, 0]],
            vec![vec![1], vec![2]], // infeasible: more rows than columns
            vec![],
            vec![vec![10, 1, 1], vec![1, 10, 1], vec![1, 1, 10]],
        ];
        for w in cases {
            let rows = w.len();
            let cols = w.first().map_or(0, Vec::len);
            let total = max_weight_assignment_total(rows, cols, |r, c| w[r][c], &mut scratch);
            let full = max_weight_assignment(&w).map(|a| a.total);
            assert_eq!(total, full, "matrix {w:?}");
        }
    }

    #[test]
    fn matches_bruteforce_on_fixed_cases() {
        let cases: Vec<Vec<Vec<u64>>> = vec![
            vec![vec![3, 1, 4], vec![1, 5, 9], vec![2, 6, 5]],
            vec![vec![7, 7, 7], vec![7, 7, 7]],
            vec![vec![1, 2, 3, 4], vec![4, 3, 2, 1], vec![2, 2, 2, 2]],
        ];
        for w in cases {
            let fast = max_weight_assignment(&w).map(|a| a.total);
            let slow = max_weight_assignment_bruteforce(&w);
            assert_eq!(fast, slow, "matrix {w:?}");
        }
    }
}
