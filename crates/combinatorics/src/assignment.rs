//! Maximum-weight assignment (Hungarian algorithm).
//!
//! The overall worst-case workload `ρ_k[s_l]` of the paper (Section V-B) asks:
//! given an execution scenario — a partition of the cores into parts
//! `c_1 ≥ c_2 ≥ …` — assign **distinct** lower-priority tasks to the parts so
//! that the summed per-task workloads `µ_i[c_j]` are maximal. That is a
//! rectangular maximum-weight perfect-matching problem on (parts × tasks),
//! which the paper solves with CPLEX and we solve exactly with the Hungarian
//! algorithm in `O(rows² · cols)`.
//!
//! The ILP path (the `rta-ilp` crate) solves the paper's original formulation; the
//! two are cross-checked against each other in the analysis crate's tests.

/// Result of a maximum-weight assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Total weight of the optimal assignment.
    pub total: u64,
    /// `column_of[r]` is the column assigned to row `r`.
    pub column_of: Vec<usize>,
}

/// Computes a maximum-weight assignment of every row to a distinct column.
///
/// `weights` is a rectangular row-major matrix with `rows ≤ cols`; entry
/// `weights[r][c]` is the gain of assigning row `r` to column `c`. Every row
/// is assigned; columns may be left unused. Weights are unsigned, so the
/// optimum is always well-defined.
///
/// Returns `None` when the matrix has more rows than columns (no perfect
/// assignment of rows exists) — in the paper's terms, when an execution
/// scenario mentions more tasks than `lp(k)` contains, the scenario is
/// infeasible.
///
/// # Panics
///
/// Panics if the rows have inconsistent lengths.
///
/// # Example
///
/// ```
/// use rta_combinatorics::max_weight_assignment;
///
/// // Two scenario parts, three candidate tasks.
/// let weights = vec![
///     vec![9, 7, 0], // part of 2 cores: µ values per task
///     vec![4, 6, 5], // part of 1 core
/// ];
/// let a = max_weight_assignment(&weights).expect("feasible");
/// assert_eq!(a.total, 15); // 9 (task 0 on 2 cores) + 6 (task 1 on 1 core)
/// assert_eq!(a.column_of, vec![0, 1]);
/// ```
pub fn max_weight_assignment(weights: &[Vec<u64>]) -> Option<Assignment> {
    let rows = weights.len();
    if rows == 0 {
        return Some(Assignment {
            total: 0,
            column_of: Vec::new(),
        });
    }
    let cols = weights[0].len();
    for row in weights {
        assert_eq!(row.len(), cols, "assignment matrix must be rectangular");
    }
    if rows > cols {
        return None;
    }

    // Hungarian algorithm with potentials (e-maxx formulation), minimizing
    // the negated weights. Indices are 1-based internally; index 0 is the
    // virtual start column.
    let cost = |r: usize, c: usize| -> i64 { -(weights[r][c] as i64) };

    let mut u = vec![0i64; rows + 1];
    let mut v = vec![0i64; cols + 1];
    let mut row_of_col = vec![0usize; cols + 1]; // 0 = unassigned
    let mut way = vec![0usize; cols + 1];

    for r in 1..=rows {
        row_of_col[0] = r;
        let mut j0 = 0usize;
        let mut minv = vec![i64::MAX; cols + 1];
        let mut used = vec![false; cols + 1];
        loop {
            used[j0] = true;
            let i0 = row_of_col[j0];
            let mut delta = i64::MAX;
            let mut j1 = 0usize;
            for j in 1..=cols {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            debug_assert!(delta < i64::MAX, "augmenting path must exist");
            for j in 0..=cols {
                if used[j] {
                    u[row_of_col[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if row_of_col[j0] == 0 {
                break;
            }
        }
        // Unwind the augmenting path.
        loop {
            let j1 = way[j0];
            row_of_col[j0] = row_of_col[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut column_of = vec![usize::MAX; rows];
    for j in 1..=cols {
        if row_of_col[j] != 0 {
            column_of[row_of_col[j] - 1] = j - 1;
        }
    }
    debug_assert!(column_of.iter().all(|&c| c != usize::MAX));
    let total = column_of
        .iter()
        .enumerate()
        .map(|(r, &c)| weights[r][c])
        .sum();
    Some(Assignment { total, column_of })
}

/// Exhaustive reference solver used to validate the Hungarian implementation
/// in tests; exponential in the number of rows, exact.
pub fn max_weight_assignment_bruteforce(weights: &[Vec<u64>]) -> Option<u64> {
    let rows = weights.len();
    if rows == 0 {
        return Some(0);
    }
    let cols = weights[0].len();
    if rows > cols {
        return None;
    }
    fn rec(weights: &[Vec<u64>], row: usize, used: &mut Vec<bool>) -> u64 {
        if row == weights.len() {
            return 0;
        }
        let mut best = 0;
        for c in 0..weights[0].len() {
            if !used[c] {
                used[c] = true;
                let val = weights[row][c] + rec(weights, row + 1, used);
                used[c] = false;
                best = best.max(val);
            }
        }
        best
    }
    Some(rec(weights, 0, &mut vec![false; cols]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_assignment() {
        let a = max_weight_assignment(&[]).expect("empty is feasible");
        assert_eq!(a.total, 0);
        assert!(a.column_of.is_empty());
    }

    #[test]
    fn square_identity() {
        let w = vec![vec![10, 1, 1], vec![1, 10, 1], vec![1, 1, 10]];
        let a = max_weight_assignment(&w).expect("feasible");
        assert_eq!(a.total, 30);
        assert_eq!(a.column_of, vec![0, 1, 2]);
    }

    #[test]
    fn forced_tradeoff() {
        // Row 0 prefers col 0 (9) but row 1 needs it more (overall optimum
        // assigns row 0 -> col 1).
        let w = vec![vec![9, 8], vec![9, 1]];
        let a = max_weight_assignment(&w).expect("feasible");
        assert_eq!(a.total, 17);
        assert_eq!(a.column_of, vec![1, 0]);
    }

    #[test]
    fn infeasible_when_more_rows_than_columns() {
        let w = vec![vec![1], vec![2]];
        assert_eq!(max_weight_assignment(&w), None);
    }

    #[test]
    fn rectangular_leaves_columns_unused() {
        let w = vec![vec![5, 100, 5, 7]];
        let a = max_weight_assignment(&w).expect("feasible");
        assert_eq!(a.total, 100);
        assert_eq!(a.column_of, vec![1]);
    }

    #[test]
    fn zeros_are_fine() {
        let w = vec![vec![0, 0], vec![0, 0]];
        let a = max_weight_assignment(&w).expect("feasible");
        assert_eq!(a.total, 0);
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn ragged_matrix_panics() {
        let w = vec![vec![1, 2], vec![3]];
        let _ = max_weight_assignment(&w);
    }

    #[test]
    fn paper_scenario_s3_shape() {
        // Scenario s3 = {2,1,1} from Table III: parts (2 cores, 1 core,
        // 1 core) over tasks τ1..τ4 with µ from Table I.
        // Rows: c=2, c=1, c=1; columns: τ1, τ2, τ3, τ4.
        let w = vec![
            vec![5, 7, 7, 9], // µ_i[2]
            vec![3, 4, 6, 5], // µ_i[1]
            vec![3, 4, 6, 5], // µ_i[1]
        ];
        let a = max_weight_assignment(&w).expect("feasible");
        // ρ[s3] = µ4[2] + µ3[1] + µ2[1] = 9 + 6 + 4 = 19 (paper Table III).
        assert_eq!(a.total, 19);
    }

    #[test]
    fn matches_bruteforce_on_fixed_cases() {
        let cases: Vec<Vec<Vec<u64>>> = vec![
            vec![vec![3, 1, 4], vec![1, 5, 9], vec![2, 6, 5]],
            vec![vec![7, 7, 7], vec![7, 7, 7]],
            vec![vec![1, 2, 3, 4], vec![4, 3, 2, 1], vec![2, 2, 2, 2]],
        ];
        for w in cases {
            let fast = max_weight_assignment(&w).map(|a| a.total);
            let slow = max_weight_assignment_bruteforce(&w);
            assert_eq!(fast, slow, "matrix {w:?}");
        }
    }
}
