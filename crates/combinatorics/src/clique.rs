//! Maximum-weight clique of prescribed cardinality.
//!
//! The per-task worst-case workload `µ_i[c]` of the paper (Definition 1 and
//! Section V-A2) is the largest total WCET of `c` NPRs of one task that can
//! all run **pairwise** in parallel. Viewing "can run in parallel" (the
//! output of the paper's Algorithm 1) as an undirected graph over the task's
//! nodes, `µ_i[c]` is a **maximum-weight clique of size exactly `c`**.
//! Equivalently, it is a maximum-weight antichain of cardinality `c` of the
//! DAG's reachability partial order.
//!
//! The paper solves this with an ILP; this module provides an exact
//! branch-and-bound search that exploits the small node counts of DAG tasks
//! (the paper caps DAGs at 30 nodes). The ILP path in the `rta-ilp` crate solves the
//! paper's formulation verbatim and is cross-checked against this solver.

use crate::bitset::BitSet;

/// An optimal clique found by [`max_weight_clique_of_size`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliqueSolution {
    /// Sum of the weights of the clique members.
    pub weight: u64,
    /// Members, in increasing vertex order.
    pub members: Vec<usize>,
}

/// Finds a maximum-weight clique with **exactly** `size` vertices.
///
/// `adjacency[v]` is the set of neighbours of `v` (must be symmetric and
/// irreflexive); `weights[v]` the vertex weight. Returns `None` when the
/// graph has no clique of the requested size — in the paper's terms, when a
/// task cannot occupy `c` cores at once, in which case `µ_i[c] = 0`
/// (cf. `µ_2[3] = µ_2[4] = 0` in Table I).
///
/// `size = 0` trivially yields the empty clique with weight 0.
///
/// # Panics
///
/// Panics if `adjacency` and `weights` have different lengths.
///
/// # Example
///
/// ```
/// use rta_combinatorics::{max_weight_clique_of_size, BitSet};
///
/// // Path graph 0 - 1 - 2: cliques of size 2 are {0,1} and {1,2}.
/// let adjacency = vec![
///     [1].into_iter().collect::<BitSet>(),
///     [0, 2].into_iter().collect(),
///     [1].into_iter().collect(),
/// ];
/// let weights = [5, 1, 7];
/// let best = max_weight_clique_of_size(&adjacency, &weights, 2).expect("exists");
/// assert_eq!(best.weight, 8); // {1, 2}
/// assert_eq!(best.members, vec![1, 2]);
/// assert!(max_weight_clique_of_size(&adjacency, &weights, 3).is_none());
/// ```
pub fn max_weight_clique_of_size(
    adjacency: &[BitSet],
    weights: &[u64],
    size: usize,
) -> Option<CliqueSolution> {
    assert_eq!(
        adjacency.len(),
        weights.len(),
        "adjacency and weights must cover the same vertices"
    );
    let n = adjacency.len();
    if size == 0 {
        return Some(CliqueSolution {
            weight: 0,
            members: Vec::new(),
        });
    }
    if size > n {
        return None;
    }

    // Branch on vertices in descending weight order so good solutions are
    // found early and the weight bound prunes aggressively.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));

    let mut best: Option<(u64, Vec<usize>)> = None;
    let mut chosen: Vec<usize> = Vec::with_capacity(size);

    // `candidates` holds positions (into `order`) still eligible.
    let initial: Vec<usize> = (0..n).collect();
    search(
        adjacency,
        weights,
        &order,
        size,
        &mut chosen,
        0,
        &initial,
        &mut best,
    );

    best.map(|(weight, mut members)| {
        members.sort_unstable();
        CliqueSolution { weight, members }
    })
}

#[allow(clippy::too_many_arguments)]
fn search(
    adjacency: &[BitSet],
    weights: &[u64],
    order: &[usize],
    size: usize,
    chosen: &mut Vec<usize>,
    chosen_weight: u64,
    candidates: &[usize],
    best: &mut Option<(u64, Vec<usize>)>,
) {
    let need = size - chosen.len();
    if need == 0 {
        if best.as_ref().is_none_or(|(bw, _)| chosen_weight > *bw) {
            *best = Some((chosen_weight, chosen.clone()));
        }
        return;
    }
    if candidates.len() < need {
        return;
    }
    // Upper bound: current weight plus the `need` heaviest candidates
    // (candidates are kept sorted by descending weight because they are
    // positions filtered from `order`).
    let optimistic: u64 = chosen_weight
        + candidates
            .iter()
            .take(need)
            .map(|&pos| weights[order[pos]])
            .sum::<u64>();
    if let Some((bw, _)) = best {
        if optimistic <= *bw {
            return;
        }
    }

    for (idx, &pos) in candidates.iter().enumerate() {
        // Even taking this and every later candidate cannot reach `need`.
        if candidates.len() - idx < need {
            break;
        }
        let v = order[pos];
        chosen.push(v);
        let next: Vec<usize> = candidates[idx + 1..]
            .iter()
            .copied()
            .filter(|&p| adjacency[v].contains(order[p]))
            .collect();
        search(
            adjacency,
            weights,
            order,
            size,
            chosen,
            chosen_weight + weights[v],
            &next,
            best,
        );
        chosen.pop();
    }
}

/// Reusable working memory for the weight-only clique search
/// ([`max_weight_clique_weight`]).
///
/// The branch-and-bound in [`max_weight_clique_of_size`] allocates a fresh
/// candidate vector at every branch point; over a sweep campaign the µ-array
/// searches dominate the allocator. This scratch keeps one candidate buffer
/// per search depth (depth is bounded by the requested clique size, i.e. the
/// core count), so repeated searches allocate nothing once warm.
#[derive(Clone, Debug, Default)]
pub struct CliqueScratch {
    /// Vertices sorted by descending weight (branch order).
    order: Vec<usize>,
    /// `levels[d]` holds the candidate positions (into `order`) at depth `d`.
    levels: Vec<Vec<usize>>,
}

impl CliqueScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The weight of a maximum-weight clique with **exactly** `size` vertices,
/// reusing `scratch` across calls.
///
/// Semantically identical to
/// `max_weight_clique_of_size(..).map(|s| s.weight)` — same branch order,
/// same pruning — but skips materializing the members and performs no
/// allocation once the scratch buffers are warm. This is the solver behind
/// the analysis cache's µ-arrays.
///
/// # Panics
///
/// Panics if `adjacency` and `weights` have different lengths.
pub fn max_weight_clique_weight(
    adjacency: &[BitSet],
    weights: &[u64],
    size: usize,
    scratch: &mut CliqueScratch,
) -> Option<u64> {
    assert_eq!(
        adjacency.len(),
        weights.len(),
        "adjacency and weights must cover the same vertices"
    );
    let n = adjacency.len();
    if size == 0 {
        return Some(0);
    }
    if size > n {
        return None;
    }

    let CliqueScratch { order, levels } = scratch;
    order.clear();
    order.extend(0..n);
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));
    if levels.len() < size {
        levels.resize_with(size, Vec::new);
    }
    levels[0].clear();
    levels[0].extend(0..n);

    let mut best = None;
    search_weight(
        adjacency,
        weights,
        order,
        size,
        0,
        &mut levels[..size],
        &mut best,
    );
    best
}

/// Depth-first branch-and-bound identical to [`search`], but tracking only
/// the best weight and drawing candidate storage from `levels` (one buffer
/// per remaining slot; `levels[0]` holds the current candidates).
fn search_weight(
    adjacency: &[BitSet],
    weights: &[u64],
    order: &[usize],
    need: usize,
    chosen_weight: u64,
    levels: &mut [Vec<usize>],
    best: &mut Option<u64>,
) {
    let (candidates, deeper) = levels.split_first_mut().expect("one level per slot");
    if candidates.len() < need {
        return;
    }
    // Upper bound: current weight plus the `need` heaviest candidates
    // (candidates stay sorted by descending weight — they are positions
    // filtered from `order`).
    let optimistic: u64 = chosen_weight
        + candidates
            .iter()
            .take(need)
            .map(|&pos| weights[order[pos]])
            .sum::<u64>();
    if let Some(bw) = *best {
        if optimistic <= bw {
            return;
        }
    }

    for idx in 0..candidates.len() {
        // Even taking this and every later candidate cannot reach `need`.
        if candidates.len() - idx < need {
            break;
        }
        let v = order[candidates[idx]];
        let weight = chosen_weight + weights[v];
        if need == 1 {
            if best.is_none_or(|bw| weight > bw) {
                *best = Some(weight);
            }
            continue;
        }
        deeper[0].clear();
        for &p in &candidates[idx + 1..] {
            if adjacency[v].contains(order[p]) {
                deeper[0].push(p);
            }
        }
        search_weight(adjacency, weights, order, need - 1, weight, deeper, best);
    }
}

/// Exhaustive reference solver (all `C(n, size)` subsets); exact and
/// exponential, used to validate the branch-and-bound in tests.
pub fn max_weight_clique_bruteforce(
    adjacency: &[BitSet],
    weights: &[u64],
    size: usize,
) -> Option<u64> {
    let n = adjacency.len();
    if size == 0 {
        return Some(0);
    }
    if size > n {
        return None;
    }
    let mut best: Option<u64> = None;
    let mut subset: Vec<usize> = Vec::new();
    fn rec(
        adjacency: &[BitSet],
        weights: &[u64],
        size: usize,
        start: usize,
        subset: &mut Vec<usize>,
        best: &mut Option<u64>,
    ) {
        if subset.len() == size {
            let w = subset.iter().map(|&v| weights[v]).sum();
            if best.is_none_or(|b| w > b) {
                *best = Some(w);
            }
            return;
        }
        for v in start..adjacency.len() {
            if subset.iter().all(|&u| adjacency[u].contains(v)) {
                subset.push(v);
                rec(adjacency, weights, size, v + 1, subset, best);
                subset.pop();
            }
        }
    }
    rec(adjacency, weights, size, 0, &mut subset, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> Vec<BitSet> {
        let mut adj = vec![BitSet::with_capacity(n); n];
        for &(a, b) in edges {
            adj[a].insert(b);
            adj[b].insert(a);
        }
        adj
    }

    #[test]
    fn empty_size_zero() {
        let adj = graph(3, &[]);
        let sol = max_weight_clique_of_size(&adj, &[1, 2, 3], 0).expect("empty clique");
        assert_eq!(sol.weight, 0);
        assert!(sol.members.is_empty());
    }

    #[test]
    fn singleton_is_max_vertex() {
        let adj = graph(4, &[]);
        let sol = max_weight_clique_of_size(&adj, &[3, 9, 1, 4], 1).expect("singleton");
        assert_eq!(sol.weight, 9);
        assert_eq!(sol.members, vec![1]);
    }

    #[test]
    fn no_edges_no_pairs() {
        let adj = graph(4, &[]);
        assert!(max_weight_clique_of_size(&adj, &[3, 9, 1, 4], 2).is_none());
    }

    #[test]
    fn triangle_plus_pendant() {
        // Triangle 0-1-2 plus pendant 3 attached to 0.
        let adj = graph(4, &[(0, 1), (1, 2), (0, 2), (0, 3)]);
        let w = [10, 1, 2, 100];
        let pair = max_weight_clique_of_size(&adj, &w, 2).expect("pair");
        assert_eq!(pair.weight, 110); // {0, 3}
        let tri = max_weight_clique_of_size(&adj, &w, 3).expect("triangle");
        assert_eq!(tri.weight, 13); // {0, 1, 2} — 3 has degree 1
        assert_eq!(tri.members, vec![0, 1, 2]);
        assert!(max_weight_clique_of_size(&adj, &w, 4).is_none());
    }

    #[test]
    fn size_larger_than_graph() {
        let adj = graph(2, &[(0, 1)]);
        assert!(max_weight_clique_of_size(&adj, &[1, 1], 3).is_none());
    }

    #[test]
    fn paper_task4_parallel_graph() {
        // τ4 of Figure 1: nodes v1..v5 (0-indexed 0..4) with weights
        // C = [5, 2, 4, 5, 3]; parallel pairs {(1,2),(2,3),(2,4),(3,4)}.
        // (v1 is the source and parallel with nothing; v2–v5 form the
        // pattern where {v3,v4,v5} is the only 3-clique.)
        let adj = graph(5, &[(1, 2), (2, 3), (2, 4), (3, 4)]);
        let w = [5u64, 2, 4, 5, 3];
        let mu1 = max_weight_clique_of_size(&adj, &w, 1).expect("µ[1]");
        assert_eq!(mu1.weight, 5);
        let mu2 = max_weight_clique_of_size(&adj, &w, 2).expect("µ[2]");
        assert_eq!(mu2.weight, 9); // C4,3 + C4,4 (nodes 2 and 3)
        let mu3 = max_weight_clique_of_size(&adj, &w, 3).expect("µ[3]");
        assert_eq!(mu3.weight, 12); // nodes {2, 3, 4}
        assert_eq!(mu3.members, vec![2, 3, 4]);
        assert!(max_weight_clique_of_size(&adj, &w, 4).is_none()); // µ4[4] = 0
    }

    #[test]
    fn matches_bruteforce_on_dense_case() {
        // Complete graph minus a perfect matching, n = 8.
        let n = 8;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                if b != a + n / 2 {
                    edges.push((a, b));
                }
            }
        }
        let adj = graph(n, &edges);
        let w: Vec<u64> = (0..n as u64).map(|i| i * i + 1).collect();
        for size in 0..=n {
            let fast = max_weight_clique_of_size(&adj, &w, size).map(|s| s.weight);
            let slow = max_weight_clique_bruteforce(&adj, &w, size);
            assert_eq!(fast, slow, "size {size}");
        }
    }

    #[test]
    fn weight_only_search_agrees_with_full_search() {
        // One scratch shared across graphs and sizes (the cache usage
        // pattern); results must match the members-returning solver.
        let mut scratch = CliqueScratch::new();
        let dense = {
            let n = 8;
            let mut edges = Vec::new();
            for a in 0..n {
                for b in a + 1..n {
                    if b != a + n / 2 {
                        edges.push((a, b));
                    }
                }
            }
            graph(n, &edges)
        };
        let dense_w: Vec<u64> = (0..8u64).map(|i| i * i + 1).collect();
        let sparse = graph(5, &[(1, 2), (2, 3), (2, 4), (3, 4)]);
        let sparse_w = vec![5u64, 2, 4, 5, 3];
        for (adj, w) in [(&dense, &dense_w), (&sparse, &sparse_w)] {
            for size in 0..=adj.len() + 1 {
                let fast = max_weight_clique_weight(adj, w, size, &mut scratch);
                let full = max_weight_clique_of_size(adj, w, size).map(|s| s.weight);
                assert_eq!(fast, full, "size {size}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "same vertices")]
    fn mismatched_inputs_panic() {
        let adj = graph(2, &[(0, 1)]);
        let _ = max_weight_clique_of_size(&adj, &[1], 1);
    }
}
