//! A compact growable bitset over `usize` indices.
//!
//! [`BitSet`] backs every node-set representation in the DAG model: the
//! predecessor/successor transitive closures, the sibling sets and the
//! `Par(v)` parallel sets of the paper's Algorithm 1 are all `BitSet`s, which
//! makes the set algebra in that algorithm (unions, differences) word-wide
//! rather than element-wide.

use std::fmt;

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

/// A growable set of small unsigned integers, stored one bit per element.
///
/// Operations that combine two sets ([`union_with`](BitSet::union_with),
/// [`difference_with`](BitSet::difference_with), …) grow the receiver as
/// needed, so sets of different capacities compose freely.
///
/// # Example
///
/// ```
/// use rta_combinatorics::BitSet;
///
/// let mut parallel = BitSet::new();
/// parallel.insert(2);
/// parallel.insert(5);
/// assert!(parallel.contains(2));
/// assert_eq!(parallel.len(), 2);
/// assert_eq!(parallel.iter().collect::<Vec<_>>(), vec![2, 5]);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self { words: Vec::new() }
    }

    /// Creates an empty set with capacity for elements `0..n` without
    /// reallocation.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(WORD_BITS)],
        }
    }

    /// Creates a set containing every element of `0..n`.
    pub fn full(n: usize) -> Self {
        let mut s = Self::with_capacity(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    #[inline]
    fn word_of(index: usize) -> (usize, u64) {
        (index / WORD_BITS, 1u64 << (index % WORD_BITS))
    }

    /// Inserts `index`, returning `true` if it was not already present.
    pub fn insert(&mut self, index: usize) -> bool {
        let (w, mask) = Self::word_of(index);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !had
    }

    /// Removes `index`, returning `true` if it was present.
    pub fn remove(&mut self, index: usize) -> bool {
        let (w, mask) = Self::word_of(index);
        if w >= self.words.len() {
            return false;
        }
        let had = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        had
    }

    /// Returns `true` if `index` is in the set.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        let (w, mask) = Self::word_of(index);
        self.words.get(w).is_some_and(|word| word & mask != 0)
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Adds every element of `other` to `self` (`self ∪= other`).
    pub fn union_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (dst, src) in self.words.iter_mut().zip(&other.words) {
            *dst |= src;
        }
    }

    /// Removes every element of `other` from `self` (`self \= other`).
    pub fn difference_with(&mut self, other: &BitSet) {
        for (dst, src) in self.words.iter_mut().zip(&other.words) {
            *dst &= !src;
        }
    }

    /// Keeps only elements also in `other` (`self ∩= other`).
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (i, dst) in self.words.iter_mut().enumerate() {
            *dst &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// Returns `self ∪ other` as a new set.
    #[must_use]
    pub fn union(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns `self \ other` as a new set.
    #[must_use]
    pub fn difference(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// Returns `self ∩ other` as a new set.
    #[must_use]
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Returns `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Returns `true` if the two sets share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| a & b == 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * WORD_BITS + tz);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_across_word_boundaries() {
        let mut s = BitSet::new();
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1, 2, 3, 70].into_iter().collect();
        let b: BitSet = [2, 3, 4].into_iter().collect();
        assert_eq!(a.union(&b).iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 70]);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![1, 70]);
        assert_eq!(b.difference(&a).iter().collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn subset_and_disjoint() {
        let a: BitSet = [1, 2].into_iter().collect();
        let b: BitSet = [1, 2, 3].into_iter().collect();
        let c: BitSet = [65].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        // Differently sized backing storage must still compare correctly.
        assert!(c.is_subset(&c.clone()));
        assert!(!c.is_subset(&a));
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(10);
        assert_eq!(s.len(), 10);
        assert!(s.contains(9));
        assert!(!s.contains(10));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn first_element() {
        let s: BitSet = [64, 5].into_iter().collect();
        assert_eq!(s.first(), Some(5));
        assert_eq!(BitSet::new().first(), None);
    }

    #[test]
    fn debug_is_never_empty() {
        assert_eq!(format!("{:?}", BitSet::new()), "{}");
        let s: BitSet = [1].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1}");
    }

    #[test]
    fn extend_and_from_iter_agree() {
        let mut a = BitSet::new();
        a.extend([9, 1, 9, 3]);
        let b: BitSet = [1, 3, 9].into_iter().collect();
        assert_eq!(a, b);
    }
}
