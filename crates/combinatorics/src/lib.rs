//! Combinatorial substrate for the DAG limited-preemption response-time
//! analysis.
//!
//! The analysis of Serrano et al. (DATE 2016) leans on a handful of classic
//! combinatorial objects that this crate provides from scratch:
//!
//! * [`BitSet`] — a compact dynamic bitset used for node sets, transitive
//!   closures and "can execute in parallel" adjacency in `rta-model`;
//! * [`partitions`](mod@partitions) — enumeration of the *execution scenarios* `e_m` of the
//!   paper (Section IV-B), which are exactly the integer partitions of the
//!   core count `m`, together with the pentagonal-number-theorem counter
//!   [`partitions::partition_count`];
//! * [`PartitionTable`] — a process-global memo of the scenario lists: each
//!   cardinality is enumerated once per process and shared as a `&'static`
//!   slice by every task-set analysis and worker thread;
//! * [`assignment`] — maximum-weight assignment (Hungarian algorithm), the
//!   combinatorial equivalent of the paper's ILP formulation for the overall
//!   worst-case workload `ρ_k[s_l]` (Section V-B);
//! * [`clique`] — maximum-weight clique of prescribed cardinality, the
//!   combinatorial equivalent of the paper's ILP formulation for the
//!   per-task worst-case workload `µ_i[c]` (Section V-A2).
//!
//! Everything here is exact integer arithmetic; there is no floating point
//! and no `unsafe`.
//!
//! # Example
//!
//! ```
//! use rta_combinatorics::partitions::{partitions, partition_count};
//!
//! // Table II of the paper: e_4 has p(4) = 5 execution scenarios.
//! let scenarios: Vec<_> = partitions(4).collect();
//! assert_eq!(scenarios.len(), 5);
//! assert_eq!(partition_count(4), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod bitset;
pub mod clique;
pub mod partition_table;
pub mod partitions;

pub use assignment::{
    max_weight_assignment, max_weight_assignment_total, Assignment, AssignmentScratch,
};
pub use bitset::BitSet;
pub use clique::{
    max_weight_clique_of_size, max_weight_clique_weight, CliqueScratch, CliqueSolution,
};
pub use partition_table::PartitionTable;
pub use partitions::{partition_count, partitions, Partition, Partitions};
