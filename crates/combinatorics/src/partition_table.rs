//! A process-global memo of execution-scenario lists.
//!
//! Every analysis of a task set on `m` cores walks the execution scenarios
//! `e_c` — the integer partitions of each platform slice `c ≤ m`. The lists
//! depend on nothing but `c`, yet a sweep campaign over thousands of task
//! sets used to re-enumerate them once per task set (each `TaskSetCache`
//! held its own copy). [`PartitionTable`] enumerates each cardinality
//! **once per process** and hands out `&'static` slices that every worker
//! thread shares for free.
//!
//! The table leaks one `Vec<Partition>` per distinct `m` queried over the
//! process lifetime — bounded by the largest platform ever analyzed (231
//! partitions at `m = 16`, ~1.7 M at `m = 64`), which is the point: the
//! memory *is* the memoization.
//!
//! [`PartitionTable::enumerations`] counts actual enumerations (mirroring
//! `mu::mu_array_computations` in the analysis crate), so tests can prove
//! the once-per-`m`-per-process property.

use crate::partitions::{partitions, Partition};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// Scenario lists by core count, filled on first use.
static TABLE: OnceLock<RwLock<BTreeMap<u32, &'static [Partition]>>> = OnceLock::new();

/// Number of `partitions(m)` enumerations the table has performed.
static ENUMERATIONS: AtomicU64 = AtomicU64::new(0);

fn table() -> &'static RwLock<BTreeMap<u32, &'static [Partition]>> {
    TABLE.get_or_init(|| RwLock::new(BTreeMap::new()))
}

/// The process-global partition table. See the [module docs](self).
///
/// # Example
///
/// ```
/// use rta_combinatorics::PartitionTable;
///
/// let e4 = PartitionTable::scenarios(4);
/// assert_eq!(e4.len(), 5); // Table II of the paper
/// // Repeated queries return the very same memoized slice.
/// assert!(std::ptr::eq(e4, PartitionTable::scenarios(4)));
/// ```
pub struct PartitionTable;

impl PartitionTable {
    /// The execution scenarios `e_m` — all partitions of `m`, in the
    /// enumeration order of [`partitions`] — enumerated at most once per
    /// process and shared by every caller thereafter. `m = 0` yields the
    /// empty slice.
    pub fn scenarios(m: u32) -> &'static [Partition] {
        if let Some(&slice) = table().read().expect("partition table poisoned").get(&m) {
            return slice;
        }
        let mut map = table().write().expect("partition table poisoned");
        // Double-checked: another thread may have filled the entry between
        // the read and write locks. Enumerating inside the write lock keeps
        // the count at exactly one per `m`.
        map.entry(m).or_insert_with(|| {
            ENUMERATIONS.fetch_add(1, Ordering::Relaxed);
            Box::leak(partitions(m).collect::<Vec<_>>().into_boxed_slice())
        })
    }

    /// How many `partitions(m)` enumerations the table has performed in
    /// this process — at most one per distinct `m`, ever.
    pub fn enumerations() -> u64 {
        ENUMERATIONS.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_match_direct_enumeration() {
        for m in 0..=12u32 {
            let direct: Vec<Partition> = partitions(m).collect();
            assert_eq!(PartitionTable::scenarios(m), direct.as_slice(), "m = {m}");
        }
    }

    #[test]
    fn repeated_queries_share_one_allocation() {
        // Use an `m` no other test in this binary touches, so the pointer
        // identity below cannot be perturbed by concurrent fills.
        let first = PartitionTable::scenarios(27);
        let before = PartitionTable::enumerations();
        for _ in 0..100 {
            assert!(std::ptr::eq(first, PartitionTable::scenarios(27)));
        }
        // Re-querying an already-filled entry never re-enumerates. Other
        // tests may fill *new* entries concurrently, so compare against the
        // dedicated entry's pointer, and check the counter only moved for
        // entries other than ours (monotone, not exact).
        assert!(PartitionTable::enumerations() >= before);
        assert!(std::ptr::eq(first, PartitionTable::scenarios(27)));
    }

    #[test]
    fn zero_cores_is_empty() {
        assert!(PartitionTable::scenarios(0).is_empty());
    }

    #[test]
    fn concurrent_first_touch_enumerates_once() {
        // Hammer a fresh `m` from many threads; the table must hand every
        // thread the same slice (one enumeration, one leak).
        let slices: Vec<&'static [Partition]> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| PartitionTable::scenarios(26)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for pair in slices.windows(2) {
            assert!(std::ptr::eq(pair[0], pair[1]));
        }
        assert_eq!(slices[0].len(), crate::partition_count(26) as usize);
    }
}
