//! Integer partitions: the *execution scenarios* of the paper.
//!
//! Section IV-B of Serrano et al. defines the set of execution scenarios
//! `e_m = {s_1, …, s_p(m)}` of the lower-priority tasks on `m` cores: each
//! scenario fixes how many cores each (anonymous) task uses, so scenarios
//! are exactly the **partitions of the integer `m`** — `m = 4` yields
//! `{1,1,1,1}, {2,1,1}, {2,2}, {3,1}, {4}` (Table II).
//!
//! The paper counts scenarios with Euler's pentagonal number theorem;
//! [`partition_count`] implements that recurrence and is cross-checked in
//! the tests against direct enumeration by [`partitions`].

/// A partition of a positive integer: parts in non-increasing order.
///
/// In scheduling terms, `parts()[i]` is the number of cores assigned to the
/// `i`-th lower-priority task of an execution scenario, and
/// [`cardinality`](Partition::cardinality) is the `|s_l|` of the paper (the
/// number of tasks that participate in the scenario).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Partition {
    parts: Vec<u32>,
}

impl Partition {
    /// Creates a partition from parts.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is not non-increasing or contains a zero part; such
    /// a value is not a partition and indicates a caller bug.
    pub fn new(parts: Vec<u32>) -> Self {
        assert!(
            parts.windows(2).all(|w| w[0] >= w[1]),
            "partition parts must be non-increasing: {parts:?}"
        );
        assert!(
            parts.iter().all(|&p| p > 0),
            "partition parts must be positive: {parts:?}"
        );
        Self { parts }
    }

    /// The parts, in non-increasing order.
    pub fn parts(&self) -> &[u32] {
        &self.parts
    }

    /// Number of parts (`|s_l|` in the paper: tasks running in the scenario).
    pub fn cardinality(&self) -> usize {
        self.parts.len()
    }

    /// Sum of the parts (the total number of cores the scenario occupies).
    pub fn total(&self) -> u32 {
        self.parts.iter().sum()
    }
}

impl std::fmt::Display for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over all partitions of `m`, in descending lexicographic order of
/// parts (i.e. `{m}` first, `{1,1,…,1}` last).
///
/// # Example
///
/// ```
/// use rta_combinatorics::partitions::partitions;
///
/// let e4: Vec<String> = partitions(4).map(|p| p.to_string()).collect();
/// assert_eq!(e4, ["{4}", "{3,1}", "{2,2}", "{2,1,1}", "{1,1,1,1}"]);
/// ```
pub fn partitions(m: u32) -> Partitions {
    Partitions {
        next: if m == 0 { None } else { Some(vec![m]) },
    }
}

/// Iterator over the partitions of an integer. Created by [`partitions`].
#[derive(Clone, Debug)]
pub struct Partitions {
    next: Option<Vec<u32>>,
}

impl Iterator for Partitions {
    type Item = Partition;

    fn next(&mut self) -> Option<Partition> {
        let current = self.next.take()?;
        let result = Partition {
            parts: current.clone(),
        };
        // Standard successor computation: find the rightmost part > 1,
        // decrement it, and redistribute the remainder greedily.
        let mut parts = current;
        let ones = parts.iter().rev().take_while(|&&p| p == 1).count();
        parts.truncate(parts.len() - ones);
        if parts.is_empty() {
            self.next = None;
            return Some(result);
        }
        let last = parts.len() - 1;
        parts[last] -= 1;
        let cap = parts[last];
        let mut rem = ones as u32 + 1;
        while rem > 0 {
            let take = rem.min(cap);
            parts.push(take);
            rem -= take;
        }
        self.next = Some(parts);
        Some(result)
    }
}

/// All partitions of `m` that use at most `max_parts` parts.
///
/// This is the scenario space relevant when only `max_parts` lower-priority
/// tasks exist: a scenario cannot involve more tasks than there are.
pub fn partitions_with_max_parts(m: u32, max_parts: usize) -> impl Iterator<Item = Partition> {
    partitions(m).filter(move |p| p.cardinality() <= max_parts)
}

/// Number of partitions of `m`, via Euler's pentagonal number theorem:
///
/// ```text
/// p(m) = Σ_{q ≠ 0} (−1)^{q−1} · p(m − q(3q−1)/2)
/// ```
///
/// with `p(0) = 1` and `p(k) = 0` for `k < 0`. This is the counting method
/// the paper cites for the size of the execution-scenario set `e_m`.
///
/// # Example
///
/// ```
/// use rta_combinatorics::partition_count;
/// // Table II: p(4) = 5 scenarios on a 4-core platform.
/// assert_eq!(partition_count(4), 5);
/// assert_eq!(partition_count(16), 231);
/// ```
pub fn partition_count(m: u32) -> u64 {
    let m = m as usize;
    let mut p = vec![0u64; m + 1];
    p[0] = 1;
    for n in 1..=m {
        let mut total: i128 = 0;
        let mut q: i64 = 1;
        loop {
            let mut advanced = false;
            for gq in [q, -q] {
                let gen = gq * (3 * gq - 1) / 2;
                if gen as usize <= n {
                    advanced = true;
                    let sign = if q % 2 == 1 { 1 } else { -1 };
                    total += sign as i128 * p[n - gen as usize] as i128;
                }
            }
            if !advanced {
                break;
            }
            q += 1;
        }
        p[n] = u64::try_from(total).expect("partition function is positive");
    }
    p[m]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_scenarios_for_four_cores() {
        // Table II of the paper, in our enumeration order.
        let e4: Vec<Partition> = partitions(4).collect();
        assert_eq!(e4.len(), 5);
        let expected = [
            (vec![4u32], 1usize),
            (vec![3, 1], 2),
            (vec![2, 2], 2),
            (vec![2, 1, 1], 3),
            (vec![1, 1, 1, 1], 4),
        ];
        for (p, (parts, card)) in e4.iter().zip(expected.iter()) {
            assert_eq!(p.parts(), parts.as_slice());
            assert_eq!(p.cardinality(), *card);
            assert_eq!(p.total(), 4);
        }
    }

    #[test]
    fn known_partition_counts() {
        // OEIS A000041.
        let expected = [
            1u64, 1, 2, 3, 5, 7, 11, 15, 22, 30, 42, 56, 77, 101, 135, 176, 231,
        ];
        for (m, &want) in expected.iter().enumerate() {
            assert_eq!(partition_count(m as u32), want, "p({m})");
        }
        assert_eq!(partition_count(64), 1_741_630);
    }

    #[test]
    fn enumeration_matches_pentagonal_count() {
        for m in 0..=20u32 {
            let enumerated = partitions(m).count() as u64;
            let counted = partition_count(m);
            if m == 0 {
                assert_eq!(enumerated, 0);
                assert_eq!(counted, 1); // p(0) = 1 by convention (empty partition).
            } else {
                assert_eq!(enumerated, counted, "m = {m}");
            }
        }
    }

    #[test]
    fn every_partition_is_valid_and_unique() {
        for m in 1..=15u32 {
            let all: Vec<Partition> = partitions(m).collect();
            for p in &all {
                assert_eq!(p.total(), m);
                assert!(p.parts().windows(2).all(|w| w[0] >= w[1]));
                assert!(p.parts().iter().all(|&x| x > 0));
            }
            let mut sorted = all.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), all.len(), "duplicates for m = {m}");
        }
    }

    #[test]
    fn max_parts_filter() {
        let two_tasks: Vec<Partition> = partitions_with_max_parts(4, 2).collect();
        let strings: Vec<String> = two_tasks.iter().map(|p| p.to_string()).collect();
        assert_eq!(strings, ["{4}", "{3,1}", "{2,2}"]);
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn partition_new_rejects_increasing_parts() {
        let _ = Partition::new(vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn partition_new_rejects_zero_parts() {
        let _ = Partition::new(vec![2, 0]);
    }

    #[test]
    fn display_formats_like_the_paper() {
        assert_eq!(Partition::new(vec![2, 1, 1]).to_string(), "{2,1,1}");
    }
}
