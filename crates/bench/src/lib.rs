//! Benchmark-only crate: the Criterion benches under `benches/` regenerate
//! every table and figure of the paper (see DESIGN.md §3 for the index)
//! and the ablations of the design choices. There is no library code here.
//!
//! Run with `cargo bench -p rta-bench`; individual suites:
//!
//! ```text
//! cargo bench -p rta-bench --bench tables      # Tables I–III
//! cargo bench -p rta-bench --bench figure2     # Figure 2 panels + timing
//! cargo bench -p rta-bench --bench ablations   # solver / algorithm ablations
//! cargo bench -p rta-bench --bench substrates  # microbenches
//! ```

#![forbid(unsafe_code)]
