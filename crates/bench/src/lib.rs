//! Benchmark-only crate: the Criterion benches under `benches/` regenerate
//! every table and figure of the paper (see DESIGN.md §3 for the index)
//! and the ablations of the design choices. The only library code is the
//! shared [`host_json_fields`] provenance block of the `BENCH_*.json`
//! reports.
//!
//! Run with `cargo bench -p rta-bench`; individual suites:
//!
//! ```text
//! cargo bench -p rta-bench --bench tables      # Tables I–III
//! cargo bench -p rta-bench --bench figure2     # Figure 2 panels + timing
//! cargo bench -p rta-bench --bench ablations   # solver / algorithm ablations
//! cargo bench -p rta-bench --bench substrates  # microbenches
//! ```

#![forbid(unsafe_code)]

use std::time::Instant;

/// The host-provenance fields every `BENCH_*.json` report carries, so a
/// number in a CI artifact can be read against the machine that produced
/// it: available parallelism, the worker count the bench actually used,
/// and wall vs CPU time of the whole bench process (CPU ≫ wall means the
/// figures include parallel contention; `cpu_ms` is `null` where the
/// platform offers no process CPU clock).
///
/// Returns the fields as indented `"key": value` lines without braces or
/// a trailing comma, ready to splice into a flat BENCH JSON object.
pub fn host_json_fields(jobs: usize, process_started: Instant) -> String {
    let host = rta_obs::host_info();
    format!(
        "  \"host_parallelism\": {},\n  \"jobs\": {},\n  \
         \"wall_ms\": {:.0},\n  \"cpu_ms\": {}",
        host.available_parallelism,
        jobs,
        process_started.elapsed().as_secs_f64() * 1000.0,
        host.cpu_time_ms
            .map_or_else(|| "null".into(), |ms| ms.to_string()),
    )
}
