//! Benches regenerating Tables I–III of the paper (experiments E1–E3).
//!
//! Each bench measures the full recomputation of the table from the
//! Figure 1 DAGs and asserts the golden values, so the bench doubles as a
//! regression check on the reproduced numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use rta_analysis::{MuSolver, RhoSolver};
use rta_experiments::tables::{table1, table2, table3};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_mu_arrays");
    group.bench_function("clique_solver", |b| {
        b.iter(|| {
            let t = table1(black_box(MuSolver::Clique));
            assert_eq!(t.mu[3], vec![5, 9, 12, 0]);
            t
        })
    });
    group.bench_function("paper_ilp_solver", |b| {
        b.iter(|| {
            let t = table1(black_box(MuSolver::PaperIlp));
            assert_eq!(t.mu[3], vec![5, 9, 12, 0]);
            t
        })
    });
    group.finish();
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_scenarios_e4", |b| {
        b.iter(|| {
            let t = table2();
            assert_eq!(t.pentagonal_count, 5);
            t
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_rho");
    group.bench_function("hungarian_solver", |b| {
        b.iter(|| {
            let t = table3(black_box(RhoSolver::Hungarian));
            assert_eq!(t.delta_4_ilp, 19);
            t
        })
    });
    group.bench_function("paper_ilp_solver", |b| {
        b.iter(|| {
            let t = table3(black_box(RhoSolver::PaperIlp));
            assert_eq!(t.delta_4_ilp, 19);
            t
        })
    });
    group.finish();
}

criterion_group!(tables, bench_table1, bench_table2, bench_table3);
criterion_main!(tables);
