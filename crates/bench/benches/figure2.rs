//! Benches regenerating the Figure 2 sweeps (experiments E4–E7) at reduced
//! set counts, plus the timing experiment E8 (per-analysis cost vs core
//! count — the quantity behind the paper's "0.45 s / 4.75 s / 43 min"
//! paragraph).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rta_analysis::{analyze, AnalysisConfig, Method};
use rta_experiments::figure2::{run, run_task_count, SweepConfig};
use rta_taskgen::{generate_task_set, group1, group2};
use std::hint::black_box;

/// Reduced panels: 5 utilization points, 8 sets per point.
fn reduced_panel(cores: usize) -> SweepConfig {
    let mut config = SweepConfig::paper_panel(cores).with_sets_per_point(8);
    let m = cores as f64;
    config.utilizations = (0..5).map(|i| 1.0 + (m - 1.0) * i as f64 / 4.0).collect();
    config
}

fn bench_fig2_panels(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2_panels_reduced");
    group.sample_size(10);
    for cores in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("group1", cores), &cores, |b, &m| {
            let config = reduced_panel(m);
            b.iter(|| {
                let result = run(black_box(&config));
                assert!(result.dominance_holds());
                result
            })
        });
    }
    group.bench_function("group2_m4", |b| {
        let config = reduced_panel(4).with_generator(group2);
        b.iter(|| run(black_box(&config)))
    });
    group.bench_function("task_count_variant_m16", |b| {
        let config = reduced_panel(16);
        b.iter(|| run_task_count(black_box(&config), &[2, 8, 16]))
    });
    group.finish();
}

/// E8: the cost of one schedulability test per method and core count.
fn bench_analysis_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_runtime");
    for cores in [4usize, 8, 16] {
        let mut rng = SmallRng::seed_from_u64(cores as u64);
        let ts = generate_task_set(&mut rng, &group1(cores as f64 / 2.0));
        for method in Method::ALL {
            group.bench_with_input(
                BenchmarkId::new(method.label(), cores),
                &(&ts, method),
                |b, (ts, method)| {
                    let config = AnalysisConfig::new(cores, *method);
                    b.iter(|| analyze(black_box(ts), &config))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(figure2, bench_fig2_panels, bench_analysis_runtime);
criterion_main!(figure2);
