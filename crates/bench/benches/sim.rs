//! Event-driven simulator core vs the frozen step loop.
//!
//! The perf-tracking bench behind the `rta-sim` event-queue redesign. It
//! times one validation-style cell — `SETS_PER_CELL` group-1 sets at
//! `U = m/2` on the 4-core platform, eager limited preemption, WCET
//! execution, synchronous release — through both engines:
//!
//! * the **frozen step loop** (`simulate_step_loop`, kept verbatim as the
//!   equivalence reference), which allocates per release and re-derives
//!   DAG structure from the model on every scheduling decision, and
//! * the **event core** behind [`SimRequest`], which precomputes the
//!   topology once and recycles job slots through the slab.
//!
//! Both are run at the campaign's 1× horizon (three times the longest
//! period) and at 10× that horizon, where steady-state allocation churn
//! dominates the old engine and the slab-recycling core stays flat: the
//! 10× speedup is the number the CI gate asserts stays at least 2.
//! A final measurement times the full `validate_set` cell (all methods,
//! all three policies) at the 10× horizon, the wall clock a longer
//! validation campaign actually feels.
//!
//! Besides the human-readable report, the bench writes **`BENCH_8.json`**
//! (override the path with the `BENCH_JSON` environment variable) so CI
//! can archive the perf trajectory run over run.

// The step loop is the deprecated reference engine — timing it against
// the redesign is the point of this bench.
#![allow(deprecated)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rta_experiments::set_seed;
use rta_experiments::validate::{validate_set, PolicyChoice, ReleaseChoice};
use rta_model::{TaskSet, Time};
use rta_sim::step_loop::simulate_step_loop;
use rta_sim::{PreemptionPolicy, SimConfig, SimRequest};
use rta_taskgen::{generate_task_set, group1};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Task sets per measured cell (the validation campaign's per-cell work
/// scaled to keep the bench seconds-scale).
const SETS_PER_CELL: usize = 8;
/// Timed samples per measurement; the minimum is reported. Samples of the
/// two engines are interleaved pairwise, so clock-frequency drift and
/// scheduler noise on a shared box hit both engines alike instead of
/// biasing whichever ran later.
const SAMPLES: usize = 15;
/// Core count of the measured cell.
const CORES: usize = 4;
/// The campaign's default horizon: three times the longest period.
const HORIZON_FACTOR: Time = 3;
/// The stretched horizon where per-unit stepping dominates.
const STRETCH: Time = 10;

fn time_ns<O>(routine: &mut impl FnMut() -> O) -> f64 {
    let start = Instant::now();
    black_box(routine());
    start.elapsed().as_secs_f64() * 1e9
}

/// Times `SAMPLES` runs of `routine` and returns the minimum nanoseconds
/// (the least-perturbed sample — noise on a busy box only ever adds time).
fn measure<O>(mut routine: impl FnMut() -> O) -> f64 {
    // One untimed warm-up pass.
    black_box(routine());
    (0..SAMPLES)
        .map(|_| time_ns(&mut routine))
        .fold(f64::INFINITY, f64::min)
}

/// Times two routines with pairwise-interleaved samples and returns their
/// minimum nanoseconds `(a, b)`.
fn measure_pair<O, P>(mut a: impl FnMut() -> O, mut b: impl FnMut() -> P) -> (f64, f64) {
    black_box(a());
    black_box(b());
    let mut best = (f64::INFINITY, f64::INFINITY);
    for _ in 0..SAMPLES {
        best.0 = best.0.min(time_ns(&mut a));
        best.1 = best.1.min(time_ns(&mut b));
    }
    best
}

fn scale(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} µs", ns / 1e3)
    }
}

/// The measured cell: group-1 sets at `U = m/2`, generated with the
/// production seed derivation so the cell matches a campaign cell.
fn cell_sets() -> Vec<(TaskSet, Time)> {
    (0..SETS_PER_CELL)
        .map(|s| {
            let mut rng = SmallRng::seed_from_u64(set_seed(0xDA7E_2016, 10, s));
            let ts = generate_task_set(&mut rng, &group1(CORES as f64 / 2.0));
            let horizon = HORIZON_FACTOR * ts.tasks().iter().map(|t| t.period()).max().unwrap_or(1);
            (ts, horizon)
        })
        .collect()
}

/// Times both engines over the whole cell at `stretch ×` the campaign
/// horizon; returns `(step_loop_ns, event_core_ns)`.
fn measure_cell(sets: &[(TaskSet, Time)], stretch: Time) -> (f64, f64) {
    measure_pair(
        || {
            for (ts, horizon) in sets {
                let config = SimConfig::new(CORES, *horizon * stretch);
                drop(black_box(simulate_step_loop(ts, &config)));
            }
        },
        || {
            for (ts, horizon) in sets {
                drop(black_box(
                    SimRequest::new(CORES, *horizon * stretch).evaluate(ts),
                ));
            }
        },
    )
}

fn main() {
    let bench_started = std::time::Instant::now();
    let sets = cell_sets();
    println!(
        "sim bench: m = {CORES}, {SETS_PER_CELL} sets/cell, best of {SAMPLES} interleaved \
         samples, horizon = {HORIZON_FACTOR}x max period (stretched {STRETCH}x)"
    );

    // Sanity before timing: the engines must agree on every set — the
    // speedup is only worth reporting for a bit-identical result.
    for (ts, horizon) in &sets {
        for stretch in [1, STRETCH] {
            let config = SimConfig::new(CORES, *horizon * stretch)
                .with_policy(PreemptionPolicy::LimitedPreemptive);
            let reference = simulate_step_loop(ts, &config);
            let redesigned = rta_sim::simulate(ts, &config);
            assert_eq!(reference, redesigned, "engines diverged before timing");
        }
    }

    let (step_1x, event_1x) = measure_cell(&sets, 1);
    let (step_10x, event_10x) = measure_cell(&sets, STRETCH);
    let speedup_1x = step_1x / event_1x;
    let speedup_10x = step_10x / event_10x;
    println!("-- simulation cell, both engines --");
    println!("{:<46} {:>12}", "step loop, 1x horizon", scale(step_1x));
    println!(
        "{:<46} {:>12}   ({speedup_1x:.2}x)",
        "event core, 1x horizon",
        scale(event_1x)
    );
    println!("{:<46} {:>12}", "step loop, 10x horizon", scale(step_10x));
    println!(
        "{:<46} {:>12}   ({speedup_10x:.2}x)",
        "event core, 10x horizon",
        scale(event_10x)
    );

    // The full validation cell (all methods, both LP policies plus the
    // FP leg, analysis included) at the stretched horizon.
    let validate_10x = measure(|| {
        for (ts, _) in &sets {
            black_box(validate_set(
                ts,
                CORES,
                HORIZON_FACTOR * STRETCH,
                PolicyChoice::Both,
                ReleaseChoice::Sync,
            ));
        }
    });
    println!(
        "{:<46} {:>12}",
        "validate_set cell, 10x horizon",
        scale(validate_10x)
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"sim\",\n  \"cores\": {CORES},\n  \
         \"sets_per_cell\": {SETS_PER_CELL},\n  \"samples\": {SAMPLES},\n  \
         \"horizon_factor\": {HORIZON_FACTOR},\n  \"stretch\": {STRETCH},\n  \
         \"step_loop_1x_ns\": {step_1x:.0},\n  \"event_core_1x_ns\": {event_1x:.0},\n  \
         \"speedup_1x\": {speedup_1x:.3},\n  \
         \"step_loop_10x_ns\": {step_10x:.0},\n  \"event_core_10x_ns\": {event_10x:.0},\n  \
         \"speedup_10x\": {speedup_10x:.3},\n  \
         \"validate_cell_10x_ns\": {validate_10x:.0},\n{}\n}}\n",
        rta_bench::host_json_fields(1, bench_started)
    );
    // Default to the workspace root (cargo runs benches from the package
    // directory), overridable for CI artifact staging.
    let path = std::env::var("BENCH_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_8.json").to_string());
    std::fs::write(&path, &json).expect("write BENCH_8.json");
    println!("wrote {path}");
}
