//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * A1 — combinatorial solvers (clique branch-and-bound, Hungarian
//!   assignment) vs the paper's verbatim ILP formulations solved by the
//!   from-scratch branch-and-bound ILP engine;
//! * A2 — Algorithm 1 vs the exact reachability-complement parallel sets;
//! * the extension knobs (final-NPR refinement, scenario spaces).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rta_analysis::blocking::mu::mu_array;
use rta_analysis::blocking::scenarios::blocking_from_mu;
use rta_analysis::{analyze, AnalysisConfig, Method, MuSolver, RhoSolver, ScenarioSpace};
use rta_model::{parallel_sets_algorithm1, parallel_sets_exact, Dag};
use rta_taskgen::{generate_dag, generate_task_set, group1, DagGenConfig};
use std::hint::black_box;

fn sample_dags(count: usize, max_nodes: usize) -> Vec<Dag> {
    let config = DagGenConfig {
        max_nodes,
        ..DagGenConfig::default()
    };
    (0..count)
        .map(|seed| {
            let mut rng = SmallRng::seed_from_u64(seed as u64);
            generate_dag(&mut rng, &config)
        })
        .collect()
}

/// A1a: µ computation, clique search vs paper ILP.
fn bench_mu_solver_ablation(c: &mut Criterion) {
    let dags = sample_dags(8, 12);
    let mut group = c.benchmark_group("ablation_mu_solver");
    group.bench_function("clique", |b| {
        b.iter(|| {
            dags.iter()
                .map(|d| mu_array(black_box(d), 4, MuSolver::Clique))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("paper_ilp", |b| {
        b.iter(|| {
            dags.iter()
                .map(|d| mu_array(black_box(d), 4, MuSolver::PaperIlp))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

/// A1b: Δ computation, Hungarian vs paper ILP, both scenario spaces.
fn bench_rho_solver_ablation(c: &mut Criterion) {
    let mu: Vec<Vec<u64>> = sample_dags(6, 16)
        .iter()
        .map(|d| mu_array(d, 8, MuSolver::Clique))
        .collect();
    let mut group = c.benchmark_group("ablation_rho_solver");
    for space in [ScenarioSpace::PaperExact, ScenarioSpace::Extended] {
        group.bench_with_input(
            BenchmarkId::new("hungarian", format!("{space:?}")),
            &space,
            |b, &space| b.iter(|| blocking_from_mu(black_box(&mu), 8, RhoSolver::Hungarian, space)),
        );
        group.bench_with_input(
            BenchmarkId::new("paper_ilp", format!("{space:?}")),
            &space,
            |b, &space| b.iter(|| blocking_from_mu(black_box(&mu), 8, RhoSolver::PaperIlp, space)),
        );
    }
    group.finish();
}

/// A2: parallel-NPR sets, Algorithm 1 vs the exact closure complement.
fn bench_parallel_sets_ablation(c: &mut Criterion) {
    let dags = sample_dags(16, 30);
    let mut group = c.benchmark_group("ablation_parallel_sets");
    group.bench_function("algorithm1", |b| {
        b.iter(|| {
            dags.iter()
                .map(|d| parallel_sets_algorithm1(black_box(d)))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("exact_closure", |b| {
        b.iter(|| {
            dags.iter()
                .map(|d| parallel_sets_exact(black_box(d)))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

/// Extension knobs: the final-NPR refinement's cost and the scenario-space
/// choice, measured on whole analyses.
fn bench_extension_knobs(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(99);
    let ts = generate_task_set(&mut rng, &group1(2.0));
    let mut group = c.benchmark_group("ablation_extensions");
    group.bench_function("lp_ilp_baseline", |b| {
        let config = AnalysisConfig::new(4, Method::LpIlp);
        b.iter(|| analyze(black_box(&ts), &config))
    });
    group.bench_function("lp_ilp_final_npr_refinement", |b| {
        let config = AnalysisConfig::new(4, Method::LpIlp).with_final_npr_refinement(true);
        b.iter(|| analyze(black_box(&ts), &config))
    });
    group.bench_function("lp_ilp_paper_exact_space", |b| {
        let config =
            AnalysisConfig::new(4, Method::LpIlp).with_scenario_space(ScenarioSpace::PaperExact);
        b.iter(|| analyze(black_box(&ts), &config))
    });
    group.finish();
}

criterion_group!(
    ablations,
    bench_mu_solver_ablation,
    bench_rho_solver_ablation,
    bench_parallel_sets_ablation,
    bench_extension_knobs
);
criterion_main!(ablations);
