//! Microbenches of the substrates everything else stands on: the workload
//! bound, integer partitions, the Hungarian assignment, clique search, the
//! ILP engine and the simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rta_analysis::workload::interfering_workload;
use rta_combinatorics::{
    max_weight_assignment, max_weight_clique_of_size, partition_count, partitions, BitSet,
};
use rta_ilp::{IlpBuilder, Sense};
use rta_sim::SimRequest;
use rta_taskgen::{generate_task_set, group1};
use std::hint::black_box;

fn bench_workload_function(c: &mut Criterion) {
    c.bench_function("interfering_workload", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for window in (0..1000u128).step_by(7) {
                acc += interfering_workload(black_box(window), 120, 57, 23, 4);
            }
            acc
        })
    });
}

fn bench_partitions(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitions");
    for m in [8u32, 16, 32] {
        group.bench_with_input(BenchmarkId::new("enumerate", m), &m, |b, &m| {
            b.iter(|| partitions(black_box(m)).count())
        });
        group.bench_with_input(BenchmarkId::new("pentagonal_count", m), &m, |b, &m| {
            b.iter(|| partition_count(black_box(m)))
        });
    }
    group.finish();
}

fn bench_assignment(c: &mut Criterion) {
    let weights: Vec<Vec<u64>> = (0..12)
        .map(|r| (0..20).map(|c| ((r * 37 + c * 17) % 100) as u64).collect())
        .collect();
    c.bench_function("hungarian_12x20", |b| {
        b.iter(|| max_weight_assignment(black_box(&weights)))
    });
}

fn bench_clique(c: &mut Criterion) {
    // A 24-vertex graph shaped like a parallelism graph (complement of a
    // layered order).
    let n = 24;
    let mut adj = vec![BitSet::with_capacity(n); n];
    for a in 0..n {
        for b in a + 1..n {
            if (a + b) % 3 != 0 {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
    }
    let weights: Vec<u64> = (0..n as u64).map(|i| i * 7 % 97 + 1).collect();
    c.bench_function("max_weight_clique_size8_n24", |b| {
        b.iter(|| max_weight_clique_of_size(black_box(&adj), &weights, 8))
    });
}

fn bench_ilp_engine(c: &mut Criterion) {
    c.bench_function("ilp_knapsack_16_vars", |b| {
        b.iter(|| {
            let mut m = IlpBuilder::new();
            let vars: Vec<_> = (0..16).map(|i| m.binary(format!("x{i}"))).collect();
            for (i, &v) in vars.iter().enumerate() {
                m.objective(v, ((i * 13) % 29 + 1) as f64);
            }
            let weights: Vec<_> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, ((i * 7) % 11 + 1) as f64))
                .collect();
            m.constraint(&weights, Sense::Le, 30.0);
            m.build().maximize().expect("feasible")
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(5);
    let ts = generate_task_set(&mut rng, &group1(2.0));
    let horizon = ts.tasks().iter().map(|t| t.period()).max().unwrap_or(1) * 10;
    c.bench_function("simulate_10_maxperiods_m4", |b| {
        let request = SimRequest::new(4, horizon);
        b.iter(|| request.evaluate(black_box(&ts)))
    });
}

criterion_group!(
    substrates,
    bench_workload_function,
    bench_partitions,
    bench_assignment,
    bench_clique,
    bench_ilp_engine,
    bench_simulator
);
criterion_main!(substrates);
