//! Serial vs parallel campaign driver on a reduced Figure 2(a) grid.
//!
//! This is the bench behind the PR's speedup claim: the parallel driver
//! must beat the serial path on multi-core hardware (≈ linearly up to the
//! grid's set count) **with identical output** — asserted here before
//! timing anything. On a single-core machine the two coincide; run on a
//! multi-core host to see the gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rta_experiments::exec::Jobs;
use rta_experiments::figure2::{run_serial, run_with_jobs, SweepConfig};
use std::hint::black_box;

/// Reduced Figure 2(a): m = 4, 5 utilization points, 8 sets per point.
fn reduced_fig2a() -> SweepConfig {
    let mut config = SweepConfig::paper_panel(4).with_sets_per_point(8);
    config.utilizations = (0..5).map(|i| 1.0 + 3.0 * i as f64 / 4.0).collect();
    config
}

fn bench_driver_comparison(c: &mut Criterion) {
    let config = reduced_fig2a();

    // The speedup claim is only meaningful if the outputs coincide.
    let serial = run_serial(&config);
    assert_eq!(serial, run_with_jobs(&config, Jobs::Auto));
    assert!(serial.dominance_holds());

    let mut group = c.benchmark_group("fig2a_reduced_driver");
    group.sample_size(10);
    group.bench_function("serial", |b| b.iter(|| run_serial(black_box(&config))));
    for workers in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", workers),
            &workers,
            |b, &workers| b.iter(|| run_with_jobs(black_box(&config), Jobs::Count(workers))),
        );
    }
    group.bench_function("parallel_auto", |b| {
        b.iter(|| run_with_jobs(black_box(&config), Jobs::Auto))
    });
    group.finish();
}

criterion_group!(parallel, bench_driver_comparison);
criterion_main!(parallel);
