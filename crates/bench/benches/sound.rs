//! The PR-5 perf bench: cost of the fourth (LP-sound) method and of the
//! full validation cell, plus the tracked point for the per-thread
//! combinatorial scratch (`CliqueScratch`/`RhoScratch` now live in
//! thread-locals and are reused across every task set a worker analyzes,
//! instead of being reallocated per `TaskSetCache`).
//!
//! Measured, each as the median of [`SAMPLES`] runs over a Figure 2(a)
//! grid population:
//!
//! * **verdicts, paper 3 methods** vs **+ LP-sound** vs **all 6 methods**
//!   — the marginal cost of adding LP-sound to every sweep cell (its
//!   fixed point runs no combinatorial blocking machinery, so the
//!   overhead should be small), and on top of that the marginal cost of
//!   the two published fully-preemptive competitor bounds (Long-paths,
//!   Gen-sporadic) the comparison panel evaluates per cell;
//! * **LP-ILP analysis, warm per-thread scratch** — the blocking-heavy
//!   workload whose inner allocations the thread-local scratch removes;
//!   the absolute median is the point future PRs track;
//! * **validation cell** — `validate_set` under the eager policy only vs
//!   all three policies (eager + lazy + fully preemptive), the cost of
//!   exercising both preemption semantics per generated set.
//!
//! Besides the human-readable report, the bench writes **`BENCH_5.json`**
//! (override the path with the `BENCH_JSON` environment variable),
//! line-oriented like its predecessors so CI can `grep` fields.

// These benches track the perf trajectory of the original batched
// entry points, now thin wrappers over `AnalysisRequest` — calling
// them here is the point, not an oversight.
#![allow(deprecated)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rta_analysis::{analyze, analyze_all, analyze_verdicts, AnalysisConfig, Method, ScenarioSpace};
use rta_experiments::set_seed;
use rta_experiments::validate::{validate_set, PolicyChoice, ReleaseChoice};
use rta_model::TaskSet;
use rta_taskgen::{group1, TaskSetGenerator};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Task sets per sweep point of the measured population.
const SETS: usize = 50;
/// Timed samples per measurement; the median is reported.
const SAMPLES: usize = 5;
/// Core count of the measured panel (the Figure 2(a) platform).
const CORES: usize = 4;
/// Sets fed to the (simulation-heavy) validation-cell measurement.
const VALIDATE_SETS: usize = 40;

fn median_ns(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn measure<O>(mut routine: impl FnMut() -> O) -> f64 {
    black_box(routine());
    let samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    median_ns(samples)
}

fn scale(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} µs", ns / 1e3)
    }
}

fn configs(methods: &[Method]) -> Vec<AnalysisConfig> {
    methods
        .iter()
        .map(|&m| AnalysisConfig::new(CORES, m).with_scenario_space(ScenarioSpace::PaperExact))
        .collect()
}

fn main() {
    let bench_started = std::time::Instant::now();
    // The Figure 2(a) utilization grid population, generated once.
    let utilizations: Vec<f64> = (0..13).map(|i| 1.0 + 3.0 * f64::from(i) / 12.0).collect();
    let mut generator = TaskSetGenerator::new();
    let sets: Vec<TaskSet> = utilizations
        .iter()
        .enumerate()
        .flat_map(|(p, &u)| {
            let generator = &mut generator;
            (0..SETS)
                .map(move |s| {
                    let mut rng = SmallRng::seed_from_u64(set_seed(0xDA7E_2016, p, s));
                    generator.generate(&mut rng, &group1(u))
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let total_sets = sets.len();

    let paper = configs(&Method::PAPER);
    let sound4 = configs(&[
        Method::FpIdeal,
        Method::LpIlp,
        Method::LpMax,
        Method::LpSound,
    ]);
    let all6 = configs(&Method::ALL);

    // Sanity before timing: the 6-method verdict path agrees with full
    // reports on every set (the dominance chain with LP-sound and the
    // competitor methods included).
    for ts in sets.iter().take(100) {
        let expected: Vec<bool> = analyze_all(ts, &all6)
            .iter()
            .map(|r| r.schedulable)
            .collect();
        assert_eq!(analyze_verdicts(ts, &all6), expected, "verdict path exact");
    }

    println!(
        "sound bench: m = {CORES}, 13 × {SETS} grid ({total_sets} sets), \
         median of {SAMPLES} samples"
    );

    let verdicts_paper3_ns = measure(|| {
        sets.iter()
            .for_each(|ts| drop(black_box(analyze_verdicts(ts, &paper))))
    });
    let verdicts_sound4_ns = measure(|| {
        sets.iter()
            .for_each(|ts| drop(black_box(analyze_verdicts(ts, &sound4))))
    });
    let verdicts_all6_ns = measure(|| {
        sets.iter()
            .for_each(|ts| drop(black_box(analyze_verdicts(ts, &all6))))
    });
    let lp_sound_overhead_pct = 100.0 * (verdicts_sound4_ns / verdicts_paper3_ns - 1.0);
    let competitors_overhead_pct = 100.0 * (verdicts_all6_ns / verdicts_sound4_ns - 1.0);
    println!(
        "{:<52} {:>12}",
        "verdicts, paper 3 methods",
        scale(verdicts_paper3_ns)
    );
    println!(
        "{:<52} {:>12}   (+{lp_sound_overhead_pct:.1}%)",
        "verdicts, 4 methods (LP-sound added)",
        scale(verdicts_sound4_ns)
    );
    println!(
        "{:<52} {:>12}   (+{competitors_overhead_pct:.1}%)",
        "verdicts, all 6 methods (competitors added)",
        scale(verdicts_all6_ns)
    );

    // The blocking-heavy workload the per-thread scratch serves: every
    // set's LP-ILP analysis on this (warm) thread. The absolute median is
    // the tracked point; before PR 5 each of these sets paid fresh
    // CliqueScratch/RhoScratch allocations inside its own cache.
    let ilp = AnalysisConfig::new(CORES, Method::LpIlp);
    let lp_ilp_warm_scratch_ns = measure(|| {
        sets.iter()
            .for_each(|ts| drop(black_box(analyze(ts, &ilp))))
    });
    println!(
        "{:<52} {:>12}",
        "LP-ILP analysis, warm per-thread scratch",
        scale(lp_ilp_warm_scratch_ns)
    );

    // The validation cell: one policy vs all three per set.
    let validate_sets = &sets[..VALIDATE_SETS.min(total_sets)];
    let validate_eager_ns = measure(|| {
        validate_sets.iter().for_each(|ts| {
            black_box(validate_set(
                ts,
                CORES,
                3,
                PolicyChoice::Eager,
                ReleaseChoice::Sync,
            ));
        })
    });
    let validate_all_policies_ns = measure(|| {
        validate_sets.iter().for_each(|ts| {
            black_box(validate_set(
                ts,
                CORES,
                3,
                PolicyChoice::Both,
                ReleaseChoice::Sync,
            ));
        })
    });
    let policies_overhead = validate_all_policies_ns / validate_eager_ns;
    println!(
        "{:<52} {:>12}",
        "validation cell, eager policy only",
        scale(validate_eager_ns)
    );
    println!(
        "{:<52} {:>12}   ({policies_overhead:.2}x)",
        "validation cell, eager + lazy + fully preemptive",
        scale(validate_all_policies_ns)
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"sound\",");
    let _ = writeln!(json, "  \"cores\": {CORES},");
    let _ = writeln!(json, "  \"sets_per_point\": {SETS},");
    let _ = writeln!(json, "  \"total_sets\": {total_sets},");
    let _ = writeln!(json, "  \"samples\": {SAMPLES},");
    let _ = writeln!(json, "  \"verdicts_paper3_ns\": {verdicts_paper3_ns:.0},");
    let _ = writeln!(json, "  \"verdicts_sound4_ns\": {verdicts_sound4_ns:.0},");
    let _ = writeln!(json, "  \"verdicts_all6_ns\": {verdicts_all6_ns:.0},");
    let _ = writeln!(
        json,
        "  \"lp_sound_overhead_pct\": {lp_sound_overhead_pct:.2},"
    );
    let _ = writeln!(
        json,
        "  \"competitors_overhead_pct\": {competitors_overhead_pct:.2},"
    );
    let _ = writeln!(
        json,
        "  \"lp_ilp_warm_scratch_ns\": {lp_ilp_warm_scratch_ns:.0},"
    );
    let _ = writeln!(json, "  \"validate_sets\": {},", validate_sets.len());
    let _ = writeln!(json, "  \"validate_eager_ns\": {validate_eager_ns:.0},");
    let _ = writeln!(
        json,
        "  \"validate_all_policies_ns\": {validate_all_policies_ns:.0},"
    );
    let _ = writeln!(
        json,
        "  \"validate_policies_overhead\": {policies_overhead:.3},"
    );
    let _ = writeln!(json, "{}", rta_bench::host_json_fields(1, bench_started));
    let _ = writeln!(json, "}}");

    let path = std::env::var("BENCH_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_5.json").to_string());
    std::fs::write(&path, &json).expect("write BENCH_5.json");
    println!("wrote {path}");
}
