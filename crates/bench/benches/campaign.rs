//! The campaign-engine perf bench: generation vs analysis split of a full
//! Figure 2(a) grid (13 utilization points × `SETS` sets — the `repro
//! fig2a --sets 100 --serial` workload, in-process).
//!
//! Four axes are measured, each as the median of [`SAMPLES`] runs:
//!
//! * **generation**: the old two-phase path (fresh generator per set) vs
//!   the streaming path (one scratch-reusing `TaskSetGenerator`, as each
//!   campaign worker holds) — both produce bit-identical sets;
//! * **analysis**: the PR-2 batched `analyze_all` (full reports) vs the
//!   dominance-short-circuited `analyze_verdicts` the campaign cells run —
//!   identical verdicts, pinned before timing;
//! * **end to end**: the streaming engine through `figure2::run_with_jobs`,
//!   serial and parallel;
//! * **throughput**: generated-and-analyzed sets per second of the serial
//!   engine — the number the CI perf gate bounds against
//!   `ci/campaign-baseline-ns.txt`.
//!
//! Besides the human-readable report, the bench writes **`BENCH_3.json`**
//! (override the path with the `BENCH_JSON` environment variable). The
//! JSON is deliberately line-oriented — one scalar per line — so the CI
//! gate can extract fields with `grep`/`awk` instead of a JSON parser.

// These benches track the perf trajectory of the original batched
// entry points, now thin wrappers over `AnalysisRequest` — calling
// them here is the point, not an oversight.
#![allow(deprecated)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rta_analysis::{analyze_all, analyze_verdicts, AnalysisConfig, Method, ScenarioSpace};
use rta_experiments::exec::Jobs;
use rta_experiments::figure2::{run_with_jobs, SweepConfig};
use rta_experiments::set_seed;
use rta_model::TaskSet;
use rta_taskgen::{generate_task_set, group1, TaskSetGenerator};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Task sets per sweep point (the acceptance workload's `--sets 100`).
const SETS: usize = 100;
/// Timed samples per measurement; the median is reported.
const SAMPLES: usize = 5;
/// Core count of the measured panel (the Figure 2(a) platform).
const CORES: usize = 4;

/// The PR-2 serial in-process time of this exact grid on the reference
/// machine (measured before the streaming engine landed: batched
/// `analyze_all` over two-phase generation). Kept as the denominator of
/// the reported end-to-end speedup; the CLI-level numbers (~40 ms → see
/// CHANGES.md) include process startup on top.
const PR2_SERIAL_GRID_NS: f64 = 32_470_000.0;

fn median_ns(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Times `SAMPLES` runs of `routine` and returns the median nanoseconds.
fn measure<O>(mut routine: impl FnMut() -> O) -> f64 {
    // One untimed warm-up pass.
    black_box(routine());
    let samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    median_ns(samples)
}

fn scale(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} µs", ns / 1e3)
    }
}

fn main() {
    let bench_started = std::time::Instant::now();
    let panel = SweepConfig::paper_panel(CORES).with_sets_per_point(SETS);
    let coords: Vec<(usize, usize)> = (0..panel.utilizations.len())
        .flat_map(|p| (0..SETS).map(move |s| (p, s)))
        .collect();
    let total_sets = coords.len();

    let two_phase = || -> Vec<TaskSet> {
        coords
            .iter()
            .map(|&(p, s)| {
                let mut rng = SmallRng::seed_from_u64(set_seed(panel.seed, p, s));
                generate_task_set(&mut rng, &group1(panel.utilizations[p]))
            })
            .collect()
    };
    let streaming = || -> Vec<TaskSet> {
        let mut generator = TaskSetGenerator::new();
        coords
            .iter()
            .map(|&(p, s)| {
                let mut rng = SmallRng::seed_from_u64(set_seed(panel.seed, p, s));
                generator.generate(&mut rng, &group1(panel.utilizations[p]))
            })
            .collect()
    };

    // Sanity before timing anything: streaming generation reproduces the
    // two-phase sets, and the verdict path reproduces analyze_all's flags.
    let sets = two_phase();
    assert_eq!(sets, streaming(), "streaming generation must be exact");
    // The paper's three methods, not Method::ALL: the committed
    // BENCH_3.json analysis baselines are 3-method numbers (the 4-method
    // costs live in BENCH_5.json's sound bench).
    let configs: Vec<AnalysisConfig> = Method::PAPER
        .iter()
        .map(|&m| AnalysisConfig::new(CORES, m).with_scenario_space(ScenarioSpace::PaperExact))
        .collect();
    for ts in &sets {
        let expected: Vec<bool> = analyze_all(ts, &configs)
            .iter()
            .map(|r| r.schedulable)
            .collect();
        assert_eq!(
            analyze_verdicts(ts, &configs),
            expected,
            "verdict path must be exact"
        );
    }

    println!(
        "campaign bench: m = {CORES}, 13 × {SETS} grid ({total_sets} sets), \
         median of {SAMPLES} samples"
    );

    let generation_two_phase_ns = measure(&two_phase);
    let generation_streaming_ns = measure(&streaming);
    let generation_speedup = generation_two_phase_ns / generation_streaming_ns;
    println!(
        "{:<46} {:>12}",
        "generation, two-phase (fresh generator/set)",
        scale(generation_two_phase_ns)
    );
    println!(
        "{:<46} {:>12}   ({generation_speedup:.2}x)",
        "generation, streaming (reused scratch)",
        scale(generation_streaming_ns)
    );

    let analysis_batched_ns = measure(|| {
        sets.iter()
            .for_each(|ts| drop(black_box(analyze_all(ts, &configs))))
    });
    let analysis_verdicts_ns = measure(|| {
        sets.iter()
            .for_each(|ts| drop(black_box(analyze_verdicts(ts, &configs))))
    });
    let analysis_speedup = analysis_batched_ns / analysis_verdicts_ns;
    println!(
        "{:<46} {:>12}",
        "analysis, batched analyze_all (PR-2 path)",
        scale(analysis_batched_ns)
    );
    println!(
        "{:<46} {:>12}   ({analysis_speedup:.2}x)",
        "analysis, dominance-short-circuited verdicts",
        scale(analysis_verdicts_ns)
    );

    let end_to_end_serial_ns = measure(|| run_with_jobs(&panel, Jobs::serial()));
    let end_to_end_parallel_ns = measure(|| run_with_jobs(&panel, Jobs::Auto));
    let parallel_speedup = end_to_end_serial_ns / end_to_end_parallel_ns;
    let speedup_vs_pr2 = PR2_SERIAL_GRID_NS / end_to_end_serial_ns;
    let generation_sets_per_second = total_sets as f64 / (generation_streaming_ns / 1e9);
    println!(
        "{:<46} {:>12}   ({speedup_vs_pr2:.2}x vs PR-2's {})",
        "end to end, streaming engine, serial",
        scale(end_to_end_serial_ns),
        scale(PR2_SERIAL_GRID_NS)
    );
    println!(
        "{:<46} {:>12}   ({parallel_speedup:.2}x)",
        "end to end, streaming engine, parallel",
        scale(end_to_end_parallel_ns)
    );
    println!(
        "{:<46} {:>12.0}",
        "generation throughput (sets/s)", generation_sets_per_second
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"campaign\",");
    let _ = writeln!(json, "  \"cores\": {CORES},");
    let _ = writeln!(json, "  \"sets_per_point\": {SETS},");
    let _ = writeln!(json, "  \"total_sets\": {total_sets},");
    let _ = writeln!(json, "  \"samples\": {SAMPLES},");
    let _ = writeln!(
        json,
        "  \"generation_two_phase_ns\": {generation_two_phase_ns:.0},"
    );
    let _ = writeln!(
        json,
        "  \"generation_streaming_ns\": {generation_streaming_ns:.0},"
    );
    let _ = writeln!(json, "  \"generation_speedup\": {generation_speedup:.3},");
    let _ = writeln!(
        json,
        "  \"generation_sets_per_second\": {generation_sets_per_second:.0},"
    );
    let _ = writeln!(json, "  \"analysis_batched_ns\": {analysis_batched_ns:.0},");
    let _ = writeln!(
        json,
        "  \"analysis_verdicts_ns\": {analysis_verdicts_ns:.0},"
    );
    let _ = writeln!(json, "  \"analysis_speedup\": {analysis_speedup:.3},");
    let _ = writeln!(
        json,
        "  \"end_to_end_serial_ns\": {end_to_end_serial_ns:.0},"
    );
    let _ = writeln!(
        json,
        "  \"end_to_end_parallel_ns\": {end_to_end_parallel_ns:.0},"
    );
    let _ = writeln!(json, "  \"parallel_speedup\": {parallel_speedup:.3},");
    let _ = writeln!(json, "  \"pr2_serial_grid_ns\": {PR2_SERIAL_GRID_NS:.0},");
    let _ = writeln!(
        json,
        "  \"end_to_end_speedup_vs_pr2\": {speedup_vs_pr2:.3},"
    );
    let _ = writeln!(
        json,
        "{}",
        rta_bench::host_json_fields(Jobs::Auto.worker_count(), bench_started)
    );
    let _ = writeln!(json, "}}");

    // Default to the workspace root (cargo runs benches from the package
    // directory), overridable for CI artifact staging.
    let path = std::env::var("BENCH_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_3.json").to_string());
    std::fs::write(&path, &json).expect("write BENCH_3.json");
    println!("wrote {path}");
}
