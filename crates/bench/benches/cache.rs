//! Cached vs uncached analysis, and batched vs per-method sweep points.
//!
//! The perf-tracking bench behind the `TaskSetCache` layer. It measures two
//! 4-core LP-ILP sweep points of the Figure 2 family —
//!
//! * the **utilization point**: `U = 3.5` of the Figure 2(a) panel
//!   (group-1 sets, ~5 tasks each), and
//! * the **task-count point**: `TASK_COUNT`-task sets at `U = m/2` (the
//!   task-count variant of DESIGN.md §5.4), where the `O(n²)` per-task µ
//!   recomputation the cache eliminates dominates —
//!
//! each in four shapes: a single LP-ILP analysis uncached
//! (`analyze_uncached`, the pre-cache code path) vs cached (`analyze`), and
//! the full 3-method sweep point per-method-uncached vs batched
//! (`analyze_all`). A fifth pair runs the utilization point through the
//! campaign driver serially and in parallel, so the JSON tracks both axes
//! of the "as fast as the hardware allows" goal.
//!
//! Besides the human-readable report, the bench writes **`BENCH_2.json`**
//! (override the path with the `BENCH_JSON` environment variable) with the
//! median nanoseconds per sweep point of every shape, so CI can archive the
//! perf trajectory run over run.

// These benches track the perf trajectory of the original batched
// entry points, now thin wrappers over `AnalysisRequest` — calling
// them here is the point, not an oversight.
#![allow(deprecated)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rta_analysis::{analyze, analyze_all, analyze_uncached, AnalysisConfig, Method, ScenarioSpace};
use rta_experiments::exec::Jobs;
use rta_experiments::figure2::{run_with_jobs, SweepConfig};
use rta_experiments::set_seed;
use rta_model::TaskSet;
use rta_taskgen::{generate_task_set, generate_task_set_with_count, group1};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Task sets per sweep point (reduced from the paper's 300 to keep the
/// bench seconds-scale; the per-set work is what the cache accelerates).
const SETS_PER_POINT: usize = 8;
/// Timed samples per measurement; the median is reported.
const SAMPLES: usize = 7;
/// Core count of the measured panel (the Figure 2(a) platform).
const CORES: usize = 4;
/// Tasks per set at the task-count sweep point.
const TASK_COUNT: usize = 16;

fn median_ns(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Times `SAMPLES` runs of `routine` and returns the median nanoseconds.
fn measure<O>(mut routine: impl FnMut() -> O) -> f64 {
    // One untimed warm-up pass.
    black_box(routine());
    let samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    median_ns(samples)
}

fn scale(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} µs", ns / 1e3)
    }
}

/// The utilization sweep point: `U = 3.5` is point 10 of the 13-point
/// Figure 2(a) panel, generated with the production seed derivation.
fn utilization_point_sets() -> Vec<TaskSet> {
    (0..SETS_PER_POINT)
        .map(|s| {
            let mut rng = SmallRng::seed_from_u64(set_seed(0xDA7E_2016, 10, s));
            generate_task_set(&mut rng, &group1(3.5))
        })
        .collect()
}

/// The task-count sweep point: `TASK_COUNT` tasks at `U = m/2`
/// (the x-axis of the task-count variant, here on the 4-core platform).
fn task_count_point_sets() -> Vec<TaskSet> {
    (0..SETS_PER_POINT)
        .map(|s| {
            let mut rng = SmallRng::seed_from_u64(set_seed(0xDA7E_2016, 10, s));
            generate_task_set_with_count(&mut rng, &group1(CORES as f64 / 2.0), TASK_COUNT)
        })
        .collect()
}

fn sweep_configs() -> Vec<AnalysisConfig> {
    // Deliberately the paper's three methods, not Method::ALL: the
    // committed BENCH_2.json baselines measure the 3-method pipeline, and
    // adding LP-sound here would shift them without any perf change.
    Method::PAPER
        .iter()
        .map(|&m| AnalysisConfig::new(CORES, m).with_scenario_space(ScenarioSpace::PaperExact))
        .collect()
}

/// The per-point measurements, in nanoseconds per sweep point.
struct PointResult {
    uncached_lp_ilp_ns: f64,
    cached_lp_ilp_ns: f64,
    per_method_ns: f64,
    batched_ns: f64,
    /// FP-ideal has no blocking work at all, so this is the fixed-point
    /// iteration (with its hoisted per-task invariants) nearly alone — the
    /// floor the blocking-side caching is chasing, and the micro-bench
    /// guarding the `fixed_point` hoists against regressions.
    fp_ideal_ns: f64,
}

impl PointResult {
    fn lp_ilp_speedup(&self) -> f64 {
        self.uncached_lp_ilp_ns / self.cached_lp_ilp_ns
    }

    fn batched_speedup(&self) -> f64 {
        self.per_method_ns / self.batched_ns
    }
}

fn measure_point(label: &str, sets: &[TaskSet], configs: &[AnalysisConfig]) -> PointResult {
    let lp_ilp = &configs[1];
    assert_eq!(lp_ilp.method, Method::LpIlp);

    // Sanity: the cached paths must reproduce the uncached reports exactly
    // before we bother timing them.
    for ts in sets {
        let batched = analyze_all(ts, configs);
        for (config, report) in configs.iter().zip(&batched) {
            assert_eq!(report, &analyze_uncached(ts, config), "cache must be exact");
        }
    }

    let result = PointResult {
        uncached_lp_ilp_ns: measure(|| {
            sets.iter()
                .for_each(|ts| drop(black_box(analyze_uncached(ts, lp_ilp))))
        }),
        cached_lp_ilp_ns: measure(|| {
            sets.iter()
                .for_each(|ts| drop(black_box(analyze(ts, lp_ilp))))
        }),
        per_method_ns: measure(|| {
            sets.iter().for_each(|ts| {
                configs
                    .iter()
                    .for_each(|c| drop(black_box(analyze_uncached(ts, c))))
            })
        }),
        batched_ns: measure(|| {
            sets.iter()
                .for_each(|ts| drop(black_box(analyze_all(ts, configs))))
        }),
        fp_ideal_ns: measure(|| {
            sets.iter()
                .for_each(|ts| drop(black_box(analyze(ts, &configs[0]))))
        }),
    };

    println!("-- {label} --");
    println!(
        "{:<46} {:>12}",
        "LP-ILP analyze, uncached (per point)",
        scale(result.uncached_lp_ilp_ns)
    );
    println!(
        "{:<46} {:>12}   ({:.2}x)",
        "LP-ILP analyze, cached (per point)",
        scale(result.cached_lp_ilp_ns),
        result.lp_ilp_speedup()
    );
    println!(
        "{:<46} {:>12}",
        "3-method point, per-method uncached",
        scale(result.per_method_ns)
    );
    println!(
        "{:<46} {:>12}   ({:.2}x)",
        "3-method point, batched analyze_all",
        scale(result.batched_ns),
        result.batched_speedup()
    );
    println!(
        "{:<46} {:>12}",
        "FP-ideal (fixed-point-only floor)",
        scale(result.fp_ideal_ns)
    );
    result
}

fn json_point(out: &mut String, key: &str, point: &PointResult) {
    let _ = write!(
        out,
        "  \"{key}\": {{\n    \"uncached_lp_ilp_ns\": {:.0},\n    \"cached_lp_ilp_ns\": {:.0},\n    \"lp_ilp_speedup\": {:.3},\n    \"per_method_sweep_point_ns\": {:.0},\n    \"batched_sweep_point_ns\": {:.0},\n    \"batched_speedup\": {:.3},\n    \"fp_ideal_sweep_point_ns\": {:.0}\n  }}",
        point.uncached_lp_ilp_ns,
        point.cached_lp_ilp_ns,
        point.lp_ilp_speedup(),
        point.per_method_ns,
        point.batched_ns,
        point.batched_speedup(),
        point.fp_ideal_ns
    );
}

fn main() {
    let bench_started = std::time::Instant::now();
    let configs = sweep_configs();
    println!("cache bench: m = {CORES}, {SETS_PER_POINT} sets/point, median of {SAMPLES} samples");
    let utilization = measure_point(
        "utilization point (U = 3.5, group 1)",
        &utilization_point_sets(),
        &configs,
    );
    let task_count = measure_point(
        &format!("task-count point (n = {TASK_COUNT}, U = m/2)"),
        &task_count_point_sets(),
        &configs,
    );

    // The same utilization point through the campaign driver, serial vs
    // parallel (generation included; bit-identical outputs by construction).
    let mut panel = SweepConfig::paper_panel(CORES).with_sets_per_point(SETS_PER_POINT);
    panel.utilizations = vec![3.5];
    let serial_point_ns = measure(|| run_with_jobs(&panel, Jobs::serial()));
    let parallel_point_ns = measure(|| run_with_jobs(&panel, Jobs::Auto));
    let parallel_speedup = serial_point_ns / parallel_point_ns;
    println!("-- campaign driver, same utilization point --");
    println!(
        "{:<46} {:>12}",
        "driver sweep point, serial",
        scale(serial_point_ns)
    );
    println!(
        "{:<46} {:>12}   ({parallel_speedup:.2}x)",
        "driver sweep point, parallel",
        scale(parallel_point_ns)
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"cache\",\n  \"cores\": {CORES},\n  \"sets_per_point\": {SETS_PER_POINT},\n  \"samples\": {SAMPLES},\n  \"task_count\": {TASK_COUNT},\n"
    );
    json_point(&mut json, "utilization_point", &utilization);
    json.push_str(",\n");
    json_point(&mut json, "task_count_point", &task_count);
    let _ = write!(
        json,
        ",\n  \"serial_sweep_point_ns\": {serial_point_ns:.0},\n  \"parallel_sweep_point_ns\": {parallel_point_ns:.0},\n  \"parallel_speedup\": {parallel_speedup:.3},\n{}\n}}\n",
        rta_bench::host_json_fields(Jobs::Auto.worker_count(), bench_started)
    );
    // Default to the workspace root (cargo runs benches from the package
    // directory), overridable for CI artifact staging.
    let path = std::env::var("BENCH_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_2.json").to_string());
    std::fs::write(&path, &json).expect("write BENCH_2.json");
    println!("wrote {path}");
}
