//! The deterministic chaos harness: a seeded storm of hostile clients
//! plus injected server faults, with a well-behaved control client
//! running concurrently. The contract under fire:
//!
//! * the server never panics,
//! * every connection thread is joined on drain (no leaks, nothing cut
//!   off),
//! * the control client's verdicts stay **byte-identical** to the
//!   library path the whole time.
//!
//! Every random draw — the chaos action script, the action parameters,
//! the injected faults — is seeded, so a failure here replays exactly.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rta_experiments::loadgen::{self, chaos_script, ChaosAction, LoadgenOptions};
use rta_experiments::serve::{spawn, verdicts_json, FaultPlan, ServeOptions};
use rta_model::json::task_set_to_json_compact;
use rta_model::TaskSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const SEED: u64 = 0xD15_A57E5;
const CHAOS_WORKERS: usize = 3;
const ACTIONS_PER_WORKER: usize = 8;
const CORES: usize = 3;

/// One control request over a fresh connection, retried until the server
/// answers: injected faults may drop any individual connection, and that
/// is exactly what a well-behaved client's retry loop absorbs.
fn control_request(addr: SocketAddr, frame: &str) -> String {
    for _ in 0..50 {
        let Ok(stream) = TcpStream::connect(addr) else {
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        let mut writer = stream.try_clone().expect("clone");
        if writer.write_all(frame.as_bytes()).is_err() {
            continue;
        }
        let mut line = String::new();
        match BufReader::new(stream).read_line(&mut line) {
            Ok(n) if n > 0 && line.ends_with('\n') => {
                if line.contains("\"kind\":\"overloaded\"") {
                    // Shedding is a retryable answer, not a failure.
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                return line;
            }
            _ => continue, // dropped by an injected fault; retry
        }
    }
    panic!("control client never got an answer for {frame:?}");
}

#[test]
fn chaos_storm_never_panics_never_leaks_and_keeps_verdicts_byte_correct() {
    let handle = spawn(&ServeOptions {
        addr: "127.0.0.1:0".into(),
        lru_capacity: 16,
        max_conns: 16,
        shed_watermark: 12,
        idle_timeout: Duration::from_secs(2),
        frame_timeout: Duration::from_millis(150),
        drain_timeout: Duration::from_secs(5),
        fault: Some(FaultPlan {
            seed: 0xFA_57,
            drop_accept_pct: 10,
            delay_pct: 20,
            delay_max_micros: 1500,
        }),
        ..Default::default()
    })
    .expect("bind chaos server");
    let addr = handle.addr();

    // The chaos storm runs in the background while the control client
    // works through its script in the foreground.
    let chaos_options = LoadgenOptions {
        addr: addr.to_string(),
        connections: CHAOS_WORKERS,
        requests_per_connection: ACTIONS_PER_WORKER,
        pool_size: 4,
        cores: CORES,
        seed: SEED,
        chaos: true,
        ..Default::default()
    };
    let chaos = std::thread::spawn(move || loadgen::run(&chaos_options).expect("chaos run"));

    // Three fixed task sets with library-computed expected verdicts.
    let sets: Vec<(String, String)> = (0..3)
        .map(|i| {
            let mut rng = SmallRng::seed_from_u64(SEED ^ (0xC0_117 + i));
            let ts: TaskSet = rta_taskgen::generate_task_set(&mut rng, &rta_taskgen::group1(2.0));
            let expected = verdicts_json(&rta_analysis::AnalysisRequest::new(CORES).evaluate(&ts));
            (task_set_to_json_compact(&ts), expected)
        })
        .collect();
    for i in 0..40 {
        let (set_json, expected) = &sets[i % sets.len()];
        let frame = format!("{{\"v\":1,\"id\":{i},\"cores\":{CORES},\"task_set\":{set_json}}}\n");
        let response = control_request(addr, &frame);
        assert!(response.contains("\"ok\":true"), "request {i}: {response}");
        assert!(response.contains(&format!("\"id\":{i},")), "{response}");
        // Byte-correct verdicts, pinned against the library path, while
        // the storm rages on the same server.
        assert!(
            response.contains(&format!("\"verdicts\":{expected}}}")),
            "request {i} diverged from the library path:\n  wire: {response}  expected verdicts: {expected}"
        );
    }

    let chaos_report = chaos.join().expect("chaos thread");
    let tally = chaos_report.chaos.expect("chaos tally");
    assert_eq!(chaos_report.errors, 0, "{chaos_report:?}");
    assert_eq!(tally.actions, CHAOS_WORKERS * ACTIONS_PER_WORKER);
    // The executed action mix is exactly the seeded script's mix.
    let mut expected_counts = [0usize; 5];
    for worker in 0..CHAOS_WORKERS {
        for action in chaos_script(SEED, worker, ACTIONS_PER_WORKER) {
            expected_counts[match action {
                ChaosAction::Slowloris => 0,
                ChaosAction::MidFrameDisconnect => 1,
                ChaosAction::MalformedBurst => 2,
                ChaosAction::Oversized => 3,
                ChaosAction::ConnectAndIdle => 4,
            }] += 1;
        }
    }
    assert_eq!(
        [
            tally.slowloris,
            tally.mid_frame_disconnects,
            tally.malformed_bursts,
            tally.oversized,
            tally.connect_and_idle,
        ],
        expected_counts,
        "{tally:?}"
    );

    // Drain: every connection thread joined, none panicked, none leaked.
    let report = handle.shutdown();
    assert_eq!(report.panicked, 0, "{report:?}");
    assert_eq!(report.cut_off, 0, "{report:?}");
}
