//! Cross-layer soundness properties: simulated response times vs the
//! analytical bounds, through the validation campaign's own cell.
//!
//! The FP-ideal (fully-preemptive) bound is sound, so its leg must hold
//! on *every* generated set — any failure is a hard bug in the analysis
//! or the simulator. The same standard applies to the corrected LP-sound
//! bound, under **both** limited-preemption flavours and every release
//! model. The paper's limited-preemptive bounds are known to be
//! optimistic on rare sets (see `rta_experiments::validate`'s module
//! docs); their legs must be *classified* correctly: an observed
//! exceedance shows up in `lp_exceedances` (never as a hard violation),
//! and tightness above 1 appears exactly when an exceedance was counted.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rta_analysis::{AnalysisRequest, Method};
use rta_experiments::validate::{validate_set, PolicyChoice, ReleaseChoice};
use rta_sim::{PreemptionPolicy, SimRequest};
use rta_taskgen::{chain_mix, generate_task_set, group1, group2};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On every generated set (any utilization band, m ∈ {2, 4, 8}, any
    /// release model), the validation cell reports zero hard violations:
    /// the sound FP-ideal bound dominates the fully-preemptive
    /// simulation, the corrected LP-sound bound dominates both the eager
    /// and the lazy limited-preemptive simulation, and accepted sets
    /// never miss deadlines on those legs. Several generator families and
    /// all three simulator policies run per case.
    #[test]
    fn sound_legs_hold_on_random_sets(
        seed in 0u64..1_000_000,
        cores_index in 0usize..3,
        load_percent in 30u32..=100,
        release_index in 0usize..3,
    ) {
        let cores = [2usize, 4, 8][cores_index];
        let release = [ReleaseChoice::Sync, ReleaseChoice::Jitter, ReleaseChoice::Sporadic]
            [release_index];
        let target = cores as f64 * load_percent as f64 / 100.0;
        let mut rng = SmallRng::seed_from_u64(seed);
        for ts in [
            generate_task_set(&mut rng, &group1(target)),
            generate_task_set(&mut rng, &chain_mix(target, 0.5)),
        ] {
            let v = validate_set(&ts, cores, 3, PolicyChoice::Both, release);
            prop_assert_eq!(v.hard_violations, 0, "seed {} m {}", seed, cores);
            // Classification consistency: LP tightness above 1 iff an
            // exceedance was counted (and vice versa); the sound legs'
            // tightness never exceeds 1.
            let lp_above_one = (1..3).any(|mi| v.tightness[mi].is_some_and(|t| t > 1.0));
            prop_assert_eq!(lp_above_one, v.lp_exceedances > 0);
            // All four sound legs: the paper's FP-ideal, the corrected
            // LP-sound, and the published fully-preemptive competitors.
            for mi in [0usize, 3, 4, 5] {
                if let Some(t) = v.tightness[mi] {
                    prop_assert!(t <= 1.0, "sound leg {} tightness {} > 1", mi, t);
                }
            }
        }
    }

    /// The direct statement of the bound invariant on the sound leg:
    /// for a set FP-ideal accepts, every task's simulated max response
    /// under full preemption stays at or below the analytical bound —
    /// compared exactly in scaled units, under synchronous-periodic WCET
    /// execution and several horizons.
    #[test]
    fn fp_bounds_dominate_fully_preemptive_simulation(
        seed in 0u64..1_000_000,
        horizon_factor in 1u64..=4,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ts = generate_task_set(&mut rng, &group2(2.0));
        let outcome = AnalysisRequest::new(4)
            .with_methods([Method::FpIdeal])
            .with_bounds(true)
            .evaluate(&ts);
        let verdict = outcome.outcome(Method::FpIdeal).expect("FP-ideal answered");
        prop_assume!(verdict.schedulable);
        let max_period = ts.tasks().iter().map(|t| t.period()).max().unwrap();
        let sim = SimRequest::new(4, horizon_factor * max_period)
            .with_policy(PreemptionPolicy::FullyPreemptive)
            .evaluate(&ts);
        prop_assert!(sim.all_deadlines_met());
        for (stats, &bound) in sim.per_task().iter().zip(verdict.bounds.iter().flatten()) {
            prop_assert!(
                (stats.max_response as u128) * bound.cores() as u128 <= bound.scaled(),
                "seed {}: sim {} exceeds bound {}",
                seed,
                stats.max_response,
                bound
            );
        }
    }

    /// The same direct bound invariant for the two published
    /// fully-preemptive competitor methods: on a set Long-paths (resp.
    /// Gen-sporadic) accepts, every task's simulated max response under
    /// full preemption stays at or below that method's own per-task bound.
    /// This is the per-method statement of the hard zero-exceedance gate
    /// the validation campaign enforces in aggregate.
    #[test]
    fn competitor_bounds_dominate_fully_preemptive_simulation(
        seed in 0u64..1_000_000,
        horizon_factor in 1u64..=4,
        method_index in 0usize..2,
    ) {
        let method = [Method::LongPaths, Method::GenSporadic][method_index];
        let mut rng = SmallRng::seed_from_u64(seed);
        let ts = generate_task_set(&mut rng, &group2(2.0));
        let outcome = AnalysisRequest::new(4)
            .with_methods([method])
            .with_bounds(true)
            .evaluate(&ts);
        let verdict = outcome.outcome(method).expect("competitor answered");
        prop_assume!(verdict.schedulable);
        let max_period = ts.tasks().iter().map(|t| t.period()).max().unwrap();
        let sim = SimRequest::new(4, horizon_factor * max_period)
            .with_policy(PreemptionPolicy::FullyPreemptive)
            .evaluate(&ts);
        prop_assert!(sim.all_deadlines_met());
        for (stats, &bound) in sim.per_task().iter().zip(verdict.bounds.iter().flatten()) {
            prop_assert!(
                (stats.max_response as u128) * bound.cores() as u128 <= bound.scaled(),
                "seed {}: {:?} sim {} exceeds bound {}",
                seed,
                method,
                stats.max_response,
                bound
            );
        }
    }
}

/// The limited-preemptive legs on a fixed seed range (deterministic, so
/// no flake risk from the known rare LP optimism): bounds hold and no
/// accepted set misses, under all policies, across three generator
/// families. LP-sound must accept a nonzero share of this easy
/// population — the corrected bound costs schedulability, it does not
/// zero it out.
#[test]
fn lp_bounds_hold_on_the_sampled_m4_population() {
    let mut accepted = 0u32;
    let mut sound_accepted = 0u32;
    for seed in 0..40u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ts = generate_task_set(&mut rng, &group1(2.0));
        let v = validate_set(&ts, 4, 3, PolicyChoice::Both, ReleaseChoice::Sync);
        assert_eq!(v.hard_violations, 0, "seed {seed}");
        assert_eq!(v.lp_exceedances, 0, "seed {seed}");
        assert_eq!(v.lp_misses, 0, "seed {seed}");
        if v.accepted[1] {
            accepted += 1;
        }
        if v.accepted[3] {
            sound_accepted += 1;
            assert!(v.accepted[0], "LP-sound accepted but FP-ideal rejected");
        }
    }
    assert!(accepted >= 5, "too few accepted sets ({accepted})");
    assert!(
        sound_accepted >= 1,
        "LP-sound accepted nothing on an easy population"
    );
}
