//! The contract of the parallel campaign driver: for any worker count,
//! every sweep produces **byte-identical** output to the serial path.
//!
//! Task-set seeds derive only from `(base seed, point, set)` and the
//! per-point aggregation folds evaluations in coordinate order, so the
//! acceptance ratios — and the rendered CSV bytes — cannot depend on
//! thread scheduling. These tests pin that property on a reduced
//! Figure 2(a) grid.

use rta_experiments::csv::CsvSink;
use rta_experiments::exec::Jobs;
use rta_experiments::figure2::{
    self, run_serial, run_task_count_with_jobs, run_with_jobs, SweepConfig, SweepPoint,
};
use rta_experiments::validate::{self, ValidateOptions, ValidatePanel, ValidatePoint};
use rta_experiments::{campaign, tables, timing};

/// A reduced Figure 2(a) grid: m = 4, 4 utilization points, 6 sets each.
fn reduced_fig2a() -> SweepConfig {
    let mut config = SweepConfig::paper_panel(4).with_sets_per_point(6);
    config.utilizations = vec![1.0, 2.0, 3.0, 4.0];
    config
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let config = reduced_fig2a();
    let serial = run_serial(&config);
    for jobs in [Jobs::Count(2), Jobs::Count(7), Jobs::Auto] {
        let parallel = run_with_jobs(&config, jobs);
        assert_eq!(parallel, serial, "jobs = {jobs:?}");
        assert_eq!(
            parallel.to_csv("utilization").into_bytes(),
            serial.to_csv("utilization").into_bytes(),
            "CSV bytes must match for jobs = {jobs:?}"
        );
        assert_eq!(
            parallel.render("U"),
            serial.render("U"),
            "rendered table must match for jobs = {jobs:?}"
        );
    }
}

#[test]
fn task_count_variant_is_byte_identical_to_serial() {
    let config = reduced_fig2a();
    let counts = [2usize, 4, 6];
    let serial = run_task_count_with_jobs(&config, &counts, Jobs::serial());
    let parallel = run_task_count_with_jobs(&config, &counts, Jobs::Count(5));
    assert_eq!(parallel, serial);
    assert_eq!(
        parallel.to_csv("tasks").into_bytes(),
        serial.to_csv("tasks").into_bytes()
    );
}

#[test]
fn campaign_panels_are_byte_identical_to_serial() {
    // Every `repro campaign` panel must emit the same CSV bytes for any
    // worker count — the property the golden-CSV CI gate also pins from
    // the outside.
    let build = |jobs: Jobs| {
        let mut panels = vec![
            campaign::deadline_panel(5, jobs),
            campaign::chain_panel(5, jobs),
        ];
        panels.extend(campaign::core_count_panels(4, jobs));
        panels
    };
    let serial = build(Jobs::serial());
    for jobs in [Jobs::Count(3), Jobs::Auto] {
        let parallel = build(jobs);
        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.name, s.name);
            assert_eq!(
                p.result.to_csv(p.x_label).into_bytes(),
                s.result.to_csv(s.x_label).into_bytes(),
                "panel {} must be byte-identical under {jobs:?}",
                p.name
            );
        }
    }
}

#[test]
fn streamed_csv_bytes_equal_the_buffered_rendering() {
    // The CLI streams rows through a `CsvSink` as points complete; the
    // in-memory `to_csv` must produce the very same bytes (this is what
    // keeps the committed goldens stable across the refactor).
    let config = reduced_fig2a();
    let mut sink = CsvSink::new(Vec::new(), &figure2::csv_header("utilization")).unwrap();
    figure2::run_into(&config, Jobs::Count(3), &mut |p: &SweepPoint| {
        sink.row(&p.csv_cells()).unwrap();
    });
    let streamed = sink.finish().unwrap();
    let buffered = run_serial(&config).to_csv("utilization").into_bytes();
    assert_eq!(streamed, buffered);
}

#[test]
fn validate_panels_are_byte_identical_to_serial() {
    // The validation campaign folds sim + analysis outcomes (including
    // floating tightness ratios) in coordinate order; any worker count
    // must emit the same CSV bytes, streamed or buffered.
    let options = ValidateOptions {
        sets_per_point: 4,
        ..ValidateOptions::default()
    };
    for panel in [ValidatePanel::Chains, ValidatePanel::Cores(2)] {
        let serial = panel.run(&options, Jobs::serial());
        for jobs in [Jobs::Count(3), Jobs::Auto] {
            let parallel = panel.run(&options, jobs);
            assert_eq!(parallel, serial, "{panel:?} under {jobs:?}");
            assert_eq!(
                parallel.to_csv(panel.x_label()).into_bytes(),
                serial.to_csv(panel.x_label()).into_bytes(),
                "{panel:?} CSV bytes under {jobs:?}"
            );
        }
        // Streamed bytes equal the buffered rendering here too.
        let mut sink = CsvSink::new(Vec::new(), &validate::csv_header(panel.x_label())).unwrap();
        panel.run_into(&options, Jobs::Count(2), &mut |p: &ValidatePoint| {
            sink.row(&p.csv_cells()).unwrap();
        });
        assert_eq!(
            sink.finish().unwrap(),
            serial.to_csv(panel.x_label()).into_bytes(),
            "{panel:?} streamed vs buffered"
        );
    }
}

#[test]
fn tables_campaign_is_identical_to_serial() {
    let serial = tables::run_all(Jobs::serial());
    for jobs in [Jobs::Count(2), Jobs::Auto] {
        assert_eq!(tables::run_all(jobs), serial, "{jobs:?}");
    }
    assert_eq!(
        serial.table1.to_csv(),
        tables::table1(rta_analysis::MuSolver::Clique).to_csv()
    );
}

#[test]
fn timing_accepts_the_same_samples_under_any_driver() {
    // Wall-clock averages are machine noise, but the *acceptance
    // decisions* (which attempts count, and therefore `samples`) are
    // deterministic and must not depend on the worker count.
    let serial = timing::run_with_jobs(&[2, 4], 3, 1, Jobs::serial());
    let parallel = timing::run_with_jobs(&[2, 4], 3, 1, Jobs::Count(4));
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.cores, p.cores);
        assert_eq!(s.samples, p.samples, "m = {}", s.cores);
    }
}

#[test]
fn counterexample_trace_render_matches_the_committed_golden() {
    // The witness-schedule rendering of the frozen LP counterexample is a
    // pure function of frozen inputs (seeded simulation, no clocks, fixed
    // tie-breaks), so its bytes are pinned like the CSV goldens: a
    // simulator, policy or renderer change that moves the schedule must
    // show up as a reviewed golden update, never as silent drift.
    let rendered = rta_experiments::forensics::counterexample_trace(96).chart;
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../ci/golden/trace_counterexample.txt"
    );
    let golden = std::fs::read_to_string(golden_path)
        .unwrap_or_else(|e| panic!("read {golden_path}: {e} — regenerate with `repro trace`"));
    assert_eq!(
        rendered, golden,
        "trace render drifted from ci/golden/trace_counterexample.txt; \
         if the change is intended, regenerate the golden with `repro trace`"
    );
}
