//! End-to-end contract of the admission-control server: hostile inputs
//! get structured errors on a connection that stays up, verdicts match
//! the library API, repeats hit the cache, and the whole thing starts
//! and stops cleanly. Everything runs against a real socket on a
//! kernel-assigned port.

use rta_experiments::loadgen::{self, LoadgenOptions};
use rta_experiments::serve::{spawn, ServeOptions, ServerHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn test_server(max_frame: usize) -> ServerHandle {
    serve_with(|options| options.max_frame = max_frame)
}

fn serve_with(configure: impl FnOnce(&mut ServeOptions)) -> ServerHandle {
    let mut options = ServeOptions {
        addr: "127.0.0.1:0".into(),
        lru_capacity: 8,
        ..Default::default()
    };
    configure(&mut options);
    spawn(&options).expect("bind test server")
}

/// Pulls one `"key":<integer>` field out of a response line.
fn stat_field(line: &str, key: &str) -> u64 {
    let start = line.find(key).unwrap_or_else(|| panic!("{key} in {line}")) + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().expect("integer field")
}

/// One client connection with line-framed send/receive helpers.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Self {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        Self {
            writer: stream.try_clone().expect("clone stream"),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, frame: &str) -> String {
        self.writer
            .write_all(format!("{frame}\n").as_bytes())
            .expect("send frame");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        assert!(line.ends_with('\n'), "unterminated response: {line:?}");
        line
    }
}

const FIGURE1_SET: &str = r#"{"version":1,"tasks":[
    {"period":100,"deadline":100,"dag":{"wcets":[2,3,4,4,2,4,3,2,2,3],
     "edges":[[0,1],[0,2],[0,3],[1,4],[1,5],[2,6],[3,6],[4,7],[5,7],[5,8],[6,8],[2,9],[7,9],[8,9]]}},
    {"period":120,"deadline":120,"dag":{"wcets":[4,5,6,5],"edges":[[0,1],[0,2],[1,3],[2,3]]}}
]}"#;

fn analyze_frame(set: &str) -> String {
    format!(
        "{{\"v\":1,\"id\":42,\"cores\":4,\"task_set\":{}}}",
        set.replace('\n', " ")
    )
}

#[test]
fn hostile_inputs_get_structured_errors_and_the_connection_survives() {
    let handle = test_server(4096);
    let mut client = Client::connect(&handle);
    for (frame, kind) in [
        // Malformed JSON.
        ("{\"cores\": 4, \"task_set\":", "syntax"),
        // NaN is not valid JSON at all.
        (
            "{\"cores\":4,\"task_set\":{\"tasks\":[{\"period\":NaN}]}}",
            "syntax",
        ),
        // Negative WCET: parses as a float, rejected by the schema.
        (
            "{\"cores\":4,\"task_set\":{\"tasks\":[{\"period\":9,\"deadline\":9,\
             \"dag\":{\"wcets\":[-3],\"edges\":[]}}]}}",
            "schema",
        ),
        // Cyclic edge list: schema-valid, rejected by the model.
        (
            "{\"cores\":4,\"task_set\":{\"tasks\":[{\"period\":9,\"deadline\":9,\
             \"dag\":{\"wcets\":[1,1],\"edges\":[[0,1],[1,0]]}}]}}",
            "model",
        ),
        // Future schema version.
        (
            "{\"cores\":4,\"task_set\":{\"version\":7,\"tasks\":[]}}",
            "version",
        ),
        // Protocol violations.
        ("[1,2,3]", "protocol"),
        ("{\"cores\":4}", "protocol"),
        ("{\"cores\":99999,\"task_set\":{\"tasks\":[]}}", "protocol"),
    ] {
        let response = client.send(frame);
        assert!(
            response.contains(&format!("\"kind\":\"{kind}\"")),
            "{frame} => {response}"
        );
        assert!(response.contains("\"ok\":false"), "{response}");
    }
    // The same connection still answers a well-formed request.
    let response = client.send(&analyze_frame(FIGURE1_SET));
    assert!(response.contains("\"ok\":true"), "{response}");
    assert!(response.contains("\"id\":42"), "{response}");
    handle.shutdown();
}

#[test]
fn oversized_frames_error_and_resynchronize() {
    let handle = test_server(512);
    let mut client = Client::connect(&handle);
    // Far larger than the 512-byte frame cap.
    let huge = format!("{{\"cores\":4,\"padding\":\"{}\"}}", "x".repeat(4096));
    let response = client.send(&huge);
    assert!(response.contains("\"kind\":\"too_large\""), "{response}");
    // The connection re-synchronized at the newline: next frame works.
    let response = client.send("{\"cores\":2,\"task_set\":{\"tasks\":[]}}");
    assert!(response.contains("\"ok\":true"), "{response}");
    handle.shutdown();
}

#[test]
fn verdicts_match_the_library_and_repeats_hit_the_cache() {
    let handle = test_server(1 << 20);
    let mut client = Client::connect(&handle);
    let cold = client.send(&analyze_frame(FIGURE1_SET));
    assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
    // The paper's four methods accept the Figure-1-style set on 4 cores
    // (the library agrees; this is the wire rendering of the same
    // outcome), and so does Long-paths — FP-ideal acceptance implies it.
    for method in ["FP-ideal", "LP-ILP", "LP-max", "LP-sound", "Long-paths"] {
        assert!(
            cold.contains(&format!("{{\"method\":\"{method}\",\"schedulable\":true}}")),
            "{cold}"
        );
    }
    // Gen-sporadic's verdict is not implied by FP-ideal's (the dominance
    // edge runs the other way); only its presence in the default frame is
    // part of the contract.
    assert!(
        cold.contains("{\"method\":\"Gen-sporadic\",\"schedulable\":"),
        "{cold}"
    );
    let warm = client.send(&analyze_frame(FIGURE1_SET));
    assert!(warm.contains("\"cache\":\"hit\""), "{warm}");
    // Bounds on request: near-hit (same set, new shape), per-task arrays.
    let bounds_frame = format!(
        "{{\"cores\":4,\"bounds\":true,\"methods\":[\"LP-sound\"],\"task_set\":{}}}",
        FIGURE1_SET.replace('\n', " ")
    );
    let with_bounds = client.send(&bounds_frame);
    assert!(with_bounds.contains("\"cache\":\"near\""), "{with_bounds}");
    assert!(with_bounds.contains("\"bounds\":["), "{with_bounds}");
    // A second connection sees the same warm cache.
    let mut other = Client::connect(&handle);
    let repeat = other.send(&analyze_frame(FIGURE1_SET));
    assert!(repeat.contains("\"cache\":\"hit\""), "{repeat}");
    let stats = other.send("{\"stats\":true}");
    assert!(stats.contains("\"errors\":0"), "{stats}");
    assert!(stats.contains("\"cached_sets\":1"), "{stats}");
    handle.shutdown();
}

#[test]
fn simulate_frames_answer_with_library_identical_results() {
    use rta_experiments::serve::sim_json;
    use rta_model::json::task_set_from_json;
    use rta_sim::{PreemptionPolicy, SimRequest};

    let handle = test_server(1 << 20);
    let mut client = Client::connect(&handle);
    let frame = format!(
        "{{\"v\":1,\"id\":9,\"simulate\":{{\"cores\":4,\"horizon\":2000,\
         \"policy\":\"lazy\",\"seed\":7,\"task_set\":{}}}}}",
        FIGURE1_SET.replace('\n', " ")
    );
    let response = client.send(&frame);
    assert!(response.contains("\"ok\":true"), "{response}");
    assert!(response.contains("\"id\":9"), "{response}");
    // The wire result is the library result, byte for byte.
    let ts = task_set_from_json(FIGURE1_SET).expect("test set parses");
    let outcome = SimRequest::new(4, 2000)
        .with_policy(PreemptionPolicy::LazyPreemptive)
        .with_seed(7)
        .evaluate(&ts);
    let expected = format!("\"sim\":{}", sim_json(&outcome));
    assert!(response.contains(&expected), "{response} vs {expected}");
    // The trace-truncation counter is part of the frame contract (0 for
    // wire runs, which never record a trace) — pinned explicitly so the
    // field can never be silently dropped from the response again.
    assert!(response.contains("\"trace_dropped\":0"), "{response}");
    // Horizons above the server-side cap are refused with a structured
    // error, and the connection survives.
    let refused = client.send(&format!(
        "{{\"simulate\":{{\"cores\":4,\"horizon\":99999999,\"task_set\":{}}}}}",
        FIGURE1_SET.replace('\n', " ")
    ));
    assert!(refused.contains("\"kind\":\"protocol\""), "{refused}");
    let stats = client.send("{\"stats\":true}");
    assert!(stat_field(&stats, "\"sim_requests\":") >= 1, "{stats}");
    handle.shutdown();
}

#[test]
fn loadgen_simulate_mix_drives_the_simulate_frame() {
    let handle = test_server(1 << 20);
    let report = loadgen::run(&LoadgenOptions {
        addr: handle.addr().to_string(),
        connections: 2,
        requests_per_connection: 20,
        repeat_percent: 50,
        simulate_percent: 40,
        pool_size: 4,
        cores: 2,
        target: 1.0,
        ..Default::default()
    })
    .expect("loadgen run");
    assert_eq!(report.errors, 0);
    assert_eq!(report.requests, 40);
    assert!(report.sims > 0, "40% simulate mix produced no sims");
    assert_eq!(
        report.hits + report.near_hits + report.misses + report.sims,
        40
    );
    assert!(report
        .to_bench_json(&LoadgenOptions::default())
        .contains("\"sim_requests\""));
    handle.shutdown();
}

#[test]
fn loadgen_competitor_mix_round_trips_the_method_subset() {
    let handle = test_server(1 << 20);
    let report = loadgen::run(&LoadgenOptions {
        addr: handle.addr().to_string(),
        connections: 2,
        requests_per_connection: 15,
        repeat_percent: 60,
        competitor_percent: 50,
        pool_size: 4,
        cores: 2,
        target: 1.0,
        ..Default::default()
    })
    .expect("loadgen run");
    // Every competitor-subset frame is a well-formed analysis request: a
    // mix heavy in them still completes without a single error frame.
    assert_eq!(report.errors, 0);
    assert_eq!(report.requests, 30);
    assert_eq!(report.hits + report.near_hits + report.misses, 30);
    // Repeated pool sets alternate between the all-methods and the
    // competitor-subset shape, so the subset path must produce near-hits
    // (same cached set, different requested shape), not just misses.
    assert!(report.near_hits > 0, "{report:?}");
    handle.shutdown();
}

#[test]
fn wire_shutdown_stops_the_server() {
    let handle = test_server(4096);
    let addr = handle.addr();
    let mut client = Client::connect(&handle);
    let response = client.send("{\"shutdown\":true,\"id\":1}");
    assert!(response.contains("\"shutdown\":true"), "{response}");
    // The accept loop exits; join returns instead of blocking forever.
    handle.join();
    // New connections are no longer served (connect may still succeed
    // briefly on some platforms' backlog, but no response comes back).
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let _ = stream.write_all(b"{\"stats\":true}\n");
        let mut line = String::new();
        let _ = BufReader::new(stream).read_line(&mut line);
        assert!(line.is_empty(), "served after shutdown: {line}");
    }
}

const OVERLOADED_FRAME: &str = "{\"v\":1,\"ok\":false,\"error\":{\"kind\":\"overloaded\",\
     \"message\":\"server is shedding load; retry with backoff\"}}\n";

/// A raw connection for tests that need to observe timeouts and closes
/// rather than clean request/response pairs.
struct RawConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawConn {
    fn connect(handle: &ServerHandle) -> Self {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        Self {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            stream,
        }
    }

    fn read_line(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line),
            Err(e) => panic!("read timed out or failed: {e}"),
        }
    }

    fn at_eof(&mut self) -> bool {
        let mut byte = [0u8; 1];
        matches!(self.reader.read(&mut byte), Ok(0))
    }
}

#[test]
fn idle_connections_get_a_timeout_frame_and_are_closed() {
    let handle = serve_with(|o| {
        o.idle_timeout = Duration::from_millis(80);
        o.frame_timeout = Duration::from_millis(500);
    });
    let mut conn = RawConn::connect(&handle);
    // Say nothing: the server must end the standoff, not us.
    let line = conn.read_line().expect("a timeout frame before the close");
    assert!(line.contains("\"kind\":\"timeout\""), "{line}");
    assert!(line.contains("idle"), "{line}");
    assert!(conn.at_eof(), "connection must be closed after the timeout");
    let report = handle.shutdown();
    assert_eq!(report.cut_off, 0, "{report:?}");
    assert_eq!(report.panicked, 0, "{report:?}");
}

#[test]
fn slowloris_frames_trip_the_frame_budget() {
    let handle = serve_with(|o| {
        o.idle_timeout = Duration::from_secs(5);
        o.frame_timeout = Duration::from_millis(100);
    });
    let mut conn = RawConn::connect(&handle);
    // Dribble out the start of a frame, then stall mid-frame: the frame
    // budget (not the much longer idle budget) must cut us off.
    for byte in b"{\"v\":1," {
        conn.stream.write_all(&[*byte]).expect("slow write");
        std::thread::sleep(Duration::from_millis(10));
    }
    let line = conn.read_line().expect("a timeout frame before the close");
    assert!(line.contains("\"kind\":\"timeout\""), "{line}");
    assert!(line.contains("frame"), "{line}");
    assert!(conn.at_eof(), "connection must be closed after the timeout");
    // The incident is visible in the stats counters.
    let mut control = Client::connect(&handle);
    let stats = control.send("{\"stats\":true}");
    assert!(stat_field(&stats, "\"timeouts\":") >= 1, "{stats}");
    handle.shutdown();
}

#[test]
fn mid_frame_disconnects_are_cleaned_up() {
    let handle = serve_with(|o| o.drain_timeout = Duration::from_secs(2));
    {
        let mut conn = RawConn::connect(&handle);
        conn.stream
            .write_all(b"{\"v\":1,\"cores\":4,\"task_")
            .expect("partial write");
        // Drop mid-frame: the server must treat this as a closed
        // connection, not an error, and release the pool slot.
    }
    let mut control = Client::connect(&handle);
    let response = control.send(&analyze_frame(FIGURE1_SET));
    assert!(response.contains("\"ok\":true"), "{response}");
    let report = handle.shutdown();
    assert_eq!(report.cut_off, 0, "{report:?}");
    assert_eq!(report.panicked, 0, "{report:?}");
}

#[test]
fn excess_connections_get_structured_overloaded_frames() {
    let handle = serve_with(|o| {
        o.max_conns = 2;
        // Watermark above the pool bound: in-pool connections never shed,
        // so this test isolates the pool-refusal path.
        o.shed_watermark = 3;
    });
    let mut c1 = Client::connect(&handle);
    let mut c2 = Client::connect(&handle);
    // Round trips prove both connections hold pool slots before the
    // third one arrives.
    assert!(c1.send("{\"stats\":true}").contains("\"ok\":true"));
    assert!(c2.send("{\"stats\":true}").contains("\"ok\":true"));
    // The pool is full: the excess connection gets exactly one
    // structured overloaded frame, byte-pinned, and is closed.
    let mut c3 = RawConn::connect(&handle);
    let line = c3.read_line().expect("an overloaded frame");
    assert_eq!(line, OVERLOADED_FRAME);
    assert!(c3.at_eof(), "refused connection must be closed");
    // In-pool connections are unharmed, and the refusal is counted.
    let response = c1.send(&analyze_frame(FIGURE1_SET));
    assert!(response.contains("\"ok\":true"), "{response}");
    let stats = c1.send("{\"stats\":true}");
    assert!(stat_field(&stats, "\"shed\":") >= 1, "{stats}");
    assert_eq!(stat_field(&stats, "\"active_conns\":"), 2, "{stats}");
    // Freeing a slot re-opens the pool.
    drop(c2);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut probe = RawConn::connect(&handle);
        probe
            .stream
            .write_all(b"{\"stats\":true}\n")
            .expect("probe write");
        match probe.read_line() {
            Some(line) if line.contains("\"ok\":true") => break,
            _ => assert!(Instant::now() < deadline, "pool slot never freed"),
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown();
}

#[test]
fn watermark_shedding_answers_cache_hits_and_refuses_cold_analyses() {
    let handle = serve_with(|o| {
        o.max_conns = 8;
        o.shed_watermark = 2;
    });
    // Below the watermark: full service caches the set's facts.
    let mut c1 = Client::connect(&handle);
    let cold = c1.send(&analyze_frame(FIGURE1_SET));
    assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
    // The second connection puts the pool at the watermark: shed mode.
    let mut c2 = Client::connect(&handle);
    // Cache hits are still answered in full…
    let hit = c2.send(&analyze_frame(FIGURE1_SET));
    assert!(hit.contains("\"ok\":true"), "{hit}");
    assert!(hit.contains("\"cache\":\"hit\""), "{hit}");
    // …but anything needing a cold analysis is refused with a structured
    // frame that echoes the request id, and the connection survives.
    let fresh = "{\"v\":1,\"id\":9,\"cores\":4,\"task_set\":{\"tasks\":[\
         {\"period\":50,\"deadline\":50,\"dag\":{\"wcets\":[7],\"edges\":[]}}]}}";
    let refused = c2.send(fresh);
    assert!(refused.contains("\"kind\":\"overloaded\""), "{refused}");
    assert!(refused.contains("\"id\":9"), "{refused}");
    let again = c2.send(&analyze_frame(FIGURE1_SET));
    assert!(again.contains("\"cache\":\"hit\""), "{again}");
    let stats = c2.send("{\"stats\":true}");
    assert!(stat_field(&stats, "\"shed\":") >= 1, "{stats}");
    // Closing a connection lifts the pressure: the same cold request now
    // gets a full analysis.
    drop(c2);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = c1.send("{\"stats\":true}");
        if stat_field(&stats, "\"active_conns\":") == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "shed connection never released");
        std::thread::sleep(Duration::from_millis(10));
    }
    let served = c1.send(fresh);
    assert!(served.contains("\"ok\":true"), "{served}");
    assert!(served.contains("\"cache\":\"miss\""), "{served}");
    let report = handle.shutdown();
    assert_eq!(report.cut_off, 0, "{report:?}");
    assert_eq!(report.panicked, 0, "{report:?}");
}

#[test]
fn shutdown_drains_live_connections_without_cutting_them_off() {
    let handle = serve_with(|o| o.drain_timeout = Duration::from_secs(5));
    // Three live mid-conversation connections at shutdown time.
    let mut clients: Vec<Client> = (0..3).map(|_| Client::connect(&handle)).collect();
    for client in &mut clients {
        let response = client.send(&analyze_frame(FIGURE1_SET));
        assert!(response.contains("\"ok\":true"), "{response}");
    }
    let report = handle.shutdown();
    assert_eq!(report.cut_off, 0, "{report:?}");
    assert_eq!(report.panicked, 0, "{report:?}");
    assert!(report.drained >= 3, "{report:?}");
}

#[test]
fn loadgen_round_trip_reports_hits_and_no_errors() {
    let handle = test_server(1 << 20);
    let report = loadgen::run(&LoadgenOptions {
        addr: handle.addr().to_string(),
        connections: 4,
        requests_per_connection: 25,
        repeat_percent: 70,
        pool_size: 4,
        cores: 2,
        target: 1.0,
        ..Default::default()
    })
    .expect("loadgen run");
    assert_eq!(report.errors, 0);
    assert_eq!(report.requests, 100);
    assert_eq!(report.hits + report.near_hits + report.misses, 100);
    assert!(report.hits > 0, "no cache hits in a 70% repeat mix");
    assert!(report.verdicts_per_sec > 0.0);
    handle.shutdown();
}

#[test]
fn metrics_frame_round_trips_the_registry_and_counts_the_burst() {
    let handle = test_server(1 << 20);
    let mut client = Client::connect(&handle);
    // The registry is process-global and other tests in this binary run
    // concurrently, so every count assertion is a >= on a scrape delta.
    let before = client.send("{\"v\":1,\"metrics\":true}");
    assert!(before.contains("\"ok\":true"), "{before}");
    assert!(
        before.contains("\"metrics\":{\"schema\":1,\"counters\":{"),
        "{before}"
    );
    let fp_before = stat_field(&before, "\"analysis_verdict_ns_fp_ideal\":{\"count\":");
    let req_before = stat_field(&before, "\"serve_requests_total\":");
    const BURST: u64 = 5;
    for i in 0..BURST {
        // Distinct single-node sets, one method each: every frame misses
        // the LRU and lands exactly one FP-ideal verdict observation.
        let frame = format!(
            "{{\"v\":1,\"cores\":2,\"methods\":[\"FP-ideal\"],\"task_set\":{{\"tasks\":[\
             {{\"period\":{p},\"deadline\":{p},\"dag\":{{\"wcets\":[{w}],\"edges\":[]}}}}]}}}}",
            p = 50 + i,
            w = 5 + i,
        );
        let response = client.send(&frame);
        assert!(response.contains("\"ok\":true"), "{response}");
    }
    let after = client.send("{\"v\":1,\"id\":9,\"metrics\":true}");
    assert!(after.contains("\"id\":9"), "{after}");
    let fp_after = stat_field(&after, "\"analysis_verdict_ns_fp_ideal\":{\"count\":");
    let req_after = stat_field(&after, "\"serve_requests_total\":");
    assert!(
        fp_after >= fp_before + BURST,
        "verdict histogram missed the burst: {fp_before} -> {fp_after}\n{after}"
    );
    assert!(
        req_after >= req_before + BURST,
        "request counter missed the burst: {req_before} -> {req_after}\n{after}"
    );
    // The full histogram shape survives the wire: quantile estimates and
    // sparse [le, count] buckets, and the per-frame-kind serve histograms
    // count the scrape itself.
    assert!(after.contains("\"p99\":"), "{after}");
    assert!(after.contains("\"buckets\":[["), "{after}");
    assert!(
        stat_field(&after, "\"serve_frame_ns_metrics\":{\"count\":") >= 1,
        "{after}"
    );
    handle.shutdown();
}

#[test]
fn metrics_dump_writes_prometheus_text_on_drain() {
    let path = std::env::temp_dir().join(format!(
        "rta_metrics_dump_{}_{:?}.prom",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    let handle = serve_with(|options| options.metrics_dump = Some(path.clone()));
    let mut client = Client::connect(&handle);
    let response = client.send(&analyze_frame(FIGURE1_SET));
    assert!(response.contains("\"ok\":true"), "{response}");
    drop(client);
    handle.shutdown();
    let text = std::fs::read_to_string(&path).expect("metrics dump written on drain");
    assert!(
        text.contains("# TYPE serve_requests_total counter"),
        "{text}"
    );
    assert!(
        text.contains("# TYPE analysis_verdict_ns_fp_ideal histogram"),
        "{text}"
    );
    assert!(text.contains("_bucket{le="), "{text}");
    let _ = std::fs::remove_file(&path);
}
