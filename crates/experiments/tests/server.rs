//! End-to-end contract of the admission-control server: hostile inputs
//! get structured errors on a connection that stays up, verdicts match
//! the library API, repeats hit the cache, and the whole thing starts
//! and stops cleanly. Everything runs against a real socket on a
//! kernel-assigned port.

use rta_experiments::loadgen::{self, LoadgenOptions};
use rta_experiments::serve::{spawn, ServeOptions, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn test_server(max_frame: usize) -> ServerHandle {
    spawn(&ServeOptions {
        addr: "127.0.0.1:0".into(),
        lru_capacity: 8,
        max_frame,
    })
    .expect("bind test server")
}

/// One client connection with line-framed send/receive helpers.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Self {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        Self {
            writer: stream.try_clone().expect("clone stream"),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, frame: &str) -> String {
        self.writer
            .write_all(format!("{frame}\n").as_bytes())
            .expect("send frame");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        assert!(line.ends_with('\n'), "unterminated response: {line:?}");
        line
    }
}

const FIGURE1_SET: &str = r#"{"version":1,"tasks":[
    {"period":100,"deadline":100,"dag":{"wcets":[2,3,4,4,2,4,3,2,2,3],
     "edges":[[0,1],[0,2],[0,3],[1,4],[1,5],[2,6],[3,6],[4,7],[5,7],[5,8],[6,8],[2,9],[7,9],[8,9]]}},
    {"period":120,"deadline":120,"dag":{"wcets":[4,5,6,5],"edges":[[0,1],[0,2],[1,3],[2,3]]}}
]}"#;

fn analyze_frame(set: &str) -> String {
    format!(
        "{{\"v\":1,\"id\":42,\"cores\":4,\"task_set\":{}}}",
        set.replace('\n', " ")
    )
}

#[test]
fn hostile_inputs_get_structured_errors_and_the_connection_survives() {
    let handle = test_server(4096);
    let mut client = Client::connect(&handle);
    for (frame, kind) in [
        // Malformed JSON.
        ("{\"cores\": 4, \"task_set\":", "syntax"),
        // NaN is not valid JSON at all.
        (
            "{\"cores\":4,\"task_set\":{\"tasks\":[{\"period\":NaN}]}}",
            "syntax",
        ),
        // Negative WCET: parses as a float, rejected by the schema.
        (
            "{\"cores\":4,\"task_set\":{\"tasks\":[{\"period\":9,\"deadline\":9,\
             \"dag\":{\"wcets\":[-3],\"edges\":[]}}]}}",
            "schema",
        ),
        // Cyclic edge list: schema-valid, rejected by the model.
        (
            "{\"cores\":4,\"task_set\":{\"tasks\":[{\"period\":9,\"deadline\":9,\
             \"dag\":{\"wcets\":[1,1],\"edges\":[[0,1],[1,0]]}}]}}",
            "model",
        ),
        // Future schema version.
        (
            "{\"cores\":4,\"task_set\":{\"version\":7,\"tasks\":[]}}",
            "version",
        ),
        // Protocol violations.
        ("[1,2,3]", "protocol"),
        ("{\"cores\":4}", "protocol"),
        ("{\"cores\":99999,\"task_set\":{\"tasks\":[]}}", "protocol"),
    ] {
        let response = client.send(frame);
        assert!(
            response.contains(&format!("\"kind\":\"{kind}\"")),
            "{frame} => {response}"
        );
        assert!(response.contains("\"ok\":false"), "{response}");
    }
    // The same connection still answers a well-formed request.
    let response = client.send(&analyze_frame(FIGURE1_SET));
    assert!(response.contains("\"ok\":true"), "{response}");
    assert!(response.contains("\"id\":42"), "{response}");
    handle.shutdown();
}

#[test]
fn oversized_frames_error_and_resynchronize() {
    let handle = test_server(512);
    let mut client = Client::connect(&handle);
    // Far larger than the 512-byte frame cap.
    let huge = format!("{{\"cores\":4,\"padding\":\"{}\"}}", "x".repeat(4096));
    let response = client.send(&huge);
    assert!(response.contains("\"kind\":\"too_large\""), "{response}");
    // The connection re-synchronized at the newline: next frame works.
    let response = client.send("{\"cores\":2,\"task_set\":{\"tasks\":[]}}");
    assert!(response.contains("\"ok\":true"), "{response}");
    handle.shutdown();
}

#[test]
fn verdicts_match_the_library_and_repeats_hit_the_cache() {
    let handle = test_server(1 << 20);
    let mut client = Client::connect(&handle);
    let cold = client.send(&analyze_frame(FIGURE1_SET));
    assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
    // All four methods accept the Figure-1-style set on 4 cores (the
    // library agrees; this is the wire rendering of the same outcome).
    for method in ["FP-ideal", "LP-ILP", "LP-max", "LP-sound"] {
        assert!(
            cold.contains(&format!("{{\"method\":\"{method}\",\"schedulable\":true}}")),
            "{cold}"
        );
    }
    let warm = client.send(&analyze_frame(FIGURE1_SET));
    assert!(warm.contains("\"cache\":\"hit\""), "{warm}");
    // Bounds on request: near-hit (same set, new shape), per-task arrays.
    let bounds_frame = format!(
        "{{\"cores\":4,\"bounds\":true,\"methods\":[\"LP-sound\"],\"task_set\":{}}}",
        FIGURE1_SET.replace('\n', " ")
    );
    let with_bounds = client.send(&bounds_frame);
    assert!(with_bounds.contains("\"cache\":\"near\""), "{with_bounds}");
    assert!(with_bounds.contains("\"bounds\":["), "{with_bounds}");
    // A second connection sees the same warm cache.
    let mut other = Client::connect(&handle);
    let repeat = other.send(&analyze_frame(FIGURE1_SET));
    assert!(repeat.contains("\"cache\":\"hit\""), "{repeat}");
    let stats = other.send("{\"stats\":true}");
    assert!(stats.contains("\"errors\":0"), "{stats}");
    assert!(stats.contains("\"cached_sets\":1"), "{stats}");
    handle.shutdown();
}

#[test]
fn wire_shutdown_stops_the_server() {
    let handle = test_server(4096);
    let addr = handle.addr();
    let mut client = Client::connect(&handle);
    let response = client.send("{\"shutdown\":true,\"id\":1}");
    assert!(response.contains("\"shutdown\":true"), "{response}");
    // The accept loop exits; join returns instead of blocking forever.
    handle.join();
    // New connections are no longer served (connect may still succeed
    // briefly on some platforms' backlog, but no response comes back).
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let _ = stream.write_all(b"{\"stats\":true}\n");
        let mut line = String::new();
        let _ = BufReader::new(stream).read_line(&mut line);
        assert!(line.is_empty(), "served after shutdown: {line}");
    }
}

#[test]
fn loadgen_round_trip_reports_hits_and_no_errors() {
    let handle = test_server(1 << 20);
    let report = loadgen::run(&LoadgenOptions {
        addr: handle.addr().to_string(),
        connections: 4,
        requests_per_connection: 25,
        repeat_percent: 70,
        pool_size: 4,
        cores: 2,
        target: 1.0,
        ..Default::default()
    })
    .expect("loadgen run");
    assert_eq!(report.errors, 0);
    assert_eq!(report.requests, 100);
    assert_eq!(report.hits + report.near_hits + report.misses, 100);
    assert!(report.hits > 0, "no cache hits in a 70% repeat mix");
    assert!(report.verdicts_per_sec > 0.0);
    handle.shutdown();
}
