//! The simulation-backed validation campaign: `repro validate`.
//!
//! The paper's analysis produces response-time **upper bounds**; the
//! workspace ships a cycle-exact scheduler simulator (`rta-sim`) as the
//! executable counterpart. This module is the driver that actually runs
//! the two against each other, at campaign scale, and checks the soundness
//! invariants on every generated task set:
//!
//! 1. **No misses on accepted sets** — a set any method declares
//!    schedulable must show *zero* deadline misses when simulated under
//!    the scheduling model that method speaks about (LP-ILP / LP-max /
//!    LP-sound → the limited-preemptive simulators; FP-ideal → the
//!    fully-preemptive baseline simulator).
//! 2. **Bounds dominate observations** — for every task of an accepted
//!    set, the simulated maximum response time never exceeds the
//!    analytical bound (compared exactly, in scaled `m·R` units).
//! 3. **The FP baseline cross-check** — FP-ideal's bounds (Eq. (1), zero
//!    blocking) are validated against the *fully-preemptive* simulator,
//!    pinning the baseline leg of the paper's evaluation, not just the
//!    limited-preemptive contribution.
//!
//! # What the campaign found: the paper's LP bound is not sound
//!
//! Running this campaign at scale **empirically refutes strict soundness
//! of the paper's limited-preemptive bounds**: on a small fraction of
//! `m = 2` task sets (≈0.1% of the utilization sweep), the simulated
//! maximum response time exceeds the LP-ILP/LP-max bound by 1–3%. The
//! counterexamples are legitimate work-conserving eager-LP schedules (one
//! is frozen as a regression test below): whenever the DAG under analysis
//! leaves cores idle through its own precedence constraints, *newly
//! started* lower-priority NPRs occupy them and later block the task's
//! nodes — blocking the paper's `I_lp = Δ^m + p_k·Δ^{m−1}` term never
//! accounts for (the highest-priority task has `p_k = 0`, yet suffers
//! such blocking mid-job). This matches the unsoundness of prior global
//! limited-preemptive DAG analyses later demonstrated by Nasri, Nelissen
//! & Brandenburg (ECRTS 2019, "Response-Time Analysis of Limited-
//! Preemptive Parallel DAG Tasks Under Global Scheduling").
//!
//! # The corrected bound, held to a harder standard
//!
//! `rta_analysis::Method::LpSound` is the repository's corrected bound
//! (`rta_analysis::blocking::sound`): it charges the full lower-priority
//! carry-in workload of the window instead of counting blocking events.
//! Its soundness argument needs only work conservation, so the campaign
//! checks it against **both limited-preemption flavours** — the paper's
//! eager policy *and* the lazy policy of Nasri et al.
//! ([`rta_sim::PreemptionPolicy::LazyPreemptive`]) — and under every
//! release model; any exceedance or miss on an LP-sound-accepted set is a
//! **hard violation** (non-zero exit), exactly like the FP-ideal leg. The
//! paper's LP-ILP/LP-max legs are checked against the same two policies
//! but keep their *soft* counters:
//!
//! * **hard violations** — the FP-ideal and LP-sound legs (sound
//!   analyses): any miss or bound exceedance is a definite bug in this
//!   repository, and the CLI exits non-zero;
//! * **LP bound exceedances** — simulated response times above an LP-ILP/
//!   LP-max bound under either limited-preemption flavour: the expected,
//!   literature-documented optimism of the paper's analysis, reported per
//!   sweep point (`lp_bound_exceedances` column);
//! * **LP verdict misses** — an LP-ILP/LP-max-accepted set actually
//!   missing a deadline in simulation (a full counterexample to the
//!   schedulability *verdict*, not just the bound); none observed so far,
//!   reported in `lp_deadline_misses` and loudly printed if ever nonzero.
//!
//! The CSV additionally reports **bound tightness** — the ratio `sim max
//! RT / analytical bound`, worst task per set across the policies the
//! method was checked under, aggregated as mean/max over the accepted
//! sets of each sweep point — so it doubles as an empirical-pessimism
//! chart (values above 1 are exceedances).
//!
//! # Release models
//!
//! The analysis speaks about *sporadic* tasks, so its bounds must hold
//! for every legal release pattern. The campaign's default adversary is
//! the synchronous-periodic WCET pattern; [`ReleaseChoice`] promotes the
//! simulator's other patterns to first-class `--release` knobs (`sync`,
//! `jitter` — every inter-arrival of task `i` stretched by a uniform
//! random delay of up to a tenth of *its own* period `T_i` — and
//! `sporadic` — inter-arrivals stretched by up to a full own period),
//! and dedicated panels ([`ValidatePanel::Release`]) run the `m = 4`
//! utilization sweep under each non-synchronous pattern. Jitter is
//! first-class and per-task ([`rta_sim::Jitter::PeriodFraction`]); the
//! relative fraction of *random* release jitter is reported in the
//! `jitter` CSV column (0 for the deterministic patterns — synchronous
//! and bursty). The `sync`, `jitter` and `sporadic` patterns keep
//! inter-arrivals at or above the period, so every analysis remains on
//! the hook: a violation under any of them is real.
//!
//! [`ReleaseChoice::Bursty`] is different in kind: deterministic bursts
//! of 3 simultaneous releases (`burst = 3`, `spread = 0`, long-run rate
//! preserved) **violate** the sporadic minimum inter-arrival every
//! analysis assumes, so its panel is a *probe*, not a validation — every
//! method's findings are counted in the soft columns
//! (`lp_bound_exceedances` / `lp_deadline_misses`) and the hard gate
//! stays clean by construction ([`ReleaseChoice::validates_sporadic`]).
//! It charts how far outside their contract the six bounds degrade.
//!
//! # The competitor panel
//!
//! The two published fully-preemptive competitor methods
//! ([`rta_analysis::Method::LongPaths`], the long-path stall refinement,
//! and [`rta_analysis::Method::GenSporadic`], the deadline-anchored
//! generalized-sporadic characterization) join the campaign as **sound**
//! legs: both are checked against the fully-preemptive simulator, and —
//! like FP-ideal and LP-sound — any miss or bound exceedance on a set
//! they accept is a hard violation with a non-zero exit.
//!
//! The analysis side runs through a bounds-carrying
//! [`rta_analysis::AnalysisRequest`]: the dominance-short-circuited
//! verdict path of the ordinary campaign panels discards per-task bounds,
//! which validation cannot live without. Cells flow through the same
//! streaming engine as every other panel ([`crate::exec::stream_indexed`]
//! feeding an O(1) per-point fold), so arbitrarily long validation
//! horizons and set counts never accumulate rows in memory.
//!
//! Panels: the utilization sweep on `m ∈ {2, 4, 8, 16}` (the m = 16
//! column exercises the mixed suffix-DP path of the analysis cache), the
//! constrained-deadline and chain-mixture populations of the campaign
//! panels, and the two release-model sweeps.

use crate::ascii;
use crate::campaign::generate_on_worker;
use crate::exec::{self, Jobs};
use crate::set_seed;
use rta_analysis::{AnalysisRequest, Method, ScenarioSpace};
use rta_model::TaskSet;
use rta_sim::{Jitter, PreemptionPolicy, Release, SimRequest};
use rta_taskgen::{chain_mix, group1};

/// Base seed of the validation panels (a fresh population, distinct from
/// both the Figure 2 and the campaign seeds).
const VALIDATE_SEED: u64 = 0x51A1_DA7E;

/// Number of analysis methods every per-method array in this module spans
/// (always [`Method::ALL`] order).
const METHODS: usize = Method::ALL.len();

/// Default [`ValidateOptions::horizon_factor`]: simulate releases over
/// three spans of the set's largest period, then drain.
pub const DEFAULT_HORIZON_FACTOR: u64 = 3;

/// Which simulator policies the campaign runs each set under.
///
/// Restricting the selection skips the corresponding invariant checks and
/// tightness columns (they report 0); the default [`Both`](Self::Both)
/// validates the limited-preemptive methods under both preemption
/// flavours *and* the fully-preemptive baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PolicyChoice {
    /// Eager- and lazy-limited-preemptive plus fully-preemptive runs (the
    /// default).
    #[default]
    Both,
    /// Both limited-preemptive simulators (validates LP-ILP / LP-max /
    /// LP-sound under eager *and* lazy preemption).
    Limited,
    /// Only the eager limited-preemptive simulator (the paper's model).
    Eager,
    /// Only the lazy limited-preemptive simulator (Nasri et al.).
    Lazy,
    /// Only the fully-preemptive simulator (validates FP-ideal).
    Fully,
}

impl PolicyChoice {
    /// Parses the `--policy` CLI value.
    pub fn from_flag(value: &str) -> Option<Self> {
        match value {
            "both" => Some(PolicyChoice::Both),
            "limited" => Some(PolicyChoice::Limited),
            "eager" => Some(PolicyChoice::Eager),
            "lazy" => Some(PolicyChoice::Lazy),
            "full" => Some(PolicyChoice::Fully),
            _ => None,
        }
    }

    fn includes(self, policy: PreemptionPolicy) -> bool {
        match self {
            PolicyChoice::Both => true,
            PolicyChoice::Limited => policy != PreemptionPolicy::FullyPreemptive,
            PolicyChoice::Eager => policy == PreemptionPolicy::LimitedPreemptive,
            PolicyChoice::Lazy => policy == PreemptionPolicy::LazyPreemptive,
            PolicyChoice::Fully => policy == PreemptionPolicy::FullyPreemptive,
        }
    }
}

/// Which release pattern the simulator drives — the `--release` CLI knob.
///
/// Every choice except [`Bursty`](Self::Bursty) keeps inter-arrivals at
/// or above the period (the sporadic task model every analysis assumes),
/// so the soundness invariants apply unchanged under each of them; the
/// bursty probe steps outside the contract and demotes every finding to
/// the soft counters ([`Self::validates_sporadic`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReleaseChoice {
    /// Synchronous-periodic releases — the classic WCET adversary and the
    /// campaign default.
    #[default]
    Sync,
    /// Sporadic with small per-task jitter: every inter-arrival of task
    /// `i` is stretched by a uniform random delay of up to a tenth of its
    /// own period `T_i`.
    Jitter,
    /// Strongly sporadic: per-task inter-arrivals stretched by up to a
    /// full own period — the low-interference end of the legal patterns.
    Sporadic,
    /// Deterministic bursts of 3 simultaneous releases (long-run rate
    /// preserved). **Violates** the sporadic minimum inter-arrival inside
    /// a burst, so every method's findings become soft probe counters —
    /// see [`Self::validates_sporadic`] and the module docs.
    Bursty,
}

impl ReleaseChoice {
    /// Parses the `--release` CLI value.
    pub fn from_flag(value: &str) -> Option<Self> {
        match value {
            "sync" => Some(ReleaseChoice::Sync),
            "jitter" => Some(ReleaseChoice::Jitter),
            "sporadic" => Some(ReleaseChoice::Sporadic),
            "bursty" => Some(ReleaseChoice::Bursty),
            _ => None,
        }
    }

    /// The CSV/label spelling.
    pub fn label(self) -> &'static str {
        match self {
            ReleaseChoice::Sync => "sync",
            ReleaseChoice::Jitter => "jitter",
            ReleaseChoice::Sporadic => "sporadic",
            ReleaseChoice::Bursty => "bursty",
        }
    }

    /// Whether the pattern stays inside the sporadic task model every
    /// analysis assumes (inter-arrivals ≥ the period). When `false`, no
    /// method is on the hook for its bounds: every finding is counted in
    /// the soft probe columns and never in the hard gate.
    pub fn validates_sporadic(self) -> bool {
        self != ReleaseChoice::Bursty
    }

    /// The simulator release scenario: jitter is a first-class per-task
    /// magnitude ([`Jitter::PeriodFraction`] resolves to a fraction of
    /// each task's *own* period), so the pattern scales with the
    /// generated time base and never needs the task set in hand.
    pub fn release(self) -> Release {
        match self {
            ReleaseChoice::Sync => Release::Synchronous,
            ReleaseChoice::Jitter => Release::Sporadic {
                jitter: Jitter::PeriodFraction { percent: 10 },
            },
            ReleaseChoice::Sporadic => Release::Sporadic {
                jitter: Jitter::PeriodFraction { percent: 100 },
            },
            // Three simultaneous releases per burst (spread 0 is legal for
            // any period), then a 3·T_i gap — rate-preserving.
            ReleaseChoice::Bursty => Release::Bursty {
                burst: 3,
                spread: 0,
            },
        }
    }

    /// The per-task *random* jitter magnitude as a fraction of the period
    /// — the scalar reported in the `jitter` CSV column. Deterministic
    /// patterns (synchronous, bursty) report 0: the column measures
    /// release randomness, not sporadic-model legality (that is the
    /// `release` column's job).
    pub fn jitter_fraction(self) -> f64 {
        match self {
            ReleaseChoice::Sync | ReleaseChoice::Bursty => 0.0,
            ReleaseChoice::Jitter => 0.1,
            ReleaseChoice::Sporadic => 1.0,
        }
    }
}

/// Knobs of one validation campaign run.
#[derive(Clone, Copy, Debug)]
pub struct ValidateOptions {
    /// Generated task sets per sweep point.
    pub sets_per_point: usize,
    /// Simulation horizon as a multiple of the set's largest period
    /// (releases happen strictly before `factor · max T_i`; the run then
    /// drains). The `--horizon` CLI flag.
    pub horizon_factor: u64,
    /// Simulator policies to run (the `--policy` CLI flag).
    pub policies: PolicyChoice,
    /// Release-model override (the `--release` CLI flag). `None` keeps
    /// each panel's own default: synchronous-periodic everywhere except
    /// the [`ValidatePanel::Release`] panels.
    pub release: Option<ReleaseChoice>,
}

impl Default for ValidateOptions {
    fn default() -> Self {
        Self {
            sets_per_point: 300,
            horizon_factor: DEFAULT_HORIZON_FACTOR,
            policies: PolicyChoice::Both,
            release: None,
        }
    }
}

/// Outcome of validating a single task set (one campaign cell).
#[derive(Clone, Debug, PartialEq)]
pub struct SetValidation {
    /// Total utilization of the set.
    pub utilization: f64,
    /// Schedulability verdict per method, in [`Method::ALL`] order.
    pub accepted: [bool; METHODS],
    /// Hard soundness violations — the FP-ideal and LP-sound
    /// (sound-analysis) legs: a miss or bound exceedance here is a
    /// definite bug in this repository. 0 on a correct implementation
    /// pair.
    pub hard_violations: u64,
    /// Simulated response times exceeding an LP-ILP/LP-max bound under
    /// either limited-preemption flavour — the documented optimism of the
    /// paper's eager-LP analysis (see the module docs), counted per
    /// exceeding method and policy.
    pub lp_exceedances: u64,
    /// Deadline misses on an LP-ILP/LP-max-accepted set (a counterexample
    /// to the paper's schedulability verdict itself), counted per method
    /// and policy.
    pub lp_misses: u64,
    /// Per method: worst `sim max RT / analytical bound` over the tasks
    /// and over every policy the method was checked under, when the
    /// method accepted the set and at least one of its simulator policies
    /// ran.
    pub tightness: [Option<f64>; METHODS],
    /// Counterexample witness traces that hit the bounded-trace capacity:
    /// whenever a policy run produced any finding (hard violation,
    /// exceedance or miss), the cell re-simulates with tracing enabled to
    /// capture the offending schedule; a truncated witness means the
    /// recorded Gantt chart is missing its tail, and `repro validate`
    /// warns about it.
    pub truncated_traces: u64,
}

/// The simulator policies whose schedules method `mi`'s bounds must
/// dominate: the fully-preemptive analyses (FP-ideal, Long-paths,
/// Gen-sporadic) speak about the fully-preemptive baseline simulator; the
/// three limited-preemption methods are checked under both the eager and
/// the lazy flavour.
fn policies_of(mi: usize) -> &'static [PreemptionPolicy] {
    match Method::ALL[mi] {
        Method::FpIdeal | Method::LongPaths | Method::GenSporadic => {
            &[PreemptionPolicy::FullyPreemptive]
        }
        Method::LpIlp | Method::LpMax | Method::LpSound => &[
            PreemptionPolicy::LimitedPreemptive,
            PreemptionPolicy::LazyPreemptive,
        ],
    }
}

/// Whether an exceedance or miss on method `mi`'s leg is a hard violation
/// (a sound analysis failed) rather than a soft finding. Two ways to be
/// soft: the method's bound is documented-optimistic (the paper's LP-ILP /
/// LP-max), or the release pattern steps outside the sporadic contract
/// every analysis assumes (the bursty probe) — then *no* method is on the
/// hook and every finding is a probe data point.
fn is_sound(mi: usize, release: ReleaseChoice) -> bool {
    release.validates_sporadic()
        && matches!(
            Method::ALL[mi],
            Method::FpIdeal | Method::LpSound | Method::LongPaths | Method::GenSporadic
        )
}

/// Analyzes `ts` with all six methods (bounds included) and simulates it
/// under the selected policies and release pattern, checking every
/// soundness invariant — the campaign cell, exposed for tests and ad-hoc
/// use.
pub fn validate_set(
    ts: &TaskSet,
    cores: usize,
    horizon_factor: u64,
    policies: PolicyChoice,
    release: ReleaseChoice,
) -> SetValidation {
    // The *extended* scenario space is deliberate: the paper's exact space
    // is known to under-count blocking when `lp(k)` has fewer tasks than
    // every feasible scenario's cardinality (see
    // `ScenarioSpace::Extended`), and simulation finds those sets — the
    // validation campaign therefore checks the sound space, while the
    // reproduction panels keep charting the paper's exact one.
    let verdicts = AnalysisRequest::new(cores)
        .with_scenario_space(ScenarioSpace::Extended)
        .with_bounds(true)
        .evaluate(ts)
        .into_outcomes();
    let accepted: [bool; METHODS] = std::array::from_fn(|mi| verdicts[mi].schedulable);
    let max_period = ts.tasks().iter().map(|t| t.period()).max().unwrap_or(1);
    let horizon = horizon_factor.saturating_mul(max_period).max(1);

    let mut hard_violations = 0u64;
    let mut lp_exceedances = 0u64;
    let mut lp_misses = 0u64;
    let mut tightness = [None; METHODS];
    let mut truncated_traces = 0u64;
    for policy in [
        PreemptionPolicy::LimitedPreemptive,
        PreemptionPolicy::LazyPreemptive,
        PreemptionPolicy::FullyPreemptive,
    ] {
        if !policies.includes(policy) {
            continue;
        }
        if !(0..METHODS).any(|mi| policies_of(mi).contains(&policy) && verdicts[mi].schedulable) {
            // No accepted method speaks about this policy: nothing to
            // validate, skip the simulation entirely.
            continue;
        }
        let request = SimRequest::new(cores, horizon)
            .with_policy(policy)
            .with_release(release.release());
        let outcome = request.evaluate(ts);
        let findings_before = (hard_violations, lp_exceedances, lp_misses);
        for (mi, verdict) in verdicts.iter().enumerate() {
            if !policies_of(mi).contains(&policy) || !verdict.schedulable {
                continue;
            }
            let sound = is_sound(mi, release);
            // Invariant 1: an accepted set never misses a deadline.
            if outcome.total_deadline_misses() > 0 {
                if sound {
                    hard_violations += 1;
                } else {
                    lp_misses += 1;
                }
            }
            // Invariant 2: simulated max response ≤ bound, per task,
            // compared exactly in scaled units.
            let mut exceeded = false;
            let mut worst = 0.0f64;
            for (stats, &bound) in outcome
                .per_task()
                .iter()
                .zip(verdict.bounds.iter().flatten())
            {
                if (stats.max_response as u128) * bound.cores() as u128 > bound.scaled() {
                    exceeded = true;
                }
                if stats.jobs_completed > 0 && bound.scaled() > 0 {
                    worst = worst.max(stats.max_response as f64 / bound.as_f64());
                }
            }
            if exceeded {
                if sound {
                    hard_violations += 1;
                } else {
                    lp_exceedances += 1;
                }
            }
            tightness[mi] = Some(tightness[mi].map_or(worst, |w: f64| w.max(worst)));
        }
        if (hard_violations, lp_exceedances, lp_misses) != findings_before {
            // Capture the counterexample schedule as a trace witness (the
            // run is deterministic, so the re-run reproduces it exactly)
            // and surface whether the bounded trace could hold all of it.
            let witness = request.with_trace(true).evaluate(ts);
            if witness.trace_dropped() > 0 {
                truncated_traces += 1;
            }
        }
    }

    SetValidation {
        utilization: ts.total_utilization(),
        accepted,
        hard_violations,
        lp_exceedances,
        lp_misses,
        tightness,
        truncated_traces,
    }
}

/// One aggregated sweep point of a validation panel.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidatePoint {
    /// X coordinate (utilization target, deadline factor or chain share).
    pub x: f64,
    /// Release pattern the panel simulated under.
    pub release: ReleaseChoice,
    /// Per-task release-jitter magnitude as a fraction of each task's own
    /// period (0 under synchronous releases) — the `jitter` CSV column.
    pub jitter: f64,
    /// Mean utilization actually achieved by the generated sets.
    pub achieved_utilization: f64,
    /// Acceptance percentage per method, in [`Method::ALL`] order.
    pub accepted_pct: [f64; METHODS],
    /// Total hard (sound-analysis) violations at this point — must be 0.
    pub violations: u64,
    /// Simulated responses above an LP-ILP/LP-max bound at this point
    /// (the paper's documented optimism; see the module docs).
    pub lp_exceedances: u64,
    /// Deadline misses on LP-ILP/LP-max-accepted sets at this point.
    pub lp_misses: u64,
    /// Mean of the per-set worst `sim/bound` ratio over accepted sets, per
    /// method (0 when no set was both accepted and simulated).
    pub tightness_mean: [f64; METHODS],
    /// Maximum of the per-set worst `sim/bound` ratio, per method.
    pub tightness_max: [f64; METHODS],
    /// Counterexample witness traces truncated at the bounded-trace
    /// capacity at this point (not a CSV column; `repro validate` prints
    /// a warning when any panel reports a nonzero total).
    pub truncated_traces: u64,
}

impl ValidatePoint {
    /// The point as CSV cells, in [`csv_header`] column order.
    pub fn csv_cells(&self) -> Vec<String> {
        let mut cells = vec![
            format!("{:.4}", self.x),
            self.release.label().to_string(),
            format!("{:.1}", self.jitter),
            format!("{:.4}", self.achieved_utilization),
        ];
        for mi in 0..METHODS {
            cells.push(format!("{:.2}", self.accepted_pct[mi]));
        }
        cells.push(format!("{}", self.violations));
        cells.push(format!("{}", self.lp_exceedances));
        cells.push(format!("{}", self.lp_misses));
        for mi in 0..METHODS {
            cells.push(format!("{:.4}", self.tightness_mean[mi]));
            cells.push(format!("{:.4}", self.tightness_max[mi]));
        }
        cells
    }
}

/// The CSV header of a validation sweep: the release pattern and its
/// per-task jitter fraction, acceptance percentages, the
/// violation/finding counters, then `(mean, max)` tightness per method.
pub fn csv_header(x_label: &str) -> [&str; 25] {
    [
        x_label,
        "release",
        "jitter",
        "achieved_utilization",
        "fp_ideal_pct",
        "lp_ilp_pct",
        "lp_max_pct",
        "lp_sound_pct",
        "long_paths_pct",
        "gen_sporadic_pct",
        "violations",
        "lp_bound_exceedances",
        "lp_deadline_misses",
        "fp_ideal_tightness_mean",
        "fp_ideal_tightness_max",
        "lp_ilp_tightness_mean",
        "lp_ilp_tightness_max",
        "lp_max_tightness_mean",
        "lp_max_tightness_max",
        "lp_sound_tightness_mean",
        "lp_sound_tightness_max",
        "long_paths_tightness_mean",
        "long_paths_tightness_max",
        "gen_sporadic_tightness_mean",
        "gen_sporadic_tightness_max",
    ]
}

/// Result of one full validation panel.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidateResult {
    /// Core count the panel ran on.
    pub cores: usize,
    /// The aggregated sweep points.
    pub points: Vec<ValidatePoint>,
}

impl ValidateResult {
    /// Total hard (sound-analysis) violations across the panel.
    pub fn total_violations(&self) -> u64 {
        self.points.iter().map(|p| p.violations).sum()
    }

    /// Total LP bound exceedances across the panel (the paper's
    /// documented optimism).
    pub fn total_lp_exceedances(&self) -> u64 {
        self.points.iter().map(|p| p.lp_exceedances).sum()
    }

    /// Total deadline misses on LP-accepted sets across the panel.
    pub fn total_lp_misses(&self) -> u64 {
        self.points.iter().map(|p| p.lp_misses).sum()
    }

    /// Total counterexample witness traces the bounded trace truncated
    /// across the panel (the CLI warns when this is nonzero).
    pub fn total_truncated_traces(&self) -> u64 {
        self.points.iter().map(|p| p.truncated_traces).sum()
    }

    /// ASCII rendering: acceptance, violation/finding counters and
    /// worst-case tightness.
    pub fn render(&self, x_label: &str) -> String {
        let header = [
            x_label,
            "rel",
            "jit",
            "achieved U",
            "FP-ideal %",
            "LP-ILP %",
            "LP-max %",
            "LP-sound %",
            "Long-p %",
            "Gen-sp %",
            "viol",
            "lp-exc",
            "lp-miss",
            "tight FP",
            "tight ILP",
            "tight MAX",
            "tight SOUND",
            "tight LONG",
            "tight GEN",
        ];
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                let mut row = vec![
                    format!("{:.2}", p.x),
                    p.release.label().to_string(),
                    format!("{:.1}", p.jitter),
                    format!("{:.2}", p.achieved_utilization),
                ];
                for mi in 0..METHODS {
                    row.push(format!("{:.1}", p.accepted_pct[mi]));
                }
                row.push(format!("{}", p.violations));
                row.push(format!("{}", p.lp_exceedances));
                row.push(format!("{}", p.lp_misses));
                for mi in 0..METHODS {
                    row.push(format!("{:.3}", p.tightness_max[mi]));
                }
                row
            })
            .collect();
        ascii::table(&header, &rows)
    }

    /// CSV rendering (same bytes as the streaming sink path).
    pub fn to_csv(&self, x_label: &str) -> String {
        crate::csv::to_string(
            &csv_header(x_label),
            self.points.iter().map(ValidatePoint::csv_cells),
        )
    }
}

/// One validation panel, identified ahead of running it (metadata first,
/// then [`run_into`](Self::run_into) — the same streaming shape as
/// [`crate::campaign::PanelKind`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValidatePanel {
    /// Utilization sweep on `m` cores (the campaign runs `m ∈ {2, 4, 8,
    /// 16}`; see [`ValidatePanel::all`]).
    Cores(usize),
    /// Constrained deadlines: `m = 4`, `U = 2`, `D = f·T` with `f` swept.
    Deadline,
    /// Chain-heavy mixtures: `m = 4`, `U = 2`, chain share swept.
    Chains,
    /// Release-model sweep: `m = 4` utilization sweep simulated under the
    /// given non-synchronous release pattern.
    Release(ReleaseChoice),
}

impl ValidatePanel {
    /// Every validation panel, in CLI order.
    pub fn all() -> Vec<ValidatePanel> {
        vec![
            ValidatePanel::Cores(2),
            ValidatePanel::Cores(4),
            ValidatePanel::Cores(8),
            ValidatePanel::Cores(16),
            ValidatePanel::Deadline,
            ValidatePanel::Chains,
            ValidatePanel::Release(ReleaseChoice::Jitter),
            ValidatePanel::Release(ReleaseChoice::Sporadic),
            ValidatePanel::Release(ReleaseChoice::Bursty),
        ]
    }

    /// CSV file stem and display name.
    pub fn name(self) -> &'static str {
        match self {
            ValidatePanel::Cores(2) => "validate_cores_m2",
            ValidatePanel::Cores(4) => "validate_cores_m4",
            ValidatePanel::Cores(8) => "validate_cores_m8",
            ValidatePanel::Cores(_) => "validate_cores_m16",
            ValidatePanel::Deadline => "validate_deadline",
            ValidatePanel::Chains => "validate_chains",
            ValidatePanel::Release(ReleaseChoice::Jitter) => "validate_release_jitter",
            ValidatePanel::Release(ReleaseChoice::Sporadic) => "validate_release_sporadic",
            ValidatePanel::Release(ReleaseChoice::Bursty) => "validate_release_bursty",
            ValidatePanel::Release(ReleaseChoice::Sync) => "validate_release_sync",
        }
    }

    /// Human-readable description printed above the table.
    pub fn title(self) -> &'static str {
        match self {
            ValidatePanel::Cores(2) => "bounds vs simulation: m = 2 utilization sweep (group 1)",
            ValidatePanel::Cores(4) => "bounds vs simulation: m = 4 utilization sweep (group 1)",
            ValidatePanel::Cores(8) => "bounds vs simulation: m = 8 utilization sweep (group 1)",
            ValidatePanel::Cores(_) => "bounds vs simulation: m = 16 utilization sweep (group 1)",
            ValidatePanel::Deadline => "bounds vs simulation: m = 4, U = 2, D = f*T, f swept",
            ValidatePanel::Chains => "bounds vs simulation: m = 4, U = 2, chain share swept",
            ValidatePanel::Release(ReleaseChoice::Jitter) => {
                "bounds vs simulation: m = 4 sweep, sporadic releases with small jitter"
            }
            ValidatePanel::Release(ReleaseChoice::Bursty) => {
                "bounds vs simulation (probe): m = 4 sweep, bursty releases outside the sporadic contract"
            }
            ValidatePanel::Release(_) => {
                "bounds vs simulation: m = 4 sweep, strongly sporadic releases"
            }
        }
    }

    /// X-axis label of the rendered table / CSV header.
    pub fn x_label(self) -> &'static str {
        match self {
            ValidatePanel::Cores(_) | ValidatePanel::Release(_) => "utilization",
            ValidatePanel::Deadline => "deadline_factor",
            ValidatePanel::Chains => "chain_share",
        }
    }

    /// Core count the panel analyzes and simulates on.
    pub fn cores(self) -> usize {
        match self {
            ValidatePanel::Cores(m) => m,
            ValidatePanel::Deadline | ValidatePanel::Chains | ValidatePanel::Release(_) => 4,
        }
    }

    /// The panel's own release pattern when no `--release` override is
    /// given.
    pub fn default_release(self) -> ReleaseChoice {
        match self {
            ValidatePanel::Release(release) => release,
            _ => ReleaseChoice::Sync,
        }
    }

    fn xs(self) -> Vec<f64> {
        // The grids are shared with the `repro campaign` panels so the
        // reproduction and validation populations sweep the same
        // coordinates.
        match self {
            ValidatePanel::Cores(cores) => crate::campaign::utilization_grid(cores),
            ValidatePanel::Release(_) => crate::campaign::utilization_grid(4),
            ValidatePanel::Deadline => crate::campaign::deadline_factor_grid(),
            ValidatePanel::Chains => crate::campaign::chain_share_grid(),
        }
    }

    fn seed(self) -> u64 {
        match self {
            ValidatePanel::Cores(cores) => VALIDATE_SEED ^ (cores as u64),
            ValidatePanel::Deadline => VALIDATE_SEED ^ 0x1_0000,
            ValidatePanel::Chains => VALIDATE_SEED ^ 0x2_0000,
            ValidatePanel::Release(ReleaseChoice::Jitter) => VALIDATE_SEED ^ 0x3_0000,
            ValidatePanel::Release(ReleaseChoice::Bursty) => VALIDATE_SEED ^ 0x5_0000,
            ValidatePanel::Release(_) => VALIDATE_SEED ^ 0x4_0000,
        }
    }

    fn make_set(self, seed: u64, x: f64) -> TaskSet {
        match self {
            ValidatePanel::Cores(_) | ValidatePanel::Release(_) => {
                generate_on_worker(seed, &group1(x))
            }
            ValidatePanel::Deadline => {
                generate_on_worker(seed, &group1(2.0).with_deadline_factor(x))
            }
            ValidatePanel::Chains => generate_on_worker(seed, &chain_mix(2.0, x)),
        }
    }

    /// Streams the panel: each cell generates, analyzes (bounds included)
    /// and simulates its task set on the worker that claims it; the
    /// consumer folds outcomes in coordinate order and emits one
    /// [`ValidatePoint`] per x value — bit-identical for any worker count.
    pub fn run_into(
        self,
        options: &ValidateOptions,
        jobs: Jobs,
        on_point: &mut dyn FnMut(&ValidatePoint),
    ) {
        let sets = options.sets_per_point;
        if sets == 0 {
            return;
        }
        let xs = self.xs();
        let cores = self.cores();
        let seed = self.seed();
        let release = options.release.unwrap_or_else(|| self.default_release());

        // Rolling per-point accumulator (see `campaign::sweep_into`).
        let mut accepted = [0usize; METHODS];
        let mut achieved = 0.0f64;
        let mut violations = 0u64;
        let mut lp_exceedances = 0u64;
        let mut lp_misses = 0u64;
        let mut tight_sum = [0.0f64; METHODS];
        let mut tight_n = [0usize; METHODS];
        let mut tight_max = [0.0f64; METHODS];
        let mut truncated = 0u64;
        exec::stream_indexed(
            xs.len() * sets,
            jobs,
            |index| {
                let (p, s) = (index / sets, index % sets);
                let ts = self.make_set(set_seed(seed, p, s), xs[p]);
                validate_set(
                    &ts,
                    cores,
                    options.horizon_factor,
                    options.policies,
                    release,
                )
            },
            |index, outcome| {
                achieved += outcome.utilization;
                violations += outcome.hard_violations;
                lp_exceedances += outcome.lp_exceedances;
                lp_misses += outcome.lp_misses;
                truncated += outcome.truncated_traces;
                for mi in 0..METHODS {
                    if outcome.accepted[mi] {
                        accepted[mi] += 1;
                    }
                    if let Some(ratio) = outcome.tightness[mi] {
                        tight_sum[mi] += ratio;
                        tight_n[mi] += 1;
                        tight_max[mi] = tight_max[mi].max(ratio);
                    }
                }
                if index % sets == sets - 1 {
                    let pct = |c: usize| 100.0 * c as f64 / sets as f64;
                    let mean = |mi: usize| {
                        if tight_n[mi] > 0 {
                            tight_sum[mi] / tight_n[mi] as f64
                        } else {
                            0.0
                        }
                    };
                    on_point(&ValidatePoint {
                        x: xs[index / sets],
                        release,
                        jitter: release.jitter_fraction(),
                        achieved_utilization: achieved / sets as f64,
                        accepted_pct: std::array::from_fn(|mi| pct(accepted[mi])),
                        violations,
                        lp_exceedances,
                        lp_misses,
                        tightness_mean: std::array::from_fn(mean),
                        tightness_max: tight_max,
                        truncated_traces: truncated,
                    });
                    accepted = [0; METHODS];
                    achieved = 0.0;
                    violations = 0;
                    lp_exceedances = 0;
                    lp_misses = 0;
                    tight_sum = [0.0; METHODS];
                    tight_n = [0; METHODS];
                    tight_max = [0.0; METHODS];
                    truncated = 0;
                }
            },
        );
    }

    /// Runs the panel, collecting the points into a [`ValidateResult`].
    pub fn run(self, options: &ValidateOptions, jobs: Jobs) -> ValidateResult {
        let mut points = Vec::new();
        self.run_into(options, jobs, &mut |p: &ValidatePoint| {
            points.push(p.clone())
        });
        ValidateResult {
            cores: self.cores(),
            points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rta_model::examples::{figure1_task_set, lp_counterexample_task_set};
    use rta_model::{DagBuilder, DagTask};
    use rta_taskgen::generate_task_set;

    #[test]
    fn figure1_set_validates_cleanly() {
        let ts = figure1_task_set();
        let v = validate_set(&ts, 4, 3, PolicyChoice::Both, ReleaseChoice::Sync);
        assert_eq!(v.accepted, [true; 6]);
        assert_eq!(v.hard_violations, 0);
        assert_eq!(v.lp_exceedances, 0);
        assert_eq!(v.lp_misses, 0);
        for mi in 0..METHODS {
            let t = v.tightness[mi].expect("accepted and simulated");
            assert!(t > 0.0 && t <= 1.0, "tightness {t} out of (0, 1]");
        }
        // Among the limited-preemptive methods (same simulations), looser
        // bounds give smaller ratios: LP-max's cannot exceed LP-ILP's.
        assert!(v.tightness[2] <= v.tightness[1]);
    }

    #[test]
    fn overloaded_set_misses_deadlines_and_is_rejected() {
        // Two WCET-2 tasks with period 2 on one core: hopeless overload.
        // The deadline-miss invariant holds *because* every method rejects
        // the set — simulation shows misses, validation flags nothing.
        let single = |wcet: u64, period: u64| {
            let mut b = DagBuilder::new();
            b.add_node(wcet);
            DagTask::with_implicit_deadline(b.build().unwrap(), period).unwrap()
        };
        let ts = TaskSet::new(vec![single(2, 2), single(2, 2)]);
        let sim = SimRequest::new(1, 20).evaluate(&ts);
        assert!(sim.total_deadline_misses() > 0, "overload must miss");
        let v = validate_set(&ts, 1, 10, PolicyChoice::Both, ReleaseChoice::Sync);
        assert_eq!(v.accepted, [false; 6]);
        assert_eq!(v.hard_violations, 0);
        assert_eq!(v.lp_exceedances, 0);
        assert_eq!(v.lp_misses, 0);
        assert_eq!(v.tightness, [None; 6]);
    }

    /// The frozen m = 2 counterexample to the paper's LP blocking bound
    /// (see the module docs): a legal work-conserving eager-LP schedule
    /// produces a response of 304 against an LP bound of 300.5 — the
    /// campaign must classify it as an LP exceedance, not a hard
    /// violation, the sound FP-ideal leg must stay clean, and the
    /// corrected LP-sound bound must *cover* the schedule (here by
    /// rejecting the set: its bound admits further mid-job lp workload
    /// and crosses the deadline, so LP-sound never vouches for the
    /// counterexample at all).
    #[test]
    fn known_lp_counterexample_is_classified_as_exceedance() {
        let ts = lp_counterexample_task_set();

        // The analysis accepts the set with an LP bound of 300.5 for the
        // top task (Δ² = 189, p = 0), yet the simulator legally observes
        // a response of 304: blocking NPRs that *start mid-job* on cores
        // idled by the hp-DAG's own precedence structure.
        let sim = SimRequest::new(2, 3 * 1216)
            .with_policy(PreemptionPolicy::LimitedPreemptive)
            .evaluate(&ts);
        assert_eq!(sim.max_response(0), 304);

        let v = validate_set(&ts, 2, 3, PolicyChoice::Both, ReleaseChoice::Sync);
        assert!(v.accepted[0], "FP-ideal accepts");
        assert!(v.accepted[1], "LP-ILP accepts (unsoundly)");
        assert!(v.accepted[2], "LP-max accepts (unsoundly)");
        assert_eq!(
            v.hard_violations, 0,
            "the FP-ideal and LP-sound legs are sound"
        );
        assert!(
            v.lp_exceedances >= 2,
            "both LP methods share the bound here (eager leg at least)"
        );
        assert_eq!(v.lp_misses, 0, "no deadline is missed (304 < D = 502)");
        assert!(v.tightness[1].unwrap() > 1.0);
    }

    /// The same counterexample, stated positively for the corrected
    /// bound: LP-sound either rejects the set or its bound dominates the
    /// observed schedule — it can never vouch for a response the eager
    /// simulator exceeds. (Here it rejects; the assertion covers both
    /// forms so the test documents the invariant, not one artifact.)
    #[test]
    fn lp_sound_covers_the_frozen_counterexample() {
        use rta_analysis::Method;
        let ts = lp_counterexample_task_set();
        let outcome = AnalysisRequest::new(2)
            .with_methods([Method::LpSound])
            .with_scenario_space(ScenarioSpace::Extended)
            .with_bounds(true)
            .evaluate(&ts);
        let verdict = outcome.outcome(Method::LpSound).expect("LP-sound answered");
        let sim = SimRequest::new(2, 3 * 1216)
            .with_policy(PreemptionPolicy::LimitedPreemptive)
            .evaluate(&ts);
        assert_eq!(sim.max_response(0), 304);
        if verdict.schedulable {
            let bound = verdict.bound(0).expect("task 0 analyzed");
            assert!(
                (sim.max_response(0) as u128) * bound.cores() as u128 <= bound.scaled(),
                "LP-sound accepted but its bound {bound} is below the simulated 304"
            );
        }
        // Current behaviour (pinned so a regression is loud): the sound
        // bound admits the mid-job lp workload the paper's bound misses,
        // crosses D = 502, and rejects the set.
        assert!(!verdict.schedulable, "LP-sound rejects the counterexample");
    }

    #[test]
    fn policy_restriction_skips_the_other_legs() {
        let ts = figure1_task_set();
        let limited = validate_set(&ts, 4, 3, PolicyChoice::Limited, ReleaseChoice::Sync);
        assert!(limited.tightness[0].is_none(), "FP leg must be skipped");
        assert!(limited.tightness[1].is_some());
        assert!(
            limited.tightness[3].is_some(),
            "LP-sound runs on the LP legs"
        );
        assert!(
            limited.tightness[4].is_none() && limited.tightness[5].is_none(),
            "the fully-preemptive competitor legs must be skipped too"
        );
        let fully = validate_set(&ts, 4, 3, PolicyChoice::Fully, ReleaseChoice::Sync);
        assert!(fully.tightness[0].is_some());
        assert!(fully.tightness[1].is_none(), "LP legs must be skipped");
        assert!(fully.tightness[3].is_none());
        assert!(
            fully.tightness[4].is_some() && fully.tightness[5].is_some(),
            "Long-paths and Gen-sporadic validate on the FP leg"
        );
        // Eager-only and lazy-only both exercise the LP legs; their
        // per-policy worst ratios can only be dominated by the combined
        // run's.
        let eager = validate_set(&ts, 4, 3, PolicyChoice::Eager, ReleaseChoice::Sync);
        let lazy = validate_set(&ts, 4, 3, PolicyChoice::Lazy, ReleaseChoice::Sync);
        for mi in [1usize, 2, 3] {
            let combined = limited.tightness[mi].unwrap();
            assert!(eager.tightness[mi].unwrap() <= combined + 1e-12);
            assert!(lazy.tightness[mi].unwrap() <= combined + 1e-12);
        }
    }

    #[test]
    fn release_models_keep_the_sound_legs_clean() {
        for release in [
            ReleaseChoice::Sync,
            ReleaseChoice::Jitter,
            ReleaseChoice::Sporadic,
        ] {
            for seed in 0..10u64 {
                let mut rng = SmallRng::seed_from_u64(seed);
                let ts = generate_task_set(&mut rng, &group1(2.0));
                let v = validate_set(&ts, 4, 3, PolicyChoice::Both, release);
                assert_eq!(
                    v.hard_violations,
                    0,
                    "seed {seed} release {:?}",
                    release.label()
                );
            }
        }
    }

    /// The bursty pattern violates the sporadic contract, so *no* finding
    /// it produces may ever land in the hard counter — whatever the
    /// simulator observes is a probe data point in the soft columns.
    #[test]
    fn bursty_probe_never_counts_hard_violations() {
        assert!(!ReleaseChoice::Bursty.validates_sporadic());
        for mi in 0..METHODS {
            assert!(
                !is_sound(mi, ReleaseChoice::Bursty),
                "{}: no method is on the hook outside the sporadic model",
                Method::ALL[mi]
            );
        }
        for seed in 0..10u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let ts = generate_task_set(&mut rng, &group1(2.0));
            let v = validate_set(&ts, 4, 3, PolicyChoice::Both, ReleaseChoice::Bursty);
            assert_eq!(
                v.hard_violations, 0,
                "seed {seed}: bursty findings are soft"
            );
        }
    }

    #[test]
    fn bursty_panel_is_registered_with_its_own_seed() {
        let panel = ValidatePanel::Release(ReleaseChoice::Bursty);
        assert!(ValidatePanel::all().contains(&panel));
        assert_eq!(panel.name(), "validate_release_bursty");
        assert_eq!(panel.default_release(), ReleaseChoice::Bursty);
        let seeds: Vec<u64> = ValidatePanel::all().iter().map(|p| p.seed()).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "panel seed collision");
    }

    #[test]
    fn random_sets_validate_with_zero_violations() {
        for seed in 0..30u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let ts = generate_task_set(&mut rng, &group1(2.0));
            let v = validate_set(&ts, 4, 3, PolicyChoice::Both, ReleaseChoice::Sync);
            assert_eq!(v.hard_violations, 0, "seed {seed}");
            assert_eq!(v.lp_misses, 0, "seed {seed}");
        }
    }

    #[test]
    fn small_panel_runs_clean_and_streams_in_order() {
        let options = ValidateOptions {
            sets_per_point: 4,
            ..ValidateOptions::default()
        };
        let mut xs = Vec::new();
        ValidatePanel::Chains.run_into(&options, Jobs::serial(), &mut |p: &ValidatePoint| {
            xs.push(p.x);
            assert_eq!(p.violations, 0);
            assert_eq!(p.release, ReleaseChoice::Sync);
        });
        assert_eq!(xs.len(), 9);
        assert!(xs.windows(2).all(|w| w[0] < w[1]), "points in x order");
    }

    #[test]
    fn release_panels_default_to_their_pattern_and_honour_overrides() {
        let options = ValidateOptions {
            sets_per_point: 2,
            ..ValidateOptions::default()
        };
        let panel = ValidatePanel::Release(ReleaseChoice::Jitter);
        assert_eq!(panel.name(), "validate_release_jitter");
        assert_eq!(panel.default_release(), ReleaseChoice::Jitter);
        let result = panel.run(&options, Jobs::serial());
        assert_eq!(result.total_violations(), 0);
        assert!(result
            .points
            .iter()
            .all(|p| p.release == ReleaseChoice::Jitter));
        // An explicit --release override wins over the panel default.
        let overridden = ValidatePanel::Cores(2).run(
            &ValidateOptions {
                sets_per_point: 2,
                release: Some(ReleaseChoice::Sporadic),
                ..ValidateOptions::default()
            },
            Jobs::serial(),
        );
        assert!(overridden
            .points
            .iter()
            .all(|p| p.release == ReleaseChoice::Sporadic));
        assert_eq!(overridden.total_violations(), 0);
    }

    #[test]
    fn csv_row_matches_header_width() {
        let options = ValidateOptions {
            sets_per_point: 3,
            ..ValidateOptions::default()
        };
        let result = ValidatePanel::Cores(2).run(&options, Jobs::serial());
        assert_eq!(result.cores, 2);
        assert_eq!(result.total_violations(), 0);
        let header = csv_header("utilization");
        for p in &result.points {
            assert_eq!(p.csv_cells().len(), header.len());
        }
        let csv = result.to_csv("utilization");
        assert_eq!(csv.lines().count(), result.points.len() + 1);
        assert!(csv.starts_with("utilization,release,jitter,achieved_utilization,fp_ideal_pct"));
    }

    /// The jitter column carries the per-task fraction of each release
    /// pattern, and the release panels report their own pattern's value.
    #[test]
    fn jitter_column_reflects_the_release_pattern() {
        assert_eq!(ReleaseChoice::Sync.jitter_fraction(), 0.0);
        assert_eq!(ReleaseChoice::Jitter.jitter_fraction(), 0.1);
        assert_eq!(ReleaseChoice::Sporadic.jitter_fraction(), 1.0);
        // Bursty is deterministic: the jitter column reports *random*
        // jitter only, the release column carries the pattern.
        assert_eq!(ReleaseChoice::Bursty.jitter_fraction(), 0.0);
        let options = ValidateOptions {
            sets_per_point: 2,
            ..ValidateOptions::default()
        };
        let result = ValidatePanel::Release(ReleaseChoice::Sporadic).run(&options, Jobs::serial());
        assert!(result.points.iter().all(|p| p.jitter == 1.0));
        for p in &result.points {
            assert_eq!(p.csv_cells()[2], "1.0");
        }
    }

    /// Satellite bugfix pinning: a counterexample witness longer than the
    /// bounded trace is flagged as truncated; a short witness is not.
    #[test]
    fn truncated_counterexample_traces_are_counted() {
        let ts = lp_counterexample_task_set();
        // The eager-LP exceedance reproduces at any horizon; at 2500 max
        // periods its witness trace overflows the bounded capacity.
        let long = validate_set(&ts, 2, 2500, PolicyChoice::Eager, ReleaseChoice::Sync);
        assert!(long.lp_exceedances > 0);
        assert!(long.truncated_traces > 0, "long witness must be truncated");
        let short = validate_set(&ts, 2, 3, PolicyChoice::Eager, ReleaseChoice::Sync);
        assert!(short.lp_exceedances > 0);
        assert_eq!(short.truncated_traces, 0, "short witness fits the trace");
    }
}
