//! Counterexample forensics: deterministic ASCII rendering of the witness
//! schedule behind the frozen LP counterexample.
//!
//! `repro validate` found (and [`rta_model::examples::lp_counterexample_task_set`]
//! froze) a two-task set on `m = 2` where the paper's eager-LP blocking
//! bound is optimistic: LP-ILP and LP-max certify a response bound of
//! 300.5 for the high-priority task, yet the limited-preemptive simulation
//! observes a response of 304. This module replays that simulation with
//! trace recording on and renders the schedule as an ASCII Gantt chart
//! ([`rta_sim::Trace::chart`]) — per-core occupancy lanes, preemption
//! markers and per-task release/completion/deadline-miss rows.
//!
//! The rendering is deterministic end to end (seeded simulation, no
//! clocks, fixed tie-breaks), so CI pins it as a golden file: a change to
//! the simulator, the policy or the renderer that moves the witness
//! schedule shows up as a byte diff, not a silent drift.

use rta_sim::{ChartOptions, PreemptionPolicy, SimRequest};

/// The LP-ILP/LP-max response bound of the counterexample's high-priority
/// task, as rendered by `repro validate` (scaled value 601/2).
pub const LP_BOUND: &str = "300.5";

/// Period spans of the blocking task simulated for the witness schedule —
/// enough for the interference pattern that beats the bound to appear.
pub const HORIZON_SPANS: u64 = 3;

/// The replayed counterexample: the rendered chart plus the headline
/// numbers the caller prints around it.
pub struct CounterexampleTrace {
    /// The ASCII Gantt chart of the witness schedule.
    pub chart: String,
    /// Observed worst response of the task under analysis (the bound says
    /// at most 300.5).
    pub observed_response: u64,
    /// Simulated deadline misses across both tasks (the counterexample
    /// beats the *bound*, not the deadline: expected 0).
    pub deadline_misses: u64,
}

/// Replays the frozen counterexample under the limited-preemptive policy
/// and renders its witness schedule `width` columns wide.
///
/// # Panics
///
/// Panics if the frozen task set no longer simulates with a trace — that
/// is a regression in the simulator, not an input error.
pub fn counterexample_trace(width: usize) -> CounterexampleTrace {
    let ts = rta_model::examples::lp_counterexample_task_set();
    let horizon = HORIZON_SPANS
        * ts.tasks()
            .iter()
            .map(|t| t.period())
            .max()
            .expect("the frozen set is non-empty");
    let outcome = SimRequest::new(2, horizon)
        .with_policy(PreemptionPolicy::LimitedPreemptive)
        .with_trace(true)
        .evaluate(&ts);
    let trace = outcome.trace().expect("trace recording was requested");
    let options = ChartOptions {
        width,
        deadlines: ts.tasks().iter().map(|t| t.deadline()).collect(),
        ..Default::default()
    };
    CounterexampleTrace {
        chart: trace.chart(2, &options),
        observed_response: outcome.max_response(0),
        deadline_misses: outcome.total_deadline_misses(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline numbers of the frozen counterexample are part of its
    /// identity: the observed response must keep beating the LP bound.
    #[test]
    fn counterexample_still_beats_the_lp_bound() {
        let report = counterexample_trace(96);
        assert_eq!(report.observed_response, 304);
        assert_eq!(report.deadline_misses, 0);
        assert!(report.chart.contains("core 0"));
        assert!(report.chart.contains("core 1"));
    }

    /// Rendering is a pure function of the frozen inputs.
    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(
            counterexample_trace(96).chart,
            counterexample_trace(96).chart
        );
    }
}
