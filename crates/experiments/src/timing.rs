//! The runtime experiment (paper Section VI-B, last paragraph).
//!
//! The paper reports the average wall-clock time of a positive LP-ILP
//! schedulability test: 0.45 s (`m = 4`), 4.75 s (`m = 8`) and 43 min
//! (`m = 16`) in MATLAB + CPLEX. We reproduce the *trend* (cost growing
//! steeply with `m`, driven by the `p(m)` execution scenarios and the
//! per-task `µ` searches); absolute numbers are not comparable across
//! implementations — see EXPERIMENTS.md.

use crate::set_seed;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rta_analysis::{analyze, AnalysisConfig, Method};
use rta_taskgen::{generate_task_set, group1};
use std::time::Instant;

/// Measured average runtime for one platform size.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingRow {
    /// Core count.
    pub cores: usize,
    /// Average seconds per LP-ILP analysis over accepted (schedulable)
    /// task sets.
    pub lp_ilp_seconds: f64,
    /// Average seconds per LP-max analysis (same sets).
    pub lp_max_seconds: f64,
    /// Average seconds per FP-ideal analysis (same sets).
    pub fp_ideal_seconds: f64,
    /// How many positively-answered sets the averages cover.
    pub samples: usize,
}

/// Runs the timing experiment for each core count.
///
/// Mirrors the paper's setup: random group-1 task sets at a utilization
/// where the LP-ILP test answers positively (we use `0.3·m`, inside the
/// schedulable band of our calibrated generator); only positive answers are
/// timed (the paper times "a positive scheduling answer").
pub fn run(core_counts: &[usize], samples_per_m: usize, seed: u64) -> Vec<TimingRow> {
    core_counts
        .iter()
        .map(|&cores| {
            let target = cores as f64 * 0.3;
            let mut totals = [0.0f64; 3];
            let mut accepted = 0usize;
            let mut attempt = 0usize;
            while accepted < samples_per_m && attempt < samples_per_m * 20 {
                let mut rng = SmallRng::seed_from_u64(set_seed(seed, cores, attempt));
                attempt += 1;
                let ts = generate_task_set(&mut rng, &group1(target));
                // Time LP-ILP first; only keep positively-answered sets.
                let start = Instant::now();
                let ilp = analyze(&ts, &AnalysisConfig::new(cores, Method::LpIlp));
                let ilp_time = start.elapsed().as_secs_f64();
                if !ilp.schedulable {
                    continue;
                }
                let start = Instant::now();
                let _ = analyze(&ts, &AnalysisConfig::new(cores, Method::LpMax));
                let max_time = start.elapsed().as_secs_f64();
                let start = Instant::now();
                let _ = analyze(&ts, &AnalysisConfig::new(cores, Method::FpIdeal));
                let fp_time = start.elapsed().as_secs_f64();
                totals[0] += ilp_time;
                totals[1] += max_time;
                totals[2] += fp_time;
                accepted += 1;
            }
            let n = accepted.max(1) as f64;
            TimingRow {
                cores,
                lp_ilp_seconds: totals[0] / n,
                lp_max_seconds: totals[1] / n,
                fp_ideal_seconds: totals[2] / n,
                samples: accepted,
            }
        })
        .collect()
}

/// ASCII rendering of the timing rows.
pub fn render(rows: &[TimingRow]) -> String {
    let header = ["m", "LP-ILP (s)", "LP-max (s)", "FP-ideal (s)", "samples"];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.cores.to_string(),
                format!("{:.6}", r.lp_ilp_seconds),
                format!("{:.6}", r.lp_max_seconds),
                format!("{:.6}", r.fp_ideal_seconds),
                r.samples.to_string(),
            ]
        })
        .collect();
    crate::ascii::table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_produces_positive_rows() {
        let rows = run(&[2, 4], 3, 1);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.samples > 0, "m = {}", row.cores);
            assert!(row.lp_ilp_seconds > 0.0);
        }
        assert!(render(&rows).contains("LP-ILP"));
    }
}
