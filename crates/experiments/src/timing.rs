//! The runtime experiment (paper Section VI-B, last paragraph).
//!
//! The paper reports the average wall-clock time of a positive LP-ILP
//! schedulability test: 0.45 s (`m = 4`), 4.75 s (`m = 8`) and 43 min
//! (`m = 16`) in MATLAB + CPLEX. We reproduce the *trend* (cost growing
//! steeply with `m`, driven by the `p(m)` execution scenarios and the
//! per-task `µ` searches); absolute numbers are not comparable across
//! implementations — see EXPERIMENTS.md.

use crate::campaign;
use crate::exec::Jobs;
use crate::set_seed;
use rta_analysis::{analyze, AnalysisConfig, AnalysisRequest, Method};
use rta_taskgen::group1;
use std::time::Instant;

/// Measured average runtime for one platform size.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingRow {
    /// Core count.
    pub cores: usize,
    /// Average seconds per LP-ILP analysis over accepted (schedulable)
    /// task sets.
    pub lp_ilp_seconds: f64,
    /// Average seconds per LP-max analysis (same sets).
    pub lp_max_seconds: f64,
    /// Average seconds per FP-ideal analysis (same sets).
    pub fp_ideal_seconds: f64,
    /// Average seconds for all three methods batched through one shared
    /// analysis cache (a multi-method [`AnalysisRequest`], the Figure 2
    /// hot path) — compare
    /// with the sum of the three per-method columns for the cache win.
    pub batched_seconds: f64,
    /// How many positively-answered sets the averages cover.
    pub samples: usize,
}

/// Runs the timing experiment for each core count with one worker per core
/// (see [`run_with_jobs`]).
pub fn run(core_counts: &[usize], samples_per_m: usize, seed: u64) -> Vec<TimingRow> {
    run_with_jobs(core_counts, samples_per_m, seed, Jobs::Auto)
}

/// Runs the timing experiment with an explicit worker budget.
///
/// Mirrors the paper's setup: random group-1 task sets at a utilization
/// where the LP-ILP test answers positively (we use `0.3·m`, inside the
/// schedulable band of our calibrated generator); only positive answers are
/// timed (the paper times "a positive scheduling answer").
///
/// Candidate generation fans out in chunks of attempts, but a row always
/// averages exactly the **first** `samples_per_m` positively-answered
/// attempts in attempt order — the same sample set the serial driver
/// picks, so `samples` and acceptance decisions are reproducible. (The
/// measured wall-clock averages are inherently noisier with concurrent
/// workers on a busy machine; use `--jobs 1` for publication-grade
/// numbers.)
pub fn run_with_jobs(
    core_counts: &[usize],
    samples_per_m: usize,
    seed: u64,
    jobs: Jobs,
) -> Vec<TimingRow> {
    core_counts
        .iter()
        .map(|&cores| {
            let target = cores as f64 * 0.3;
            let budget = samples_per_m * 20;
            // Speculate one chunk of attempts at a time: large enough to
            // keep every worker busy, small enough to waste little work
            // once the acceptance target is reached.
            let chunk = jobs.worker_count().max(1) * 2;
            let mut totals = [0.0f64; 4];
            let mut accepted = 0usize;
            let mut attempt = 0usize;
            while accepted < samples_per_m && attempt < budget {
                let hi = (attempt + chunk).min(budget);
                let attempts: Vec<usize> = (attempt..hi).collect();
                let outcomes = campaign::run_cells(&attempts, jobs, |&a| {
                    measure_attempt(cores, target, seed, a)
                });
                // Consume in attempt order; acceptance is deterministic.
                for times in outcomes.into_iter().flatten() {
                    if accepted == samples_per_m {
                        break;
                    }
                    for (total, t) in totals.iter_mut().zip(times) {
                        *total += t;
                    }
                    accepted += 1;
                }
                attempt = hi;
            }
            let n = accepted.max(1) as f64;
            TimingRow {
                cores,
                lp_ilp_seconds: totals[0] / n,
                lp_max_seconds: totals[1] / n,
                fp_ideal_seconds: totals[2] / n,
                batched_seconds: totals[3] / n,
                samples: accepted,
            }
        })
        .collect()
}

/// Generates and analyzes one candidate task set;
/// `Some([ilp, max, fp, batched])` seconds when the LP-ILP test answers
/// positively, `None` otherwise. The first three time stand-alone
/// [`analyze`] calls (the paper's per-method quantity); the fourth times
/// one bounds-carrying [`AnalysisRequest`] over the **same three paper
/// methods**
/// ([`Method::PAPER`], deliberately not LP-sound) sharing a single cache,
/// so the batched column stays comparable with the sum of the three
/// stand-alone ones.
fn measure_attempt(cores: usize, target: f64, seed: u64, attempt: usize) -> Option<[f64; 4]> {
    // Streaming generation on the claiming worker's scratch (bit-identical
    // to a fresh `generate_task_set` with this seed).
    let ts = campaign::generate_on_worker(set_seed(seed, cores, attempt), &group1(target));
    // Time LP-ILP first; only keep positively-answered sets.
    let start = Instant::now();
    let ilp = analyze(&ts, &AnalysisConfig::new(cores, Method::LpIlp));
    let ilp_time = start.elapsed().as_secs_f64();
    if !ilp.schedulable {
        return None;
    }
    let start = Instant::now();
    let _ = analyze(&ts, &AnalysisConfig::new(cores, Method::LpMax));
    let max_time = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let _ = analyze(&ts, &AnalysisConfig::new(cores, Method::FpIdeal));
    let fp_time = start.elapsed().as_secs_f64();
    let request = AnalysisRequest::new(cores)
        .with_methods(Method::PAPER.iter().copied())
        .with_bounds(true);
    let start = Instant::now();
    let _ = request.evaluate(&ts);
    let batched_time = start.elapsed().as_secs_f64();
    Some([ilp_time, max_time, fp_time, batched_time])
}

/// ASCII rendering of the timing rows.
pub fn render(rows: &[TimingRow]) -> String {
    let header = [
        "m",
        "LP-ILP (s)",
        "LP-max (s)",
        "FP-ideal (s)",
        "batched (s)",
        "samples",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.cores.to_string(),
                format!("{:.6}", r.lp_ilp_seconds),
                format!("{:.6}", r.lp_max_seconds),
                format!("{:.6}", r.fp_ideal_seconds),
                format!("{:.6}", r.batched_seconds),
                r.samples.to_string(),
            ]
        })
        .collect();
    crate::ascii::table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_produces_positive_rows() {
        let rows = run(&[2, 4], 3, 1);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.samples > 0, "m = {}", row.cores);
            assert!(row.lp_ilp_seconds > 0.0);
            assert!(row.batched_seconds > 0.0);
        }
        assert!(render(&rows).contains("LP-ILP"));
        assert!(render(&rows).contains("batched"));
    }
}
