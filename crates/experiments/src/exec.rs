//! The campaign execution substrate: how sweep work is spread over cores.
//!
//! Every experiment in this crate reduces to "evaluate a list of
//! independent, deterministic jobs" — one schedulability test per generated
//! task set, seeded purely from its sweep coordinates (see
//! [`set_seed`](crate::set_seed)). [`par_map`] runs such a list either
//! serially or on a rayon thread pool, and always returns results in
//! **input order**, so any fold over them is bit-identical regardless of
//! the worker count. That property is what lets `repro --jobs 1` and
//! `repro --jobs 32` print the same bytes.
//!
//! Parallelism lives behind the crate's `parallel` feature (on by
//! default): with the feature disabled this module compiles to the plain
//! serial loop and the crate has no threading dependency at all, keeping
//! `rta-analysis` and the rest of the analysis stack dependency-light.

/// How many workers a campaign may use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Jobs {
    /// One worker per available core (the default).
    #[default]
    Auto,
    /// Exactly this many workers; `0` and `1` both mean serial.
    Count(usize),
}

impl Jobs {
    /// Parses the `--jobs N` CLI value (`0` = auto).
    pub fn from_flag(n: usize) -> Self {
        if n == 0 {
            Jobs::Auto
        } else {
            Jobs::Count(n)
        }
    }

    /// The serial driver.
    pub fn serial() -> Self {
        Jobs::Count(1)
    }

    /// Whether this build can actually run workers in parallel (the
    /// `parallel` feature is enabled).
    pub fn parallelism_available() -> bool {
        cfg!(feature = "parallel")
    }

    /// The worker count this setting resolves to on this machine. Without
    /// the `parallel` feature everything resolves to 1.
    pub fn worker_count(self) -> usize {
        #[cfg(feature = "parallel")]
        {
            match self {
                Jobs::Auto => rayon::current_num_threads(),
                Jobs::Count(n) => n.max(1),
            }
        }
        #[cfg(not(feature = "parallel"))]
        {
            let _ = self;
            1
        }
    }
}

/// Maps `f` over `items`, spreading the calls over [`Jobs::worker_count`]
/// workers, and returns the results in input order.
///
/// `f` must be pure modulo interior timing (it may measure wall-clock time,
/// as the timing experiment does, but the returned *decisions* must depend
/// only on the input) — that is what makes the serial and parallel drivers
/// interchangeable.
pub fn par_map<T, R, F>(items: &[T], jobs: Jobs, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = jobs.worker_count().min(items.len());
    #[cfg(feature = "parallel")]
    if workers > 1 {
        use rayon::prelude::*;
        return rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .build()
            .expect("worker pool construction cannot fail")
            .install(|| items.par_iter().map(&f).collect());
    }
    let _ = workers;
    items.iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        assert_eq!(Jobs::from_flag(0), Jobs::Auto);
        assert_eq!(Jobs::from_flag(1), Jobs::Count(1));
        assert_eq!(Jobs::from_flag(8), Jobs::Count(8));
        assert_eq!(Jobs::serial().worker_count(), 1);
        assert!(Jobs::Auto.worker_count() >= 1);
    }

    #[test]
    fn par_map_preserves_order_for_every_driver() {
        let items: Vec<u64> = (0..500).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for jobs in [Jobs::serial(), Jobs::Count(4), Jobs::Auto] {
            assert_eq!(par_map(&items, jobs, |&x| x * 3 + 1), expected);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = par_map(&[], Jobs::Auto, |x: &u64| *x);
        assert!(out.is_empty());
    }
}
