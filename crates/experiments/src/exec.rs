//! The campaign execution substrate: how sweep work is spread over cores.
//!
//! Every experiment in this crate reduces to "evaluate a list of
//! independent, deterministic jobs" — one schedulability test per generated
//! task set, seeded purely from its sweep coordinates (see
//! [`set_seed`](crate::set_seed)). Two drivers run such lists:
//!
//! * [`par_map`] evaluates a list and returns all results in **input
//!   order** (the right shape when the caller folds the whole batch, as
//!   the tables and timing experiments do);
//! * [`stream_indexed`] is the **order-preserving worker channel**: it
//!   delivers each result to a consumer callback *on the calling thread,
//!   in index order, as soon as it is ready*, holding at most a bounded
//!   reorder window in memory — so a sweep of a million cells feeds its
//!   per-point fold (and the streaming [`CsvSink`](crate::csv::CsvSink))
//!   without ever materializing the result list.
//!
//! Both drivers make the same promise: results reach the caller in input
//! order, so any fold over them is bit-identical regardless of the worker
//! count. That property is what lets `repro --jobs 1` and `repro --jobs
//! 32` print the same bytes.
//!
//! Parallelism lives behind the crate's `parallel` feature (on by
//! default): with the feature disabled this module compiles to the plain
//! serial loop and the crate has no threading dependency at all, keeping
//! `rta-analysis` and the rest of the analysis stack dependency-light.

/// How many workers a campaign may use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Jobs {
    /// One worker per available core (the default).
    #[default]
    Auto,
    /// Exactly this many workers; `0` and `1` both mean serial.
    Count(usize),
}

impl Jobs {
    /// Parses the `--jobs N` CLI value (`0` = auto).
    pub fn from_flag(n: usize) -> Self {
        if n == 0 {
            Jobs::Auto
        } else {
            Jobs::Count(n)
        }
    }

    /// The serial driver.
    pub fn serial() -> Self {
        Jobs::Count(1)
    }

    /// Whether this build can actually run workers in parallel (the
    /// `parallel` feature is enabled).
    pub fn parallelism_available() -> bool {
        cfg!(feature = "parallel")
    }

    /// The worker count this setting resolves to on this machine. Without
    /// the `parallel` feature everything resolves to 1.
    pub fn worker_count(self) -> usize {
        #[cfg(feature = "parallel")]
        {
            match self {
                Jobs::Auto => rayon::current_num_threads(),
                Jobs::Count(n) => n.max(1),
            }
        }
        #[cfg(not(feature = "parallel"))]
        {
            let _ = self;
            1
        }
    }
}

/// Maps `f` over `items`, spreading the calls over [`Jobs::worker_count`]
/// workers, and returns the results in input order.
///
/// `f` must be pure modulo interior timing (it may measure wall-clock time,
/// as the timing experiment does, but the returned *decisions* must depend
/// only on the input) — that is what makes the serial and parallel drivers
/// interchangeable.
pub fn par_map<T, R, F>(items: &[T], jobs: Jobs, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = jobs.worker_count().min(items.len());
    #[cfg(feature = "parallel")]
    if workers > 1 {
        use rayon::prelude::*;
        return rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .build()
            .expect("worker pool construction cannot fail")
            .install(|| items.par_iter().map(&f).collect());
    }
    let _ = workers;
    items.iter().map(f).collect()
}

/// Streams `len` independent evaluations over the worker pool, delivering
/// each result to `consume` **on the calling thread, in index order**, as
/// soon as it (and all its predecessors) is ready.
///
/// Unlike [`par_map`] this never materializes the result list: at most a
/// bounded reorder window (a small multiple of the worker count) of
/// results exists at any instant, with workers back-pressured once they
/// run that far ahead of the consumer — the memory footprint of a sweep no
/// longer grows with its cell count. Work indices are claimed dynamically,
/// so load balancing matches [`par_map`]'s.
///
/// `eval` must be pure modulo interior timing (same contract as
/// [`par_map`]); `consume` runs strictly sequentially and may hold `&mut`
/// state — the per-point folds and CSV sinks of a campaign live there.
pub fn stream_indexed<R, F, C>(len: usize, jobs: Jobs, eval: F, mut consume: C)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    C: FnMut(usize, R),
{
    let workers = jobs.worker_count().min(len);
    #[cfg(feature = "parallel")]
    if workers > 1 {
        stream_parallel(len, workers, &eval, &mut consume);
        return;
    }
    let _ = workers;
    for index in 0..len {
        consume(index, eval(index));
    }
}

#[cfg(feature = "parallel")]
fn stream_parallel<R, F, C>(len: usize, workers: usize, eval: &F, consume: &mut C)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    C: FnMut(usize, R),
{
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex};

    /// Consumer-side cursor plus the reorder buffer, under one lock so the
    /// condition variable's predicate is race-free. `dead` releases every
    /// waiter when either side unwinds (a blocked worker must never
    /// deadlock the scope's implicit join).
    struct Shared<R> {
        buffer: BTreeMap<usize, R>,
        emitted: usize,
        dead: bool,
    }

    let window = (2 * workers).max(16);
    let shared = Mutex::new(Shared::<R> {
        buffer: BTreeMap::new(),
        emitted: 0,
        dead: false,
    });
    let signal = Condvar::new();
    let next_claim = AtomicUsize::new(0);

    struct Release<'a, R> {
        shared: &'a Mutex<Shared<R>>,
        signal: &'a Condvar,
        only_on_panic: bool,
    }
    impl<R> Drop for Release<'_, R> {
        fn drop(&mut self) {
            if self.only_on_panic && !std::thread::panicking() {
                return;
            }
            if let Ok(mut guard) = self.shared.lock() {
                guard.dead = true;
            }
            self.signal.notify_all();
        }
    }

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // A worker that unwinds mid-`eval` wakes the consumer (and
                // its peers) instead of leaving them waiting on a result
                // that will never arrive.
                let _abort = Release {
                    shared: &shared,
                    signal: &signal,
                    only_on_panic: true,
                };
                loop {
                    let index = next_claim.fetch_add(1, Ordering::Relaxed);
                    if index >= len {
                        break;
                    }
                    {
                        // Backpressure: stay within `window` of the consumer.
                        let mut guard = shared.lock().expect("stream state poisoned");
                        while !guard.dead && index >= guard.emitted.saturating_add(window) {
                            guard = signal.wait(guard).expect("stream state poisoned");
                        }
                        if guard.dead {
                            break;
                        }
                    }
                    let value = eval(index);
                    shared
                        .lock()
                        .expect("stream state poisoned")
                        .buffer
                        .insert(index, value);
                    signal.notify_all();
                }
            });
        }
        // If `consume` unwinds, every blocked worker is released before the
        // scope joins; on normal exit this is a no-op (all work is done).
        let _release = Release {
            shared: &shared,
            signal: &signal,
            only_on_panic: false,
        };
        for index in 0..len {
            let value = {
                let mut guard = shared.lock().expect("stream state poisoned");
                loop {
                    if let Some(value) = guard.buffer.remove(&index) {
                        guard.emitted = index + 1;
                        break value;
                    }
                    assert!(!guard.dead, "stream worker panicked");
                    guard = signal.wait(guard).expect("stream state poisoned");
                }
            };
            signal.notify_all();
            consume(index, value);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        assert_eq!(Jobs::from_flag(0), Jobs::Auto);
        assert_eq!(Jobs::from_flag(1), Jobs::Count(1));
        assert_eq!(Jobs::from_flag(8), Jobs::Count(8));
        assert_eq!(Jobs::serial().worker_count(), 1);
        assert!(Jobs::Auto.worker_count() >= 1);
    }

    #[test]
    fn par_map_preserves_order_for_every_driver() {
        let items: Vec<u64> = (0..500).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for jobs in [Jobs::serial(), Jobs::Count(4), Jobs::Auto] {
            assert_eq!(par_map(&items, jobs, |&x| x * 3 + 1), expected);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = par_map(&[], Jobs::Auto, |x: &u64| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn stream_delivers_in_index_order_for_every_driver() {
        for jobs in [Jobs::serial(), Jobs::Count(3), Jobs::Count(8), Jobs::Auto] {
            let mut seen = Vec::new();
            stream_indexed(
                400,
                jobs,
                |i| i as u64 * 7 + 1,
                |i, v| {
                    assert_eq!(v, i as u64 * 7 + 1);
                    seen.push(i);
                },
            );
            assert_eq!(seen, (0..400).collect::<Vec<_>>(), "jobs = {jobs:?}");
        }
    }

    #[test]
    fn stream_consumer_holds_mutable_state() {
        // The whole point of the streaming driver: the fold lives in a
        // FnMut on the calling thread.
        let mut sum = 0u64;
        stream_indexed(100, Jobs::Count(4), |i| i as u64, |_, v| sum += v);
        assert_eq!(sum, 99 * 100 / 2);
    }

    #[test]
    fn stream_bounds_the_reorder_window() {
        // With a slow consumer, workers must not race arbitrarily far
        // ahead: the largest evaluated index can exceed the consumed
        // prefix by at most the window (2·workers, floored at 16) plus
        // the workers' in-flight claims.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let workers = 4usize;
        let max_evaluated = AtomicUsize::new(0);
        let mut consumed = 0usize;
        stream_indexed(
            600,
            Jobs::Count(workers),
            |i| {
                max_evaluated.fetch_max(i, Ordering::Relaxed);
                i
            },
            |i, _| {
                let ahead = max_evaluated.load(Ordering::Relaxed).saturating_sub(i);
                assert!(
                    ahead <= 16 + 2 * workers,
                    "worker ran {ahead} cells ahead of the consumer"
                );
                consumed += 1;
            },
        );
        assert_eq!(consumed, 600);
    }

    #[test]
    fn stream_empty_is_a_no_op() {
        stream_indexed(0, Jobs::Auto, |_| 0u8, |_, _| panic!("no cells to consume"));
    }
}
