//! The Figure 2 schedulability sweeps (and the group-2 variant).
//!
//! For each utilization point, `sets_per_point` random task sets are
//! generated **and analyzed in the same streaming cell** of the campaign
//! engine ([`crate::campaign`]): the worker that claims a coordinate
//! generates its task set on a reusable per-worker scratch and evaluates
//! all six analyses (the paper's FP-ideal, LP-ILP and LP-max, the
//! corrected LP-sound, and the published fully-preemptive competitors
//! Long-paths and Gen-sporadic) through the dominance-short-circuited
//! verdict path, sharing one analysis cache per set; the reported value is
//! the percentage of schedulable sets — exactly the paper's Figure 2 (300
//! sets per point there), extended by the competitor columns. Results are
//! reproducible bit-for-bit regardless of parallelism; the worker budget
//! is a [`Jobs`] value ([`run_with_jobs`]), surfaced on the `repro` CLI as
//! `--jobs`.

use crate::ascii;
use crate::campaign::{self, SweepSpec};
use crate::exec::Jobs;
use rta_analysis::{Method, ScenarioSpace};
use rta_taskgen::TaskSetConfig;

/// Number of analysis methods every per-method array in this module spans
/// (always [`Method::ALL`] order).
pub(crate) const METHODS: usize = Method::ALL.len();

/// Configuration of one sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Core count `m`.
    pub cores: usize,
    /// Utilization points (x-axis).
    pub utilizations: Vec<f64>,
    /// Random task sets per point (300 in the paper).
    pub sets_per_point: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Task-set generator (the paper's group 1 or group 2).
    pub generator: fn(f64) -> TaskSetConfig,
}

impl SweepConfig {
    /// The paper's Figure 2 panel for `m` cores: utilization 1 → m in steps
    /// of m/12 (13 points, mirroring the plot density), 300 sets per point,
    /// group-1 task sets.
    pub fn paper_panel(cores: usize) -> Self {
        Self {
            cores,
            utilizations: campaign::utilization_grid(cores),
            sets_per_point: 300,
            seed: 0xDA7E_2016,
            generator: rta_taskgen::group1,
        }
    }

    /// Scales the number of sets per point (for quick runs and benches).
    #[must_use]
    pub fn with_sets_per_point(mut self, sets: usize) -> Self {
        self.sets_per_point = sets;
        self
    }

    /// Switches the generator (e.g. to [`rta_taskgen::group2`]).
    #[must_use]
    pub fn with_generator(mut self, generator: fn(f64) -> TaskSetConfig) -> Self {
        self.generator = generator;
        self
    }
}

/// One point of the sweep: the percentage of schedulable task sets per
/// method, in [`Method::ALL`] order (FP-ideal, LP-ILP, LP-max, LP-sound,
/// Long-paths, Gen-sporadic).
#[derive(Clone, Debug, PartialEq)]
pub struct SweepPoint {
    /// X coordinate (nominal target utilization, or task count for the
    /// task-count variant).
    pub x: f64,
    /// Mean utilization actually achieved by the generated sets (can fall
    /// below the nominal target when the per-task utilization cap
    /// saturates; see `rta_taskgen::PeriodModel::SlackFactor`).
    pub achieved_utilization: f64,
    /// Schedulable percentage per method.
    pub schedulable_pct: [f64; METHODS],
}

impl SweepPoint {
    /// The point as CSV cells, in [`csv_header`] column order — shared by
    /// the in-memory [`SweepResult::to_csv`] and the streaming
    /// [`CsvSink`](crate::csv::CsvSink) path so both emit identical bytes.
    pub fn csv_cells(&self) -> Vec<String> {
        let mut cells = vec![
            format!("{:.4}", self.x),
            format!("{:.4}", self.achieved_utilization),
        ];
        for mi in 0..METHODS {
            cells.push(format!("{:.2}", self.schedulable_pct[mi]));
        }
        cells
    }
}

/// The CSV header of a schedulability sweep, with the given x-axis label.
pub fn csv_header(x_label: &str) -> [&str; 8] {
    [
        x_label,
        "achieved_utilization",
        "fp_ideal_pct",
        "lp_ilp_pct",
        "lp_max_pct",
        "lp_sound_pct",
        "long_paths_pct",
        "gen_sporadic_pct",
    ]
}

/// Result of a full sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepResult {
    /// Core count the sweep ran on.
    pub cores: usize,
    /// The curve points.
    pub points: Vec<SweepPoint>,
}

/// Runs the sweep with one worker per core (see [`run_with_jobs`]).
pub fn run(config: &SweepConfig) -> SweepResult {
    run_with_jobs(config, Jobs::Auto)
}

/// Runs the sweep strictly serially — the reference the parallel driver is
/// checked against (same bytes, see `tests/determinism.rs`).
pub fn run_serial(config: &SweepConfig) -> SweepResult {
    run_with_jobs(config, Jobs::serial())
}

/// Runs the sweep with an explicit worker budget, streaming the
/// `(point, set)` cells over the campaign engine's thread pool.
///
/// Results are **bit-identical across worker counts**: every task set's
/// seed derives only from its sweep coordinates, every evaluation is pure,
/// and the per-point aggregation folds the evaluations in coordinate order
/// no matter which worker produced them.
pub fn run_with_jobs(config: &SweepConfig, jobs: Jobs) -> SweepResult {
    let mut points = Vec::with_capacity(config.utilizations.len());
    run_into(config, jobs, &mut |p: &SweepPoint| points.push(p.clone()));
    SweepResult {
        cores: config.cores,
        points,
    }
}

/// As [`run_with_jobs`], delivering each completed [`SweepPoint`] to
/// `on_point` as soon as its last cell folds — the streaming entry the
/// `repro` CLI feeds its [`CsvSink`](crate::csv::CsvSink) from.
pub fn run_into(config: &SweepConfig, jobs: Jobs, on_point: &mut dyn FnMut(&SweepPoint)) {
    campaign::sweep_into(
        &SweepSpec {
            cores: config.cores,
            xs: &config.utilizations,
            sets_per_point: config.sets_per_point,
            seed: config.seed,
            space: ScenarioSpace::PaperExact,
            make_set: |seed, target| {
                campaign::generate_on_worker(seed, &(config.generator)(target))
            },
        },
        jobs,
        on_point,
    );
}

/// The task-count variant (DESIGN.md §5.4): x-axis = number of tasks, total
/// utilization fixed at `cores / 2`.
pub fn run_task_count(config: &SweepConfig, task_counts: &[usize]) -> SweepResult {
    run_task_count_with_jobs(config, task_counts, Jobs::Auto)
}

/// [`run_task_count`] with an explicit worker budget.
pub fn run_task_count_with_jobs(
    config: &SweepConfig,
    task_counts: &[usize],
    jobs: Jobs,
) -> SweepResult {
    let mut points = Vec::with_capacity(task_counts.len());
    run_task_count_into(config, task_counts, jobs, &mut |p: &SweepPoint| {
        points.push(p.clone())
    });
    SweepResult {
        cores: config.cores,
        points,
    }
}

/// As [`run_task_count_with_jobs`], streaming completed points to
/// `on_point`.
pub fn run_task_count_into(
    config: &SweepConfig,
    task_counts: &[usize],
    jobs: Jobs,
    on_point: &mut dyn FnMut(&SweepPoint),
) {
    let fixed_u = config.cores as f64 / 2.0;
    let xs: Vec<f64> = task_counts.iter().map(|&n| n as f64).collect();
    campaign::sweep_into(
        &SweepSpec {
            cores: config.cores,
            xs: &xs,
            sets_per_point: config.sets_per_point,
            seed: config.seed,
            space: ScenarioSpace::PaperExact,
            make_set: |seed, x| {
                campaign::generate_on_worker_with_count(
                    seed,
                    &(config.generator)(fixed_u),
                    x as usize,
                )
            },
        },
        jobs,
        on_point,
    );
}

impl SweepResult {
    /// ASCII rendering: a table plus per-method sparklines.
    pub fn render(&self, x_label: &str) -> String {
        let header = [
            x_label,
            "achieved U",
            "FP-ideal %",
            "LP-ILP %",
            "LP-max %",
            "LP-sound %",
            "Long-p %",
            "Gen-sp %",
        ];
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                let mut row = vec![
                    format!("{:.2}", p.x),
                    format!("{:.2}", p.achieved_utilization),
                ];
                for mi in 0..METHODS {
                    row.push(format!("{:.1}", p.schedulable_pct[mi]));
                }
                row
            })
            .collect();
        let mut out = ascii::table(&header, &rows);
        for (mi, method) in Method::ALL.iter().enumerate() {
            let curve: Vec<f64> = self.points.iter().map(|p| p.schedulable_pct[mi]).collect();
            out.push_str(&format!(
                "{:>9} {}\n",
                method.label(),
                ascii::sparkline(&curve)
            ));
        }
        out
    }

    /// CSV rendering (same bytes as streaming the points through a
    /// [`CsvSink`](crate::csv::CsvSink) with [`csv_header`]).
    pub fn to_csv(&self, x_label: &str) -> String {
        crate::csv::to_string(
            &csv_header(x_label),
            self.points.iter().map(SweepPoint::csv_cells),
        )
    }

    /// Checks the theorem-backed qualitative shape: at every point,
    /// `LP-max ≤ LP-ILP ≤ FP-ideal` and `LP-sound ≤ FP-ideal` (percentage
    /// of schedulable sets; no per-point ordering connects LP-sound to the
    /// paper's two LP bounds), plus the competitor edges `FP-ideal ≤
    /// Long-paths` (the long-path refinement only ever tightens the Graham
    /// bound, and its rescue can accept sets Graham diverges on) and
    /// `Gen-sporadic ≤ FP-ideal` (its deadline-anchored carry-in dominates
    /// the response-anchored one on accepted prefixes).
    pub fn dominance_holds(&self) -> bool {
        self.points.iter().all(|p| {
            p.schedulable_pct[2] <= p.schedulable_pct[1] + 1e-9
                && p.schedulable_pct[1] <= p.schedulable_pct[0] + 1e-9
                && p.schedulable_pct[3] <= p.schedulable_pct[0] + 1e-9
                && p.schedulable_pct[0] <= p.schedulable_pct[4] + 1e-9
                && p.schedulable_pct[5] <= p.schedulable_pct[0] + 1e-9
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cores: usize, sets: usize) -> SweepConfig {
        SweepConfig::paper_panel(cores).with_sets_per_point(sets)
    }

    #[test]
    fn tiny_sweep_runs_and_dominates() {
        let result = run(&quick(4, 8));
        assert_eq!(result.points.len(), 13);
        assert!(result.dominance_holds());
        // Low utilization is almost always schedulable for FP-ideal.
        assert!(result.points[0].schedulable_pct[0] >= 80.0);
        // Utilization m is rarely schedulable for LP-max.
        assert!(result.points.last().unwrap().schedulable_pct[2] <= 20.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(&quick(4, 6));
        let b = run(&quick(4, 6));
        assert_eq!(a, b);
    }

    #[test]
    fn task_count_variant_runs() {
        let cfg = quick(4, 5);
        let result = run_task_count(&cfg, &[2, 4, 6]);
        assert_eq!(result.points.len(), 3);
        assert_eq!(result.points[0].x, 2.0);
        assert!(result.dominance_holds());
    }

    #[test]
    fn renders_csv_and_table() {
        let result = run(&quick(4, 4));
        let csv = result.to_csv("utilization");
        assert!(csv.starts_with("utilization,achieved_utilization,fp_ideal_pct"));
        assert_eq!(csv.lines().count(), 14);
        let txt = result.render("U");
        assert!(txt.contains("LP-ILP"));
        assert!(txt.contains("FP-ideal"));
    }
}
