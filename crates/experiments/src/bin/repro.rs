//! `repro` — regenerate every table and figure of the paper, plus the
//! campaign panels beyond it.
//!
//! ```text
//! repro <command> [--sets N] [--out DIR] [--samples N] [--jobs N]
//!
//! commands:
//!   table1       Table I   (µ_i[c] of the Figure 1 tasks)
//!   table2       Table II  (execution scenarios e_4)
//!   table3       Table III (ρ_k[s_l], Δ⁴/Δ³, LP-ILP vs LP-max)
//!   fig2a        Figure 2(a): m = 4 utilization sweep
//!   fig2b        Figure 2(b): m = 8 utilization sweep
//!   fig2c        Figure 2(c): m = 16 utilization sweep
//!   fig2c-tasks  Figure 2(c) variant: task-count sweep at U = m/2
//!   group2       group-2 sweep (uniformly parallel task sets)
//!   timing       average analysis runtime for m = 4, 8, 16
//!   sensitivity  generator sensitivity study (DESIGN.md §5.3)
//!   campaign     scenario panels beyond the paper; optional selector:
//!                  deadline  constrained deadlines (D = f·T, f swept)
//!                  chains    chain-heavy task mixtures
//!                  cores     m ∈ {2, 8, 16} utilization sweeps
//!                  cross     PeriodModel × deadline_factor cross panels
//!                  compare   competitor panel: re-streams the deadline/
//!                            chain/core sweeps with per-point acceptance
//!                            CSVs for all six methods (compare_*.csv)
//!                            and folds every cell into the pairwise
//!                            wins/losses matrix (method_matrix.csv);
//!                            byte-identical for any --jobs value
//!                  all       every panel (default); also aggregates the
//!                            LP-ILP vs LP-sound acceptance gap into
//!                            soundness_cost.csv
//!   validate     simulation-backed soundness campaign: analyze each
//!                generated set (per-task bounds, all six methods) AND
//!                simulate it under the eager-/lazy-limited and fully
//!                preemptive policies, check the invariants (accepted ⇒
//!                zero misses, sim max RT ≤ bound; the FP-ideal, LP-sound,
//!                Long-paths and Gen-sporadic legs are hard), report bound
//!                tightness; panels m ∈ {2,4,8,16} + deadline/chain
//!                mixtures + release models (incl. the bursty probe);
//!                optional selector:
//!                cores | deadline | chains | release | all.
//!                Exits non-zero on any hard invariant violation
//!                (including any LP-sound exceedance).
//!   trace        counterexample forensics: simulate the frozen task set
//!                that beats the paper's LP bound (LP-ILP/LP-max 300.5 vs
//!                an observed response of 304 under limited-preemptive
//!                scheduling on m = 2) and render the witness schedule as
//!                a deterministic ASCII Gantt chart — per-core lanes,
//!                preemption markers, release/completion/deadline-miss
//!                rows — to stdout and trace_counterexample.txt in --out
//!   dump-set     print one generated task set as JSON (--seed N --target U)
//!   serve        admission-control daemon: answer accept/reject verdicts
//!                over line-delimited JSON frames on a TCP socket, with a
//!                bounded LRU of analyzed task sets, a bounded connection
//!                pool, idle/frame timeouts and watermark load shedding
//!                (see README, "Serving verdicts" and "Operating the
//!                server"); runs until a client sends {"shutdown":true},
//!                then drains live connections and reports the drain
//!   loadgen      drive a running server with a repeat/fresh request mix
//!                at configurable concurrency; retries transient failures
//!                with capped, deterministically jittered backoff; prints
//!                throughput, cache hit rate, latency percentiles and
//!                retry accounting. With --chaos, runs a seeded script of
//!                hostile client behaviours instead (slowloris, mid-frame
//!                disconnects, malformed/oversized bursts, idle connects)
//!   all          everything above (except dump-set, serve and loadgen)
//!
//! options:
//!   --sets N     task sets per sweep point        (default 300)
//!   --samples N  positive answers per timing row  (default 20)
//!   --out DIR    also write CSV files to DIR      (default out/)
//!   --jobs N     sweep worker threads; 0 = one per core (default 0)
//!   --serial     shorthand for --jobs 1
//!   --horizon N  validate: simulate releases over N spans of the set's
//!                largest period (default 3)
//!   --policy P   validate: limited | eager | lazy | full | both
//!                (default both)
//!   --release R  validate: sync | jitter | sporadic | bursty — overrides
//!                each panel's own release pattern (default: sync
//!                everywhere except the release panels); jitter magnitudes
//!                are per-task fractions of each task's own period (T_i/10
//!                for jitter, T_i for sporadic), reported in the CSV
//!                jitter column. bursty (3 simultaneous releases, rate
//!                preserved) violates the sporadic contract: all findings
//!                become soft probe counters, never hard violations
//!   --addr A     serve/loadgen: socket address (default 127.0.0.1:7431)
//!   --lru N      serve: task sets kept in the admission cache (default 128)
//!   --conns N    loadgen: concurrent connections      (default 8)
//!   --requests N loadgen: requests per connection     (default 200)
//!   --repeat P   loadgen: percent of repeat requests  (default 80)
//!   --simulate P loadgen: percent of requests sent as {"simulate":...}
//!                frames (event-driven simulation on the server; default 0)
//!   --competitors P loadgen: percent of analysis frames restricted to the
//!                published competitor bounds (Long-paths, Gen-sporadic;
//!                default 0)
//!   --bounds     loadgen: request per-task bounds on every frame
//!   --bench P    loadgen: also write the flat BENCH JSON report to P
//!   --metrics P  loadgen: scrape {"metrics":true} after the burst (before
//!                any --shutdown) and write the JSON response to P
//!   --metrics-dump P serve: write the metrics registry to P in Prometheus
//!                text format when the server drains
//!   --width N    trace: chart width in columns            (default 96)
//!   --shutdown   loadgen: stop the server after the burst
//!   --max-conns N serve: connection-pool bound          (default 64)
//!   --watermark N serve: shed-mode threshold            (default 3/4 of
//!                the pool bound)
//!   --idle-ms N  serve: idle-connection timeout, ms     (default 30000)
//!   --frame-ms N serve: frame arrival/processing budget (default 10000)
//!   --drain-ms N serve: shutdown drain deadline, ms     (default 5000)
//!   --retries N  loadgen: transient-failure retries     (default 4)
//!   --chaos      loadgen: run the seeded hostile-client script
//! ```
//!
//! Sweep output is bit-identical for every `--jobs` value: task-set seeds
//! derive only from sweep coordinates, generation scratch never influences
//! a random draw, and results are folded in coordinate order. Every sweep
//! CSV is **streamed**: rows hit the file as their sweep point completes
//! (`rta_experiments::csv::CsvSink` fed by the order-preserving worker
//! channel), no panel buffers its rows in memory.

use rta_experiments::campaign::{self, MethodMatrix, PanelKind};
use rta_experiments::csv::CsvSink;
use rta_experiments::exec::Jobs;
use rta_experiments::figure2::{self, SweepConfig, SweepPoint, SweepResult};
use rta_experiments::validate::{
    PolicyChoice, ReleaseChoice, ValidateOptions, ValidatePanel, ValidatePoint,
};
use rta_experiments::{tables, timing, validate};
use std::path::PathBuf;

struct Options {
    sets: usize,
    samples: usize,
    out: PathBuf,
    seed: u64,
    target: f64,
    horizon: u64,
    policy: PolicyChoice,
    release: Option<ReleaseChoice>,
    /// `None` until `--jobs`/`--serial` is given: sweeps then default to
    /// one worker per core, while `timing` defaults to serial so its
    /// wall-clock averages are not skewed by worker contention.
    jobs: Option<Jobs>,
    addr: String,
    lru: usize,
    conns: usize,
    requests: usize,
    repeat: u32,
    simulate: u32,
    competitors: u32,
    bounds: bool,
    bench: Option<PathBuf>,
    metrics: Option<PathBuf>,
    metrics_dump: Option<PathBuf>,
    width: usize,
    shutdown: bool,
    max_conns: usize,
    /// `None` derives the shed watermark as 3/4 of `max_conns`.
    watermark: Option<usize>,
    idle_ms: u64,
    frame_ms: u64,
    drain_ms: u64,
    retries: usize,
    chaos: bool,
}

impl Options {
    fn sweep_jobs(&self) -> Jobs {
        self.jobs.unwrap_or(Jobs::Auto)
    }

    fn timing_jobs(&self) -> Jobs {
        self.jobs.unwrap_or_else(Jobs::serial)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut selector: Option<String> = None;
    let mut options = Options {
        sets: 300,
        samples: 20,
        out: PathBuf::from("out"),
        seed: 0,
        target: 2.0,
        horizon: validate::DEFAULT_HORIZON_FACTOR,
        policy: PolicyChoice::Both,
        release: None,
        jobs: None,
        addr: "127.0.0.1:7431".into(),
        lru: rta_experiments::serve::DEFAULT_LRU_CAPACITY,
        conns: 8,
        requests: 200,
        repeat: 80,
        simulate: 0,
        competitors: 0,
        bounds: false,
        bench: None,
        metrics: None,
        metrics_dump: None,
        width: 96,
        shutdown: false,
        max_conns: rta_experiments::serve::DEFAULT_MAX_CONNS,
        watermark: None,
        idle_ms: 30_000,
        frame_ms: 10_000,
        drain_ms: 5_000,
        retries: 4,
        chaos: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sets" => {
                options.sets = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sets needs a number"));
            }
            "--samples" => {
                options.samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--samples needs a number"));
            }
            "--out" => {
                options.out = it
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| usage("--out needs a path"));
            }
            "--seed" => {
                options.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--target" => {
                options.target = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--target needs a number"));
            }
            "--horizon" => {
                options.horizon = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--horizon needs a positive number of period spans"));
            }
            "--policy" => {
                options.policy = it
                    .next()
                    .and_then(|v| PolicyChoice::from_flag(v))
                    .unwrap_or_else(|| {
                        usage("--policy must be limited, eager, lazy, full or both")
                    });
            }
            "--release" => {
                options.release = Some(
                    it.next()
                        .and_then(|v| ReleaseChoice::from_flag(v))
                        .unwrap_or_else(|| {
                            usage("--release must be sync, jitter, sporadic or bursty")
                        }),
                );
            }
            "--jobs" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--jobs needs a number (0 = one per core)"));
                options.jobs = Some(Jobs::from_flag(n));
            }
            "--serial" => {
                options.jobs = Some(Jobs::serial());
            }
            "--addr" => {
                options.addr = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| usage("--addr needs a host:port address"));
            }
            "--lru" => {
                options.lru = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--lru needs a positive number of task sets"));
            }
            "--conns" => {
                options.conns = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--conns needs a positive number"));
            }
            "--requests" => {
                options.requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--requests needs a positive number"));
            }
            "--repeat" => {
                options.repeat = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n <= 100)
                    .unwrap_or_else(|| usage("--repeat needs a percentage (0..=100)"));
            }
            "--simulate" => {
                options.simulate = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n <= 100)
                    .unwrap_or_else(|| usage("--simulate needs a percentage (0..=100)"));
            }
            "--competitors" => {
                options.competitors = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n <= 100)
                    .unwrap_or_else(|| usage("--competitors needs a percentage (0..=100)"));
            }
            "--bounds" => {
                options.bounds = true;
            }
            "--bench" => {
                options.bench = Some(
                    it.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| usage("--bench needs a path")),
                );
            }
            "--metrics" => {
                options.metrics = Some(
                    it.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| usage("--metrics needs a path")),
                );
            }
            "--metrics-dump" => {
                options.metrics_dump = Some(
                    it.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| usage("--metrics-dump needs a path")),
                );
            }
            "--width" => {
                options.width = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 16)
                    .unwrap_or_else(|| usage("--width needs a number of columns (>= 16)"));
            }
            "--shutdown" => {
                options.shutdown = true;
            }
            "--max-conns" => {
                options.max_conns = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--max-conns needs a positive number"));
            }
            "--watermark" => {
                options.watermark = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage("--watermark needs a positive number")),
                );
            }
            "--idle-ms" => {
                options.idle_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--idle-ms needs a positive number of ms"));
            }
            "--frame-ms" => {
                options.frame_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--frame-ms needs a positive number of ms"));
            }
            "--drain-ms" => {
                options.drain_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--drain-ms needs a positive number of ms"));
            }
            "--retries" => {
                options.retries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--retries needs a number"));
            }
            "--chaos" => {
                options.chaos = true;
            }
            cmd if command.is_none() && !cmd.starts_with('-') => {
                command = Some(cmd.to_string());
            }
            sel if selector.is_none() && !sel.starts_with('-') => {
                selector = Some(sel.to_string());
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    let Some(command) = command else {
        usage("missing command");
    };
    if selector.is_some() && command != "campaign" && command != "validate" {
        usage("only the campaign and validate commands take a panel selector");
    }

    if !Jobs::parallelism_available() && matches!(options.jobs, Some(Jobs::Count(n)) if n > 1) {
        eprintln!(
            "note: built without the `parallel` feature; sweeps run serially \
             (output is identical either way)"
        );
    }

    std::fs::create_dir_all(&options.out).expect("create output directory");
    match command.as_str() {
        "table1" => table1(&options, &regenerate_tables(&options)),
        "table2" => table2(&regenerate_tables(&options)),
        "table3" => table3(&regenerate_tables(&options)),
        "fig2a" => sweep("fig2a", SweepConfig::paper_panel(4), &options),
        "fig2b" => sweep("fig2b", SweepConfig::paper_panel(8), &options),
        "fig2c" => sweep("fig2c", SweepConfig::paper_panel(16), &options),
        "fig2c-tasks" => task_count_sweep(&options),
        "group2" => group2(&options),
        "timing" => run_timing(&options),
        "sensitivity" => sensitivity(&options),
        "campaign" => run_campaign(&options, selector.as_deref().unwrap_or("all")),
        "validate" => run_validate(&options, selector.as_deref().unwrap_or("all")),
        "dump-set" => dump_set(&options),
        "trace" => run_trace(&options),
        "serve" => run_serve(&options),
        "loadgen" => run_loadgen(&options),
        "all" => {
            let t = regenerate_tables(&options);
            table1(&options, &t);
            table2(&t);
            table3(&t);
            sweep("fig2a", SweepConfig::paper_panel(4), &options);
            sweep("fig2b", SweepConfig::paper_panel(8), &options);
            sweep("fig2c", SweepConfig::paper_panel(16), &options);
            task_count_sweep(&options);
            group2(&options);
            run_timing(&options);
            sensitivity(&options);
            run_campaign(&options, "all");
            run_validate(&options, "all");
        }
        other => usage(&format!("unknown command: {other}")),
    }
}

/// Opens the streaming CSV sink of one panel in the output directory.
fn open_sink(options: &Options, name: &str, header: &[&str]) -> CsvSink<impl std::io::Write> {
    let path = options.out.join(format!("{name}.csv"));
    CsvSink::create(&path, header).unwrap_or_else(|e| panic!("create CSV {}: {e}", path.display()))
}

/// Runs the requested validation panels, streaming each CSV row as its
/// sweep point completes, and exits non-zero on any invariant violation.
fn run_validate(options: &Options, selector: &str) {
    let jobs = options.sweep_jobs();
    let panels = match selector {
        "cores" => ValidatePanel::all()
            .into_iter()
            .filter(|p| matches!(p, ValidatePanel::Cores(_)))
            .collect(),
        "deadline" => vec![ValidatePanel::Deadline],
        "chains" => vec![ValidatePanel::Chains],
        "release" => ValidatePanel::all()
            .into_iter()
            .filter(|p| matches!(p, ValidatePanel::Release(_)))
            .collect(),
        "all" => ValidatePanel::all(),
        other => usage(&format!("unknown validate panel: {other}")),
    };
    let vopts = ValidateOptions {
        sets_per_point: options.sets,
        horizon_factor: options.horizon,
        policies: options.policy,
        release: options.release,
    };
    let mut total_violations = 0u64;
    let mut total_exceedances = 0u64;
    let mut total_lp_misses = 0u64;
    let mut total_truncated = 0u64;
    for panel in panels {
        println!(
            "== validate/{}: {} — {} sets/point, horizon {}x max period, {} worker(s) ==",
            panel.name(),
            panel.title(),
            vopts.sets_per_point,
            vopts.horizon_factor,
            jobs.worker_count()
        );
        let mut sink = open_sink(
            options,
            panel.name(),
            &validate::csv_header(panel.x_label()),
        );
        let mut points = Vec::new();
        panel.run_into(&vopts, jobs, &mut |p: &ValidatePoint| {
            sink.row(&p.csv_cells()).expect("write CSV row");
            points.push(p.clone());
        });
        sink.finish().expect("flush CSV");
        let result = validate::ValidateResult {
            cores: panel.cores(),
            points,
        };
        println!("{}", result.render(panel.x_label()));
        total_violations += result.total_violations();
        total_exceedances += result.total_lp_exceedances();
        total_lp_misses += result.total_lp_misses();
        total_truncated += result.total_truncated_traces();
        println!(
            "hard violations: {}; LP bound exceedances: {}; LP deadline misses: {}\nwrote {}\n",
            result.total_violations(),
            result.total_lp_exceedances(),
            result.total_lp_misses(),
            options.out.join(format!("{}.csv", panel.name())).display()
        );
    }
    if total_exceedances > 0 {
        println!(
            "note: {total_exceedances} simulated response(s) exceeded an LP-ILP/LP-max bound — \
             the documented optimism of the paper's eager-LP blocking bound \
             (cf. Nasri, Nelissen & Brandenburg, ECRTS 2019); \
             the sound FP-ideal and LP-sound legs are unaffected"
        );
    }
    if total_lp_misses > 0 {
        println!(
            "note: {total_lp_misses} LP-accepted set(s) missed a deadline in simulation — \
             a full counterexample to the paper's schedulability verdict; \
             inspect the lp_deadline_misses column"
        );
    }
    if total_truncated > 0 {
        eprintln!(
            "warning: {total_truncated} counterexample trace(s) hit the bounded-trace \
             capacity and are truncated — recorded witness schedules are missing their \
             tail; re-run the offending cell with a smaller --horizon to capture it whole"
        );
    }
    if total_violations > 0 {
        eprintln!(
            "error: {total_violations} hard soundness violation(s) — \
             the analysis or the simulator has a bug"
        );
        std::process::exit(1);
    }
    println!("all hard soundness invariants held");
}

/// The column layout of `soundness_cost.csv`: per campaign panel point,
/// the LP-ILP / LP-sound acceptance ratios and their gap in percentage
/// points — how much schedulability the corrected bound costs over the
/// paper's optimistic one.
const SOUNDNESS_COST_HEADER: [&str; 7] = [
    "panel",
    "x",
    "fp_ideal_pct",
    "lp_ilp_pct",
    "lp_max_pct",
    "lp_sound_pct",
    "soundness_cost_pp",
];

/// Runs the requested campaign panels, streaming each CSV row as its
/// sweep point completes. A full-coverage run (`campaign all`)
/// additionally aggregates the per-point LP-ILP vs LP-sound acceptance
/// gap into `soundness_cost.csv`; partial selectors leave any existing
/// aggregate untouched rather than clobbering it with a subset.
fn run_campaign(options: &Options, selector: &str) {
    let jobs = options.sweep_jobs();
    let sets = options.sets;
    let panels: Vec<PanelKind> = match selector {
        "deadline" => vec![PanelKind::Deadline],
        "chains" => vec![PanelKind::Chains],
        "cores" => vec![
            PanelKind::Cores(2),
            PanelKind::Cores(8),
            PanelKind::Cores(16),
        ],
        "cross" => PanelKind::all()
            .into_iter()
            .filter(|k| matches!(k, PanelKind::Cross(_)))
            .collect(),
        "compare" => return run_campaign_compare(options),
        "all" => PanelKind::all(),
        other => usage(&format!("unknown campaign panel: {other}")),
    };
    let mut cost_sink =
        (selector == "all").then(|| open_sink(options, "soundness_cost", &SOUNDNESS_COST_HEADER));
    for kind in panels {
        println!(
            "== campaign/{}: {} — {} sets/point, {} worker(s) ==",
            kind.name(),
            kind.title(),
            sets,
            jobs.worker_count()
        );
        let cost_sink = &mut cost_sink;
        let result = streamed_sweep(
            options,
            kind.name(),
            kind.x_label(),
            kind.cores(),
            |emit| kind.run_into(sets, jobs, emit),
            |p| {
                if let Some(sink) = cost_sink {
                    sink.row(&[
                        kind.name().to_string(),
                        format!("{:.4}", p.x),
                        format!("{:.2}", p.schedulable_pct[0]),
                        format!("{:.2}", p.schedulable_pct[1]),
                        format!("{:.2}", p.schedulable_pct[2]),
                        format!("{:.2}", p.schedulable_pct[3]),
                        format!("{:.2}", p.schedulable_pct[1] - p.schedulable_pct[3]),
                    ])
                    .expect("write soundness-cost row");
                }
            },
        );
        println!("{}", result.render(kind.x_label()));
        println!(
            "dominance (LP-max ≤ LP-ILP ≤ FP-ideal ≥ LP-sound; Gen-sporadic ≤ FP-ideal ≤ Long-paths): {}",
            result.dominance_holds()
        );
        println!(
            "wrote {}\n",
            options.out.join(format!("{}.csv", kind.name())).display()
        );
    }
    if let Some(sink) = cost_sink {
        sink.finish().expect("flush soundness-cost CSV");
        println!(
            "wrote {} (LP-ILP vs LP-sound acceptance gap per panel point)\n",
            options.out.join("soundness_cost.csv").display()
        );
    }
}

/// The `repro campaign compare` driver: re-streams the core/deadline/
/// chain panels with all six methods' per-point acceptance ratios
/// (`compare_*.csv`, same schema as the ordinary campaign CSVs) while
/// folding every cell's verdicts into one pairwise wins/losses matrix,
/// written to `method_matrix.csv`. Both outputs are byte-identical for
/// every worker count: the point fold runs in coordinate order and the
/// matrix is a sum of per-set indicator contributions.
fn run_campaign_compare(options: &Options) {
    let jobs = options.sweep_jobs();
    let sets = options.sets;
    let mut matrix = MethodMatrix::default();
    // Analysis-cost accounting: delta the process-global verdict-latency
    // histograms across the whole compare run. The verdict *counts* are
    // deterministic; the nanosecond columns are measurements, so they live
    // in their own method_costs.csv outside the byte-pinned goldens.
    let costs_before = rta_obs::snapshot();
    for kind in campaign::compare_panels() {
        println!(
            "== campaign/{}: {} — {} sets/point, {} worker(s) ==",
            kind.compare_name(),
            kind.title(),
            sets,
            jobs.worker_count()
        );
        let mut sink = open_sink(
            options,
            kind.compare_name(),
            &figure2::csv_header(kind.x_label()),
        );
        let mut points = Vec::new();
        kind.run_compare_into(sets, jobs, &mut matrix, &mut |p: &SweepPoint| {
            sink.row(&p.csv_cells()).expect("write CSV row");
            points.push(p.clone());
        });
        sink.finish().expect("flush CSV");
        let result = SweepResult {
            cores: kind.cores(),
            points,
        };
        println!("{}", result.render(kind.x_label()));
        println!(
            "wrote {}\n",
            options
                .out
                .join(format!("{}.csv", kind.compare_name()))
                .display()
        );
    }
    println!(
        "== pairwise wins/losses over {} task sets (row accepts what the column rejects) ==",
        matrix.sets
    );
    println!("{}", matrix.render());
    let path = options.out.join("method_matrix.csv");
    std::fs::write(&path, matrix.to_csv()).expect("write method matrix CSV");
    println!("wrote {}\n", path.display());
    let costs = campaign::MethodCosts::from_snapshot(&rta_obs::snapshot().since(&costs_before));
    println!("== per-method analysis cost (wall-clock per verdict; not golden-pinned) ==");
    println!("{}", costs.render());
    let path = options.out.join("method_costs.csv");
    std::fs::write(&path, costs.to_csv()).expect("write method costs CSV");
    println!("wrote {}\n", path.display());
}

/// Streams one schedulability sweep into its CSV file (row per completed
/// point) while collecting the points for terminal rendering; `tap` sees
/// every point as it completes (side CSVs like the soundness-cost
/// aggregate hook in here).
fn streamed_sweep(
    options: &Options,
    name: &str,
    x_label: &str,
    cores: usize,
    run: impl FnOnce(&mut dyn FnMut(&SweepPoint)),
    mut tap: impl FnMut(&SweepPoint),
) -> SweepResult {
    let mut sink = open_sink(options, name, &figure2::csv_header(x_label));
    let mut points = Vec::new();
    run(&mut |p: &SweepPoint| {
        sink.row(&p.csv_cells()).expect("write CSV row");
        tap(p);
        points.push(p.clone());
    });
    sink.finish().expect("flush CSV");
    SweepResult { cores, points }
}

fn sensitivity(options: &Options) {
    println!("== sensitivity: Figure 2(a) under alternative period models (DESIGN.md §5.3) ==");
    let sets = options.sets.min(60); // three full panels; keep it bounded
    for (variant, result) in
        rta_experiments::sensitivity::run_all_with_jobs(sets, options.sweep_jobs())
    {
        println!("-- {} --", variant.label);
        println!("{}", result.render("U"));
    }
}

/// Renders the frozen LP counterexample's witness schedule (see
/// `rta_experiments::forensics`): the paper's LP bound says 300.5, the
/// limited-preemptive schedule shows 304.
fn run_trace(options: &Options) {
    use rta_experiments::forensics;
    println!(
        "== trace: frozen LP counterexample — m = 2, horizon {}x the blocking task's period ==",
        forensics::HORIZON_SPANS
    );
    let report = forensics::counterexample_trace(options.width);
    print!("{}", report.chart);
    println!(
        "\nLP-ILP/LP-max response bound: {}  observed response: {}{}",
        forensics::LP_BOUND,
        report.observed_response,
        if report.observed_response as f64 > 300.5 {
            "  — BOUND EXCEEDED (the documented optimism of the eager-LP blocking bound)"
        } else {
            ""
        }
    );
    println!(
        "deadline misses: {} (the counterexample beats the bound, not the deadline)",
        report.deadline_misses
    );
    let path = options.out.join("trace_counterexample.txt");
    std::fs::write(&path, &report.chart).expect("write trace chart");
    println!("wrote {}", path.display());
}

/// Runs the admission-control daemon in the foreground until a client's
/// `{"shutdown":true}` frame stops it.
fn run_serve(options: &Options) {
    use std::time::Duration;
    let serve_options = rta_experiments::serve::ServeOptions {
        addr: options.addr.clone(),
        lru_capacity: options.lru,
        max_conns: options.max_conns,
        shed_watermark: options.watermark.unwrap_or(options.max_conns * 3 / 4),
        idle_timeout: Duration::from_millis(options.idle_ms),
        frame_timeout: Duration::from_millis(options.frame_ms),
        drain_timeout: Duration::from_millis(options.drain_ms),
        metrics_dump: options.metrics_dump.clone(),
        ..Default::default()
    };
    let handle = rta_experiments::serve::spawn(&serve_options)
        .unwrap_or_else(|e| usage(&format!("cannot bind {}: {e}", serve_options.addr)));
    println!(
        "serving admission-control verdicts on {} (LRU capacity {}; \
         send {{\"shutdown\":true}} to stop)",
        handle.addr(),
        options.lru
    );
    println!(
        "limits: {} connections (shedding past {}), idle timeout {}ms, \
         frame timeout {}ms, drain timeout {}ms",
        serve_options.max_conns,
        serve_options.shed_watermark,
        options.idle_ms,
        options.frame_ms,
        options.drain_ms
    );
    let report = handle.join();
    println!("server stopped: {}", report.render());
    if report.panicked > 0 {
        eprintln!("error: {} connection thread(s) panicked", report.panicked);
        std::process::exit(1);
    }
}

/// Drives a running server with the configured request mix and prints
/// (and optionally writes) the measurement report.
fn run_loadgen(options: &Options) {
    let loadgen_options = rta_experiments::loadgen::LoadgenOptions {
        addr: options.addr.clone(),
        connections: options.conns,
        requests_per_connection: options.requests,
        repeat_percent: options.repeat,
        simulate_percent: options.simulate,
        competitor_percent: options.competitors,
        bounds: options.bounds,
        seed: options.seed,
        target: options.target,
        metrics: options.metrics.clone(),
        shutdown: options.shutdown,
        retries: options.retries,
        chaos: options.chaos,
        ..Default::default()
    };
    if loadgen_options.chaos {
        println!(
            "== loadgen --chaos: {} workers x {} seeded hostile actions, against {} ==",
            loadgen_options.connections,
            loadgen_options.requests_per_connection,
            loadgen_options.addr
        );
    } else {
        println!(
            "== loadgen: {} connections x {} requests, {}% repeats, against {} ==",
            loadgen_options.connections,
            loadgen_options.requests_per_connection,
            loadgen_options.repeat_percent,
            loadgen_options.addr
        );
    }
    let report = rta_experiments::loadgen::run(&loadgen_options)
        .unwrap_or_else(|e| usage(&format!("loadgen against {} failed: {e}", options.addr)));
    println!("{}", report.render());
    if let Some(path) = &options.bench {
        std::fs::write(path, report.to_bench_json(&loadgen_options)).expect("write BENCH JSON");
        println!("wrote {}", path.display());
    }
    if report.errors > 0 {
        eprintln!("error: {} request(s) failed", report.errors);
        std::process::exit(1);
    }
}

fn dump_set(options: &Options) {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(options.seed);
    let ts = rta_taskgen::generate_task_set(&mut rng, &rta_taskgen::group1(options.target));
    println!("{}", rta_model::json::task_set_to_json(&ts));
    eprintln!(
        "# {} tasks, U = {:.3} (seed {}, target {})",
        ts.len(),
        ts.total_utilization(),
        options.seed,
        options.target
    );
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n");
    eprintln!(
        "usage: repro <table1|table2|table3|fig2a|fig2b|fig2c|fig2c-tasks|group2|timing|\
         campaign [deadline|chains|cores|cross|compare|all]|\
         validate [cores|deadline|chains|release|all]|trace|serve|loadgen|all> \
         [--sets N] [--samples N] [--out DIR] [--jobs N] [--serial] \
         [--horizon N] [--policy limited|eager|lazy|full|both] \
         [--release sync|jitter|sporadic|bursty] \
         [--addr HOST:PORT] [--lru N] [--conns N] [--requests N] \
         [--repeat PCT] [--simulate PCT] [--competitors PCT] [--bounds] \
         [--bench PATH] [--metrics PATH] [--metrics-dump PATH] [--width N] \
         [--shutdown] \
         [--max-conns N] [--watermark N] [--idle-ms N] [--frame-ms N] \
         [--drain-ms N] [--retries N] [--chaos]"
    );
    std::process::exit(2);
}

/// All tables through the campaign engine (each `(table, solver)` pair is
/// one cell on the worker pool). Called once per invocation — `repro all`
/// shares one regeneration across the three table subcommands.
fn regenerate_tables(options: &Options) -> tables::Tables {
    tables::run_all(options.sweep_jobs())
}

fn table1(options: &Options, t: &tables::Tables) {
    println!("== Table I: worst-case workloads µ_i[c] of the Figure 1 tasks ==");
    println!("{}", t.table1.render());
    assert_eq!(t.table1, t.table1_ilp, "clique and ILP solvers must agree");
    println!("(cross-checked against the paper's ILP formulation: identical)\n");
    write_csv(options, "table1", &t.table1.to_csv());
}

fn table2(t: &tables::Tables) {
    println!("== Table II: execution scenarios e_4 (p(4) = 5) ==");
    println!("{}", t.table2.render());
    println!(
        "pentagonal-number count p(4) = {}\n",
        t.table2.pentagonal_count
    );
}

fn table3(t: &tables::Tables) {
    println!("== Table III: overall worst-case workloads ρ_k[s_l] ==");
    println!("{}", t.table3.render());
    assert_eq!(
        t.table3, t.table3_ilp,
        "Hungarian and ILP solvers must agree"
    );
    println!("(cross-checked against the paper's ILP formulation: identical)\n");
}

fn sweep(name: &str, config: SweepConfig, options: &Options) {
    let config = config.with_sets_per_point(options.sets);
    println!(
        "== {name}: m = {}, {} sets/point (group 1), {} worker(s) ==",
        config.cores,
        config.sets_per_point,
        options.sweep_jobs().worker_count()
    );
    let start = std::time::Instant::now();
    let result = streamed_sweep(
        options,
        name,
        "utilization",
        config.cores,
        |emit| figure2::run_into(&config, options.sweep_jobs(), emit),
        |_| {},
    );
    println!("{}", result.render("U"));
    println!(
        "dominance (LP-max ≤ LP-ILP ≤ FP-ideal; Gen-sporadic ≤ FP-ideal ≤ Long-paths): {}; computed in {:.1}s",
        result.dominance_holds(),
        start.elapsed().as_secs_f64()
    );
    println!(
        "wrote {}\n",
        options.out.join(format!("{name}.csv")).display()
    );
}

fn task_count_sweep(options: &Options) {
    let config = SweepConfig::paper_panel(16).with_sets_per_point(options.sets);
    let counts: Vec<usize> = (1..=8).map(|i| 2 * i).collect();
    println!(
        "== fig2c-tasks: m = 16, U = 8, task-count sweep, {} sets/point ==",
        config.sets_per_point
    );
    let result = streamed_sweep(
        options,
        "fig2c_tasks",
        "tasks",
        config.cores,
        |emit| figure2::run_task_count_into(&config, &counts, options.sweep_jobs(), emit),
        |_| {},
    );
    println!("{}", result.render("tasks"));
    println!("wrote {}\n", options.out.join("fig2c_tasks.csv").display());
}

fn group2(options: &Options) {
    println!("== group 2: uniformly parallel task sets (paper: LP-max ≈ LP-ILP) ==");
    for cores in [4usize, 8, 16] {
        let config = SweepConfig::paper_panel(cores)
            .with_sets_per_point(options.sets)
            .with_generator(rta_taskgen::group2);
        let name = format!("group2_m{cores}");
        let result = streamed_sweep(
            options,
            &name,
            "utilization",
            cores,
            |emit| figure2::run_into(&config, options.sweep_jobs(), emit),
            |_| {},
        );
        println!("m = {cores}:");
        println!("{}", result.render("U"));
        // Quantify the gap between LP-ILP and LP-max, which the paper says
        // shrinks for this group.
        let gap: f64 = result
            .points
            .iter()
            .map(|p| p.schedulable_pct[1] - p.schedulable_pct[2])
            .fold(0.0f64, f64::max);
        println!("max LP-ILP − LP-max gap: {gap:.1} percentage points");
        println!(
            "wrote {}\n",
            options.out.join(format!("{name}.csv")).display()
        );
    }
}

fn run_timing(options: &Options) {
    println!("== timing: average runtime of a positive schedulability test ==");
    let jobs = options.timing_jobs();
    if jobs.worker_count() > 1 {
        println!(
            "(note: {} workers — averages include contention; omit --jobs for \
             uncontended serial measurements)",
            jobs.worker_count()
        );
    }
    let rows = timing::run_with_jobs(&[4, 8, 16], options.samples, 0xBEEF, jobs);
    println!("{}", timing::render(&rows));
    println!(
        "(paper, MATLAB + CPLEX: 0.45 s / 4.75 s / 43 min — trend, not absolute, is comparable)\n"
    );
}

fn write_csv(options: &Options, name: &str, csv: &str) {
    let path = options.out.join(format!("{name}.csv"));
    std::fs::write(&path, csv).expect("write CSV");
    println!("wrote {}", path.display());
}
