//! Streaming CSV output: the sink every sweep panel writes through.
//!
//! A [`CsvSink`] wraps any [`io::Write`], emits the header once, and then
//! appends one row at a time — the consumer side of the order-preserving
//! worker channel ([`crate::exec::stream_indexed`]) feeds it as sweep
//! points complete, so a panel's CSV hits the disk incrementally instead
//! of accumulating rows in memory first. The byte format is identical to
//! [`crate::ascii::csv`] (RFC-4180-lite: cells never contain commas or
//! quotes), which is what keeps the streamed files byte-identical to the
//! committed goldens and to the in-memory `to_csv` renderings.
//!
//! # Example
//!
//! ```
//! use rta_experiments::csv::CsvSink;
//!
//! let mut sink = CsvSink::new(Vec::new(), &["u", "pct"]).unwrap();
//! sink.row(&["1.5", "98.3"]).unwrap();
//! let bytes = sink.finish().unwrap();
//! assert_eq!(bytes, b"u,pct\n1.5,98.3\n");
//! ```

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// An incremental CSV writer: header on construction, then one
/// [`row`](Self::row) per record, bytes identical to [`crate::ascii::csv`].
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    out: W,
}

impl CsvSink<BufWriter<File>> {
    /// Creates (truncating) `path` and writes the header — the
    /// file-backed sink the `repro` CLI streams every panel through.
    pub fn create(path: &Path, header: &[&str]) -> io::Result<Self> {
        Self::new(BufWriter::new(File::create(path)?), header)
    }
}

impl<W: Write> CsvSink<W> {
    /// Wraps `out` and writes the header line.
    pub fn new(mut out: W, header: &[&str]) -> io::Result<Self> {
        out.write_all(header.join(",").as_bytes())?;
        out.write_all(b"\n")?;
        Ok(Self { out })
    }

    /// Appends one row.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> io::Result<()> {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                self.out.write_all(b",")?;
            }
            self.out.write_all(cell.as_ref().as_bytes())?;
        }
        self.out.write_all(b"\n")
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Renders a full row set through a [`CsvSink`] into a `String` — the
/// in-memory counterpart of the streaming path, used by the `to_csv`
/// renderings so both produce the same bytes by construction.
pub fn to_string(header: &[&str], rows: impl IntoIterator<Item = Vec<String>>) -> String {
    let mut sink = CsvSink::new(Vec::new(), header).expect("in-memory CSV cannot fail");
    for row in rows {
        sink.row(&row).expect("in-memory CSV cannot fail");
    }
    String::from_utf8(sink.finish().expect("in-memory CSV cannot fail"))
        .expect("CSV output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ascii;

    #[test]
    fn matches_ascii_csv_bytes() {
        let header = ["a", "b", "c"];
        let rows = vec![
            vec!["1".to_string(), "2".to_string(), "3".to_string()],
            vec!["x".to_string(), "y".to_string(), "z".to_string()],
        ];
        assert_eq!(to_string(&header, rows.clone()), ascii::csv(&header, &rows));
    }

    #[test]
    fn streams_to_a_file() {
        let dir = std::env::temp_dir().join("rta-csv-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("panel.csv");
        let mut sink = CsvSink::create(&path, &["u", "pct"]).unwrap();
        sink.row(&["1.0", "50.0"]).unwrap();
        sink.row(&["2.0", "25.0"]).unwrap();
        sink.finish().unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "u,pct\n1.0,50.0\n2.0,25.0\n"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_rows_are_header_only() {
        assert_eq!(to_string(&["h"], Vec::new()), "h\n");
    }
}
