//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment of Serrano et al. (DATE 2016), Section VI, has a library
//! entry point here (so the Criterion benches can drive reduced versions)
//! and a `repro` CLI subcommand (see the `repro` binary):
//!
//! | Paper artifact | Function | CLI |
//! |---|---|---|
//! | Table I (`µ_i[c]` of Figure 1)        | [`tables::table1`]   | `repro table1` |
//! | Table II (scenarios `e_4`)            | [`tables::table2`]   | `repro table2` |
//! | Table III (`ρ_k[s_l]`, `Δ⁴`, `Δ³`)    | [`tables::table3`]   | `repro table3` |
//! | Figure 2(a) (`m = 4` sweep)           | [`figure2::run`]     | `repro fig2a` |
//! | Figure 2(b) (`m = 8` sweep)           | [`figure2::run`]     | `repro fig2b` |
//! | Figure 2(c) (`m = 16` sweep)          | [`figure2::run`]     | `repro fig2c` |
//! | Figure 2(c) task-count variant        | [`figure2::run_task_count`] | `repro fig2c-tasks` |
//! | Group-2 comparison (prose)            | [`figure2::run`] with [`rta_taskgen::group2`] | `repro group2` |
//! | Runtime paragraph (`0.45 s / 4.75 s / 43 min`) | [`timing::run`] | `repro timing` |
//!
//! Beyond the paper, the [`campaign`] engine opens sweep panels the
//! original evaluation did not chart — constrained deadlines (`D = f·T`),
//! chain-heavy task mixtures, and the `m ∈ {2, 8}` platforms — via
//! `repro campaign`.
//!
//! The crate also carries the online surface of the ROADMAP's north star:
//! [`serve`] (`repro serve`) answers admission-control verdicts over a
//! line-delimited JSON socket, backed by the unified
//! [`rta_analysis::AnalysisRequest`] API and its admission cache, and
//! [`loadgen`] (`repro loadgen`) load-tests it and emits the BENCH
//! figures.
//!
//! Every driver runs on the **streaming campaign engine** ([`campaign`]):
//! each sweep cell generates its task set on the worker that claims it
//! (per-worker scratch, no separate generation phase) and analyzes it
//! through the dominance-short-circuited verdict path. Sweeps are
//! deterministic: every task set's seed derives from `(base seed, point
//! index, set index)` only, so results do not depend on thread scheduling.
//! The execution substrate ([`exec`]) fans cells over a thread pool — or
//! runs them serially with `--jobs 1`, with bit-identical output — behind
//! the crate's `parallel` feature (enabled by default).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod campaign;
pub mod csv;
pub mod exec;
pub mod figure2;
pub mod forensics;
pub mod loadgen;
pub mod sensitivity;
pub mod serve;
pub mod tables;
pub mod timing;
pub mod validate;

/// Derives the RNG seed of one generated task set from the sweep
/// coordinates, independent of threading.
pub fn set_seed(base: u64, point: usize, set: usize) -> u64 {
    base ^ (point as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (set as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_across_coordinates() {
        let mut seen = std::collections::BTreeSet::new();
        for point in 0..20 {
            for set in 0..50 {
                assert!(seen.insert(set_seed(7, point, set)), "{point}/{set}");
            }
        }
    }
}
