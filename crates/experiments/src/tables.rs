//! Tables I, II and III of the paper, regenerated from the Figure 1 DAGs.
//!
//! Both µ-dependent tables are read off one [`TaskSetCache`] over the
//! Figure 1 example set — the same precomputation layer the full analysis
//! runs on — so the tables exercise exactly the code path of `analyze`.
//! [`run_all`] regenerates every table (under both combinatorial and
//! paper-ILP solvers) as one campaign of cells on the shared engine.

use crate::ascii;
use crate::campaign;
use crate::exec::Jobs;
use rta_analysis::blocking::scenarios::rho;
use rta_analysis::cache::TaskSetCache;
use rta_analysis::{MuSolver, RhoSolver, ScenarioSpace};
use rta_combinatorics::{partition_count, partitions, Partition};
use rta_model::examples::figure1_task_set;
use rta_model::Time;

/// Table I: the worst-case workloads `µ_i[c]` of the Figure 1 tasks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table1 {
    /// `mu[i][c − 1]` = `µ_{i+1}[c]` for the four Figure 1 tasks.
    pub mu: Vec<Vec<Time>>,
}

/// Computes Table I with the given solver.
pub fn table1(solver: MuSolver) -> Table1 {
    let ts = figure1_task_set();
    let cache = TaskSetCache::new(&ts, 4);
    Table1 {
        // Tasks 1..=4 of the example set are the Figure 1 DAGs (task 0 is
        // the task under analysis, which Table I does not cover).
        mu: (1..ts.len())
            .map(|i| cache.mu(i, solver).to_vec())
            .collect(),
    }
}

impl Table1 {
    /// ASCII rendering in the paper's layout (rows = core counts).
    pub fn render(&self) -> String {
        let header = ["c", "µ1[c]", "µ2[c]", "µ3[c]", "µ4[c]"];
        ascii::table(&header, &self.rows())
    }

    /// CSV rendering (the golden-output CI gate diffs these bytes).
    pub fn to_csv(&self) -> String {
        let header = ["c", "mu1", "mu2", "mu3", "mu4"];
        ascii::csv(&header, &self.rows())
    }

    fn rows(&self) -> Vec<Vec<String>> {
        (1..=4usize)
            .map(|c| {
                let mut row = vec![c.to_string()];
                row.extend(self.mu.iter().map(|m| m[c - 1].to_string()));
                row
            })
            .collect()
    }
}

/// Table II: the execution scenarios `e_4` (integer partitions of 4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table2 {
    /// The scenarios, in enumeration order.
    pub scenarios: Vec<Partition>,
    /// `p(4)` from the pentagonal-number recurrence (must equal
    /// `scenarios.len()`).
    pub pentagonal_count: u64,
}

/// Computes Table II.
pub fn table2() -> Table2 {
    Table2 {
        scenarios: partitions(4).collect(),
        pentagonal_count: partition_count(4),
    }
}

impl Table2 {
    /// ASCII rendering: scenario, cardinality, description.
    pub fn render(&self) -> String {
        let header = ["scenario", "|s|", "total cores"];
        let rows: Vec<Vec<String>> = self
            .scenarios
            .iter()
            .map(|s| {
                vec![
                    s.to_string(),
                    s.cardinality().to_string(),
                    s.total().to_string(),
                ]
            })
            .collect();
        ascii::table(&header, &rows)
    }
}

/// Table III plus the resulting blocking bounds: `ρ_k[s_l]` per scenario,
/// `Δ⁴` / `Δ³` for LP-ILP, and the LP-max values they improve on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table3 {
    /// `(scenario, ρ)` pairs in enumeration order.
    pub rho: Vec<(Partition, Time)>,
    /// `Δ⁴` via LP-ILP (paper: 19).
    pub delta_4_ilp: Time,
    /// `Δ³` via LP-ILP (paper: 15).
    pub delta_3_ilp: Time,
    /// `Δ⁴` via LP-max (paper: 20).
    pub delta_4_max: Time,
    /// `Δ³` via LP-max (paper: 16).
    pub delta_3_max: Time,
}

/// Computes Table III with the given `ρ` solver.
pub fn table3(solver: RhoSolver) -> Table3 {
    let ts = figure1_task_set();
    let cache = TaskSetCache::new(&ts, 4);
    // The four Figure 1 tasks are exactly `lp(0)` of the example set, so
    // task 0's cached blocking bounds are the paper's Δ⁴ / Δ³.
    let mu: Vec<Vec<Time>> = (1..ts.len())
        .map(|i| cache.mu(i, MuSolver::Clique).to_vec())
        .collect();
    let rho_values: Vec<(Partition, Time)> = partitions(4)
        .map(|s| {
            let v = rho(&mu, &s, solver).expect("four tasks fill every scenario");
            (s, v)
        })
        .collect();
    let ilp = cache.lp_ilp_blocking(0, 4, MuSolver::Clique, solver, ScenarioSpace::PaperExact);
    let max = cache.lp_max_blocking(0, 4);
    Table3 {
        rho: rho_values,
        delta_4_ilp: ilp.delta_m,
        delta_3_ilp: ilp.delta_m_minus_one,
        delta_4_max: max.delta_m,
        delta_3_max: max.delta_m_minus_one,
    }
}

impl Table3 {
    /// ASCII rendering with the Δ summary row.
    pub fn render(&self) -> String {
        let header = ["scenario", "rho"];
        let rows: Vec<Vec<String>> = self
            .rho
            .iter()
            .map(|(s, v)| vec![s.to_string(), v.to_string()])
            .collect();
        let mut out = ascii::table(&header, &rows);
        out.push_str(&format!(
            "Δ⁴: LP-ILP = {} (LP-max = {}); Δ³: LP-ILP = {} (LP-max = {})\n",
            self.delta_4_ilp, self.delta_4_max, self.delta_3_ilp, self.delta_3_max
        ));
        out
    }
}

/// Every table of the paper under every solver, regenerated in one pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tables {
    /// Table I via the clique solver.
    pub table1: Table1,
    /// Table I via the paper's ILP formulation (must equal `table1`).
    pub table1_ilp: Table1,
    /// Table II.
    pub table2: Table2,
    /// Table III via the Hungarian solver.
    pub table3: Table3,
    /// Table III via the paper's ILP formulation (must equal `table3`).
    pub table3_ilp: Table3,
}

/// Regenerates all tables as one campaign: each `(table, solver)` pair is
/// an independent cell on the shared engine, so the five cache builds and
/// solver runs spread over the worker pool (and collapse to the plain
/// serial loop under `--jobs 1`, bit-identically).
pub fn run_all(jobs: Jobs) -> Tables {
    /// The output of one table cell.
    enum Cell {
        One(Table1),
        Two(Table2),
        Three(Table3),
    }
    let cells = [0usize, 1, 2, 3, 4];
    let mut outputs = campaign::run_cells(&cells, jobs, |&i| match i {
        0 => Cell::One(table1(MuSolver::Clique)),
        1 => Cell::One(table1(MuSolver::PaperIlp)),
        2 => Cell::Two(table2()),
        3 => Cell::Three(table3(RhoSolver::Hungarian)),
        _ => Cell::Three(table3(RhoSolver::PaperIlp)),
    })
    .into_iter();
    let mut next = || outputs.next().expect("five cells");
    let take1 = |cell: Cell| match cell {
        Cell::One(t) => t,
        _ => unreachable!("cell order is fixed"),
    };
    let take3 = |cell: Cell| match cell {
        Cell::Three(t) => t,
        _ => unreachable!("cell order is fixed"),
    };
    let table1 = take1(next());
    let table1_ilp = take1(next());
    let table2 = match next() {
        Cell::Two(t) => t,
        _ => unreachable!("cell order is fixed"),
    };
    let table3 = take3(next());
    let table3_ilp = take3(next());
    Tables {
        table1,
        table1_ilp,
        table2,
        table3,
        table3_ilp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rta_model::examples::TABLE_I;

    #[test]
    fn table1_matches_paper_both_solvers() {
        for solver in [MuSolver::Clique, MuSolver::PaperIlp] {
            let t = table1(solver);
            for (i, row) in t.mu.iter().enumerate() {
                assert_eq!(row.as_slice(), &TABLE_I[i], "{solver:?} µ_{}", i + 1);
            }
        }
    }

    #[test]
    fn table2_has_five_scenarios() {
        let t = table2();
        assert_eq!(t.scenarios.len(), 5);
        assert_eq!(t.pentagonal_count, 5);
        assert!(t.render().contains("{2,1,1}"));
    }

    #[test]
    fn table3_matches_paper_both_solvers() {
        for solver in [RhoSolver::Hungarian, RhoSolver::PaperIlp] {
            let t = table3(solver);
            let by_scenario: std::collections::BTreeMap<String, Time> =
                t.rho.iter().map(|(s, v)| (s.to_string(), *v)).collect();
            assert_eq!(by_scenario["{1,1,1,1}"], 18);
            assert_eq!(by_scenario["{2,2}"], 16);
            assert_eq!(by_scenario["{2,1,1}"], 19);
            assert_eq!(by_scenario["{3,1}"], 18);
            assert_eq!(by_scenario["{4}"], 11);
            assert_eq!(t.delta_4_ilp, 19);
            assert_eq!(t.delta_3_ilp, 15);
            assert_eq!(t.delta_4_max, 20);
            assert_eq!(t.delta_3_max, 16);
        }
    }

    #[test]
    fn renders_are_nonempty() {
        assert!(table1(MuSolver::Clique).render().contains("µ3[c]"));
        assert!(table3(RhoSolver::Hungarian).render().contains("Δ⁴"));
    }

    #[test]
    fn table1_csv_is_table_i() {
        let csv = table1(MuSolver::Clique).to_csv();
        assert!(csv.starts_with("c,mu1,mu2,mu3,mu4\n"));
        assert_eq!(csv.lines().count(), 5);
        // Row c = 4 of Table I: µ1[4] = 5, µ2[4] = 0, µ3[4] = 11, µ4[4] = 0.
        assert!(csv.contains("4,5,0,11,0"), "{csv}");
    }

    #[test]
    fn run_all_matches_individual_tables_under_every_driver() {
        let serial = run_all(Jobs::serial());
        assert_eq!(serial.table1, table1(MuSolver::Clique));
        assert_eq!(serial.table1, serial.table1_ilp);
        assert_eq!(serial.table2, table2());
        assert_eq!(serial.table3, table3(RhoSolver::Hungarian));
        assert_eq!(serial.table3, serial.table3_ilp);
        assert_eq!(run_all(Jobs::Count(3)), serial);
    }
}
