//! Sensitivity of the Figure 2 curves to the generator's unpublished
//! knobs — the executable version of the calibration story in
//! DESIGN.md §5.3. Runs through the same batched [`crate::figure2`] driver
//! as the main sweeps, so every variant shares one analysis cache per
//! generated set across the three methods.
//!
//! Three period models over the same DAG population, one reduced m = 4
//! panel each:
//!
//! * `SlackFactor` (calibrated default) — heterogeneous periods, real
//!   per-task slack;
//! * `CommonScale` — near-homogeneous periods: demonstrates the carry-in
//!   collapse of all three analyses at `U ≈ m/2`;
//! * `PerTaskUtilization` — independent heavy utilizations: demonstrates
//!   the fragile-small-task failure mode that destroys the LP plateau.

use crate::exec::Jobs;
use crate::figure2::{run_with_jobs, SweepConfig, SweepResult};
use rta_taskgen::{group1, PeriodModel, TaskSetConfig};

/// One sensitivity variant: a label and a generator.
#[derive(Clone, Debug)]
pub struct Variant {
    /// Display label.
    pub label: &'static str,
    /// Generator used for the sweep.
    pub generator: fn(f64) -> TaskSetConfig,
}

fn slack_factor_default(target: f64) -> TaskSetConfig {
    group1(target)
}

fn common_scale(target: f64) -> TaskSetConfig {
    let mut config = group1(target);
    config.period_model = PeriodModel::CommonScale { spread: 2.0 };
    config
}

fn per_task_utilization(target: f64) -> TaskSetConfig {
    let mut config = group1(target);
    config.period_model = PeriodModel::PerTaskUtilization { max: 1.0 };
    config
}

/// The three variants of DESIGN.md §5.3.
pub fn variants() -> Vec<Variant> {
    vec![
        Variant {
            label: "slack-factor (default)",
            generator: slack_factor_default,
        },
        Variant {
            label: "common-scale periods",
            generator: common_scale,
        },
        Variant {
            label: "per-task utilization",
            generator: per_task_utilization,
        },
    ]
}

/// Runs the reduced m = 4 panel for every variant with one worker per
/// core.
pub fn run_all(sets_per_point: usize) -> Vec<(Variant, SweepResult)> {
    run_all_with_jobs(sets_per_point, Jobs::Auto)
}

/// [`run_all`] with an explicit worker budget.
pub fn run_all_with_jobs(sets_per_point: usize, jobs: Jobs) -> Vec<(Variant, SweepResult)> {
    variants()
        .into_iter()
        .map(|v| {
            let config = SweepConfig::paper_panel(4)
                .with_sets_per_point(sets_per_point)
                .with_generator(v.generator);
            let result = run_with_jobs(&config, jobs);
            (v, result)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_run_and_dominate() {
        for (variant, result) in run_all(6) {
            assert!(
                result.dominance_holds(),
                "{}: ordering must hold under every generator",
                variant.label
            );
            assert_eq!(result.points.len(), 13);
        }
    }

    #[test]
    fn common_scale_collapses_earlier_for_fp() {
        // The carry-in collapse: by U = 3 (0.75·m) the common-scale variant
        // must be far below the slack-factor variant for FP-ideal.
        let results = run_all(24);
        let fp_at = |label: &str, idx: usize| -> f64 {
            results
                .iter()
                .find(|(v, _)| v.label.starts_with(label))
                .map(|(_, r)| r.points[idx].schedulable_pct[0])
                .expect("variant present")
        };
        // Point index 8 ≈ U = 3.0 on the 13-point 1..4 grid.
        let slack = fp_at("slack-factor", 8);
        let common = fp_at("common-scale", 8);
        assert!(
            common <= slack,
            "common-scale FP-ideal ({common}) should not beat slack-factor ({slack})"
        );
    }
}
