//! Minimal ASCII table / chart rendering for terminal reports.

/// Renders an aligned table: `header` then `rows`, columns padded to the
/// widest cell.
///
/// # Example
///
/// ```
/// let t = rta_experiments::ascii::table(
///     &["U", "FP-ideal"],
///     &[vec!["1.0".into(), "100.0".into()]],
/// );
/// assert!(t.contains("U   | FP-ideal"));
/// ```
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str(" | ");
            }
            line.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 3 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Renders one schedulability curve as a horizontal sparkline: one
/// character per point, `█` = 100%, `·` = 0%.
pub fn sparkline(percentages: &[f64]) -> String {
    const GLYPHS: [char; 9] = ['·', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    percentages
        .iter()
        .map(|&p| {
            let idx = ((p / 100.0) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect()
}

/// CSV rendering (header + rows), RFC-4180-lite: our cells never contain
/// commas or quotes.
pub fn csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            &["a", "bbb"],
            &[vec!["xx".into(), "1".into()], vec!["y".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "a  | bbb");
        assert_eq!(lines[2], "xx | 1");
        assert_eq!(lines[3], "y  | 22");
    }

    #[test]
    fn sparkline_extremes() {
        assert_eq!(sparkline(&[0.0, 100.0]), "·█");
        assert_eq!(sparkline(&[50.0]).chars().count(), 1);
    }

    #[test]
    fn csv_shape() {
        let c = csv(&["u", "pct"], &[vec!["1.5".into(), "98.3".into()]]);
        assert_eq!(c, "u,pct\n1.5,98.3\n");
    }
}
