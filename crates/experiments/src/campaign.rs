//! The streaming campaign engine: every experiment driver's substrate.
//!
//! A *campaign* is a list of independent, deterministic cells fanned over
//! the [`exec`] worker pool. Three cell types exist today: the
//! **schedulability cell** (generate one task set, evaluate the three
//! analyses through the verdict fast path — this module's [`sweep_into`]),
//! the **table cell** (regenerate one paper table — [`crate::tables`]),
//! and the **validation cell** (generate, analyze *with per-task bounds*,
//! simulate under both preemption policies and check the soundness
//! invariants — [`crate::validate`]). The engine owns the properties every
//! driver (figure2, tables, timing, sensitivity, `repro campaign`, `repro
//! validate`) relies on:
//!
//! * **Streaming evaluation, end to end.** Generation is not a separate
//!   phase: each cell generates its task set *on the worker that claims
//!   it*, using a per-worker [`TaskSetGenerator`] scratch (DAG builder and
//!   assembly buffers reused across thousands of sets), then analyzes it
//!   through the verdict fast path (a verdict-only [`AnalysisRequest`]) —
//!   unschedulable
//!   sets of a high-utilization point never touch the combinatorial
//!   blocking machinery, and schedulable sets answer LP-ILP from LP-max's
//!   verdict via the dominance chain. Results stream too: cell outcomes
//!   flow through the order-preserving worker channel
//!   ([`exec::stream_indexed`]) into an O(1) per-point fold, and each
//!   completed point is handed to the caller immediately — the `repro`
//!   CLI writes it to the panel's CSV file on the spot through a
//!   [`CsvSink`](crate::csv::CsvSink). No cell list, row list or CSV body
//!   is ever buffered, so campaign memory is flat no matter how many sets
//!   per point (or sweep points) are requested.
//! * **Bit-identical output for any worker count.** Cell seeds derive only
//!   from campaign coordinates ([`crate::set_seed`]), generation scratch
//!   never influences a random draw (pinned in `rta-taskgen`'s tests), and
//!   the per-point fold consumes outcomes in coordinate order — including
//!   its floating-point accumulation order, so even the tightness ratios
//!   of the validation campaign are reproducible bytes.
//!
//! On top of the substrate, this module defines the scenario panels that
//! the streaming engine makes cheap ([`PanelKind`]), surfaced as `repro
//! campaign` subcommands: a constrained-deadline panel (`D_i = f·T_i`,
//! `f` swept), a chain-heavy/control-flow mixture panel, an `m ∈ {2, 8,
//! 16}` core-count panel, and the `PeriodModel × deadline_factor` cross
//! panels ([`PanelKind::Cross`]) that re-run the deadline sweep under each
//! period-derivation family. Every panel charts all six methods — the
//! paper's three, the corrected [`rta_analysis::Method::LpSound`] bound,
//! and the published fully-preemptive competitors
//! ([`rta_analysis::Method::LongPaths`],
//! [`rta_analysis::Method::GenSporadic`]) — and the CLI aggregates the
//! LP-ILP/LP-sound acceptance gap into `soundness_cost.csv`.
//!
//! # The competitor comparison (`repro campaign compare`)
//!
//! [`PanelKind::run_compare_into`] re-streams the core/deadline/chain
//! panels ([`compare_panels`]) while folding every cell's six verdicts
//! into a pairwise **wins/losses matrix** ([`MethodMatrix`]):
//! `wins[a][b]` counts the task sets method `a` accepted and method `b`
//! rejected. The fold is a sum of per-set indicator contributions, so the
//! matrix is independent of both worker count and fold order — `repro
//! campaign compare` emits the same `method_matrix.csv` bytes serially
//! and in parallel, and the per-point acceptance CSVs stream through the
//! ordinary coordinate-ordered point fold alongside it.

use crate::exec::{self, Jobs};
use crate::figure2::{SweepPoint, SweepResult, METHODS};
use crate::set_seed;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rta_analysis::{AnalysisRequest, Method, ScenarioSpace};
use rta_model::TaskSet;
use rta_taskgen::{chain_mix, group1, TaskSetConfig, TaskSetGenerator};
use std::cell::RefCell;

thread_local! {
    /// The calling worker's reusable generation scratch. Worker threads are
    /// scoped per [`exec::par_map`] call, so the scratch lives exactly as
    /// long as its worker; under the serial driver the main thread keeps
    /// one scratch across the whole campaign.
    static GENERATOR: RefCell<TaskSetGenerator> = RefCell::new(TaskSetGenerator::new());
}

/// Generates one task set on the calling worker's reusable scratch —
/// bit-identical to `generate_task_set(&mut SmallRng::seed_from_u64(seed),
/// config)` with a fresh generator.
pub fn generate_on_worker(seed: u64, config: &TaskSetConfig) -> TaskSet {
    GENERATOR.with(|g| {
        g.borrow_mut()
            .generate(&mut SmallRng::seed_from_u64(seed), config)
    })
}

/// As [`generate_on_worker`], with an exact task count (the task-count
/// sweep variant).
pub fn generate_on_worker_with_count(seed: u64, config: &TaskSetConfig, count: usize) -> TaskSet {
    GENERATOR.with(|g| {
        g.borrow_mut()
            .generate_with_count(&mut SmallRng::seed_from_u64(seed), config, count)
    })
}

/// Runs a list of independent campaign cells over the worker pool,
/// returning results in input order — the substrate every experiment
/// driver fans its work through (one schedulability evaluation, one table
/// regeneration, one timing attempt per cell).
pub fn run_cells<T, R, F>(cells: &[T], jobs: Jobs, eval: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    exec::par_map(cells, jobs, eval)
}

/// One sweep described to the streaming engine: analysis platform,
/// x-coordinates, sets per point, base seed, and how to generate a set
/// from `(per-set seed, x)`.
pub struct SweepSpec<'a, F> {
    /// Core count the three methods analyze on.
    pub cores: usize,
    /// The x-axis values (utilization targets, deadline factors, …).
    pub xs: &'a [f64],
    /// Generated task sets per x value.
    pub sets_per_point: usize,
    /// Base RNG seed; per-set seeds derive via [`set_seed`].
    pub seed: u64,
    /// Scenario space of the LP-ILP leg.
    pub space: ScenarioSpace,
    /// `make_set(per_set_seed, x)` — must be pure (the engine may evaluate
    /// it on any worker); use [`generate_on_worker`] inside for scratch
    /// reuse.
    pub make_set: F,
}

/// Streams a sweep: every `(point, set)` cell generates and analyzes its
/// task set on the worker that claims it, and the per-point fold runs in
/// coordinate order — bit-identical across worker counts.
///
/// Collecting wrapper around [`sweep_into`]; the points vector it builds
/// is small (one entry per x value), the cell outcomes never materialize.
pub fn sweep<F>(spec: &SweepSpec<'_, F>, jobs: Jobs) -> SweepResult
where
    F: Fn(u64, f64) -> TaskSet + Sync,
{
    let mut points = Vec::with_capacity(spec.xs.len());
    sweep_into(spec, jobs, &mut |p: &SweepPoint| points.push(p.clone()));
    SweepResult {
        cores: spec.cores,
        points,
    }
}

/// The streaming heart of every sweep: cells flow through the
/// order-preserving worker channel ([`exec::stream_indexed`]) straight
/// into an O(1) per-point fold, and each [`SweepPoint`] is handed to
/// `on_point` the moment its last set folds — no per-cell (or per-point)
/// buffering anywhere, so sweep memory no longer grows with `sets_per_point`
/// or the grid size. The fold consumes cell outcomes in coordinate order
/// regardless of which worker produced them, keeping the emitted points —
/// including the floating-point accumulation order — bit-identical for
/// every worker count.
pub fn sweep_into<F>(spec: &SweepSpec<'_, F>, jobs: Jobs, on_point: &mut dyn FnMut(&SweepPoint))
where
    F: Fn(u64, f64) -> TaskSet + Sync,
{
    sweep_cells_into(spec, jobs, &mut |_| {}, on_point);
}

/// As [`sweep_into`], additionally handing every cell's per-method
/// verdicts (in [`Method::ALL`] order) to `on_cell` before they fold into
/// the point — the hook the comparison matrix of `repro campaign compare`
/// accumulates through. Cells reach `on_cell` in coordinate order (the
/// same order the fold consumes them), so even order-sensitive consumers
/// see identical sequences for every worker count.
pub fn sweep_cells_into<F>(
    spec: &SweepSpec<'_, F>,
    jobs: Jobs,
    on_cell: &mut dyn FnMut(&[bool]),
    on_point: &mut dyn FnMut(&SweepPoint),
) where
    F: Fn(u64, f64) -> TaskSet + Sync,
{
    let sets = spec.sets_per_point;
    if sets == 0 {
        return;
    }
    let request = AnalysisRequest::new(spec.cores).with_scenario_space(spec.space);

    // Rolling accumulator of the point currently being folded; cells
    // arrive in coordinate order, so a point completes exactly when its
    // last set index is consumed.
    let mut counts = [0usize; METHODS];
    let mut achieved = 0.0f64;
    exec::stream_indexed(
        spec.xs.len() * sets,
        jobs,
        |index| {
            let (p, s) = (index / sets, index % sets);
            let ts = (spec.make_set)(set_seed(spec.seed, p, s), spec.xs[p]);
            let schedulable = request.evaluate(&ts).verdicts();
            (ts.total_utilization(), schedulable)
        },
        |index, (utilization, schedulable)| {
            on_cell(&schedulable);
            achieved += utilization;
            for (mi, &ok) in schedulable.iter().enumerate() {
                if ok {
                    counts[mi] += 1;
                }
            }
            if index % sets == sets - 1 {
                let pct = |c: usize| 100.0 * c as f64 / sets as f64;
                on_point(&SweepPoint {
                    x: spec.xs[index / sets],
                    achieved_utilization: achieved / sets as f64,
                    schedulable_pct: std::array::from_fn(|mi| pct(counts[mi])),
                });
                counts = [0; METHODS];
                achieved = 0.0;
            }
        },
    );
}

/// The pairwise wins/losses matrix of `repro campaign compare`:
/// `wins[a][b]` counts the task sets method `a` (row, [`Method::ALL`]
/// order) declared schedulable while method `b` (column) rejected them,
/// over every cell folded into the matrix. The diagonal is always zero; a
/// provable dominance edge shows up as a structurally zero entry (e.g.
/// `wins[LP-max][LP-ILP] = 0`: LP-max never accepts a set LP-ILP
/// rejects).
///
/// The accumulation is a sum of per-set indicator contributions, so the
/// final matrix is independent of fold order — serial and parallel runs
/// emit byte-identical CSVs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MethodMatrix {
    /// `wins[a][b]` = sets accepted by `Method::ALL[a]`, rejected by
    /// `Method::ALL[b]`.
    pub wins: [[u64; METHODS]; METHODS],
    /// Total cells folded in.
    pub sets: u64,
}

/// The CSV column slug of `Method::ALL[mi]` — shared by every per-method
/// column header in the experiment CSVs.
pub fn method_slug(mi: usize) -> &'static str {
    Method::ALL[mi].slug()
}

impl MethodMatrix {
    /// Folds one cell's verdicts (in [`Method::ALL`] order) into the
    /// matrix.
    pub fn record(&mut self, verdicts: &[bool]) {
        debug_assert_eq!(verdicts.len(), METHODS);
        self.sets += 1;
        for a in 0..METHODS {
            for b in 0..METHODS {
                if verdicts[a] && !verdicts[b] {
                    self.wins[a][b] += 1;
                }
            }
        }
    }

    /// Net score of method `mi`: total wins minus total losses across all
    /// pairings — the single-number ranking the CLI prints.
    pub fn net(&self, mi: usize) -> i64 {
        let wins: u64 = self.wins[mi].iter().sum();
        let losses: u64 = (0..METHODS).map(|b| self.wins[b][mi]).sum();
        wins as i64 - losses as i64
    }

    /// The `method_matrix.csv` header: the row method, one wins column per
    /// opponent, then the row totals.
    pub fn csv_header() -> [&'static str; METHODS + 3] {
        [
            "method",
            "vs_fp_ideal",
            "vs_lp_ilp",
            "vs_lp_max",
            "vs_lp_sound",
            "vs_long_paths",
            "vs_gen_sporadic",
            "wins_total",
            "net",
        ]
    }

    /// The matrix as CSV rows, one per method in [`Method::ALL`] order.
    pub fn csv_rows(&self) -> Vec<Vec<String>> {
        (0..METHODS)
            .map(|a| {
                let mut row = vec![method_slug(a).to_string()];
                for b in 0..METHODS {
                    row.push(format!("{}", self.wins[a][b]));
                }
                row.push(format!("{}", self.wins[a].iter().sum::<u64>()));
                row.push(format!("{}", self.net(a)));
                row
            })
            .collect()
    }

    /// CSV rendering (the `method_matrix.csv` bytes).
    pub fn to_csv(&self) -> String {
        crate::csv::to_string(&Self::csv_header(), self.csv_rows())
    }

    /// ASCII rendering for the CLI.
    pub fn render(&self) -> String {
        let mut header = vec!["wins \\ losses"];
        for mi in 0..METHODS {
            header.push(Method::ALL[mi].label());
        }
        header.push("net");
        let rows: Vec<Vec<String>> = (0..METHODS)
            .map(|a| {
                let mut row = vec![Method::ALL[a].label().to_string()];
                for b in 0..METHODS {
                    row.push(format!("{}", self.wins[a][b]));
                }
                row.push(format!("{:+}", self.net(a)));
                row
            })
            .collect();
        crate::ascii::table(&header, &rows)
    }
}

/// Per-method analysis cost over one compare run, read back from the
/// process-global metrics registry (`analysis_verdict_ns_*` histograms).
///
/// The counts are deterministic — every verdict the sweep evaluates lands
/// exactly once — but the nanosecond figures are wall-clock measurements
/// and vary run to run. The CLI therefore writes them to their own
/// `method_costs.csv`, which the CI golden diff excludes, instead of
/// folding them into the byte-pinned `compare_*`/`method_matrix` files.
#[derive(Clone, Debug)]
pub struct MethodCosts {
    /// Per method in [`Method::ALL`] order: verdicts measured, mean
    /// verdict cost (ns), worst verdict cost (ns).
    pub rows: [(u64, f64, u64); METHODS],
}

impl MethodCosts {
    /// Reads the per-method cost out of a snapshot **delta**
    /// ([`rta_obs::Snapshot::since`]), so concurrent servers or earlier
    /// panels in the same process don't leak into the figures.
    pub fn from_snapshot(delta: &rta_obs::Snapshot) -> Self {
        let rows = std::array::from_fn(|mi| {
            let name = format!("analysis_verdict_ns_{}", Method::ALL[mi].slug());
            match delta.histogram(&name) {
                Some(h) => (h.count, h.mean(), h.max),
                None => (0, 0.0, 0),
            }
        });
        Self { rows }
    }

    /// The `method_costs.csv` header.
    pub fn csv_header() -> [&'static str; 4] {
        ["method", "verdicts", "mean_verdict_ns", "max_verdict_ns"]
    }

    /// The matrix as CSV rows, one per method in [`Method::ALL`] order.
    pub fn csv_rows(&self) -> Vec<Vec<String>> {
        (0..METHODS)
            .map(|mi| {
                let (count, mean, max) = self.rows[mi];
                vec![
                    method_slug(mi).to_string(),
                    count.to_string(),
                    format!("{mean:.0}"),
                    max.to_string(),
                ]
            })
            .collect()
    }

    /// CSV rendering (the `method_costs.csv` bytes).
    pub fn to_csv(&self) -> String {
        crate::csv::to_string(&Self::csv_header(), self.csv_rows())
    }

    /// ASCII rendering for the CLI compare summary.
    pub fn render(&self) -> String {
        let header = ["method", "verdicts", "mean ns", "max ns"];
        let rows: Vec<Vec<String>> = (0..METHODS)
            .map(|mi| {
                let (count, mean, max) = self.rows[mi];
                vec![
                    Method::ALL[mi].label().to_string(),
                    count.to_string(),
                    format!("{mean:.0}"),
                    max.to_string(),
                ]
            })
            .collect();
        crate::ascii::table(&header, &rows)
    }
}

/// One named campaign panel: a sweep plus its presentation metadata.
pub struct Panel {
    /// CSV file stem and display name.
    pub name: &'static str,
    /// Human-readable description printed above the table.
    pub title: &'static str,
    /// X-axis label of the rendered table / CSV header.
    pub x_label: &'static str,
    /// The sweep result.
    pub result: SweepResult,
}

/// Base seed of the campaign panels (distinct from the Figure 2 seed so
/// the panels are a fresh population, not a re-analysis).
const CAMPAIGN_SEED: u64 = 0xCA4A_161C;

/// The 13-point utilization grid `1 → m` every core-count panel sweeps —
/// shared by the `repro campaign` and `repro validate` panels so the two
/// populations stay comparable point for point.
pub fn utilization_grid(cores: usize) -> Vec<f64> {
    let m = cores as f64;
    (0..13)
        .map(|i| 1.0 + (m - 1.0) * f64::from(i) / 12.0)
        .collect()
}

/// The deadline-factor grid `f ∈ {0.5, 0.55, …, 1.0}` of the
/// constrained-deadline panels (campaign and validation).
pub fn deadline_factor_grid() -> Vec<f64> {
    (0..=10).map(|i| 0.5 + 0.05 * f64::from(i)).collect()
}

/// The chain-share grid `{0, 0.125, …, 1}` of the chain-mixture panels
/// (campaign and validation).
pub fn chain_share_grid() -> Vec<f64> {
    (0..=8).map(|i| 0.125 * f64::from(i)).collect()
}

/// The period-derivation family of one [`PanelKind::Cross`] panel — the
/// `PeriodModel` axis of the `PeriodModel × deadline_factor` cross.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeriodFamily {
    /// The calibrated default: heterogeneous periods via log-uniform slack
    /// factors (the [`group1`] preset).
    SlackFactor,
    /// Near-homogeneous periods on a common scale — the carry-in-collapse
    /// regime of DESIGN.md §5.3.
    CommonScale,
    /// Independent heavy per-task utilizations — the fragile-small-task
    /// regime.
    PerTaskUtilization,
}

impl PeriodFamily {
    /// The `group1(2.0)` preset with this family's period model.
    fn config(self) -> TaskSetConfig {
        let mut config = group1(2.0);
        config.period_model = match self {
            PeriodFamily::SlackFactor => return config,
            PeriodFamily::CommonScale => rta_taskgen::PeriodModel::CommonScale { spread: 2.0 },
            PeriodFamily::PerTaskUtilization => {
                rta_taskgen::PeriodModel::PerTaskUtilization { max: 1.0 }
            }
        };
        config
    }
}

/// One of the scenario panels, identified ahead of running it — the CLI
/// reads the metadata first (to open the streaming CSV sink), then runs
/// the sweep through [`PanelKind::run_into`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PanelKind {
    /// Constrained deadlines: `m = 4`, `U = 2`, `D = f·T` with `f` swept.
    Deadline,
    /// Chain-heavy mixtures: `m = 4`, `U = 2`, chain share swept.
    Chains,
    /// Core-count utilization sweep on `m` cores (the panels are `m ∈
    /// {2, 8, 16}`; see [`PanelKind::all`]).
    Cores(usize),
    /// The `PeriodModel × deadline_factor` cross: the deadline sweep of
    /// [`PanelKind::Deadline`] re-run under each period-derivation family,
    /// so the deadline sensitivity of the four analyses can be compared
    /// across generator regimes rather than only under the calibrated
    /// default.
    Cross(PeriodFamily),
}

impl PanelKind {
    /// Every panel, in CLI order.
    pub fn all() -> Vec<PanelKind> {
        vec![
            PanelKind::Deadline,
            PanelKind::Chains,
            PanelKind::Cores(2),
            PanelKind::Cores(8),
            PanelKind::Cores(16),
            PanelKind::Cross(PeriodFamily::SlackFactor),
            PanelKind::Cross(PeriodFamily::CommonScale),
            PanelKind::Cross(PeriodFamily::PerTaskUtilization),
        ]
    }

    /// CSV file stem and display name.
    pub fn name(self) -> &'static str {
        match self {
            PanelKind::Deadline => "campaign_deadline",
            PanelKind::Chains => "campaign_chains",
            PanelKind::Cores(2) => "campaign_cores_m2",
            PanelKind::Cores(8) => "campaign_cores_m8",
            PanelKind::Cores(16) => "campaign_cores_m16",
            PanelKind::Cores(_) => "campaign_cores",
            PanelKind::Cross(PeriodFamily::SlackFactor) => "campaign_cross_slack",
            PanelKind::Cross(PeriodFamily::CommonScale) => "campaign_cross_common",
            PanelKind::Cross(PeriodFamily::PerTaskUtilization) => "campaign_cross_pertask",
        }
    }

    /// CSV file stem of the panel's `repro campaign compare` acceptance
    /// sweep (same rows as the ordinary panel CSV, fresh file so the two
    /// runs never clobber each other).
    pub fn compare_name(self) -> &'static str {
        match self {
            PanelKind::Deadline => "compare_deadline",
            PanelKind::Chains => "compare_chains",
            PanelKind::Cores(2) => "compare_cores_m2",
            PanelKind::Cores(8) => "compare_cores_m8",
            PanelKind::Cores(16) => "compare_cores_m16",
            PanelKind::Cores(_) => "compare_cores",
            PanelKind::Cross(PeriodFamily::SlackFactor) => "compare_cross_slack",
            PanelKind::Cross(PeriodFamily::CommonScale) => "compare_cross_common",
            PanelKind::Cross(PeriodFamily::PerTaskUtilization) => "compare_cross_pertask",
        }
    }

    /// Human-readable description printed above the table.
    pub fn title(self) -> &'static str {
        match self {
            PanelKind::Deadline => "constrained deadlines: m = 4, U = 2, D = f*T, f swept",
            PanelKind::Chains => "chain-heavy mixtures: m = 4, U = 2, chain share swept",
            PanelKind::Cores(2) => "core count: m = 2 utilization sweep (group 1)",
            PanelKind::Cores(8) => "core count: m = 8 utilization sweep (group 1)",
            PanelKind::Cores(_) => "core count: m = 16 utilization sweep (group 1)",
            PanelKind::Cross(PeriodFamily::SlackFactor) => {
                "period model x deadline: slack-factor periods, D = f*T, f swept"
            }
            PanelKind::Cross(PeriodFamily::CommonScale) => {
                "period model x deadline: common-scale periods, D = f*T, f swept"
            }
            PanelKind::Cross(PeriodFamily::PerTaskUtilization) => {
                "period model x deadline: per-task-utilization periods, D = f*T, f swept"
            }
        }
    }

    /// X-axis label of the rendered table / CSV header.
    pub fn x_label(self) -> &'static str {
        match self {
            PanelKind::Deadline | PanelKind::Cross(_) => "deadline_factor",
            PanelKind::Chains => "chain_share",
            PanelKind::Cores(_) => "utilization",
        }
    }

    /// Core count the panel analyzes on.
    pub fn cores(self) -> usize {
        match self {
            PanelKind::Deadline | PanelKind::Chains | PanelKind::Cross(_) => 4,
            PanelKind::Cores(m) => m,
        }
    }

    /// Streams the panel's sweep, delivering each completed point to
    /// `on_point` (see [`sweep_into`]).
    pub fn run_into(
        self,
        sets_per_point: usize,
        jobs: Jobs,
        on_point: &mut dyn FnMut(&SweepPoint),
    ) {
        self.stream(sets_per_point, jobs, &mut |_| {}, on_point);
    }

    /// As [`Self::run_into`], additionally folding every cell's six verdicts
    /// into `matrix` — the streaming engine behind `repro campaign
    /// compare` (see [`MethodMatrix`]).
    pub fn run_compare_into(
        self,
        sets_per_point: usize,
        jobs: Jobs,
        matrix: &mut MethodMatrix,
        on_point: &mut dyn FnMut(&SweepPoint),
    ) {
        self.stream(
            sets_per_point,
            jobs,
            &mut |verdicts| matrix.record(verdicts),
            on_point,
        );
    }

    /// The single match over the panel variants both streaming entries
    /// share.
    fn stream(
        self,
        sets_per_point: usize,
        jobs: Jobs,
        on_cell: &mut dyn FnMut(&[bool]),
        on_point: &mut dyn FnMut(&SweepPoint),
    ) {
        match self {
            PanelKind::Deadline => {
                let factors = deadline_factor_grid();
                sweep_cells_into(
                    &SweepSpec {
                        cores: 4,
                        xs: &factors,
                        sets_per_point,
                        seed: CAMPAIGN_SEED,
                        space: ScenarioSpace::PaperExact,
                        make_set: |seed, f| {
                            let config = group1(2.0).with_deadline_factor(f);
                            generate_on_worker(seed, &config)
                        },
                    },
                    jobs,
                    on_cell,
                    on_point,
                );
            }
            PanelKind::Chains => {
                let shares = chain_share_grid();
                sweep_cells_into(
                    &SweepSpec {
                        cores: 4,
                        xs: &shares,
                        sets_per_point,
                        seed: CAMPAIGN_SEED ^ 1,
                        space: ScenarioSpace::PaperExact,
                        make_set: |seed, share| generate_on_worker(seed, &chain_mix(2.0, share)),
                    },
                    jobs,
                    on_cell,
                    on_point,
                );
            }
            PanelKind::Cores(cores) => {
                let xs = utilization_grid(cores);
                sweep_cells_into(
                    &SweepSpec {
                        cores,
                        xs: &xs,
                        sets_per_point,
                        seed: CAMPAIGN_SEED ^ (cores as u64),
                        space: ScenarioSpace::PaperExact,
                        make_set: |seed, target| generate_on_worker(seed, &group1(target)),
                    },
                    jobs,
                    on_cell,
                    on_point,
                );
            }
            PanelKind::Cross(family) => {
                let factors = deadline_factor_grid();
                let base = family.config();
                sweep_cells_into(
                    &SweepSpec {
                        cores: 4,
                        xs: &factors,
                        sets_per_point,
                        seed: CAMPAIGN_SEED ^ (0x100 + family as u64),
                        space: ScenarioSpace::PaperExact,
                        make_set: |seed, f| {
                            generate_on_worker(seed, &base.clone().with_deadline_factor(f))
                        },
                    },
                    jobs,
                    on_cell,
                    on_point,
                );
            }
        }
    }

    /// Runs the panel, collecting the sweep into a [`Panel`].
    pub fn run(self, sets_per_point: usize, jobs: Jobs) -> Panel {
        let mut points = Vec::new();
        self.run_into(sets_per_point, jobs, &mut |p: &SweepPoint| {
            points.push(p.clone())
        });
        Panel {
            name: self.name(),
            title: self.title(),
            x_label: self.x_label(),
            result: SweepResult {
                cores: self.cores(),
                points,
            },
        }
    }
}

/// The constrained-deadline panel: `m = 4`, `U = m/2`, deadlines
/// `D_i = f·T_i` with the factor `f` swept — charts how quickly each
/// analysis sheds schedulability as slack between response bound and
/// deadline is removed.
pub fn deadline_panel(sets_per_point: usize, jobs: Jobs) -> Panel {
    PanelKind::Deadline.run(sets_per_point, jobs)
}

/// The chain-heavy mixture panel: `m = 4`, `U = m/2`, the sequential-chain
/// share of the task mixture swept from 0 to 1 — the regime where DAGs
/// degenerate into control-flow chains and LP-max's pooled-NPR bound
/// over-counts hardest relative to LP-ILP.
pub fn chain_panel(sets_per_point: usize, jobs: Jobs) -> Panel {
    PanelKind::Chains.run(sets_per_point, jobs)
}

/// The core-count panels: the paper's utilization sweep on `m = 2` (where
/// `p(m)` collapses to 2 scenarios and the paper's three analyses nearly
/// coincide), `m = 8`, and `m = 16` (the platform the validation campaign
/// already covered; its schedulability panel rides the same mixed
/// suffix-DP cache path) — all re-generated from the campaign seed
/// population.
pub fn core_count_panels(sets_per_point: usize, jobs: Jobs) -> Vec<Panel> {
    [
        PanelKind::Cores(2),
        PanelKind::Cores(8),
        PanelKind::Cores(16),
    ]
    .into_iter()
    .map(|kind| kind.run(sets_per_point, jobs))
    .collect()
}

/// The `PeriodModel × deadline_factor` cross panels, one per period
/// family.
pub fn cross_panels(sets_per_point: usize, jobs: Jobs) -> Vec<Panel> {
    [
        PanelKind::Cross(PeriodFamily::SlackFactor),
        PanelKind::Cross(PeriodFamily::CommonScale),
        PanelKind::Cross(PeriodFamily::PerTaskUtilization),
    ]
    .into_iter()
    .map(|kind| kind.run(sets_per_point, jobs))
    .collect()
}

/// All campaign panels, in CLI order.
pub fn run_all(sets_per_point: usize, jobs: Jobs) -> Vec<Panel> {
    PanelKind::all()
        .into_iter()
        .map(|kind| kind.run(sets_per_point, jobs))
        .collect()
}

/// The panels `repro campaign compare` streams its wins/losses matrix
/// over: the deadline, chain-mixture and core-count sweeps (the cross
/// panels re-use the deadline population and would double-count it).
pub fn compare_panels() -> Vec<PanelKind> {
    vec![
        PanelKind::Deadline,
        PanelKind::Chains,
        PanelKind::Cores(2),
        PanelKind::Cores(8),
        PanelKind::Cores(16),
    ]
}

/// Runs the full comparison: every [`compare_panels`] sweep streamed into
/// one shared [`MethodMatrix`], the per-panel acceptance sweeps collected
/// alongside. The collecting counterpart of the CLI's streaming loop
/// (which feeds each panel's points to a CSV sink as they complete).
pub fn run_compare(sets_per_point: usize, jobs: Jobs) -> (Vec<Panel>, MethodMatrix) {
    let mut matrix = MethodMatrix::default();
    let mut panels = Vec::new();
    for kind in compare_panels() {
        let mut points = Vec::new();
        kind.run_compare_into(sets_per_point, jobs, &mut matrix, &mut |p: &SweepPoint| {
            points.push(p.clone())
        });
        panels.push(Panel {
            name: kind.compare_name(),
            title: kind.title(),
            x_label: kind.x_label(),
            result: SweepResult {
                cores: kind.cores(),
                points,
            },
        });
    }
    (panels, matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_panel_tightening_costs_schedulability() {
        // Tighter deadlines hurt overall. (Strict per-point monotonicity in
        // f does not hold: shrinking deadlines also reshuffles the
        // deadline-monotonic priority order, which can locally help a small
        // sample — only the trend is a theorem-like expectation.)
        let panel = deadline_panel(12, Jobs::serial());
        assert_eq!(panel.result.points.len(), 11);
        assert!(panel.result.dominance_holds());
        let fp: Vec<f64> = panel
            .result
            .points
            .iter()
            .map(|p| p.schedulable_pct[0])
            .collect();
        let (first, last) = (fp[0], *fp.last().unwrap());
        assert!(
            first < last,
            "f = 0.5 ({first}%) must schedule fewer sets than f = 1 ({last}%)"
        );
        // f = 1 is the implicit-deadline population: identical generation.
        assert!((panel.result.points.last().unwrap().x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_panel_runs_and_dominates() {
        let panel = chain_panel(8, Jobs::serial());
        assert_eq!(panel.result.points.len(), 9);
        assert!(panel.result.dominance_holds());
    }

    #[test]
    fn core_count_panels_cover_m2_m8_and_m16() {
        let panels = core_count_panels(4, Jobs::serial());
        assert_eq!(panels.len(), 3);
        assert_eq!(panels[0].result.cores, 2);
        assert_eq!(panels[1].result.cores, 8);
        assert_eq!(panels[2].result.cores, 16);
        for panel in &panels {
            assert!(panel.result.dominance_holds(), "{}", panel.name);
            assert_eq!(panel.result.points.len(), 13);
        }
    }

    #[test]
    fn cross_panels_cover_every_period_family() {
        let panels = cross_panels(4, Jobs::serial());
        assert_eq!(panels.len(), 3);
        let names: Vec<&str> = panels.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            [
                "campaign_cross_slack",
                "campaign_cross_common",
                "campaign_cross_pertask"
            ]
        );
        for panel in &panels {
            assert_eq!(panel.x_label, "deadline_factor");
            assert_eq!(panel.result.points.len(), 11);
            assert!(panel.result.dominance_holds(), "{}", panel.name);
        }
        // The slack-factor cross panel shares generation with the plain
        // deadline panel's family but uses its own seed: a fresh
        // population, not a re-analysis.
        let deadline = deadline_panel(4, Jobs::serial());
        assert_ne!(panels[0].result, deadline.result);
    }

    #[test]
    fn method_matrix_counts_pairwise_wins() {
        let mut m = MethodMatrix::default();
        // Set 1: FP-ideal and Long-paths accept, everyone else rejects.
        m.record(&[true, false, false, false, true, false]);
        // Set 2: only Long-paths accepts (a Graham-divergence rescue).
        m.record(&[false, false, false, false, true, false]);
        assert_eq!(m.sets, 2);
        assert_eq!(m.wins[4][0], 1, "Long-paths beats FP-ideal once");
        assert_eq!(m.wins[0][4], 0, "FP-ideal never beats Long-paths");
        assert_eq!(m.wins[0][1], 1);
        assert_eq!(m.wins[4][1], 2);
        for a in 0..METHODS {
            assert_eq!(m.wins[a][a], 0, "diagonal is structurally zero");
        }
        assert_eq!(m.net(4), 1 + 2 + 2 + 2 + 2);
        assert_eq!(m.net(5), -3, "loses to FP-ideal once and Long-paths twice");
        let csv = m.to_csv();
        assert!(csv.starts_with("method,vs_fp_ideal,vs_lp_ilp"));
        assert_eq!(csv.lines().count(), METHODS + 1);
        assert!(m.render().contains("Long-paths"));
    }

    #[test]
    fn compare_matrix_respects_the_dominance_edges() {
        let (panels, matrix) = run_compare(4, Jobs::serial());
        assert_eq!(panels.len(), 5);
        assert_eq!(panels[0].name, "compare_deadline");
        let total_cells: usize = panels.iter().map(|p| p.result.points.len() * 4).sum();
        assert_eq!(matrix.sets, total_cells as u64);
        // Provable edges are structurally zero columns of the winner:
        // nobody ever beats Long-paths' superset-acceptance over FP-ideal,
        // and the paper-internal chain holds.
        let mi = |m: Method| Method::ALL.iter().position(|&x| x == m).unwrap();
        assert_eq!(matrix.wins[mi(Method::FpIdeal)][mi(Method::LongPaths)], 0);
        assert_eq!(matrix.wins[mi(Method::LpMax)][mi(Method::LpIlp)], 0);
        assert_eq!(matrix.wins[mi(Method::LpIlp)][mi(Method::FpIdeal)], 0);
        assert_eq!(matrix.wins[mi(Method::GenSporadic)][mi(Method::FpIdeal)], 0);
        // The comparison is deterministic: a second serial run folds the
        // same bytes, and the parallel run must match it (the per-set
        // indicator sum is order-independent).
        let (panels2, matrix2) = run_compare(4, Jobs::Count(3));
        assert_eq!(matrix2, matrix);
        assert_eq!(panels2.len(), panels.len());
        for (a, b) in panels.iter().zip(&panels2) {
            assert_eq!(a.result, b.result, "{}", a.name);
        }
    }

    #[test]
    fn worker_scratch_generation_matches_fresh() {
        let config = group1(2.5);
        let direct = rta_taskgen::generate_task_set(&mut SmallRng::seed_from_u64(42), &config);
        assert_eq!(generate_on_worker(42, &config), direct);
        let counted =
            rta_taskgen::generate_task_set_with_count(&mut SmallRng::seed_from_u64(42), &config, 5);
        assert_eq!(generate_on_worker_with_count(42, &config, 5), counted);
    }
}
