//! The streaming campaign engine: every experiment driver's substrate.
//!
//! A *campaign* is a list of independent, deterministic cells — one
//! generated-and-analyzed task set per sweep coordinate, or one table
//! regeneration — fanned over the [`exec`] worker pool. The engine owns the
//! two properties every driver (figure2, tables, timing, sensitivity, and
//! the `repro campaign` panels) relies on:
//!
//! * **Streaming evaluation.** Generation is not a separate phase: each
//!   cell generates its task set *on the worker that claims it*, using a
//!   per-worker [`TaskSetGenerator`] scratch (DAG builder and assembly
//!   buffers reused across thousands of sets), then analyzes it through the
//!   verdict fast path ([`analyze_verdicts`]) — unschedulable sets of a
//!   high-utilization point never touch the combinatorial blocking
//!   machinery, and schedulable sets answer LP-ILP from LP-max's verdict
//!   via the dominance chain.
//! * **Bit-identical output for any worker count.** Cell seeds derive only
//!   from campaign coordinates ([`crate::set_seed`]), generation scratch
//!   never influences a random draw (pinned in `rta-taskgen`'s tests), and
//!   the per-point fold consumes outcomes in coordinate order.
//!
//! On top of the substrate, this module defines the three scenario panels
//! that the streaming engine makes cheap, surfaced as `repro campaign`
//! subcommands: a constrained-deadline panel (`D_i = f·T_i`, `f` swept), a
//! chain-heavy/control-flow mixture panel, and an `m ∈ {2, 8}` core-count
//! panel.

use crate::exec::{self, Jobs};
use crate::figure2::{SweepPoint, SweepResult};
use crate::set_seed;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rta_analysis::{analyze_verdicts, AnalysisConfig, Method, ScenarioSpace};
use rta_model::TaskSet;
use rta_taskgen::{chain_mix, group1, TaskSetConfig, TaskSetGenerator};
use std::cell::RefCell;

thread_local! {
    /// The calling worker's reusable generation scratch. Worker threads are
    /// scoped per [`exec::par_map`] call, so the scratch lives exactly as
    /// long as its worker; under the serial driver the main thread keeps
    /// one scratch across the whole campaign.
    static GENERATOR: RefCell<TaskSetGenerator> = RefCell::new(TaskSetGenerator::new());
}

/// Generates one task set on the calling worker's reusable scratch —
/// bit-identical to `generate_task_set(&mut SmallRng::seed_from_u64(seed),
/// config)` with a fresh generator.
pub fn generate_on_worker(seed: u64, config: &TaskSetConfig) -> TaskSet {
    GENERATOR.with(|g| {
        g.borrow_mut()
            .generate(&mut SmallRng::seed_from_u64(seed), config)
    })
}

/// As [`generate_on_worker`], with an exact task count (the task-count
/// sweep variant).
pub fn generate_on_worker_with_count(seed: u64, config: &TaskSetConfig, count: usize) -> TaskSet {
    GENERATOR.with(|g| {
        g.borrow_mut()
            .generate_with_count(&mut SmallRng::seed_from_u64(seed), config, count)
    })
}

/// Runs a list of independent campaign cells over the worker pool,
/// returning results in input order — the substrate every experiment
/// driver fans its work through (one schedulability evaluation, one table
/// regeneration, one timing attempt per cell).
pub fn run_cells<T, R, F>(cells: &[T], jobs: Jobs, eval: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    exec::par_map(cells, jobs, eval)
}

/// One sweep described to the streaming engine: analysis platform,
/// x-coordinates, sets per point, base seed, and how to generate a set
/// from `(per-set seed, x)`.
pub struct SweepSpec<'a, F> {
    /// Core count the three methods analyze on.
    pub cores: usize,
    /// The x-axis values (utilization targets, deadline factors, …).
    pub xs: &'a [f64],
    /// Generated task sets per x value.
    pub sets_per_point: usize,
    /// Base RNG seed; per-set seeds derive via [`set_seed`].
    pub seed: u64,
    /// Scenario space of the LP-ILP leg.
    pub space: ScenarioSpace,
    /// `make_set(per_set_seed, x)` — must be pure (the engine may evaluate
    /// it on any worker); use [`generate_on_worker`] inside for scratch
    /// reuse.
    pub make_set: F,
}

/// Streams a sweep: every `(point, set)` cell generates and analyzes its
/// task set on the worker that claims it, and the per-point fold runs in
/// coordinate order — bit-identical across worker counts.
pub fn sweep<F>(spec: &SweepSpec<'_, F>, jobs: Jobs) -> SweepResult
where
    F: Fn(u64, f64) -> TaskSet + Sync,
{
    let points = spec.xs.len();
    let sets = spec.sets_per_point;
    let coords: Vec<(usize, usize)> = (0..points)
        .flat_map(|p| (0..sets).map(move |s| (p, s)))
        .collect();

    let configs: Vec<AnalysisConfig> = Method::ALL
        .iter()
        .map(|&method| AnalysisConfig::new(spec.cores, method).with_scenario_space(spec.space))
        .collect();

    struct CellOutcome {
        point: usize,
        utilization: f64,
        schedulable: Vec<bool>,
    }

    let outcomes = run_cells(&coords, jobs, |&(p, s)| {
        let ts = (spec.make_set)(set_seed(spec.seed, p, s), spec.xs[p]);
        let schedulable = analyze_verdicts(&ts, &configs);
        CellOutcome {
            point: p,
            utilization: ts.total_utilization(),
            schedulable,
        }
    });

    // Deterministic fold: coordinate order, independent of the driver.
    let mut counts = vec![[0usize; 3]; points];
    let mut achieved = vec![0.0f64; points];
    for outcome in &outcomes {
        achieved[outcome.point] += outcome.utilization;
        for (mi, &ok) in outcome.schedulable.iter().enumerate() {
            if ok {
                counts[outcome.point][mi] += 1;
            }
        }
    }
    let points = spec
        .xs
        .iter()
        .zip(counts.iter().zip(&achieved))
        .map(|(&x, (c, &u))| SweepPoint {
            x,
            achieved_utilization: u / sets as f64,
            schedulable_pct: [
                100.0 * c[0] as f64 / sets as f64,
                100.0 * c[1] as f64 / sets as f64,
                100.0 * c[2] as f64 / sets as f64,
            ],
        })
        .collect();
    SweepResult {
        cores: spec.cores,
        points,
    }
}

/// One named campaign panel: a sweep plus its presentation metadata.
pub struct Panel {
    /// CSV file stem and display name.
    pub name: &'static str,
    /// Human-readable description printed above the table.
    pub title: &'static str,
    /// X-axis label of the rendered table / CSV header.
    pub x_label: &'static str,
    /// The sweep result.
    pub result: SweepResult,
}

/// Base seed of the campaign panels (distinct from the Figure 2 seed so
/// the panels are a fresh population, not a re-analysis).
const CAMPAIGN_SEED: u64 = 0xCA4A_161C;

/// The constrained-deadline panel: `m = 4`, `U = m/2`, deadlines
/// `D_i = f·T_i` with the factor `f` swept — charts how quickly each
/// analysis sheds schedulability as slack between response bound and
/// deadline is removed.
pub fn deadline_panel(sets_per_point: usize, jobs: Jobs) -> Panel {
    let factors: Vec<f64> = (0..=10).map(|i| 0.5 + 0.05 * f64::from(i)).collect();
    let result = sweep(
        &SweepSpec {
            cores: 4,
            xs: &factors,
            sets_per_point,
            seed: CAMPAIGN_SEED,
            space: ScenarioSpace::PaperExact,
            make_set: |seed, f| {
                let config = group1(2.0).with_deadline_factor(f);
                generate_on_worker(seed, &config)
            },
        },
        jobs,
    );
    Panel {
        name: "campaign_deadline",
        title: "constrained deadlines: m = 4, U = 2, D = f*T, f swept",
        x_label: "deadline_factor",
        result,
    }
}

/// The chain-heavy mixture panel: `m = 4`, `U = m/2`, the sequential-chain
/// share of the task mixture swept from 0 to 1 — the regime where DAGs
/// degenerate into control-flow chains and LP-max's pooled-NPR bound
/// over-counts hardest relative to LP-ILP.
pub fn chain_panel(sets_per_point: usize, jobs: Jobs) -> Panel {
    let shares: Vec<f64> = (0..=8).map(|i| 0.125 * f64::from(i)).collect();
    let result = sweep(
        &SweepSpec {
            cores: 4,
            xs: &shares,
            sets_per_point,
            seed: CAMPAIGN_SEED ^ 1,
            space: ScenarioSpace::PaperExact,
            make_set: |seed, share| generate_on_worker(seed, &chain_mix(2.0, share)),
        },
        jobs,
    );
    Panel {
        name: "campaign_chains",
        title: "chain-heavy mixtures: m = 4, U = 2, chain share swept",
        x_label: "chain_share",
        result,
    }
}

/// The core-count panel: the paper's utilization sweep on the platforms
/// Figure 2 skips — `m = 2` (where `p(m)` collapses to 2 scenarios and all
/// three analyses nearly coincide) and `m = 8` re-generated from the
/// campaign seed population.
pub fn core_count_panels(sets_per_point: usize, jobs: Jobs) -> Vec<Panel> {
    [(2usize, "campaign_cores_m2"), (8, "campaign_cores_m8")]
        .into_iter()
        .map(|(cores, name)| {
            let m = cores as f64;
            let xs: Vec<f64> = (0..13)
                .map(|i| 1.0 + (m - 1.0) * f64::from(i) / 12.0)
                .collect();
            let result = sweep(
                &SweepSpec {
                    cores,
                    xs: &xs,
                    sets_per_point,
                    seed: CAMPAIGN_SEED ^ (cores as u64),
                    space: ScenarioSpace::PaperExact,
                    make_set: |seed, target| generate_on_worker(seed, &group1(target)),
                },
                jobs,
            );
            Panel {
                name,
                title: if cores == 2 {
                    "core count: m = 2 utilization sweep (group 1)"
                } else {
                    "core count: m = 8 utilization sweep (group 1)"
                },
                x_label: "utilization",
                result,
            }
        })
        .collect()
}

/// All campaign panels, in CLI order.
pub fn run_all(sets_per_point: usize, jobs: Jobs) -> Vec<Panel> {
    let mut panels = vec![
        deadline_panel(sets_per_point, jobs),
        chain_panel(sets_per_point, jobs),
    ];
    panels.extend(core_count_panels(sets_per_point, jobs));
    panels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_panel_tightening_costs_schedulability() {
        // Tighter deadlines hurt overall. (Strict per-point monotonicity in
        // f does not hold: shrinking deadlines also reshuffles the
        // deadline-monotonic priority order, which can locally help a small
        // sample — only the trend is a theorem-like expectation.)
        let panel = deadline_panel(12, Jobs::serial());
        assert_eq!(panel.result.points.len(), 11);
        assert!(panel.result.dominance_holds());
        let fp: Vec<f64> = panel
            .result
            .points
            .iter()
            .map(|p| p.schedulable_pct[0])
            .collect();
        let (first, last) = (fp[0], *fp.last().unwrap());
        assert!(
            first < last,
            "f = 0.5 ({first}%) must schedule fewer sets than f = 1 ({last}%)"
        );
        // f = 1 is the implicit-deadline population: identical generation.
        assert!((panel.result.points.last().unwrap().x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_panel_runs_and_dominates() {
        let panel = chain_panel(8, Jobs::serial());
        assert_eq!(panel.result.points.len(), 9);
        assert!(panel.result.dominance_holds());
    }

    #[test]
    fn core_count_panels_cover_m2_and_m8() {
        let panels = core_count_panels(6, Jobs::serial());
        assert_eq!(panels.len(), 2);
        assert_eq!(panels[0].result.cores, 2);
        assert_eq!(panels[1].result.cores, 8);
        for panel in &panels {
            assert!(panel.result.dominance_holds(), "{}", panel.name);
            assert_eq!(panel.result.points.len(), 13);
        }
    }

    #[test]
    fn worker_scratch_generation_matches_fresh() {
        let config = group1(2.5);
        let direct = rta_taskgen::generate_task_set(&mut SmallRng::seed_from_u64(42), &config);
        assert_eq!(generate_on_worker(42, &config), direct);
        let counted =
            rta_taskgen::generate_task_set_with_count(&mut SmallRng::seed_from_u64(42), &config, 5);
        assert_eq!(generate_on_worker_with_count(42, &config, 5), counted);
    }
}
