//! `repro loadgen` — a load-generating client for [`crate::serve`].
//!
//! Drives a running `repro serve` instance with a configurable mix of
//! **repeat** requests (drawn from a small pool of pre-generated task
//! sets, so a warm server answers them from its admission cache) and
//! **fresh** requests (a never-seen task set each, forcing cold
//! analyses), over N concurrent connections. Every worker keeps its own
//! connection and deterministic RNG, so a `(seed, workers, requests)`
//! triple always produces the same request stream.
//!
//! The report separates latency by the server's own `cache` label, which
//! is what makes the admission cache's value measurable: `hit_p50_micros`
//! vs `miss_p50_micros` is the repeat-vs-cold speedup the BENCH gate
//! asserts on. Latencies are measured client-side (send → response line),
//! so they include the wire round trip; `micros` from the server is used
//! for the per-class analysis-time split.
//!
//! # Retries
//!
//! A request that fails transiently — the connection drops, the read
//! times out, or the server answers `overloaded` while shedding load —
//! is retried up to [`LoadgenOptions::retries`] times with capped
//! exponential backoff. The jitter is drawn from a **separate** seeded
//! RNG, so retry timing never perturbs the repeat/fresh request mix: the
//! request stream for a given seed is identical whether or not the
//! server sheds. Retry accounting (`retries`, `reconnects`,
//! `overloaded`, `gave_up`) lands in the report and the BENCH output.
//!
//! # Chaos mode
//!
//! With [`LoadgenOptions::chaos`] set, workers stop measuring throughput
//! and instead run a seeded script of hostile client behaviours —
//! slowloris half-frames, mid-frame disconnects, malformed and oversized
//! bursts, connect-and-idle — against the server. The script is a pure
//! function of `(seed, worker)` ([`chaos_script`]), so a chaos run is
//! exactly reproducible. The tally counts what the server did about it
//! (structured error frames observed, connections closed on us); the
//! point of the mode is that a concurrent *clean* client stays unharmed,
//! which the chaos suite and the CI `chaos-smoke` job assert.

use crate::serve::DEFAULT_MAX_FRAME;
use crate::set_seed;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rta_model::json::task_set_to_json_compact;
use rta_model::TaskSet;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How long a well-behaved client waits for a response line before it
/// declares the connection dead and retries elsewhere.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// How long chaos actions linger to observe the server's reaction.
const CHAOS_READ_TIMEOUT: Duration = Duration::from_millis(250);

/// Write timeout on chaos sockets, so a refused connection cannot stall
/// the chaos worker on a large write.
const CHAOS_WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// The horizon every loadgen simulate frame asks for — long enough that a
/// simulation costs real work, far below the server-side cap.
const SIM_HORIZON: u64 = 20_000;

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Server address, e.g. `127.0.0.1:7431`.
    pub addr: String,
    /// Concurrent connections (worker threads).
    pub connections: usize,
    /// Requests sent per connection (chaos actions per worker in chaos
    /// mode).
    pub requests_per_connection: usize,
    /// Percentage of requests drawn from the shared repeat pool.
    pub repeat_percent: u32,
    /// Percentage of requests sent as `{"simulate":...}` frames instead
    /// of analyses (0 disables the simulate leg entirely, leaving the
    /// request stream byte-identical to earlier releases).
    pub simulate_percent: u32,
    /// Percentage of *analysis* requests that ask only for the published
    /// competitor bounds (`"methods":["Long-paths","Gen-sporadic"]`)
    /// instead of the default all-methods frame. Exercises the server's
    /// method-subset path and the per-DAG path-decomposition cache under
    /// load; 0 disables the leg entirely (no extra RNG draw, request
    /// stream byte-identical to earlier releases).
    pub competitor_percent: u32,
    /// Size of the shared repeat pool.
    pub pool_size: usize,
    /// Platform size every request asks about.
    pub cores: usize,
    /// Ask for per-task bounds on every request.
    pub bounds: bool,
    /// Base RNG seed for task-set generation.
    pub seed: u64,
    /// Target utilization of generated sets.
    pub target: f64,
    /// Scrape the server's `{"metrics":true}` frame after the burst (and
    /// before any `shutdown`) and write the JSON response line to this
    /// path.
    pub metrics: Option<std::path::PathBuf>,
    /// Send `{"shutdown":true}` after the run (stops the server).
    pub shutdown: bool,
    /// Transient-failure retries per request (0 disables retrying).
    pub retries: usize,
    /// First backoff delay, microseconds; doubles per retry.
    pub backoff_micros: u64,
    /// Backoff ceiling, microseconds.
    pub backoff_cap_micros: u64,
    /// Run the seeded hostile-client script instead of the measured burst.
    pub chaos: bool,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7431".into(),
            connections: 8,
            requests_per_connection: 200,
            repeat_percent: 80,
            simulate_percent: 0,
            competitor_percent: 0,
            pool_size: 16,
            cores: 4,
            bounds: false,
            seed: 0xC0FFEE,
            target: 2.0,
            metrics: None,
            shutdown: false,
            retries: 4,
            backoff_micros: 500,
            backoff_cap_micros: 100_000,
            chaos: false,
        }
    }
}

/// Latency statistics of one response class, in microseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyStats {
    /// Responses in this class.
    pub count: usize,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl LatencyStats {
    /// Computes the percentiles of a set of samples (sorted in place).
    fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let pct = |p: f64| {
            let rank = ((samples.len() as f64) * p).ceil() as usize;
            samples[rank.clamp(1, samples.len()) - 1]
        };
        Self {
            count: samples.len(),
            p50: pct(0.50),
            p99: pct(0.99),
            p999: pct(0.999),
            mean: samples.iter().sum::<u64>() as f64 / samples.len() as f64,
        }
    }
}

/// What the chaos script did and what the server did about it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosTally {
    /// Hostile actions executed.
    pub actions: usize,
    /// Byte-at-a-time partial frames (then abandoned).
    pub slowloris: usize,
    /// Connections dropped halfway through a frame.
    pub mid_frame_disconnects: usize,
    /// Bursts of junk lines.
    pub malformed_bursts: usize,
    /// Frames exceeding the server's frame cap.
    pub oversized: usize,
    /// Connections opened and left idle.
    pub connect_and_idle: usize,
    /// Structured `"ok":false` frames the server answered with.
    pub error_frames_seen: usize,
    /// Times the server closed the connection on us (timeout policy at
    /// work).
    pub server_closes: usize,
    /// Connects refused outright (pool exhausted or injected fault).
    pub failed_connects: usize,
}

/// The hostile behaviours chaos mode can exhibit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Send a partial frame one byte at a time, then stop mid-frame.
    Slowloris,
    /// Send half a frame and disconnect immediately.
    MidFrameDisconnect,
    /// Send several lines of junk and read the error frames back.
    MalformedBurst,
    /// Send a frame larger than any server accepts.
    Oversized,
    /// Connect, say nothing, linger, leave.
    ConnectAndIdle,
}

/// What one loadgen run measured.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Requests sent (all workers; chaos actions in chaos mode).
    pub requests: usize,
    /// Requests that failed after all retries (zero on a healthy run).
    pub errors: usize,
    /// Responses labelled `hit` / `near` / `miss` by the server.
    pub hits: usize,
    /// Near-hits (set cached, some method evaluated).
    pub near_hits: usize,
    /// Cold analyses.
    pub misses: usize,
    /// Successful `{"simulate":...}` responses.
    pub sims: usize,
    /// Retry attempts across all requests.
    pub retries: usize,
    /// Connections re-established after a drop or read timeout.
    pub reconnects: usize,
    /// `overloaded` error frames received (server shedding load).
    pub overloaded: usize,
    /// Requests abandoned after exhausting the retry budget.
    pub gave_up: usize,
    /// Wall-clock of the whole burst, seconds.
    pub elapsed_secs: f64,
    /// Sustained successful verdict responses per second.
    pub verdicts_per_sec: f64,
    /// Client-side round-trip latency over all successful responses.
    pub latency: LatencyStats,
    /// Server-side analysis micros of cache-hit responses.
    pub hit_micros: LatencyStats,
    /// Server-side analysis micros of cold (miss) responses.
    pub miss_micros: LatencyStats,
    /// Server-side simulation micros of simulate responses.
    pub sim_micros: LatencyStats,
    /// The chaos tally, present iff the run was a chaos run.
    pub chaos: Option<ChaosTally>,
}

impl LoadgenReport {
    /// Cache hit rate over successful responses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.near_hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Cold-to-hit speedup on the server-side analysis path (p50-based;
    /// the BENCH gate asserts this is at least 5).
    pub fn repeat_speedup(&self) -> f64 {
        if self.hit_micros.count == 0 || self.miss_micros.count == 0 {
            return 0.0;
        }
        // Guard the denominator: an O(lookup) hit can round to 0 µs.
        self.miss_micros.p50 as f64 / (self.hit_micros.p50 as f64).max(1.0)
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        if let Some(chaos) = &self.chaos {
            return format!(
                "chaos: {} hostile actions over {:.2}s\n\
                 mix: {} slowloris / {} mid-frame disconnects / {} malformed bursts / \
                 {} oversized / {} connect-and-idle\n\
                 server reaction: {} structured error frames, {} connections closed on us, \
                 {} connects refused",
                chaos.actions,
                self.elapsed_secs,
                chaos.slowloris,
                chaos.mid_frame_disconnects,
                chaos.malformed_bursts,
                chaos.oversized,
                chaos.connect_and_idle,
                chaos.error_frames_seen,
                chaos.server_closes,
                chaos.failed_connects,
            );
        }
        let sim_line = if self.sims > 0 {
            format!(
                "\nsimulate: {} responses, server p50 {} µs",
                self.sims, self.sim_micros.p50
            )
        } else {
            String::new()
        };
        format!(
            "requests: {} ({} errors)\n\
             retries: {} ({} overloaded, {} reconnects, {} gave up)\n\
             cache: {} hits / {} near / {} misses (hit rate {:.1}%)\n\
             throughput: {:.0} verdicts/s over {:.2}s\n\
             latency (client µs): p50 {} / p99 {} / p999 {}\n\
             analysis (server µs): hit p50 {} vs cold p50 {} — {:.0}x repeat speedup{sim_line}",
            self.requests,
            self.errors,
            self.retries,
            self.overloaded,
            self.reconnects,
            self.gave_up,
            self.hits,
            self.near_hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.verdicts_per_sec,
            self.elapsed_secs,
            self.latency.p50,
            self.latency.p99,
            self.latency.p999,
            self.hit_micros.p50,
            self.miss_micros.p50,
            self.repeat_speedup(),
        )
    }

    /// The flat BENCH JSON format of this repository (one scalar per
    /// line, greppable).
    pub fn to_bench_json(&self, options: &LoadgenOptions) -> String {
        let host = rta_obs::host_info();
        let host_fields = format!(
            "\"host_parallelism\": {},\n  \"jobs\": {},\n  \
             \"wall_ms\": {:.0},\n  \"cpu_ms\": {}",
            host.available_parallelism,
            options.connections,
            self.elapsed_secs * 1000.0,
            host.cpu_time_ms
                .map_or_else(|| "null".into(), |ms| ms.to_string()),
        );
        if let Some(chaos) = &self.chaos {
            return format!(
                "{{\n  \"bench\": \"serve-chaos\",\n  \"connections\": {},\n  \
                 \"actions\": {},\n  \"slowloris\": {},\n  \
                 \"mid_frame_disconnects\": {},\n  \"malformed_bursts\": {},\n  \
                 \"oversized\": {},\n  \"connect_and_idle\": {},\n  \
                 \"error_frames_seen\": {},\n  \"server_closes\": {},\n  \
                 \"failed_connects\": {},\n  \"errors\": {},\n  {host_fields}\n}}\n",
                options.connections,
                chaos.actions,
                chaos.slowloris,
                chaos.mid_frame_disconnects,
                chaos.malformed_bursts,
                chaos.oversized,
                chaos.connect_and_idle,
                chaos.error_frames_seen,
                chaos.server_closes,
                chaos.failed_connects,
                self.errors,
            );
        }
        format!(
            "{{\n  \"bench\": \"serve\",\n  \"connections\": {},\n  \
             \"requests\": {},\n  \"repeat_percent\": {},\n  \
             \"simulate_percent\": {},\n  \"pool_size\": {},\n  \
             \"cores\": {},\n  \"errors\": {},\n  \"retries\": {},\n  \
             \"overloaded\": {},\n  \"reconnects\": {},\n  \"gave_up\": {},\n  \
             \"hits\": {},\n  \
             \"near_hits\": {},\n  \"misses\": {},\n  \"sim_requests\": {},\n  \
             \"hit_rate_pct\": {:.2},\n  \
             \"verdicts_per_sec\": {:.0},\n  \"latency_p50_micros\": {},\n  \
             \"latency_p99_micros\": {},\n  \"latency_p999_micros\": {},\n  \
             \"hit_p50_micros\": {},\n  \"miss_p50_micros\": {},\n  \
             \"sim_p50_micros\": {},\n  \
             \"repeat_speedup\": {:.1},\n  {host_fields}\n}}\n",
            options.connections,
            self.requests,
            options.repeat_percent,
            options.simulate_percent,
            options.pool_size,
            options.cores,
            self.errors,
            self.retries,
            self.overloaded,
            self.reconnects,
            self.gave_up,
            self.hits,
            self.near_hits,
            self.misses,
            self.sims,
            self.hit_rate() * 100.0,
            self.verdicts_per_sec,
            self.latency.p50,
            self.latency.p99,
            self.latency.p999,
            self.hit_micros.p50,
            self.miss_micros.p50,
            self.sim_micros.p50,
            self.repeat_speedup(),
        )
    }
}

/// Per-worker tally, merged after the burst.
#[derive(Default)]
struct WorkerTally {
    requests: usize,
    errors: usize,
    hits: usize,
    near_hits: usize,
    misses: usize,
    sims: usize,
    retries: usize,
    reconnects: usize,
    overloaded: usize,
    gave_up: usize,
    latencies: Vec<u64>,
    hit_micros: Vec<u64>,
    miss_micros: Vec<u64>,
    sim_micros: Vec<u64>,
    chaos: ChaosTally,
}

/// Fetches one `{"metrics":true}` response line over a fresh connection.
fn scrape_metrics(addr: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"{\"v\":1,\"metrics\":true}\n")?;
    let mut line = String::new();
    BufReader::new(&stream).read_line(&mut line)?;
    if line.is_empty() {
        return Err(io::Error::other("server closed without answering"));
    }
    Ok(line)
}

/// Runs the burst (or chaos script) and aggregates the report. Fails
/// fast on a first connection error in clean mode (a missing server is a
/// setup problem, not a measurement).
pub fn run(options: &LoadgenOptions) -> io::Result<LoadgenReport> {
    assert!(options.connections >= 1, "need at least one connection");
    assert!(options.pool_size >= 1, "need at least one pooled set");
    // The repeat pool is generated once and shared read-only; its compact
    // JSON is pre-rendered so workers do no serialization work per frame.
    let pool: Arc<Vec<String>> = Arc::new(
        (0..options.pool_size)
            .map(|i| {
                let mut rng = SmallRng::seed_from_u64(set_seed(options.seed, 0, i));
                let ts =
                    rta_taskgen::generate_task_set(&mut rng, &rta_taskgen::group1(options.target));
                task_set_to_json_compact(&ts)
            })
            .collect(),
    );
    let started = Instant::now();
    let mut workers = Vec::new();
    for worker in 0..options.connections {
        let options = options.clone();
        let pool = Arc::clone(&pool);
        workers.push(thread::spawn(move || {
            if options.chaos {
                Ok(run_chaos_worker(&options, worker, &pool))
            } else {
                run_worker(&options, worker, &pool)
            }
        }));
    }
    let mut tally = WorkerTally::default();
    for worker in workers {
        let part: WorkerTally = worker
            .join()
            .map_err(|_| io::Error::other("loadgen worker panicked"))??;
        tally.requests += part.requests;
        tally.errors += part.errors;
        tally.hits += part.hits;
        tally.near_hits += part.near_hits;
        tally.misses += part.misses;
        tally.sims += part.sims;
        tally.retries += part.retries;
        tally.reconnects += part.reconnects;
        tally.overloaded += part.overloaded;
        tally.gave_up += part.gave_up;
        tally.latencies.extend(part.latencies);
        tally.hit_micros.extend(part.hit_micros);
        tally.miss_micros.extend(part.miss_micros);
        tally.sim_micros.extend(part.sim_micros);
        merge_chaos(&mut tally.chaos, &part.chaos);
    }
    let elapsed = started.elapsed().as_secs_f64();
    if let Some(path) = &options.metrics {
        // Scrape before any shutdown: the registry lives in the server
        // process and the frame needs a live socket.
        match scrape_metrics(&options.addr) {
            Ok(line) => {
                std::fs::write(path, line)?;
            }
            Err(e) => eprintln!("warning: metrics scrape from {} failed: {e}", options.addr),
        }
    }
    if options.shutdown {
        // Separate control connection; best effort (the burst is done).
        if let Ok(mut stream) = TcpStream::connect(&options.addr) {
            let _ = stream.write_all(b"{\"shutdown\":true}\n");
            let mut line = String::new();
            let _ = BufReader::new(&stream).read_line(&mut line);
        }
    }
    let successes = tally.requests - tally.errors;
    Ok(LoadgenReport {
        requests: tally.requests,
        errors: tally.errors,
        hits: tally.hits,
        near_hits: tally.near_hits,
        misses: tally.misses,
        sims: tally.sims,
        retries: tally.retries,
        reconnects: tally.reconnects,
        overloaded: tally.overloaded,
        gave_up: tally.gave_up,
        elapsed_secs: elapsed,
        verdicts_per_sec: successes as f64 / elapsed.max(1e-9),
        latency: LatencyStats::from_samples(&mut tally.latencies),
        hit_micros: LatencyStats::from_samples(&mut tally.hit_micros),
        miss_micros: LatencyStats::from_samples(&mut tally.miss_micros),
        sim_micros: LatencyStats::from_samples(&mut tally.sim_micros),
        chaos: options.chaos.then_some(tally.chaos),
    })
}

fn merge_chaos(into: &mut ChaosTally, part: &ChaosTally) {
    into.actions += part.actions;
    into.slowloris += part.slowloris;
    into.mid_frame_disconnects += part.mid_frame_disconnects;
    into.malformed_bursts += part.malformed_bursts;
    into.oversized += part.oversized;
    into.connect_and_idle += part.connect_and_idle;
    into.error_frames_seen += part.error_frames_seen;
    into.server_closes += part.server_closes;
    into.failed_connects += part.failed_connects;
}

/// One client connection with a bounded read, so a stalled server can
/// never hang the load generator.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT))?;
        Ok(Self {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one frame and reads one response line. `false` means the
    /// connection is unusable (dropped, reset, or timed out) and the
    /// caller should reconnect.
    fn round_trip(&mut self, frame: &str, line: &mut String) -> bool {
        if self.writer.write_all(frame.as_bytes()).is_err() || self.writer.flush().is_err() {
            return false;
        }
        line.clear();
        match self.reader.read_line(line) {
            Ok(0) | Err(_) => false,
            Ok(_) => line.ends_with('\n'),
        }
    }
}

/// The capped exponential backoff before retry number `attempt` (1-based).
/// Jitter lands the delay in the upper half of the exponential ceiling;
/// drawing it from a dedicated RNG keeps the request mix independent of
/// how many retries happened.
fn backoff_delay(attempt: usize, base: u64, cap: u64, jitter: &mut SmallRng) -> Duration {
    let shift = (attempt.saturating_sub(1)).min(16) as u32;
    let ceiling = base.saturating_mul(1u64 << shift).min(cap).max(1);
    Duration::from_micros(ceiling / 2 + jitter.gen_range(0..=ceiling.div_ceil(2)))
}

fn run_worker(options: &LoadgenOptions, worker: usize, pool: &[String]) -> io::Result<WorkerTally> {
    // A missing server fails the run outright; everything after this is
    // retried rather than fatal.
    let mut conn = Some(Conn::connect(&options.addr)?);
    let mut rng = SmallRng::seed_from_u64(options.seed ^ (worker as u64).wrapping_mul(0x9E37));
    let mut jitter_rng =
        SmallRng::seed_from_u64(options.seed ^ 0xB0_FF0E ^ (worker as u64).wrapping_mul(0x51F7));
    let mut tally = WorkerTally::default();
    let mut line = String::new();
    for request_index in 0..options.requests_per_connection {
        // The simulate draw is gated on the flag so a 0% run makes no
        // extra RNG draws — its request stream is byte-identical to one
        // produced before the simulate leg existed.
        let simulate =
            options.simulate_percent > 0 && rng.gen_range(0..100u32) < options.simulate_percent;
        let repeat = rng.gen_range(0..100u32) < options.repeat_percent;
        let set_json = if repeat {
            pool[rng.gen_range(0..pool.len())].clone()
        } else {
            // A set no other worker or iteration generates: point index 1
            // keeps fresh seeds disjoint from the pool's (point 0).
            let fresh = set_seed(
                options.seed,
                1,
                worker * options.requests_per_connection + request_index,
            );
            let mut set_rng = SmallRng::seed_from_u64(fresh);
            let ts: TaskSet =
                rta_taskgen::generate_task_set(&mut set_rng, &rta_taskgen::group1(options.target));
            task_set_to_json_compact(&ts)
        };
        // Gated like the simulate draw: a 0% run makes no extra draw.
        let competitors = !simulate
            && options.competitor_percent > 0
            && rng.gen_range(0..100u32) < options.competitor_percent;
        let frame = if simulate {
            format!(
                "{{\"v\":1,\"simulate\":{{\"cores\":{},\"horizon\":{},\"task_set\":{}}}}}\n",
                options.cores, SIM_HORIZON, set_json
            )
        } else if competitors {
            format!(
                "{{\"v\":1,\"cores\":{},\"methods\":[\"Long-paths\",\"Gen-sporadic\"],\
                 \"bounds\":{},\"task_set\":{}}}\n",
                options.cores, options.bounds, set_json
            )
        } else {
            format!(
                "{{\"v\":1,\"cores\":{},\"bounds\":{},\"task_set\":{}}}\n",
                options.cores, options.bounds, set_json
            )
        };
        let mut attempt = 0;
        let latency = loop {
            if conn.is_none() {
                if let Ok(fresh) = Conn::connect(&options.addr) {
                    conn = Some(fresh);
                    tally.reconnects += 1;
                }
            }
            let mut answered = false;
            let sent = Instant::now();
            if let Some(c) = conn.as_mut() {
                answered = c.round_trip(&frame, &mut line);
                if !answered {
                    conn = None;
                }
            }
            if answered {
                if line.contains("\"kind\":\"overloaded\"") {
                    // The server is shedding; the connection survives.
                    tally.overloaded += 1;
                } else {
                    break Some(sent.elapsed().as_micros() as u64);
                }
            }
            if attempt >= options.retries {
                break None;
            }
            attempt += 1;
            tally.retries += 1;
            thread::sleep(backoff_delay(
                attempt,
                options.backoff_micros,
                options.backoff_cap_micros,
                &mut jitter_rng,
            ));
        };
        tally.requests += 1;
        let Some(latency) = latency else {
            tally.errors += 1;
            tally.gave_up += 1;
            continue;
        };
        if line.contains("\"ok\":true") {
            tally.latencies.push(latency);
            let micros = field_u64(&line, "\"micros\":").unwrap_or(0);
            if simulate {
                tally.sims += 1;
                tally.sim_micros.push(micros);
            } else if line.contains("\"cache\":\"hit\"") {
                tally.hits += 1;
                tally.hit_micros.push(micros);
            } else if line.contains("\"cache\":\"near\"") {
                tally.near_hits += 1;
            } else {
                tally.misses += 1;
                tally.miss_micros.push(micros);
            }
        } else {
            tally.errors += 1;
        }
    }
    Ok(tally)
}

// ---------------------------------------------------------------------------
// Chaos mode
// ---------------------------------------------------------------------------

/// The deterministic hostile-action script for one chaos worker: a pure
/// function of `(seed, worker, actions)`, so any chaos run can be
/// replayed exactly.
pub fn chaos_script(seed: u64, worker: usize, actions: usize) -> Vec<ChaosAction> {
    let mut rng =
        SmallRng::seed_from_u64(seed ^ 0xC7A0_5EED ^ (worker as u64).wrapping_mul(0x9E37));
    (0..actions)
        .map(|_| match rng.gen_range(0..5u32) {
            0 => ChaosAction::Slowloris,
            1 => ChaosAction::MidFrameDisconnect,
            2 => ChaosAction::MalformedBurst,
            3 => ChaosAction::Oversized,
            _ => ChaosAction::ConnectAndIdle,
        })
        .collect()
}

fn run_chaos_worker(options: &LoadgenOptions, worker: usize, pool: &[String]) -> WorkerTally {
    let script = chaos_script(options.seed, worker, options.requests_per_connection);
    // Action parameters (which set, how long to idle) come from their own
    // seeded stream, independent of the action sequence.
    let mut param_rng =
        SmallRng::seed_from_u64(options.seed ^ 0x9A4A_11CE ^ (worker as u64).wrapping_mul(0x51F7));
    let mut tally = WorkerTally::default();
    for action in script {
        tally.chaos.actions += 1;
        let sample = &pool[param_rng.gen_range(0..pool.len())];
        let frame = format!(
            "{{\"v\":1,\"cores\":{},\"task_set\":{}}}\n",
            options.cores, sample
        );
        run_chaos_action(options, action, &frame, &mut param_rng, &mut tally.chaos);
    }
    tally
}

/// Opens a socket for one hostile action; both directions are bounded so
/// no action can take more than a couple of seconds.
fn chaos_connect(addr: &str, chaos: &mut ChaosTally) -> Option<TcpStream> {
    match TcpStream::connect(addr) {
        Ok(stream) => {
            let _ = stream.set_read_timeout(Some(CHAOS_READ_TIMEOUT));
            let _ = stream.set_write_timeout(Some(CHAOS_WRITE_TIMEOUT));
            Some(stream)
        }
        Err(_) => {
            chaos.failed_connects += 1;
            None
        }
    }
}

/// Reads whatever the server has to say within the observation window,
/// counting structured error frames and whether the server closed on us.
fn observe_responses(stream: &TcpStream, chaos: &mut ChaosTally) {
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(clone);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                chaos.server_closes += 1;
                return;
            }
            Ok(_) => {
                if line.contains("\"ok\":false") {
                    chaos.error_frames_seen += 1;
                }
            }
            Err(_) => return, // window over, server still has us
        }
    }
}

fn run_chaos_action(
    options: &LoadgenOptions,
    action: ChaosAction,
    frame: &str,
    param_rng: &mut SmallRng,
    chaos: &mut ChaosTally,
) {
    match action {
        ChaosAction::Slowloris => {
            chaos.slowloris += 1;
            let Some(mut stream) = chaos_connect(&options.addr, chaos) else {
                return;
            };
            // Dribble out the first half of a real frame one byte at a
            // time, then stop writing and watch what the server does.
            let half = &frame.as_bytes()[..(frame.len() / 2).min(48)];
            for byte in half {
                if stream.write_all(&[*byte]).is_err() {
                    break;
                }
                thread::sleep(Duration::from_millis(1));
            }
            observe_responses(&stream, chaos);
        }
        ChaosAction::MidFrameDisconnect => {
            chaos.mid_frame_disconnects += 1;
            let Some(mut stream) = chaos_connect(&options.addr, chaos) else {
                return;
            };
            let _ = stream.write_all(&frame.as_bytes()[..frame.len() / 2]);
            // Drop without finishing the frame: the server must treat it
            // as a closed connection, not a parse error.
        }
        ChaosAction::MalformedBurst => {
            chaos.malformed_bursts += 1;
            let Some(mut stream) = chaos_connect(&options.addr, chaos) else {
                return;
            };
            for junk in ["{\"cores\":", "definitely not json", "[1,2,"] {
                if stream.write_all(junk.as_bytes()).is_err() || stream.write_all(b"\n").is_err() {
                    break;
                }
            }
            observe_responses(&stream, chaos);
        }
        ChaosAction::Oversized => {
            chaos.oversized += 1;
            let Some(mut stream) = chaos_connect(&options.addr, chaos) else {
                return;
            };
            // Larger than any server's default frame cap; written in
            // chunks so a refused connection bails out early.
            let chunk = vec![b'x'; 64 * 1024];
            let mut remaining = DEFAULT_MAX_FRAME + 4096;
            while remaining > 0 {
                let n = remaining.min(chunk.len());
                if stream.write_all(&chunk[..n]).is_err() {
                    break;
                }
                remaining -= n;
            }
            let _ = stream.write_all(b"\n");
            observe_responses(&stream, chaos);
        }
        ChaosAction::ConnectAndIdle => {
            chaos.connect_and_idle += 1;
            let Some(stream) = chaos_connect(&options.addr, chaos) else {
                return;
            };
            thread::sleep(Duration::from_millis(param_rng.gen_range(20..=80)));
            observe_responses(&stream, chaos);
        }
    }
}

/// Pulls one `"key":<integer>` field out of a response line without a full
/// JSON parse (the hot path of the measurement loop).
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_samples() {
        let mut samples: Vec<u64> = (1..=1000).collect();
        let stats = LatencyStats::from_samples(&mut samples);
        assert_eq!(stats.count, 1000);
        assert_eq!(stats.p50, 500);
        assert_eq!(stats.p99, 990);
        assert_eq!(stats.p999, 999);
        assert!((stats.mean - 500.5).abs() < 1e-9);
        assert_eq!(LatencyStats::from_samples(&mut []).count, 0);
    }

    #[test]
    fn integer_fields_parse_out_of_response_lines() {
        let line = r#"{"v":1,"ok":true,"cache":"hit","micros":412,"verdicts":[]}"#;
        assert_eq!(field_u64(line, "\"micros\":"), Some(412));
        assert_eq!(field_u64(line, "\"absent\":"), None);
    }

    #[test]
    fn backoff_is_capped_exponential_and_deterministic() {
        let delays = |seed: u64| -> Vec<Duration> {
            let mut jitter = SmallRng::seed_from_u64(seed);
            (1..=8)
                .map(|attempt| backoff_delay(attempt, 500, 4_000, &mut jitter))
                .collect()
        };
        // Deterministic for a fixed seed.
        assert_eq!(delays(7), delays(7));
        for (i, delay) in delays(7).iter().enumerate() {
            // Every delay lands in the upper half of the exponential
            // ceiling, and the ceiling respects the cap.
            let ceiling = (500u64 << i).min(4_000);
            assert!(
                delay.as_micros() >= u128::from(ceiling / 2),
                "{i}: {delay:?}"
            );
            assert!(delay.as_micros() <= u128::from(ceiling), "{i}: {delay:?}");
        }
    }

    #[test]
    fn chaos_scripts_are_deterministic_and_diverse() {
        let a = chaos_script(42, 0, 64);
        assert_eq!(a, chaos_script(42, 0, 64));
        assert_eq!(a.len(), 64);
        // Workers get distinct scripts; all five behaviours appear in a
        // script of this length.
        assert_ne!(a, chaos_script(42, 1, 64));
        for kind in [
            ChaosAction::Slowloris,
            ChaosAction::MidFrameDisconnect,
            ChaosAction::MalformedBurst,
            ChaosAction::Oversized,
            ChaosAction::ConnectAndIdle,
        ] {
            assert!(a.contains(&kind), "{kind:?} missing from the script");
        }
    }
}
