//! `repro loadgen` — a load-generating client for [`crate::serve`].
//!
//! Drives a running `repro serve` instance with a configurable mix of
//! **repeat** requests (drawn from a small pool of pre-generated task
//! sets, so a warm server answers them from its admission cache) and
//! **fresh** requests (a never-seen task set each, forcing cold
//! analyses), over N concurrent connections. Every worker keeps its own
//! connection and deterministic RNG, so a `(seed, workers, requests)`
//! triple always produces the same request stream.
//!
//! The report separates latency by the server's own `cache` label, which
//! is what makes the admission cache's value measurable: `hit_p50_micros`
//! vs `miss_p50_micros` is the repeat-vs-cold speedup the BENCH gate
//! asserts on. Latencies are measured client-side (send → response line),
//! so they include the wire round trip; `micros` from the server is used
//! for the per-class analysis-time split.

use crate::set_seed;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rta_model::json::task_set_to_json_compact;
use rta_model::TaskSet;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Server address, e.g. `127.0.0.1:7431`.
    pub addr: String,
    /// Concurrent connections (worker threads).
    pub connections: usize,
    /// Requests sent per connection.
    pub requests_per_connection: usize,
    /// Percentage of requests drawn from the shared repeat pool.
    pub repeat_percent: u32,
    /// Size of the shared repeat pool.
    pub pool_size: usize,
    /// Platform size every request asks about.
    pub cores: usize,
    /// Ask for per-task bounds on every request.
    pub bounds: bool,
    /// Base RNG seed for task-set generation.
    pub seed: u64,
    /// Target utilization of generated sets.
    pub target: f64,
    /// Send `{"shutdown":true}` after the run (stops the server).
    pub shutdown: bool,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7431".into(),
            connections: 8,
            requests_per_connection: 200,
            repeat_percent: 80,
            pool_size: 16,
            cores: 4,
            bounds: false,
            seed: 0xC0FFEE,
            target: 2.0,
            shutdown: false,
        }
    }
}

/// Latency statistics of one response class, in microseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyStats {
    /// Responses in this class.
    pub count: usize,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl LatencyStats {
    /// Computes the percentiles of a set of samples (sorted in place).
    fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let pct = |p: f64| {
            let rank = ((samples.len() as f64) * p).ceil() as usize;
            samples[rank.clamp(1, samples.len()) - 1]
        };
        Self {
            count: samples.len(),
            p50: pct(0.50),
            p99: pct(0.99),
            p999: pct(0.999),
            mean: samples.iter().sum::<u64>() as f64 / samples.len() as f64,
        }
    }
}

/// What one loadgen run measured.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Requests sent (all workers).
    pub requests: usize,
    /// Error responses received (must be zero on a healthy run).
    pub errors: usize,
    /// Responses labelled `hit` / `near` / `miss` by the server.
    pub hits: usize,
    /// Near-hits (set cached, some method evaluated).
    pub near_hits: usize,
    /// Cold analyses.
    pub misses: usize,
    /// Wall-clock of the whole burst, seconds.
    pub elapsed_secs: f64,
    /// Sustained successful verdict responses per second.
    pub verdicts_per_sec: f64,
    /// Client-side round-trip latency over all successful responses.
    pub latency: LatencyStats,
    /// Server-side analysis micros of cache-hit responses.
    pub hit_micros: LatencyStats,
    /// Server-side analysis micros of cold (miss) responses.
    pub miss_micros: LatencyStats,
}

impl LoadgenReport {
    /// Cache hit rate over successful responses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.near_hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Cold-to-hit speedup on the server-side analysis path (p50-based;
    /// the BENCH gate asserts this is at least 5).
    pub fn repeat_speedup(&self) -> f64 {
        if self.hit_micros.count == 0 || self.miss_micros.count == 0 {
            return 0.0;
        }
        // Guard the denominator: an O(lookup) hit can round to 0 µs.
        self.miss_micros.p50 as f64 / (self.hit_micros.p50 as f64).max(1.0)
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "requests: {} ({} errors)\n\
             cache: {} hits / {} near / {} misses (hit rate {:.1}%)\n\
             throughput: {:.0} verdicts/s over {:.2}s\n\
             latency (client µs): p50 {} / p99 {} / p999 {}\n\
             analysis (server µs): hit p50 {} vs cold p50 {} — {:.0}x repeat speedup",
            self.requests,
            self.errors,
            self.hits,
            self.near_hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.verdicts_per_sec,
            self.elapsed_secs,
            self.latency.p50,
            self.latency.p99,
            self.latency.p999,
            self.hit_micros.p50,
            self.miss_micros.p50,
            self.repeat_speedup(),
        )
    }

    /// The flat BENCH JSON format of this repository (one scalar per
    /// line, greppable).
    pub fn to_bench_json(&self, options: &LoadgenOptions) -> String {
        format!(
            "{{\n  \"bench\": \"serve\",\n  \"connections\": {},\n  \
             \"requests\": {},\n  \"repeat_percent\": {},\n  \"pool_size\": {},\n  \
             \"cores\": {},\n  \"errors\": {},\n  \"hits\": {},\n  \
             \"near_hits\": {},\n  \"misses\": {},\n  \"hit_rate_pct\": {:.2},\n  \
             \"verdicts_per_sec\": {:.0},\n  \"latency_p50_micros\": {},\n  \
             \"latency_p99_micros\": {},\n  \"latency_p999_micros\": {},\n  \
             \"hit_p50_micros\": {},\n  \"miss_p50_micros\": {},\n  \
             \"repeat_speedup\": {:.1}\n}}\n",
            options.connections,
            self.requests,
            options.repeat_percent,
            options.pool_size,
            options.cores,
            self.errors,
            self.hits,
            self.near_hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.verdicts_per_sec,
            self.latency.p50,
            self.latency.p99,
            self.latency.p999,
            self.hit_micros.p50,
            self.miss_micros.p50,
            self.repeat_speedup(),
        )
    }
}

/// Per-worker tally, merged after the burst.
#[derive(Default)]
struct WorkerTally {
    requests: usize,
    errors: usize,
    hits: usize,
    near_hits: usize,
    misses: usize,
    latencies: Vec<u64>,
    hit_micros: Vec<u64>,
    miss_micros: Vec<u64>,
}

/// Runs the burst and aggregates the report. Fails fast on connection
/// errors (a missing server is a setup problem, not a measurement).
pub fn run(options: &LoadgenOptions) -> io::Result<LoadgenReport> {
    assert!(options.connections >= 1, "need at least one connection");
    assert!(options.pool_size >= 1, "need at least one pooled set");
    // The repeat pool is generated once and shared read-only; its compact
    // JSON is pre-rendered so workers do no serialization work per frame.
    let pool: Arc<Vec<String>> = Arc::new(
        (0..options.pool_size)
            .map(|i| {
                let mut rng = SmallRng::seed_from_u64(set_seed(options.seed, 0, i));
                let ts =
                    rta_taskgen::generate_task_set(&mut rng, &rta_taskgen::group1(options.target));
                task_set_to_json_compact(&ts)
            })
            .collect(),
    );
    let started = Instant::now();
    let mut workers = Vec::new();
    for worker in 0..options.connections {
        let options = options.clone();
        let pool = Arc::clone(&pool);
        workers.push(thread::spawn(move || run_worker(&options, worker, &pool)));
    }
    let mut tally = WorkerTally::default();
    for worker in workers {
        let part = worker
            .join()
            .map_err(|_| io::Error::other("loadgen worker panicked"))??;
        tally.requests += part.requests;
        tally.errors += part.errors;
        tally.hits += part.hits;
        tally.near_hits += part.near_hits;
        tally.misses += part.misses;
        tally.latencies.extend(part.latencies);
        tally.hit_micros.extend(part.hit_micros);
        tally.miss_micros.extend(part.miss_micros);
    }
    let elapsed = started.elapsed().as_secs_f64();
    if options.shutdown {
        // Separate control connection; best effort (the burst is done).
        if let Ok(mut stream) = TcpStream::connect(&options.addr) {
            let _ = stream.write_all(b"{\"shutdown\":true}\n");
            let mut line = String::new();
            let _ = BufReader::new(&stream).read_line(&mut line);
        }
    }
    let successes = tally.requests - tally.errors;
    Ok(LoadgenReport {
        requests: tally.requests,
        errors: tally.errors,
        hits: tally.hits,
        near_hits: tally.near_hits,
        misses: tally.misses,
        elapsed_secs: elapsed,
        verdicts_per_sec: successes as f64 / elapsed.max(1e-9),
        latency: LatencyStats::from_samples(&mut tally.latencies),
        hit_micros: LatencyStats::from_samples(&mut tally.hit_micros),
        miss_micros: LatencyStats::from_samples(&mut tally.miss_micros),
    })
}

fn run_worker(options: &LoadgenOptions, worker: usize, pool: &[String]) -> io::Result<WorkerTally> {
    let stream = TcpStream::connect(&options.addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut rng = SmallRng::seed_from_u64(options.seed ^ (worker as u64).wrapping_mul(0x9E37));
    let mut tally = WorkerTally::default();
    let mut line = String::new();
    for request_index in 0..options.requests_per_connection {
        let repeat = rng.gen_range(0..100u32) < options.repeat_percent;
        let set_json = if repeat {
            pool[rng.gen_range(0..pool.len())].clone()
        } else {
            // A set no other worker or iteration generates: point index 1
            // keeps fresh seeds disjoint from the pool's (point 0).
            let fresh = set_seed(
                options.seed,
                1,
                worker * options.requests_per_connection + request_index,
            );
            let mut set_rng = SmallRng::seed_from_u64(fresh);
            let ts: TaskSet =
                rta_taskgen::generate_task_set(&mut set_rng, &rta_taskgen::group1(options.target));
            task_set_to_json_compact(&ts)
        };
        let frame = format!(
            "{{\"v\":1,\"cores\":{},\"bounds\":{},\"task_set\":{}}}\n",
            options.cores, options.bounds, set_json
        );
        let sent = Instant::now();
        writer.write_all(frame.as_bytes())?;
        writer.flush()?;
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::other("server closed the connection mid-burst"));
        }
        let latency = sent.elapsed().as_micros() as u64;
        tally.requests += 1;
        if line.contains("\"ok\":true") {
            tally.latencies.push(latency);
            let micros = field_u64(&line, "\"micros\":").unwrap_or(0);
            if line.contains("\"cache\":\"hit\"") {
                tally.hits += 1;
                tally.hit_micros.push(micros);
            } else if line.contains("\"cache\":\"near\"") {
                tally.near_hits += 1;
            } else {
                tally.misses += 1;
                tally.miss_micros.push(micros);
            }
        } else {
            tally.errors += 1;
        }
    }
    Ok(tally)
}

/// Pulls one `"key":<integer>` field out of a response line without a full
/// JSON parse (the hot path of the measurement loop).
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_samples() {
        let mut samples: Vec<u64> = (1..=1000).collect();
        let stats = LatencyStats::from_samples(&mut samples);
        assert_eq!(stats.count, 1000);
        assert_eq!(stats.p50, 500);
        assert_eq!(stats.p99, 990);
        assert_eq!(stats.p999, 999);
        assert!((stats.mean - 500.5).abs() < 1e-9);
        assert_eq!(LatencyStats::from_samples(&mut []).count, 0);
    }

    #[test]
    fn integer_fields_parse_out_of_response_lines() {
        let line = r#"{"v":1,"ok":true,"cache":"hit","micros":412,"verdicts":[]}"#;
        assert_eq!(field_u64(line, "\"micros\":"), Some(412));
        assert_eq!(field_u64(line, "\"absent\":"), None);
    }
}
