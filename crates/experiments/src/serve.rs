//! `repro serve` — an admission-control daemon answering schedulability
//! verdicts over a socket, hardened against overload and hostile clients.
//!
//! The ROADMAP's north star is serving verdicts at production scale; this
//! module is the long-running surface over the unified request API
//! ([`rta_analysis::AnalysisRequest`]) and the admission-control cache
//! ([`rta_analysis::AnalysisLru`]).
//!
//! # Wire protocol
//!
//! Line-delimited JSON over TCP: every frame is one compact JSON object
//! terminated by `\n`, in both directions (`rta_model::json` is the only
//! JSON machinery — no new dependencies). A request:
//!
//! ```json
//! {"v":1,"id":7,"cores":4,"methods":["FP-ideal","LP-sound"],"bounds":true,
//!  "task_set":{"version":1,"tasks":[{"period":40,"deadline":40,
//!  "dag":{"wcets":[2,6,4,1],"edges":[[0,1],[0,2],[1,3],[2,3]]}}]}}
//! ```
//!
//! * `v` — optional envelope version; must be `1` when present.
//! * `id` — optional integer, echoed verbatim in the response so clients
//!   can pipeline frames.
//! * `cores` — required platform size (`1..=MAX_CORES`).
//! * `methods` — optional array of method labels (`"FP-ideal"`,
//!   `"LP-ILP"`, `"LP-max"`, `"LP-sound"`, `"Long-paths"`,
//!   `"Gen-sporadic"`); omitted means all six.
//! * `bounds` — optional, default `false`; `true` materializes per-task
//!   response bounds.
//! * `task_set` — required, the versioned task-set payload of
//!   [`rta_model::json`].
//!
//! A successful response (`cache` is the [`CacheOutcome`] label, `micros`
//! the server-side analysis time, `bounds` the per-task response-time
//! ceilings of the analyzed prefix, present iff requested):
//!
//! ```json
//! {"v":1,"id":7,"ok":true,"cache":"miss","micros":412,"verdicts":[
//!   {"method":"FP-ideal","schedulable":true,"bounds":[9]},
//!   {"method":"LP-sound","schedulable":true,"bounds":[9]}]}
//! ```
//!
//! Any failure — malformed JSON, schema violations, unknown schema
//! versions, model violations such as cyclic DAGs, oversized frames, an
//! exhausted connection pool, a stalled client — produces a structured
//! error on the same path and the server keeps serving (no panic, no
//! abandoned socket):
//!
//! ```json
//! {"v":1,"ok":false,"error":{"kind":"model","message":"..."}}
//! ```
//!
//! `kind` is one of `syntax`, `schema`, `version`, `model`, `protocol`,
//! `too_large`, `overloaded`, `timeout`. Three special frames bypass
//! analysis: `{"stats":true}` reports counters, `{"metrics":true}`
//! returns the process-global [`rta_obs`] registry (per-method verdict
//! latency histograms, cache counters, simulator and server telemetry)
//! as `{"v":1,"ok":true,"metrics":{...}}`, and `{"shutdown":true}`
//! acknowledges and stops the server. When
//! [`ServeOptions::metrics_dump`] names a path, the same registry is
//! additionally written there in Prometheus text exposition format when
//! the server drains.
//!
//! # Simulation frames
//!
//! Besides analysis verdicts, the server runs the event-driven simulator
//! ([`rta_sim::SimRequest`]) on demand. A simulate frame carries one
//! `"simulate"` object in the same versioned envelope:
//!
//! ```json
//! {"v":1,"id":9,"simulate":{"cores":4,"horizon":20000,"policy":"lazy",
//!  "release":"jitter","seed":7,"task_set":{"version":1,"tasks":[...]}}}
//! ```
//!
//! * `cores` — required, `1..=MAX_CORES`.
//! * `horizon` — required; **capped server-side** at [`MAX_SIM_HORIZON`]
//!   (a horizon is simulated work, not a free parameter — an unbounded
//!   one would be a denial-of-service lever).
//! * `policy` — optional: `"eager"` (default), `"lazy"`, `"full"`.
//! * `release` — optional: `"sync"` (default), `"jitter"`, `"sporadic"` —
//!   the validation campaign's release patterns (per-task
//!   period-fraction jitter of 0, T_i/10 and T_i respectively).
//! * `seed` — optional RNG seed, default 0.
//! * `task_set` — required, same versioned payload as analyze frames.
//!
//! The response reports the run's statistics (no trace crosses the
//! wire):
//!
//! ```json
//! {"v":1,"id":9,"ok":true,"micros":2140,"sim":{"makespan":20125,
//!  "deadline_misses":0,"events":1843,"deferred_preemptions":0,
//!  "peak_live_jobs":3,"trace_dropped":0,"max_responses":[9,41]}}
//! ```
//!
//! `trace_dropped` mirrors [`rta_sim::SimOutcome::trace_dropped`]: wire
//! runs never record a trace, so it is 0 today, but the field is part of
//! the frame contract so a client can always tell a complete observation
//! from a truncated one if tracing ever crosses the wire.
//!
//! Simulate frames obey the same robustness rules as analyze frames:
//! past the shed watermark they are refused with `overloaded` (there is
//! no cache to degrade to), and a run that outlives the frame budget
//! counts against the `overruns` stat.
//!
//! # Robustness model
//!
//! The server is built to survive overload and hostile clients **by
//! construction** (and the chaos suite in
//! `crates/experiments/tests/chaos.rs` injects faults to prove it):
//!
//! * **Bounded connection pool** — at most [`ServeOptions::max_conns`]
//!   connections are served concurrently; excess connections receive one
//!   `overloaded` error frame and are closed, so a connection flood can
//!   never spawn unbounded threads.
//! * **Idle and frame timeouts** — a connection that sends nothing for
//!   [`ServeOptions::idle_timeout`], or starts a frame and fails to finish
//!   it within [`ServeOptions::frame_timeout`] (the slowloris pattern),
//!   receives a `timeout` error frame and is closed. Both are enforced
//!   with `set_read_timeout` ticks, so a stalled socket occupies its pool
//!   slot for a bounded time only. Writes carry the same timeout, so a
//!   client that stops *reading* cannot park a thread either.
//! * **Load shedding** — once the pool is at or past
//!   [`ServeOptions::shed_watermark`], analyze frames are answered from
//!   recorded cache facts only ([`AnalysisLru::fetch_facts`]): a repeat of
//!   an answered request is still served in O(lookup), anything that would
//!   need a cold analysis gets an `overloaded` error frame instead — the
//!   connection survives and resynchronizes at the next newline. Cold
//!   frames that do run are timed; completions past the frame budget are
//!   counted (`overruns` in `stats`) — the fixed point itself is not
//!   cancellable mid-flight, so the budget is enforced *before* the
//!   analysis (shedding), not by killing it.
//! * **Graceful drain** — shutdown stops accepting, then joins every live
//!   connection thread up to [`ServeOptions::drain_timeout`]; the
//!   resulting [`DrainReport`] says how many threads were joined, cut off,
//!   or had panicked. Connection threads observe the stop flag at every
//!   read tick, so drain latency is bounded by the tick, not by client
//!   behaviour.
//! * **Bounded accept loop** — the listener is non-blocking and rechecks
//!   the stop flag every few milliseconds, so shutdown can never hang in
//!   `accept` (this replaces the PR-6 `poke_acceptor` self-connect hack,
//!   whose failure path was silent); accept errors are counted, not
//!   ignored.
//! * **Fault hook** — [`ServeOptions::fault`] installs a seeded
//!   [`FaultPlan`] (test-only knob) that drops freshly accepted
//!   connections and delays frame processing at configurable rates, so
//!   the chaos suite can widen race windows deterministically without
//!   touching the serving logic.

use crate::validate::ReleaseChoice;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rta_analysis::{AnalysisLru, AnalysisRequest, CacheOutcome, Method};
use rta_model::json::{self, JsonError, Value};
use rta_model::{TaskSet, Time};
use rta_sim::{PreemptionPolicy, SimOutcome, SimRequest};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Hard cap on `cores`: a request is a platform description, not a memory
/// allocation license (per-core tables grow with `m`).
pub const MAX_CORES: usize = 1024;

/// Default bound on one request frame, newline included.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Server-side cap on a simulate frame's horizon: simulated time is
/// simulated *work*, so an uncapped horizon would let one frame occupy a
/// connection thread indefinitely.
pub const MAX_SIM_HORIZON: Time = 10_000_000;

/// Default number of task sets the admission cache retains.
pub const DEFAULT_LRU_CAPACITY: usize = 128;

/// Default bound on concurrently served connections.
pub const DEFAULT_MAX_CONNS: usize = 64;

/// How often blocked reads and the accept loop recheck the stop flag; the
/// upper bound on how long a drain waits for an *idle* connection.
const STOP_TICK: Duration = Duration::from_millis(25);

/// Accept-loop sleep between polls when no connection is pending — the
/// bounded recheck that makes a hung shutdown impossible.
const ACCEPT_TICK: Duration = Duration::from_millis(5);

/// Smallest socket timeout we ever set (zero would disable the timeout).
const MIN_SOCKET_TIMEOUT: Duration = Duration::from_millis(1);

/// Seeded fault injection — the test-only knob behind the chaos suite.
///
/// When installed via [`ServeOptions::fault`], the server draws from a
/// [`SmallRng`] seeded with `seed` to (a) drop freshly accepted
/// connections before serving them (`drop_accept_pct`) and (b) sleep for
/// up to `delay_max_micros` before processing an analyze frame
/// (`delay_pct`). Neither fault can corrupt an answer — drops look like
/// network failures to the client, delays only widen race windows — which
/// is exactly what the chaos suite needs to prove the server stays
/// correct under scheduling adversity.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// RNG seed for the injected-fault stream.
    pub seed: u64,
    /// Percent of accepted connections dropped before serving (0..=100).
    pub drop_accept_pct: u32,
    /// Percent of analyze frames delayed before processing (0..=100).
    pub delay_pct: u32,
    /// Upper bound on one injected delay, in microseconds.
    pub delay_max_micros: u64,
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Task-set capacity of the admission cache.
    pub lru_capacity: usize,
    /// Maximum accepted frame length in bytes (newline included); longer
    /// frames are answered with a `too_large` error and skipped.
    pub max_frame: usize,
    /// Maximum concurrently served connections; excess connections get an
    /// `overloaded` error frame and are closed.
    pub max_conns: usize,
    /// Active-connection count at which the server starts shedding load:
    /// analyze frames are then answered from cache facts only, anything
    /// cold gets an `overloaded` error frame.
    pub shed_watermark: usize,
    /// A connection that sends no byte for this long is closed with a
    /// `timeout` error frame.
    pub idle_timeout: Duration,
    /// A started frame must arrive completely within this budget, or the
    /// connection is closed with a `timeout` error frame (slowloris
    /// defense). Also the write timeout, and the processing budget whose
    /// breaches the `overruns` counter records.
    pub frame_timeout: Duration,
    /// How long shutdown waits for live connection threads to finish
    /// before cutting them off.
    pub drain_timeout: Duration,
    /// Seeded fault injection (test-only); `None` in production.
    pub fault: Option<FaultPlan>,
    /// When set, the process-global metrics registry is written to this
    /// path in Prometheus text exposition format when the server drains.
    pub metrics_dump: Option<std::path::PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            lru_capacity: DEFAULT_LRU_CAPACITY,
            max_frame: DEFAULT_MAX_FRAME,
            max_conns: DEFAULT_MAX_CONNS,
            shed_watermark: DEFAULT_MAX_CONNS * 3 / 4,
            idle_timeout: Duration::from_secs(30),
            frame_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(5),
            fault: None,
            metrics_dump: None,
        }
    }
}

/// The server's handles into the process-global [`rta_obs`] registry —
/// counters mirroring the per-server atomics (the registry aggregates
/// across server instances and alongside the analysis/sim metrics; the
/// atomics stay authoritative for the `stats` frame), plus per-frame-kind
/// latency histograms.
mod obs {
    use rta_obs::{Counter, Histogram};
    use std::sync::LazyLock;

    pub static REQUESTS: LazyLock<Counter> =
        LazyLock::new(|| rta_obs::counter("serve_requests_total"));
    pub static SIM_REQUESTS: LazyLock<Counter> =
        LazyLock::new(|| rta_obs::counter("serve_sim_requests_total"));
    pub static ERRORS: LazyLock<Counter> = LazyLock::new(|| rta_obs::counter("serve_errors_total"));
    pub static SHED: LazyLock<Counter> = LazyLock::new(|| rta_obs::counter("serve_shed_total"));
    pub static TIMEOUTS: LazyLock<Counter> =
        LazyLock::new(|| rta_obs::counter("serve_timeouts_total"));
    pub static OVERRUNS: LazyLock<Counter> =
        LazyLock::new(|| rta_obs::counter("serve_overruns_total"));
    pub static FRAME_NS_ANALYZE: LazyLock<Histogram> =
        LazyLock::new(|| rta_obs::histogram("serve_frame_ns_analyze"));
    pub static FRAME_NS_SIMULATE: LazyLock<Histogram> =
        LazyLock::new(|| rta_obs::histogram("serve_frame_ns_simulate"));
    pub static FRAME_NS_STATS: LazyLock<Histogram> =
        LazyLock::new(|| rta_obs::histogram("serve_frame_ns_stats"));
    pub static FRAME_NS_METRICS: LazyLock<Histogram> =
        LazyLock::new(|| rta_obs::histogram("serve_frame_ns_metrics"));
}

/// Gauge of live connections: the pool bound, the shed signal, and the
/// condition drain waits on.
struct ActiveGauge {
    count: Mutex<usize>,
    zero: Condvar,
}

impl ActiveGauge {
    fn new() -> Self {
        Self {
            count: Mutex::new(0),
            zero: Condvar::new(),
        }
    }

    /// Claims a pool slot unless `max` are already taken.
    fn try_acquire(&self, max: usize) -> bool {
        let mut count = self.count.lock().expect("gauge lock");
        if *count >= max {
            false
        } else {
            *count += 1;
            true
        }
    }

    fn release(&self) {
        let mut count = self.count.lock().expect("gauge lock");
        *count -= 1;
        if *count == 0 {
            self.zero.notify_all();
        }
    }

    fn current(&self) -> usize {
        *self.count.lock().expect("gauge lock")
    }

    /// Blocks until no connection is live or `deadline` passes; returns
    /// whether the pool drained in time.
    fn wait_zero(&self, deadline: Instant) -> bool {
        let mut count = self.count.lock().expect("gauge lock");
        while *count > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .zero
                .wait_timeout(count, deadline - now)
                .expect("gauge lock");
            count = guard;
        }
        true
    }
}

/// Releases the pool slot when a connection thread exits — including by
/// panic, so a crashed handler can never wedge the gauge.
struct ConnGuard {
    state: Arc<ServerState>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.state.active.release();
    }
}

/// Shared server state: the admission cache plus global counters.
struct ServerState {
    options: ServeOptions,
    lru: Mutex<AnalysisLru>,
    stop: AtomicBool,
    local_addr: SocketAddr,
    active: ActiveGauge,
    requests: AtomicU64,
    sim_requests: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
    overruns: AtomicU64,
    accept_errors: AtomicU64,
    drained: AtomicU64,
    cut_off: AtomicU64,
    panicked: AtomicU64,
    injected_drops: AtomicU64,
    injected_delays: AtomicU64,
    fault: Option<Mutex<SmallRng>>,
}

impl ServerState {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Fault hook: should this freshly accepted connection be dropped?
    fn inject_accept_drop(&self) -> bool {
        let Some(rng) = &self.fault else { return false };
        let plan = self.options.fault.as_ref().expect("fault plan");
        if plan.drop_accept_pct == 0 {
            return false;
        }
        let hit = rng.lock().expect("fault rng").gen_range(0..100u32) < plan.drop_accept_pct;
        if hit {
            self.injected_drops.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Fault hook: artificial processing delay for the current frame.
    fn inject_delay(&self) -> Option<Duration> {
        let rng = self.fault.as_ref()?;
        let plan = self.options.fault.as_ref().expect("fault plan");
        if plan.delay_pct == 0 {
            return None;
        }
        let mut rng = rng.lock().expect("fault rng");
        if rng.gen_range(0..100u32) < plan.delay_pct {
            self.injected_delays.fetch_add(1, Ordering::Relaxed);
            Some(Duration::from_micros(
                rng.gen_range(0..=plan.delay_max_micros),
            ))
        } else {
            None
        }
    }
}

/// What a drain observed: every connection thread is accounted for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Connection threads joined cleanly (over the server's lifetime).
    pub drained: u64,
    /// Threads still running when the drain deadline passed (detached).
    pub cut_off: u64,
    /// Threads that had panicked (always 0 on a correct server).
    pub panicked: u64,
}

impl DrainReport {
    /// Human-readable one-liner.
    pub fn render(&self) -> String {
        format!(
            "drained {} connection thread(s), cut off {}, panicked {}",
            self.drained, self.cut_off, self.panicked
        )
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`shutdown`](ServerHandle::shutdown) (or send a `{"shutdown":true}`
/// frame) to stop it, or [`join`](ServerHandle::join) to serve until a
/// client does. Either way the accept loop drains live connection threads
/// before exiting and reports what it saw.
pub struct ServerHandle {
    state: Arc<ServerState>,
    acceptor: thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Stops accepting, drains live connection threads up to the
    /// configured deadline and reports the result.
    pub fn shutdown(self) -> DrainReport {
        self.state.stop.store(true, Ordering::SeqCst);
        self.join()
    }

    /// Blocks until some client's `{"shutdown":true}` frame stops the
    /// server (the foreground `repro serve` mode), then reports the drain.
    pub fn join(self) -> DrainReport {
        let _ = self.acceptor.join();
        if let Some(path) = &self.state.options.metrics_dump {
            // Best effort: a failed dump must not turn a clean drain into
            // a crash, but it should not be silent either.
            if let Err(e) = std::fs::write(path, rta_obs::snapshot().to_prometheus()) {
                eprintln!(
                    "warning: could not write metrics dump {}: {e}",
                    path.display()
                );
            }
        }
        DrainReport {
            drained: self.state.drained.load(Ordering::Relaxed),
            cut_off: self.state.cut_off.load(Ordering::Relaxed),
            panicked: self.state.panicked.load(Ordering::Relaxed),
        }
    }
}

/// Binds the listener and spawns the accept loop (thread per connection,
/// bounded by the pool).
pub fn spawn(options: &ServeOptions) -> io::Result<ServerHandle> {
    // Register the server's counter families up front so a metrics scrape
    // reports explicit zeros rather than absent names.
    for counter in [
        &obs::REQUESTS,
        &obs::SIM_REQUESTS,
        &obs::ERRORS,
        &obs::SHED,
        &obs::TIMEOUTS,
        &obs::OVERRUNS,
    ] {
        counter.add(0);
    }
    let listener = TcpListener::bind(&options.addr)?;
    listener.set_nonblocking(true)?;
    let state = Arc::new(ServerState {
        options: options.clone(),
        lru: Mutex::new(AnalysisLru::new(options.lru_capacity)),
        stop: AtomicBool::new(false),
        local_addr: listener.local_addr()?,
        active: ActiveGauge::new(),
        requests: AtomicU64::new(0),
        sim_requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        timeouts: AtomicU64::new(0),
        overruns: AtomicU64::new(0),
        accept_errors: AtomicU64::new(0),
        drained: AtomicU64::new(0),
        cut_off: AtomicU64::new(0),
        panicked: AtomicU64::new(0),
        injected_drops: AtomicU64::new(0),
        injected_delays: AtomicU64::new(0),
        fault: options
            .fault
            .as_ref()
            .map(|plan| Mutex::new(SmallRng::seed_from_u64(plan.seed))),
    });
    let accept_state = Arc::clone(&state);
    let acceptor = thread::spawn(move || accept_loop(&accept_state, listener));
    Ok(ServerHandle { state, acceptor })
}

/// The accept loop: non-blocking polls with a bounded stop recheck, pool
/// admission, and — once stopped — the drain of live connection threads.
fn accept_loop(state: &Arc<ServerState>, listener: TcpListener) {
    let mut registry: Vec<thread::JoinHandle<()>> = Vec::new();
    loop {
        if state.stopping() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                reap_finished(state, &mut registry);
                if state.inject_accept_drop() {
                    continue; // simulated accept-path failure
                }
                if state.active.try_acquire(state.options.max_conns) {
                    let guard = ConnGuard {
                        state: Arc::clone(state),
                    };
                    let conn_state = Arc::clone(state);
                    registry.push(thread::spawn(move || {
                        let _guard = guard;
                        // A failed connection is the client's problem; the
                        // server must outlive it either way.
                        let _ = serve_connection(&conn_state, stream);
                    }));
                } else {
                    state.shed.fetch_add(1, Ordering::Relaxed);
                    obs::SHED.inc();
                    refuse_overloaded(stream, state.options.frame_timeout);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_TICK),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                state.accept_errors.fetch_add(1, Ordering::Relaxed);
                thread::sleep(ACCEPT_TICK);
            }
        }
    }
    drain_connections(state, registry);
}

/// Joins already-finished connection threads so the registry stays
/// bounded by the number of *live* connections, not lifetime totals.
fn reap_finished(state: &ServerState, registry: &mut Vec<thread::JoinHandle<()>>) {
    let mut i = 0;
    while i < registry.len() {
        if registry[i].is_finished() {
            finish(state, registry.swap_remove(i));
        } else {
            i += 1;
        }
    }
}

fn finish(state: &ServerState, handle: thread::JoinHandle<()>) {
    match handle.join() {
        Ok(()) => state.drained.fetch_add(1, Ordering::Relaxed),
        Err(_) => state.panicked.fetch_add(1, Ordering::Relaxed),
    };
}

/// The drain phase: wait for the pool to empty (connection threads see the
/// stop flag at every read tick), then join what finished and cut off —
/// detach and count — whatever is still running at the deadline.
fn drain_connections(state: &ServerState, registry: Vec<thread::JoinHandle<()>>) {
    let deadline = Instant::now() + state.options.drain_timeout;
    let all_done = state.active.wait_zero(deadline);
    for handle in registry {
        if all_done || handle.is_finished() {
            finish(state, handle);
        } else {
            state.cut_off.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Answers a pool-exceeding connection with one `overloaded` frame and
/// closes it; best effort under a short write timeout so a hostile client
/// cannot stall the acceptor.
fn refuse_overloaded(stream: TcpStream, write_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(write_timeout.max(MIN_SOCKET_TIMEOUT)));
    let mut stream = stream;
    let _ = respond_error(&mut stream, None, &WireError::overloaded());
}

// ---------------------------------------------------------------------------
// Per-connection loop
// ---------------------------------------------------------------------------

/// What one request frame asks for.
#[derive(Debug)]
enum Frame {
    Analyze {
        id: Option<u64>,
        task_set: TaskSet,
        request: AnalysisRequest,
    },
    Simulate {
        id: Option<u64>,
        task_set: TaskSet,
        request: SimRequest,
    },
    Stats {
        id: Option<u64>,
    },
    Metrics {
        id: Option<u64>,
    },
    Shutdown {
        id: Option<u64>,
    },
}

/// A structured wire error: `kind` is part of the protocol, `message` is
/// for humans.
struct WireError {
    kind: &'static str,
    message: String,
}

impl WireError {
    fn protocol(message: impl Into<String>) -> Self {
        Self {
            kind: "protocol",
            message: message.into(),
        }
    }

    fn overloaded() -> Self {
        Self {
            kind: "overloaded",
            message: "server is shedding load; retry with backoff".into(),
        }
    }

    fn timeout(message: impl Into<String>) -> Self {
        Self {
            kind: "timeout",
            message: message.into(),
        }
    }
}

impl From<JsonError> for WireError {
    fn from(e: JsonError) -> Self {
        let kind = match &e {
            JsonError::Syntax { .. } => "syntax",
            JsonError::Schema(_) => "schema",
            JsonError::UnknownVersion { .. } => "version",
            JsonError::Model(_) => "model",
        };
        Self {
            kind,
            message: e.to_string(),
        }
    }
}

/// How one attempt to read a frame ended.
enum FrameRead {
    /// A complete newline-terminated frame is in the buffer.
    Frame,
    /// The client closed the connection (possibly mid-frame).
    Closed,
    /// The server is stopping; close without reading further.
    Stopped,
    /// No byte arrived within the idle budget.
    IdleTimeout,
    /// A frame started but did not complete within the frame budget.
    Stalled,
    /// The frame exceeded `max_frame` bytes without a newline.
    Oversized,
}

fn serve_connection(state: &Arc<ServerState>, stream: TcpStream) -> io::Result<()> {
    // A client that stops *reading* must not park this thread forever.
    stream.set_write_timeout(Some(state.options.frame_timeout.max(MIN_SOCKET_TIMEOUT)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = Vec::new();
    loop {
        match read_frame(state, &mut reader, &mut line)? {
            FrameRead::Closed | FrameRead::Stopped => return Ok(()),
            FrameRead::IdleTimeout => {
                state.timeouts.fetch_add(1, Ordering::Relaxed);
                obs::TIMEOUTS.inc();
                let _ = respond_error(
                    &mut writer,
                    None,
                    &WireError::timeout(format!(
                        "no frame within the {}ms idle budget",
                        state.options.idle_timeout.as_millis()
                    )),
                );
                return Ok(());
            }
            FrameRead::Stalled => {
                state.timeouts.fetch_add(1, Ordering::Relaxed);
                obs::TIMEOUTS.inc();
                let _ = respond_error(
                    &mut writer,
                    None,
                    &WireError::timeout(format!(
                        "frame did not complete within the {}ms frame budget",
                        state.options.frame_timeout.as_millis()
                    )),
                );
                return Ok(());
            }
            FrameRead::Oversized => {
                // Answer the structured error, then drain the rest of the
                // oversized line so the connection re-synchronizes at the
                // next newline.
                state.errors.fetch_add(1, Ordering::Relaxed);
                obs::ERRORS.inc();
                respond_error(
                    &mut writer,
                    None,
                    &WireError {
                        kind: "too_large",
                        message: format!("frame exceeds {} bytes", state.options.max_frame),
                    },
                )?;
                if !drain_to_newline(state, &mut reader)? {
                    return Ok(()); // EOF or stall inside the oversized frame
                }
            }
            FrameRead::Frame => {
                let text = String::from_utf8_lossy(&line);
                if text.trim().is_empty() {
                    continue; // bare keep-alive newline
                }
                if !handle_frame(state, &mut writer, text.trim())? {
                    return Ok(());
                }
            }
        }
    }
}

/// Parses and answers one complete frame; returns `false` when the
/// connection should close (wire shutdown).
fn handle_frame(state: &Arc<ServerState>, writer: &mut TcpStream, text: &str) -> io::Result<bool> {
    match parse_frame(text) {
        Err(error) => {
            state.errors.fetch_add(1, Ordering::Relaxed);
            obs::ERRORS.inc();
            respond_error(writer, None, &error)?;
        }
        Ok(Frame::Stats { id }) => {
            let started = Instant::now();
            let (stats, cached) = {
                let lru = state.lru.lock().expect("lru lock");
                (lru.stats(), lru.len())
            };
            let mut out = String::from("{\"v\":1,");
            push_id(&mut out, id);
            let _ = write_stats(&mut out, state, cached, stats);
            writeln_frame(writer, out)?;
            obs::FRAME_NS_STATS.observe_since(started);
        }
        Ok(Frame::Metrics { id }) => {
            let started = Instant::now();
            let mut out = String::from("{\"v\":1,");
            push_id(&mut out, id);
            out.push_str("\"ok\":true,\"metrics\":");
            out.push_str(&rta_obs::snapshot().to_json());
            out.push('}');
            writeln_frame(writer, out)?;
            obs::FRAME_NS_METRICS.observe_since(started);
        }
        Ok(Frame::Shutdown { id }) => {
            let mut out = String::from("{\"v\":1,");
            push_id(&mut out, id);
            out.push_str("\"ok\":true,\"shutdown\":true}");
            writeln_frame(writer, out)?;
            state.stop.store(true, Ordering::SeqCst);
            return Ok(false);
        }
        Ok(Frame::Analyze {
            id,
            task_set,
            request,
        }) => {
            state.requests.fetch_add(1, Ordering::Relaxed);
            obs::REQUESTS.inc();
            if let Some(delay) = state.inject_delay() {
                thread::sleep(delay);
            }
            let started = Instant::now();
            if state.active.current() >= state.options.shed_watermark {
                // Degraded mode: answer from recorded facts only — never
                // start a cold analysis while the pool is under pressure.
                let cached = state
                    .lru
                    .lock()
                    .expect("lru lock")
                    .fetch_facts(&task_set, &request);
                match cached {
                    Some(outcome) => {
                        let micros = started.elapsed().as_micros();
                        respond_outcome(writer, id, CacheOutcome::Hit, micros, &outcome)?;
                    }
                    None => {
                        state.shed.fetch_add(1, Ordering::Relaxed);
                        obs::SHED.inc();
                        respond_error(writer, id, &WireError::overloaded())?;
                    }
                }
                obs::FRAME_NS_ANALYZE.observe_since(started);
                return Ok(true);
            }
            // Hold the cache lock only for the O(lookup) parts; the
            // analysis itself runs unlocked so connections that miss
            // do not serialize behind each other.
            let fetched = state
                .lru
                .lock()
                .expect("lru lock")
                .fetch(&task_set, &request);
            let (outcome, status) = match fetched {
                (Some(outcome), status) => (outcome, status),
                (None, status) => {
                    let outcome = request.evaluate(&task_set);
                    state
                        .lru
                        .lock()
                        .expect("lru lock")
                        .store(&task_set, &request, &outcome);
                    (outcome, status)
                }
            };
            let elapsed = started.elapsed();
            if elapsed > state.options.frame_timeout {
                state.overruns.fetch_add(1, Ordering::Relaxed);
                obs::OVERRUNS.inc();
            }
            obs::FRAME_NS_ANALYZE.observe(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
            respond_outcome(writer, id, status, elapsed.as_micros(), &outcome)?;
        }
        Ok(Frame::Simulate {
            id,
            task_set,
            request,
        }) => {
            state.sim_requests.fetch_add(1, Ordering::Relaxed);
            obs::SIM_REQUESTS.inc();
            if let Some(delay) = state.inject_delay() {
                thread::sleep(delay);
            }
            // Simulations are never cached (the state space is seeded and
            // horizon-shaped, so hits would be coincidental), so under
            // pressure there is no degraded answer to give: shed outright.
            if state.active.current() >= state.options.shed_watermark {
                state.shed.fetch_add(1, Ordering::Relaxed);
                obs::SHED.inc();
                respond_error(writer, id, &WireError::overloaded())?;
                return Ok(true);
            }
            let started = Instant::now();
            let outcome = request.evaluate(&task_set);
            let elapsed = started.elapsed();
            if elapsed > state.options.frame_timeout {
                state.overruns.fetch_add(1, Ordering::Relaxed);
                obs::OVERRUNS.inc();
            }
            obs::FRAME_NS_SIMULATE.observe(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
            respond_sim(writer, id, elapsed.as_micros(), &outcome)?;
        }
    }
    Ok(true)
}

/// Reads one newline-terminated frame into `line` under the idle/frame
/// budgets, rechecking the stop flag every tick.
fn read_frame(
    state: &ServerState,
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
) -> io::Result<FrameRead> {
    line.clear();
    let max_frame = state.options.max_frame;
    let idle_deadline = Instant::now() + state.options.idle_timeout;
    let mut frame_deadline: Option<Instant> = None;
    loop {
        if state.stopping() {
            return Ok(FrameRead::Stopped);
        }
        let deadline = frame_deadline.unwrap_or(idle_deadline);
        let now = Instant::now();
        if now >= deadline {
            return Ok(if line.is_empty() {
                FrameRead::IdleTimeout
            } else {
                FrameRead::Stalled
            });
        }
        let wait = (deadline - now).min(STOP_TICK).max(MIN_SOCKET_TIMEOUT);
        reader.get_ref().set_read_timeout(Some(wait))?;
        let cap = (max_frame - line.len()) as u64;
        match (&mut *reader).take(cap).read_until(b'\n', line) {
            Ok(0) if line.is_empty() => return Ok(FrameRead::Closed),
            // `Ok` without a newline means the cap was exhausted or the
            // client closed mid-frame.
            Ok(_) if line.last() == Some(&b'\n') => return Ok(FrameRead::Frame),
            Ok(_) => {
                return Ok(if line.len() >= max_frame {
                    FrameRead::Oversized
                } else {
                    FrameRead::Closed
                });
            }
            Err(e) if is_timeout(&e) => {
                // Partial bytes read before the tick expired stay in
                // `line`; the first of them starts the frame budget.
                if !line.is_empty() && frame_deadline.is_none() {
                    frame_deadline = Some(Instant::now() + state.options.frame_timeout);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Discards input up to and including the next newline, under the frame
/// budget. Returns `false` when the connection should close (EOF, stop,
/// or a stalled oversized frame).
fn drain_to_newline(state: &ServerState, reader: &mut BufReader<TcpStream>) -> io::Result<bool> {
    let deadline = Instant::now() + state.options.frame_timeout;
    let mut chunk = Vec::with_capacity(4096);
    loop {
        if state.stopping() {
            return Ok(false);
        }
        let now = Instant::now();
        if now >= deadline {
            state.timeouts.fetch_add(1, Ordering::Relaxed);
            obs::TIMEOUTS.inc();
            return Ok(false);
        }
        let wait = (deadline - now).min(STOP_TICK).max(MIN_SOCKET_TIMEOUT);
        reader.get_ref().set_read_timeout(Some(wait))?;
        chunk.clear();
        match (&mut *reader).take(4096).read_until(b'\n', &mut chunk) {
            Ok(0) => return Ok(false),
            Ok(_) if chunk.last() == Some(&b'\n') => return Ok(true),
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {}
            Err(e) => return Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

fn method_from_label(label: &str) -> Option<Method> {
    Method::ALL.into_iter().find(|m| m.label() == label)
}

fn parse_frame(text: &str) -> Result<Frame, WireError> {
    let doc = json::parse(text)?;
    let Value::Object(_) = &doc else {
        return Err(WireError::protocol("a request must be a JSON object"));
    };
    match doc.get("v") {
        None => {}
        Some(v) if v.as_u64() == Some(1) => {}
        Some(other) => {
            return Err(WireError::protocol(format!(
                "unsupported envelope version {other:?} (this server speaks v=1)"
            )));
        }
    }
    let id = match doc.get("id") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| WireError::protocol("\"id\" must be a non-negative integer"))?,
        ),
    };
    if doc.get("stats").and_then(Value::as_bool) == Some(true) {
        return Ok(Frame::Stats { id });
    }
    if doc.get("metrics").and_then(Value::as_bool) == Some(true) {
        return Ok(Frame::Metrics { id });
    }
    if doc.get("shutdown").and_then(Value::as_bool) == Some(true) {
        return Ok(Frame::Shutdown { id });
    }
    if let Some(sim) = doc.get("simulate") {
        return parse_simulate(id, sim);
    }
    let cores = parse_cores(&doc)?;
    let methods: Vec<Method> = match doc.get("methods") {
        None => Method::ALL.to_vec(),
        Some(v) => v
            .as_array()
            .ok_or_else(|| WireError::protocol("\"methods\" must be an array of labels"))?
            .iter()
            .map(|item| {
                item.as_str().and_then(method_from_label).ok_or_else(|| {
                    WireError::protocol(format!(
                        "unknown method {item:?}; expected one of \
                         \"FP-ideal\", \"LP-ILP\", \"LP-max\", \"LP-sound\", \
                         \"Long-paths\", \"Gen-sporadic\""
                    ))
                })
            })
            .collect::<Result<_, _>>()?,
    };
    let want_bounds = match doc.get("bounds") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| WireError::protocol("\"bounds\" must be a boolean"))?,
    };
    let task_set = json::task_set_from_value(
        doc.get("task_set")
            .ok_or_else(|| WireError::protocol("request is missing \"task_set\""))?,
    )?;
    let request = AnalysisRequest::new(cores)
        .with_methods(methods)
        .with_bounds(want_bounds);
    Ok(Frame::Analyze {
        id,
        task_set,
        request,
    })
}

/// Validates the `cores` field of an analyze frame or a `simulate`
/// object (shared bounds: a core count is a platform description, not an
/// allocation license).
fn parse_cores(doc: &Value) -> Result<usize, WireError> {
    let cores = doc
        .get("cores")
        .ok_or_else(|| WireError::protocol("request is missing \"cores\""))?
        .as_u64()
        .ok_or_else(|| WireError::protocol("\"cores\" must be a non-negative integer"))?;
    if cores == 0 || cores as usize > MAX_CORES {
        return Err(WireError::protocol(format!(
            "\"cores\" must be in 1..={MAX_CORES}, got {cores}"
        )));
    }
    Ok(cores as usize)
}

/// Parses the `"simulate"` object of a simulate frame into a
/// [`SimRequest`] (never with tracing: traces are bounded but large, and
/// no client needs them over the wire).
fn parse_simulate(id: Option<u64>, sim: &Value) -> Result<Frame, WireError> {
    let Value::Object(_) = sim else {
        return Err(WireError::protocol("\"simulate\" must be a JSON object"));
    };
    let cores = parse_cores(sim)?;
    let horizon = sim
        .get("horizon")
        .ok_or_else(|| WireError::protocol("\"simulate\" is missing \"horizon\""))?
        .as_u64()
        .ok_or_else(|| WireError::protocol("\"horizon\" must be a non-negative integer"))?;
    if horizon == 0 || horizon > MAX_SIM_HORIZON {
        return Err(WireError::protocol(format!(
            "\"horizon\" must be in 1..={MAX_SIM_HORIZON}, got {horizon} \
             (the horizon is capped server-side)"
        )));
    }
    let policy = match sim.get("policy") {
        None => PreemptionPolicy::LimitedPreemptive,
        Some(v) => match v.as_str() {
            Some("eager") => PreemptionPolicy::LimitedPreemptive,
            Some("lazy") => PreemptionPolicy::LazyPreemptive,
            Some("full") => PreemptionPolicy::FullyPreemptive,
            _ => {
                return Err(WireError::protocol(format!(
                    "unknown policy {v:?}; expected \"eager\", \"lazy\" or \"full\""
                )));
            }
        },
    };
    let release = match sim.get("release") {
        None => ReleaseChoice::Sync,
        Some(v) => v
            .as_str()
            .and_then(ReleaseChoice::from_flag)
            .ok_or_else(|| {
                WireError::protocol(format!(
                    "unknown release {v:?}; expected \"sync\", \"jitter\" or \"sporadic\""
                ))
            })?,
    };
    let seed = match sim.get("seed") {
        None => 0,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| WireError::protocol("\"seed\" must be a non-negative integer"))?,
    };
    let task_set = json::task_set_from_value(
        sim.get("task_set")
            .ok_or_else(|| WireError::protocol("\"simulate\" is missing \"task_set\""))?,
    )?;
    let request = SimRequest::new(cores, horizon)
        .with_policy(policy)
        .with_release(release.release())
        .with_seed(seed);
    Ok(Frame::Simulate {
        id,
        task_set,
        request,
    })
}

// ---------------------------------------------------------------------------
// Response rendering
// ---------------------------------------------------------------------------

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_id(out: &mut String, id: Option<u64>) {
    if let Some(id) = id {
        use std::fmt::Write as _;
        let _ = write!(out, "\"id\":{id},");
    }
}

fn writeln_frame(writer: &mut impl Write, mut frame: String) -> io::Result<()> {
    frame.push('\n');
    writer.write_all(frame.as_bytes())?;
    writer.flush()
}

fn respond_error(writer: &mut impl Write, id: Option<u64>, error: &WireError) -> io::Result<()> {
    let mut out = String::from("{\"v\":1,");
    push_id(&mut out, id);
    out.push_str("\"ok\":false,\"error\":{\"kind\":\"");
    out.push_str(error.kind);
    out.push_str("\",\"message\":");
    push_escaped(&mut out, &error.message);
    out.push_str("}}");
    writeln_frame(writer, out)
}

/// The compact JSON array of per-method verdicts exactly as the wire
/// carries it — public so tests can pin server responses byte-identical
/// to the library path.
pub fn verdicts_json(outcome: &rta_analysis::AnalysisOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("[");
    for (i, answer) in outcome.outcomes().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"method\":\"{}\",\"schedulable\":{}",
            answer.method.label(),
            answer.schedulable
        );
        if let Some(bounds) = &answer.bounds {
            out.push_str(",\"bounds\":[");
            for (j, bound) in bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", bound.ceil());
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push(']');
    out
}

fn respond_outcome(
    writer: &mut impl Write,
    id: Option<u64>,
    status: CacheOutcome,
    micros: u128,
    outcome: &rta_analysis::AnalysisOutcome,
) -> io::Result<()> {
    use std::fmt::Write as _;
    let mut out = String::from("{\"v\":1,");
    push_id(&mut out, id);
    let _ = write!(
        out,
        "\"ok\":true,\"cache\":\"{}\",\"micros\":{micros},\"verdicts\":{}}}",
        status.label(),
        verdicts_json(outcome)
    );
    writeln_frame(writer, out)
}

/// The compact JSON object of simulation results exactly as the wire
/// carries it — public so tests can pin server responses to the library
/// path.
pub fn sim_json(outcome: &SimOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"makespan\":{},\"deadline_misses\":{},\"events\":{},\
         \"deferred_preemptions\":{},\"peak_live_jobs\":{},\
         \"trace_dropped\":{},\"max_responses\":[",
        outcome.makespan(),
        outcome.total_deadline_misses(),
        outcome.events_processed(),
        outcome.deferred_preemptions(),
        outcome.peak_live_jobs(),
        outcome.trace_dropped(),
    );
    for (i, stats) in outcome.per_task().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", stats.max_response);
    }
    out.push_str("]}");
    out
}

fn respond_sim(
    writer: &mut impl Write,
    id: Option<u64>,
    micros: u128,
    outcome: &SimOutcome,
) -> io::Result<()> {
    use std::fmt::Write as _;
    let mut out = String::from("{\"v\":1,");
    push_id(&mut out, id);
    let _ = write!(
        out,
        "\"ok\":true,\"micros\":{micros},\"sim\":{}",
        sim_json(outcome)
    );
    out.push('}');
    writeln_frame(writer, out)
}

fn write_stats(
    out: &mut String,
    state: &ServerState,
    cached_sets: usize,
    stats: rta_analysis::LruStats,
) -> std::fmt::Result {
    use std::fmt::Write as _;
    write!(
        out,
        "\"ok\":true,\"stats\":{{\"requests\":{},\"sim_requests\":{},\"errors\":{},\
         \"active_conns\":{},\
         \"shed\":{},\"timeouts\":{},\"overruns\":{},\"drained\":{},\"accept_errors\":{},\
         \"injected_drops\":{},\"injected_delays\":{},\"cached_sets\":{},\
         \"hits\":{},\"near_hits\":{},\"misses\":{},\"evictions\":{}}}}}",
        state.requests.load(Ordering::Relaxed),
        state.sim_requests.load(Ordering::Relaxed),
        state.errors.load(Ordering::Relaxed),
        state.active.current(),
        state.shed.load(Ordering::Relaxed),
        state.timeouts.load(Ordering::Relaxed),
        state.overruns.load(Ordering::Relaxed),
        state.drained.load(Ordering::Relaxed),
        state.accept_errors.load(Ordering::Relaxed),
        state.injected_drops.load(Ordering::Relaxed),
        state.injected_delays.load(Ordering::Relaxed),
        cached_sets,
        stats.hits,
        stats.near_hits,
        stats.misses,
        stats.evictions,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_labels_round_trip() {
        for method in Method::ALL {
            assert_eq!(method_from_label(method.label()), Some(method));
        }
        assert_eq!(method_from_label("FP-Ideal"), None);
    }

    #[test]
    fn frame_parsing_defaults_and_errors() {
        let ok = parse_frame(
            r#"{"cores":4,"task_set":{"tasks":[{"period":9,"deadline":9,"dag":{"wcets":[1],"edges":[]}}]}}"#,
        );
        let Ok(Frame::Analyze {
            id,
            request,
            task_set,
        }) = ok
        else {
            panic!("expected an analyze frame");
        };
        assert_eq!(id, None);
        assert_eq!(request.methods, Method::ALL.to_vec());
        assert!(!request.want_bounds);
        assert_eq!(task_set.len(), 1);
        for (text, kind) in [
            (r#"{"task_set":{"tasks":[]}}"#, "protocol"), // no cores
            (r#"{"cores":0,"task_set":{"tasks":[]}}"#, "protocol"),
            (r#"{"cores":4,"v":2,"task_set":{"tasks":[]}}"#, "protocol"),
            (
                r#"{"cores":4,"methods":["fp"],"task_set":{"tasks":[]}}"#,
                "protocol",
            ),
            (r#"{"cores":4}"#, "protocol"), // no task_set
            (
                r#"{"cores":4,"task_set":{"version":9,"tasks":[]}}"#,
                "version",
            ),
            (r#"{"cores":4,"task_set":{"tasks":"#, "syntax"),
        ] {
            let err = parse_frame(text).expect_err(text);
            assert_eq!(err.kind, kind, "{text}: {}", err.message);
        }
    }

    #[test]
    fn simulate_frame_parsing_defaults_and_errors() {
        const SET: &str = r#"{"tasks":[{"period":9,"deadline":9,"dag":{"wcets":[1],"edges":[]}}]}"#;
        let ok = parse_frame(&format!(
            r#"{{"v":1,"id":9,"simulate":{{"cores":4,"horizon":20000,"task_set":{SET}}}}}"#
        ));
        let Ok(Frame::Simulate {
            id,
            request,
            task_set,
        }) = ok
        else {
            panic!("expected a simulate frame");
        };
        assert_eq!(id, Some(9));
        assert_eq!(task_set.len(), 1);
        // Defaults: the paper's eager policy, synchronous release, seed 0.
        let reference = SimRequest::new(4, 20_000);
        assert_eq!(request, reference);
        // Explicit knobs land in the request.
        let Ok(Frame::Simulate { request, .. }) = parse_frame(&format!(
            r#"{{"simulate":{{"cores":2,"horizon":500,"policy":"lazy","release":"sporadic","seed":7,"task_set":{SET}}}}}"#
        )) else {
            panic!("expected a simulate frame");
        };
        assert_eq!(
            request,
            SimRequest::new(2, 500)
                .with_policy(PreemptionPolicy::LazyPreemptive)
                .with_release(ReleaseChoice::Sporadic.release())
                .with_seed(7)
        );
        let bad = [
            r#"{"simulate":true}"#.to_string(),
            format!(r#"{{"simulate":{{"horizon":10,"task_set":{SET}}}}}"#), // no cores
            format!(r#"{{"simulate":{{"cores":4,"task_set":{SET}}}}}"#),    // no horizon
            format!(r#"{{"simulate":{{"cores":4,"horizon":0,"task_set":{SET}}}}}"#),
            // Above MAX_SIM_HORIZON: the horizon is capped server-side.
            format!(r#"{{"simulate":{{"cores":4,"horizon":10000001,"task_set":{SET}}}}}"#),
            format!(r#"{{"simulate":{{"cores":4,"horizon":10,"policy":"np","task_set":{SET}}}}}"#),
            format!(
                r#"{{"simulate":{{"cores":4,"horizon":10,"release":"burst","task_set":{SET}}}}}"#
            ),
            r#"{"simulate":{"cores":4,"horizon":10}}"#.to_string(), // no task_set
            format!(r#"{{"simulate":{{"cores":4,"horizon":10,"task_set":{SET}}},"v":3}}"#),
        ];
        for text in &bad {
            let err = parse_frame(text).expect_err(text);
            assert_eq!(err.kind, "protocol", "{text}: {}", err.message);
        }
    }

    #[test]
    fn sim_json_reports_the_library_outcome() {
        use rta_model::{DagBuilder, DagTask};
        let mut b = DagBuilder::new();
        b.add_node(2);
        let task = DagTask::with_implicit_deadline(b.build().unwrap(), 10).unwrap();
        let ts = TaskSet::new(vec![task]);
        let outcome = SimRequest::new(1, 20).evaluate(&ts);
        let json = sim_json(&outcome);
        assert!(json.contains("\"makespan\":12"), "{json}");
        assert!(json.contains("\"deadline_misses\":0"), "{json}");
        assert!(json.contains("\"max_responses\":[2]"), "{json}");
        assert!(json.contains("\"peak_live_jobs\":"), "{json}");
        // Wire runs never record a trace, so the dropped counter is 0 —
        // but it must be *present*, not silently omitted (the satellite
        // bug this pins: the field used to be swallowed entirely).
        assert!(json.contains("\"trace_dropped\":0"), "{json}");
        // A traced run that overflows the bounded capacity reports its
        // nonzero drop count through the same JSON path.
        let traced = SimRequest::new(1, 2_000_000).with_trace(true).evaluate(&ts);
        if traced.trace_dropped() > 0 {
            let json = sim_json(&traced);
            assert!(
                json.contains(&format!("\"trace_dropped\":{}", traced.trace_dropped())),
                "{json}"
            );
        }
    }

    #[test]
    fn default_watermark_sits_below_the_pool_bound() {
        let options = ServeOptions::default();
        assert!(options.shed_watermark < options.max_conns);
        assert!(options.shed_watermark > 0);
    }
}
