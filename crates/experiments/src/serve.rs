//! `repro serve` — an admission-control daemon answering schedulability
//! verdicts over a socket.
//!
//! The ROADMAP's north star is serving verdicts at production scale; this
//! module is the long-running surface over the unified request API
//! ([`rta_analysis::AnalysisRequest`]) and the admission-control cache
//! ([`rta_analysis::AnalysisLru`]).
//!
//! # Wire protocol
//!
//! Line-delimited JSON over TCP: every frame is one compact JSON object
//! terminated by `\n`, in both directions (`rta_model::json` is the only
//! JSON machinery — no new dependencies). A request:
//!
//! ```json
//! {"v":1,"id":7,"cores":4,"methods":["FP-ideal","LP-sound"],"bounds":true,
//!  "task_set":{"version":1,"tasks":[{"period":40,"deadline":40,
//!  "dag":{"wcets":[2,6,4,1],"edges":[[0,1],[0,2],[1,3],[2,3]]}}]}}
//! ```
//!
//! * `v` — optional envelope version; must be `1` when present.
//! * `id` — optional integer, echoed verbatim in the response so clients
//!   can pipeline frames.
//! * `cores` — required platform size (`1..=MAX_CORES`).
//! * `methods` — optional array of method labels (`"FP-ideal"`,
//!   `"LP-ILP"`, `"LP-max"`, `"LP-sound"`); omitted means all four.
//! * `bounds` — optional, default `false`; `true` materializes per-task
//!   response bounds.
//! * `task_set` — required, the versioned task-set payload of
//!   [`rta_model::json`].
//!
//! A successful response (`cache` is the [`CacheOutcome`] label, `micros`
//! the server-side analysis time, `bounds` the per-task response-time
//! ceilings of the analyzed prefix, present iff requested):
//!
//! ```json
//! {"v":1,"id":7,"ok":true,"cache":"miss","micros":412,"verdicts":[
//!   {"method":"FP-ideal","schedulable":true,"bounds":[9]},
//!   {"method":"LP-sound","schedulable":true,"bounds":[9]}]}
//! ```
//!
//! Any failure — malformed JSON, schema violations, unknown schema
//! versions, model violations such as cyclic DAGs, oversized frames —
//! produces a structured error on the same connection and the server
//! keeps serving (no panic, no dropped connection):
//!
//! ```json
//! {"v":1,"ok":false,"error":{"kind":"model","message":"..."}}
//! ```
//!
//! `kind` is one of `syntax`, `schema`, `version`, `model`, `protocol`,
//! `too_large`. Two special frames bypass analysis: `{"stats":true}`
//! reports counters, `{"shutdown":true}` acknowledges and stops the
//! server.

use rta_analysis::{AnalysisLru, AnalysisRequest, CacheOutcome, Method};
use rta_model::json::{self, JsonError, Value};
use rta_model::TaskSet;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

/// Hard cap on `cores`: a request is a platform description, not a memory
/// allocation license (per-core tables grow with `m`).
pub const MAX_CORES: usize = 1024;

/// Default bound on one request frame, newline included.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Default number of task sets the admission cache retains.
pub const DEFAULT_LRU_CAPACITY: usize = 128;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Task-set capacity of the admission cache.
    pub lru_capacity: usize,
    /// Maximum accepted frame length in bytes (newline included); longer
    /// frames are answered with a `too_large` error and skipped.
    pub max_frame: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            lru_capacity: DEFAULT_LRU_CAPACITY,
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// Shared server state: the admission cache plus global counters.
struct ServerState {
    lru: Mutex<AnalysisLru>,
    stop: AtomicBool,
    local_addr: SocketAddr,
    requests: AtomicU64,
    errors: AtomicU64,
}

impl ServerState {
    /// Unblocks the accept loop after `stop` was raised: `accept` has no
    /// timeout, so the raiser connects to the listener itself.
    fn poke_acceptor(&self) {
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`shutdown`](ServerHandle::shutdown) (or send a `{"shutdown":true}`
/// frame) to stop it, or [`join`](ServerHandle::join) to serve until a
/// client does.
pub struct ServerHandle {
    state: Arc<ServerState>,
    acceptor: thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Stops accepting, unblocks the accept loop and waits for it to exit.
    /// Connections already being served finish their current frame and
    /// close on their own threads.
    pub fn shutdown(self) {
        self.state.stop.store(true, Ordering::SeqCst);
        self.state.poke_acceptor();
        let _ = self.acceptor.join();
    }

    /// Blocks until some client's `{"shutdown":true}` frame stops the
    /// server (the foreground `repro serve` mode).
    pub fn join(self) {
        let _ = self.acceptor.join();
    }
}

/// Binds the listener and spawns the accept loop (thread per connection).
pub fn spawn(options: &ServeOptions) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&options.addr)?;
    let state = Arc::new(ServerState {
        lru: Mutex::new(AnalysisLru::new(options.lru_capacity)),
        stop: AtomicBool::new(false),
        local_addr: listener.local_addr()?,
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
    });
    let max_frame = options.max_frame;
    let accept_state = Arc::clone(&state);
    let acceptor = thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_state.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let conn_state = Arc::clone(&accept_state);
            thread::spawn(move || {
                // A failed connection is the client's problem; the server
                // must outlive it either way.
                let _ = serve_connection(&conn_state, stream, max_frame);
            });
        }
    });
    Ok(ServerHandle { state, acceptor })
}

// ---------------------------------------------------------------------------
// Per-connection loop
// ---------------------------------------------------------------------------

/// What one request frame asks for.
#[derive(Debug)]
enum Frame {
    Analyze {
        id: Option<u64>,
        task_set: TaskSet,
        request: AnalysisRequest,
    },
    Stats {
        id: Option<u64>,
    },
    Shutdown {
        id: Option<u64>,
    },
}

/// A structured wire error: `kind` is part of the protocol, `message` is
/// for humans.
struct WireError {
    kind: &'static str,
    message: String,
}

impl WireError {
    fn protocol(message: impl Into<String>) -> Self {
        Self {
            kind: "protocol",
            message: message.into(),
        }
    }
}

impl From<JsonError> for WireError {
    fn from(e: JsonError) -> Self {
        let kind = match &e {
            JsonError::Syntax { .. } => "syntax",
            JsonError::Schema(_) => "schema",
            JsonError::UnknownVersion { .. } => "version",
            JsonError::Model(_) => "model",
        };
        Self {
            kind,
            message: e.to_string(),
        }
    }
}

fn serve_connection(
    state: &Arc<ServerState>,
    stream: TcpStream,
    max_frame: usize,
) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let mut line = Vec::new();
        let n = (&mut reader)
            .take(max_frame as u64)
            .read_until(b'\n', &mut line)?;
        if n == 0 {
            return Ok(()); // client closed the connection
        }
        if line.last() != Some(&b'\n') && line.len() == max_frame {
            // Frame exceeds the cap: answer the structured error, then
            // drain the rest of the oversized line so the connection
            // re-synchronizes at the next newline.
            state.errors.fetch_add(1, Ordering::Relaxed);
            respond_error(
                &mut writer,
                None,
                &WireError {
                    kind: "too_large",
                    message: format!("frame exceeds {max_frame} bytes"),
                },
            )?;
            if !drain_to_newline(&mut reader)? {
                return Ok(()); // EOF inside the oversized frame
            }
            continue;
        }
        let text = String::from_utf8_lossy(&line);
        if text.trim().is_empty() {
            continue; // bare keep-alive newline
        }
        match parse_frame(text.trim()) {
            Err(error) => {
                state.errors.fetch_add(1, Ordering::Relaxed);
                respond_error(&mut writer, None, &error)?;
            }
            Ok(Frame::Stats { id }) => {
                let (stats, cached) = {
                    let lru = state.lru.lock().expect("lru lock");
                    (lru.stats(), lru.len())
                };
                let mut out = String::from("{\"v\":1,");
                push_id(&mut out, id);
                let _ = write_stats(&mut out, state, cached, stats);
                writeln_frame(&mut writer, out)?;
            }
            Ok(Frame::Shutdown { id }) => {
                let mut out = String::from("{\"v\":1,");
                push_id(&mut out, id);
                out.push_str("\"ok\":true,\"shutdown\":true}");
                writeln_frame(&mut writer, out)?;
                state.stop.store(true, Ordering::SeqCst);
                state.poke_acceptor();
                return Ok(());
            }
            Ok(Frame::Analyze {
                id,
                task_set,
                request,
            }) => {
                state.requests.fetch_add(1, Ordering::Relaxed);
                let started = Instant::now();
                // Hold the cache lock only for the O(lookup) parts; the
                // analysis itself runs unlocked so connections that miss
                // do not serialize behind each other.
                let fetched = state
                    .lru
                    .lock()
                    .expect("lru lock")
                    .fetch(&task_set, &request);
                let (outcome, status) = match fetched {
                    (Some(outcome), status) => (outcome, status),
                    (None, status) => {
                        let outcome = request.evaluate(&task_set);
                        state
                            .lru
                            .lock()
                            .expect("lru lock")
                            .store(&task_set, &request, &outcome);
                        (outcome, status)
                    }
                };
                let micros = started.elapsed().as_micros();
                respond_outcome(&mut writer, id, status, micros, &outcome)?;
            }
        }
    }
}

/// Discards input up to and including the next newline. Returns `false` on
/// EOF.
fn drain_to_newline(reader: &mut impl BufRead) -> io::Result<bool> {
    let mut chunk = Vec::with_capacity(4096);
    loop {
        chunk.clear();
        let n = reader.take(4096).read_until(b'\n', &mut chunk)?;
        if n == 0 {
            return Ok(false);
        }
        if chunk.last() == Some(&b'\n') {
            return Ok(true);
        }
    }
}

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

fn method_from_label(label: &str) -> Option<Method> {
    Method::ALL.into_iter().find(|m| m.label() == label)
}

fn parse_frame(text: &str) -> Result<Frame, WireError> {
    let doc = json::parse(text)?;
    let Value::Object(_) = &doc else {
        return Err(WireError::protocol("a request must be a JSON object"));
    };
    match doc.get("v") {
        None => {}
        Some(v) if v.as_u64() == Some(1) => {}
        Some(other) => {
            return Err(WireError::protocol(format!(
                "unsupported envelope version {other:?} (this server speaks v=1)"
            )));
        }
    }
    let id = match doc.get("id") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| WireError::protocol("\"id\" must be a non-negative integer"))?,
        ),
    };
    if doc.get("stats").and_then(Value::as_bool) == Some(true) {
        return Ok(Frame::Stats { id });
    }
    if doc.get("shutdown").and_then(Value::as_bool) == Some(true) {
        return Ok(Frame::Shutdown { id });
    }
    let cores = doc
        .get("cores")
        .ok_or_else(|| WireError::protocol("request is missing \"cores\""))?
        .as_u64()
        .ok_or_else(|| WireError::protocol("\"cores\" must be a non-negative integer"))?;
    if cores == 0 || cores as usize > MAX_CORES {
        return Err(WireError::protocol(format!(
            "\"cores\" must be in 1..={MAX_CORES}, got {cores}"
        )));
    }
    let methods: Vec<Method> = match doc.get("methods") {
        None => Method::ALL.to_vec(),
        Some(v) => v
            .as_array()
            .ok_or_else(|| WireError::protocol("\"methods\" must be an array of labels"))?
            .iter()
            .map(|item| {
                item.as_str().and_then(method_from_label).ok_or_else(|| {
                    WireError::protocol(format!(
                        "unknown method {item:?}; expected one of \
                         \"FP-ideal\", \"LP-ILP\", \"LP-max\", \"LP-sound\""
                    ))
                })
            })
            .collect::<Result<_, _>>()?,
    };
    let want_bounds = match doc.get("bounds") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| WireError::protocol("\"bounds\" must be a boolean"))?,
    };
    let task_set = json::task_set_from_value(
        doc.get("task_set")
            .ok_or_else(|| WireError::protocol("request is missing \"task_set\""))?,
    )?;
    let request = AnalysisRequest::new(cores as usize)
        .with_methods(methods)
        .with_bounds(want_bounds);
    Ok(Frame::Analyze {
        id,
        task_set,
        request,
    })
}

// ---------------------------------------------------------------------------
// Response rendering
// ---------------------------------------------------------------------------

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_id(out: &mut String, id: Option<u64>) {
    if let Some(id) = id {
        use std::fmt::Write as _;
        let _ = write!(out, "\"id\":{id},");
    }
}

fn writeln_frame(writer: &mut impl Write, mut frame: String) -> io::Result<()> {
    frame.push('\n');
    writer.write_all(frame.as_bytes())?;
    writer.flush()
}

fn respond_error(writer: &mut impl Write, id: Option<u64>, error: &WireError) -> io::Result<()> {
    let mut out = String::from("{\"v\":1,");
    push_id(&mut out, id);
    out.push_str("\"ok\":false,\"error\":{\"kind\":\"");
    out.push_str(error.kind);
    out.push_str("\",\"message\":");
    push_escaped(&mut out, &error.message);
    out.push_str("}}");
    writeln_frame(writer, out)
}

fn respond_outcome(
    writer: &mut impl Write,
    id: Option<u64>,
    status: CacheOutcome,
    micros: u128,
    outcome: &rta_analysis::AnalysisOutcome,
) -> io::Result<()> {
    use std::fmt::Write as _;
    let mut out = String::from("{\"v\":1,");
    push_id(&mut out, id);
    let _ = write!(
        out,
        "\"ok\":true,\"cache\":\"{}\",\"micros\":{micros},\"verdicts\":[",
        status.label()
    );
    for (i, answer) in outcome.outcomes().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"method\":\"{}\",\"schedulable\":{}",
            answer.method.label(),
            answer.schedulable
        );
        if let Some(bounds) = &answer.bounds {
            out.push_str(",\"bounds\":[");
            for (j, bound) in bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", bound.ceil());
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push_str("]}");
    writeln_frame(writer, out)
}

fn write_stats(
    out: &mut String,
    state: &ServerState,
    cached_sets: usize,
    stats: rta_analysis::LruStats,
) -> std::fmt::Result {
    use std::fmt::Write as _;
    write!(
        out,
        "\"ok\":true,\"stats\":{{\"requests\":{},\"errors\":{},\"cached_sets\":{},\
         \"hits\":{},\"near_hits\":{},\"misses\":{},\"evictions\":{}}}}}",
        state.requests.load(Ordering::Relaxed),
        state.errors.load(Ordering::Relaxed),
        cached_sets,
        stats.hits,
        stats.near_hits,
        stats.misses,
        stats.evictions,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_labels_round_trip() {
        for method in Method::ALL {
            assert_eq!(method_from_label(method.label()), Some(method));
        }
        assert_eq!(method_from_label("FP-Ideal"), None);
    }

    #[test]
    fn frame_parsing_defaults_and_errors() {
        let ok = parse_frame(
            r#"{"cores":4,"task_set":{"tasks":[{"period":9,"deadline":9,"dag":{"wcets":[1],"edges":[]}}]}}"#,
        );
        let Ok(Frame::Analyze {
            id,
            request,
            task_set,
        }) = ok
        else {
            panic!("expected an analyze frame");
        };
        assert_eq!(id, None);
        assert_eq!(request.methods, Method::ALL.to_vec());
        assert!(!request.want_bounds);
        assert_eq!(task_set.len(), 1);
        for (text, kind) in [
            (r#"{"task_set":{"tasks":[]}}"#, "protocol"), // no cores
            (r#"{"cores":0,"task_set":{"tasks":[]}}"#, "protocol"),
            (r#"{"cores":4,"v":2,"task_set":{"tasks":[]}}"#, "protocol"),
            (
                r#"{"cores":4,"methods":["fp"],"task_set":{"tasks":[]}}"#,
                "protocol",
            ),
            (r#"{"cores":4}"#, "protocol"), // no task_set
            (
                r#"{"cores":4,"task_set":{"version":9,"tasks":[]}}"#,
                "version",
            ),
            (r#"{"cores":4,"task_set":{"tasks":"#, "syntax"),
        ] {
            let err = parse_frame(text).expect_err(text);
            assert_eq!(err.kind, kind, "{text}: {}", err.message);
        }
    }
}
