//! Cross-validation of the ILP solver against exhaustive enumeration.

use proptest::prelude::*;
use rta_ilp::{IlpBuilder, IlpError, Sense};

/// Exhaustively evaluates all 2^n assignments of a small problem.
fn brute_force(
    n: usize,
    objective: &[i32],
    constraints: &[(Vec<i32>, Sense, i32)],
) -> Option<(i64, Vec<bool>)> {
    let mut best: Option<(i64, Vec<bool>)> = None;
    for mask in 0u32..1 << n {
        let assign: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
        let feasible = constraints.iter().all(|(coeffs, sense, rhs)| {
            let lhs: i64 = coeffs
                .iter()
                .zip(&assign)
                .map(|(&c, &a)| if a { c as i64 } else { 0 })
                .sum();
            match sense {
                Sense::Le => lhs <= *rhs as i64,
                Sense::Ge => lhs >= *rhs as i64,
                Sense::Eq => lhs == *rhs as i64,
            }
        });
        if feasible {
            let obj: i64 = objective
                .iter()
                .zip(&assign)
                .map(|(&c, &a)| if a { c as i64 } else { 0 })
                .sum();
            if best.as_ref().is_none_or(|(b, _)| obj > *b) {
                best = Some((obj, assign));
            }
        }
    }
    best
}

fn solve_with_ilp(
    n: usize,
    objective: &[i32],
    constraints: &[(Vec<i32>, Sense, i32)],
) -> Result<(i64, Vec<bool>), IlpError> {
    let mut b = IlpBuilder::new();
    let vars: Vec<_> = (0..n).map(|i| b.binary(format!("x{i}"))).collect();
    for (v, &c) in vars.iter().zip(objective) {
        b.objective(*v, c as f64);
    }
    for (coeffs, sense, rhs) in constraints {
        let terms: Vec<_> = vars
            .iter()
            .zip(coeffs)
            .map(|(&v, &c)| (v, c as f64))
            .collect();
        b.constraint(&terms, *sense, *rhs as f64);
    }
    let s = b.build().maximize()?;
    Ok((s.objective.round() as i64, s.values))
}

fn sense_strategy() -> impl Strategy<Value = Sense> {
    prop_oneof![Just(Sense::Le), Just(Sense::Ge), Just(Sense::Eq)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn ilp_matches_bruteforce(
        n in 1usize..7,
        objective in proptest::collection::vec(-10i32..20, 7),
        raw_constraints in proptest::collection::vec(
            (proptest::collection::vec(-4i32..5, 7), sense_strategy(), -6i32..12),
            0..5,
        ),
    ) {
        let objective = &objective[..n];
        let constraints: Vec<(Vec<i32>, Sense, i32)> = raw_constraints
            .into_iter()
            .map(|(c, s, r)| (c[..n].to_vec(), s, r))
            .collect();
        let expected = brute_force(n, objective, &constraints);
        let actual = solve_with_ilp(n, objective, &constraints);
        match expected {
            None => prop_assert_eq!(actual.unwrap_err(), IlpError::Infeasible),
            Some((obj, _)) => {
                let (got_obj, got_assign) = actual.expect("feasible problem must solve");
                prop_assert_eq!(got_obj, obj, "objective mismatch");
                // The returned assignment must itself be feasible and achieve
                // the reported objective.
                let recomputed: i64 = objective
                    .iter()
                    .zip(&got_assign)
                    .map(|(&c, &a)| if a { c as i64 } else { 0 })
                    .sum();
                prop_assert_eq!(recomputed, obj);
                for (coeffs, sense, rhs) in &constraints {
                    let lhs: i64 = coeffs
                        .iter()
                        .zip(&got_assign)
                        .map(|(&c, &a)| if a { c as i64 } else { 0 })
                        .sum();
                    let ok = match sense {
                        Sense::Le => lhs <= *rhs as i64,
                        Sense::Ge => lhs >= *rhs as i64,
                        Sense::Eq => lhs == *rhs as i64,
                    };
                    prop_assert!(ok, "returned assignment violates a constraint");
                }
            }
        }
    }
}
